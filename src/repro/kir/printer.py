"""Pretty-printer: KIR AST back to mini-CUDA source text.

Used to inspect what the Hauberk translator produced (the paper shows
instrumented source in Figure 8 and Section V.B) and by round-trip
tests against the parser.
"""

from __future__ import annotations

from typing import List

from repro.errors import KIRError
from repro.kir.astnodes import (
    Assign,
    AtomicAdd,
    BinOp,
    Break,
    Call,
    CallStmt,
    Const,
    Continue,
    Decl,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Return,
    SharedLoad,
    SharedStore,
    SpecialReg,
    Stmt,
    Store,
    SyncThreads,
    UnOp,
    Var,
    While,
)

# Binding strength for parenthesization (C-like).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}
_UNARY_PRECEDENCE = 11


def format_const(value) -> str:
    if isinstance(value, str):
        return '"' + value.replace("\\", "\\\\").replace('"', '\\"') + '"'
    if isinstance(value, float):
        text = repr(value)
        # ensure a float literal stays a float on re-parse
        if "e" not in text and "E" not in text and "." not in text and "inf" not in text and "nan" not in text:
            text += ".0"
        return text
    return str(value)


def expr_to_source(e: Expr, parent_prec: int = 0) -> str:
    if isinstance(e, Const):
        return format_const(e.value)
    if isinstance(e, Var):
        return e.name
    if isinstance(e, SpecialReg):
        return e.name
    if isinstance(e, BinOp):
        prec = _PRECEDENCE[e.op]
        left = expr_to_source(e.left, prec)
        # right operand binds tighter to preserve left-associativity
        right = expr_to_source(e.right, prec + 1)
        text = f"{left} {e.op} {right}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(e, UnOp):
        inner = expr_to_source(e.operand, _UNARY_PRECEDENCE)
        text = f"{e.op}{inner}"
        return f"({text})" if _UNARY_PRECEDENCE < parent_prec else text
    if isinstance(e, Call):
        args = ", ".join(expr_to_source(a) for a in e.args)
        return f"{e.func}({args})"
    if isinstance(e, Load):
        base = expr_to_source(e.ptr, _UNARY_PRECEDENCE + 1)
        return f"{base}[{expr_to_source(e.index)}]"
    if isinstance(e, SharedLoad):
        return f"{e.array}[{expr_to_source(e.index)}]"
    raise KIRError(f"cannot print expression {type(e).__name__}")


def _stmt_lines(stmt: Stmt, indent: int) -> List[str]:
    pad = "    " * indent
    if isinstance(stmt, Decl):
        return [f"{pad}{stmt.var_dtype.value} {stmt.name} = {expr_to_source(stmt.init)};"]
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.name} = {expr_to_source(stmt.value)};"]
    if isinstance(stmt, Store):
        base = expr_to_source(stmt.ptr, _UNARY_PRECEDENCE + 1)
        return [f"{pad}{base}[{expr_to_source(stmt.index)}] = {expr_to_source(stmt.value)};"]
    if isinstance(stmt, SharedStore):
        return [f"{pad}{stmt.array}[{expr_to_source(stmt.index)}] = {expr_to_source(stmt.value)};"]
    if isinstance(stmt, AtomicAdd):
        if stmt.space == "shared":
            target = f"{stmt.array}[{expr_to_source(stmt.index)}]"
        else:
            base = expr_to_source(stmt.target, _UNARY_PRECEDENCE + 1)
            target = f"{base}[{expr_to_source(stmt.index)}]"
        return [f"{pad}atomicAdd(&{target}, {expr_to_source(stmt.value)});"]
    if isinstance(stmt, For):
        init = ""
        if stmt.init is not None:
            init = f"{stmt.init.var_dtype.value} {stmt.init.name} = {expr_to_source(stmt.init.init)}"
        update = ""
        if stmt.update is not None:
            update = f"{stmt.update.name} = {expr_to_source(stmt.update.value)}"
        lines = [f"{pad}for ({init}; {expr_to_source(stmt.cond)}; {update}) {{"]
        for s in stmt.body:
            lines.extend(_stmt_lines(s, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while ({expr_to_source(stmt.cond)}) {{"]
        for s in stmt.body:
            lines.extend(_stmt_lines(s, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, If):
        lines = [f"{pad}if ({expr_to_source(stmt.cond)}) {{"]
        for s in stmt.then:
            lines.extend(_stmt_lines(s, indent + 1))
        if stmt.els:
            lines.append(f"{pad}}} else {{")
            for s in stmt.els:
                lines.extend(_stmt_lines(s, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, Break):
        return [f"{pad}break;"]
    if isinstance(stmt, Continue):
        return [f"{pad}continue;"]
    if isinstance(stmt, Return):
        return [f"{pad}return;"]
    if isinstance(stmt, SyncThreads):
        return [f"{pad}__syncthreads();"]
    if isinstance(stmt, CallStmt):
        args = ", ".join(expr_to_source(a) for a in stmt.args)
        return [f"{pad}{stmt.func}({args});"]
    raise KIRError(f"cannot print statement {type(stmt).__name__}")


def kernel_to_source(kernel: Kernel) -> str:
    """Render a kernel as mini-CUDA source text (parser round-trippable)."""
    params = ", ".join(f"{p.dtype.value} {p.name}" for p in kernel.params)
    lines = [f"kernel {kernel.name}({params}) {{"]
    for s in kernel.shared:
        lines.append(f"    shared {s.dtype.value} {s.name}[{s.size}];")
    for stmt in kernel.body:
        lines.extend(_stmt_lines(stmt, 1))
    lines.append("}")
    return "\n".join(lines)
