"""Ergonomic construction helpers for KIR kernels.

The workload kernels in this repository are written in mini-CUDA text
and parsed (:mod:`repro.kir.parser`), but transformation passes — the
Hauberk translator, R-Scatter, tests — build AST fragments directly.
These helpers keep that code short and uniform.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.kir.astnodes import (
    Assign,
    BinOp,
    Call,
    CallStmt,
    Const,
    Decl,
    Expr,
    For,
    If,
    Kernel,
    KernelParam,
    Load,
    SharedDecl,
    SpecialReg,
    Stmt,
    UnOp,
    Var,
)
from repro.kir.types import DType
from repro.kir.validate import validate_kernel

ExprLike = Union[Expr, int, float, str]


def expr(value: ExprLike) -> Expr:
    """Coerce a Python literal or name into an expression node.

    ``int``/``float`` become constants; a ``str`` becomes a variable
    reference (or special register if it contains a dot).
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, (int, float)):
        return Const(value)
    if isinstance(value, str):
        if "." in value:
            return SpecialReg(value)
        return Var(value)
    raise TypeError(f"cannot coerce {value!r} to a KIR expression")


def const(value) -> Const:
    return Const(value)


def var(name: str) -> Var:
    return Var(name)


def binop(op: str, left: ExprLike, right: ExprLike) -> BinOp:
    return BinOp(op, expr(left), expr(right))


def add(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("+", a, b)


def sub(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("-", a, b)


def mul(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("*", a, b)


def div(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("/", a, b)


def lt(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("<", a, b)


def ne(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("!=", a, b)


def eq(a: ExprLike, b: ExprLike) -> BinOp:
    return binop("==", a, b)


def neg(a: ExprLike) -> UnOp:
    return UnOp("-", expr(a))


def call(func: str, *args: ExprLike) -> Call:
    return Call(func, [expr(a) for a in args])


def load(ptr: ExprLike, index: ExprLike) -> Load:
    return Load(expr(ptr), expr(index))


def decl(name: str, dtype: DType, init: ExprLike) -> Decl:
    return Decl(name, dtype, expr(init))


def decl_int(name: str, init: ExprLike) -> Decl:
    return Decl(name, DType.INT32, expr(init))


def decl_float(name: str, init: ExprLike) -> Decl:
    return Decl(name, DType.FLOAT32, expr(init))


def assign(name: str, value: ExprLike) -> Assign:
    return Assign(name, expr(value))


def inc(name: str, by: ExprLike = 1) -> Assign:
    """``name = name + by`` — the accumulation-counter idiom."""
    return Assign(name, add(Var(name), by))


def for_range(
    itername: str,
    stop: ExprLike,
    body: Sequence[Stmt],
    start: ExprLike = 0,
    step: ExprLike = 1,
) -> For:
    """``for (int it = start; it < stop; it = it + step) { body }``"""
    return For(
        init=decl_int(itername, start),
        cond=lt(Var(itername), stop),
        update=Assign(itername, add(Var(itername), step)),
        body=list(body),
    )


def if_(cond: ExprLike, then: Sequence[Stmt], els: Optional[Sequence[Stmt]] = None) -> If:
    return If(expr(cond), list(then), list(els) if els else [])


def libcall(func: str, *args: ExprLike) -> CallStmt:
    return CallStmt(func, [expr(a) for a in args])


def thread_linear_index() -> Expr:
    """``blockIdx.x * blockDim.x + threadIdx.x`` — the ubiquitous idiom."""
    return add(mul(SpecialReg("blockIdx.x"), SpecialReg("blockDim.x")), SpecialReg("threadIdx.x"))


def make_kernel(
    name: str,
    params: Sequence[tuple],
    body: List[Stmt],
    shared: Optional[Sequence[tuple]] = None,
    validate: bool = True,
) -> Kernel:
    """Assemble and (by default) validate a kernel.

    ``params`` is a sequence of ``(name, DType)``; ``shared`` a sequence
    of ``(name, DType, size_words)``.
    """
    kernel = Kernel(
        name=name,
        params=[KernelParam(n, t) for n, t in params],
        shared=[SharedDecl(n, t, s) for n, t, s in (shared or [])],
        body=body,
    )
    if validate:
        validate_kernel(kernel)
    return kernel
