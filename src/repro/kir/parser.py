"""Recursive-descent parser for the mini-CUDA kernel language.

The workload kernels (Section II's Parboil programs and the graphics
programs) are written in this dialect, mirroring how the paper's
CETUS-based translator consumes CUDA C++ source.  Supported syntax:

.. code-block:: c

    kernel cp(float* atominfo, int numatoms, float* energygrid) {
        shared float tile[128];
        int  xindex = blockIdx.x * blockDim.x + threadIdx.x;
        float energy = 0.0;
        for (int atomid = 0; atomid < numatoms; atomid++) {
            float dx = atominfo[atomid * 4] - 1.5;
            energy += atominfo[atomid * 4 + 3] / sqrt(dx * dx + 1.0);
        }
        energygrid[xindex] = energy;
    }

Conveniences over the raw AST: compound assignment (``+=`` etc.),
``++``/``--``, ``do { } while`` (lowered to body + ``while``),
``atomicAdd(&a[i], v)``, and ``//`` / ``/* */`` comments.
"""

from __future__ import annotations

import copy
import re
from typing import List, Optional, Tuple

from repro.errors import KIRParseError
from repro.kir.astnodes import (
    Assign,
    AtomicAdd,
    BinOp,
    Break,
    Call,
    CallStmt,
    Const,
    Continue,
    Decl,
    Expr,
    For,
    If,
    Kernel,
    KernelParam,
    Load,
    Return,
    SharedDecl,
    SharedLoad,
    SharedStore,
    SpecialReg,
    Stmt,
    Store,
    SyncThreads,
    UnOp,
    Var,
    While,
)
from repro.kir.types import DType
from repro.kir.validate import INTRINSICS, validate_kernel

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<hex>0[xX][0-9a-fA-F]+)
  | (?P<float>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?[fF]?|\d+[eE][-+]?\d+[fF]?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(?:\.[xy])?)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<op><<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|\+\+|--|[-+*/%<>=!&|^~(){}\[\],;.])
    """,
    re.VERBOSE | re.DOTALL,
)

_KEYWORDS = {
    "kernel",
    "shared",
    "int",
    "float",
    "for",
    "while",
    "do",
    "if",
    "else",
    "break",
    "continue",
    "return",
}


class _Token:
    __slots__ = ("kind", "text", "line", "col")

    def __init__(self, kind: str, text: str, line: int, col: int):
        self.kind = kind
        self.text = text
        self.line = line
        self.col = col

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise KIRParseError(
                f"unexpected character {source[pos]!r}", line, pos - line_start + 1
            )
        kind = m.lastgroup
        text = m.group()
        col = pos - line_start + 1
        if kind in ("ws", "comment"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = pos + text.rindex("\n") + 1
        elif kind == "float" and "." not in text and "e" not in text and "E" not in text and not text.endswith(("f", "F")):
            tokens.append(_Token("int", text, line, col))
        elif kind == "hex":
            tokens.append(_Token("int", text, line, col))
        elif kind == "ident" and text in _KEYWORDS:
            tokens.append(_Token("kw", text, line, col))
        else:
            tokens.append(_Token(kind, text, line, col))
        pos = m.end()
    tokens.append(_Token("eof", "", line, pos - line_start + 1))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self.tokens = tokens
        self.pos = 0
        self.shared_names: set = set()
        self._dw_counter = 0

    # -- token plumbing ----------------------------------------------
    @property
    def cur(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        tok = self.cur
        self.pos += 1
        return tok

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.cur
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        if not self.check(kind, text):
            want = text or kind
            raise KIRParseError(
                f"expected {want!r}, found {self.cur.text!r}", self.cur.line, self.cur.col
            )
        return self.advance()

    def error(self, message: str) -> KIRParseError:
        return KIRParseError(message, self.cur.line, self.cur.col)

    # -- grammar -----------------------------------------------------
    def parse_kernel(self) -> Kernel:
        self.expect("kw", "kernel")
        name = self.expect("ident").text
        self.expect("op", "(")
        params: List[KernelParam] = []
        if not self.check("op", ")"):
            while True:
                dtype = self.parse_type()
                pname = self.expect("ident").text
                params.append(KernelParam(pname, dtype))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        self.expect("op", "{")
        shared: List[SharedDecl] = []
        while self.check("kw", "shared"):
            shared.append(self.parse_shared_decl())
        body = self.parse_stmts_until("}")
        self.expect("op", "}")
        self.expect("eof")
        kernel = Kernel(name=name, params=params, shared=shared, body=body)
        return kernel

    def parse_type(self) -> DType:
        tok = self.expect("kw")
        if tok.text not in ("int", "float"):
            raise self.error(f"expected a type, found {tok.text!r}")
        if self.accept("op", "*"):
            return DType.PTR_INT32 if tok.text == "int" else DType.PTR_FLOAT32
        return DType.INT32 if tok.text == "int" else DType.FLOAT32

    def parse_shared_decl(self) -> SharedDecl:
        self.expect("kw", "shared")
        tok = self.expect("kw")
        if tok.text not in ("int", "float"):
            raise self.error("shared arrays must be int or float")
        dtype = DType.INT32 if tok.text == "int" else DType.FLOAT32
        name = self.expect("ident").text
        self.expect("op", "[")
        size = int(self.expect("int").text, 0)
        self.expect("op", "]")
        self.expect("op", ";")
        self.shared_names.add(name)
        return SharedDecl(name, dtype, size)

    def parse_stmts_until(self, closer: str) -> List[Stmt]:
        stmts: List[Stmt] = []
        while not self.check("op", closer):
            if self.check("eof"):
                raise self.error(f"unexpected end of input, expected {closer!r}")
            stmts.append(self.parse_stmt())
        return stmts

    def parse_block(self) -> List[Stmt]:
        if self.accept("op", "{"):
            stmts = self.parse_stmts_until("}")
            self.expect("op", "}")
            return stmts
        return [self.parse_stmt()]

    def parse_stmt(self) -> Stmt:
        if self.check("kw", "int") or self.check("kw", "float"):
            stmt = self.parse_decl()
            self.expect("op", ";")
            return stmt
        if self.check("kw", "for"):
            return self.parse_for()
        if self.check("kw", "while"):
            return self.parse_while()
        if self.check("kw", "do"):
            return self.parse_do_while()
        if self.check("kw", "if"):
            return self.parse_if()
        if self.accept("kw", "break"):
            self.expect("op", ";")
            return Break()
        if self.accept("kw", "continue"):
            self.expect("op", ";")
            return Continue()
        if self.accept("kw", "return"):
            self.expect("op", ";")
            return Return()
        stmt = self.parse_simple_stmt()
        self.expect("op", ";")
        return stmt

    def parse_decl(self) -> Decl:
        dtype = self.parse_type()
        name = self.expect("ident").text
        self.expect("op", "=")
        init = self.parse_expr()
        return Decl(name, dtype, init)

    def parse_for(self) -> For:
        self.expect("kw", "for")
        self.expect("op", "(")
        init: Optional[Decl] = None
        if not self.check("op", ";"):
            if not (self.check("kw", "int") or self.check("kw", "float")):
                raise self.error("for-loop init must be a declaration (or empty)")
            init = self.parse_decl()
        self.expect("op", ";")
        cond = self.parse_expr()
        self.expect("op", ";")
        update: Optional[Assign] = None
        if not self.check("op", ")"):
            stmt = self.parse_simple_stmt()
            if not isinstance(stmt, Assign):
                raise self.error("for-loop update must be an assignment")
            update = stmt
        self.expect("op", ")")
        body = self.parse_block()
        return For(init=init, cond=cond, update=update, body=body)

    def parse_while(self) -> While:
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_block()
        return While(cond=cond, body=body)

    def parse_do_while(self) -> Stmt:
        """``do { body } while (cond);`` lowered to a flagged while loop.

        The first iteration runs unconditionally via a fresh flag so the
        body is not duplicated (which would double its virtual-variable
        sites and shadow its declarations).
        """
        self.expect("kw", "do")
        body = self.parse_block()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        self.expect("op", ";")
        flag = f"__dw{self._dw_counter}"
        self._dw_counter += 1
        body.insert(0, Assign(flag, Const(0)))
        loop = While(cond=BinOp("||", Var(flag), cond), body=body)
        return If(cond=Const(1), then=[Decl(flag, DType.INT32, Const(1)), loop], els=[])

    def parse_if(self) -> If:
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_block()
        els: List[Stmt] = []
        if self.accept("kw", "else"):
            if self.check("kw", "if"):
                els = [self.parse_if()]
            else:
                els = self.parse_block()
        return If(cond=cond, then=then, els=els)

    def parse_simple_stmt(self) -> Stmt:
        """Assignment, store, atomicAdd, __syncthreads, or library call."""
        if self.check("ident", "atomicAdd"):
            return self.parse_atomic_add()
        if self.check("ident", "__syncthreads"):
            self.advance()
            self.expect("op", "(")
            self.expect("op", ")")
            return SyncThreads()
        if self.check("ident") and self.cur.text.startswith("__"):
            return self.parse_libcall()
        tok = self.expect("ident")
        name = tok.text
        if "." in name:
            raise self.error("cannot assign to a special register")
        # indexed target => store
        if self.check("op", "["):
            self.advance()
            index = self.parse_expr()
            self.expect("op", "]")
            value_expr = self._parse_rhs_for(self._indexed_read(name, index))
            if name in self.shared_names:
                return SharedStore(array=name, index=index, value=value_expr)
            return Store(ptr=Var(name), index=index, value=value_expr)
        # plain assignment / compound assignment / ++ / --
        if self.accept("op", "++"):
            return Assign(name, BinOp("+", Var(name), Const(1)))
        if self.accept("op", "--"):
            return Assign(name, BinOp("-", Var(name), Const(1)))
        return Assign(name, self._parse_rhs_for(Var(name)))

    def _indexed_read(self, name: str, index: Expr) -> Expr:
        if name in self.shared_names:
            return SharedLoad(array=name, index=copy.deepcopy(index))
        return Load(ptr=Var(name), index=copy.deepcopy(index))

    def _parse_rhs_for(self, target_read: Expr) -> Expr:
        """Parse ``= e`` or a compound assignment ``op= e``."""
        for op_text, op in (("+=", "+"), ("-=", "-"), ("*=", "*"), ("/=", "/")):
            if self.accept("op", op_text):
                return BinOp(op, target_read, self.parse_expr())
        self.expect("op", "=")
        return self.parse_expr()

    def parse_atomic_add(self) -> AtomicAdd:
        self.expect("ident", "atomicAdd")
        self.expect("op", "(")
        self.expect("op", "&")
        name = self.expect("ident").text
        self.expect("op", "[")
        index = self.parse_expr()
        self.expect("op", "]")
        self.expect("op", ",")
        value = self.parse_expr()
        self.expect("op", ")")
        if name in self.shared_names:
            return AtomicAdd(space="shared", array=name, index=index, value=value)
        return AtomicAdd(space="global", target=Var(name), index=index, value=value)

    def parse_libcall(self) -> CallStmt:
        name = self.expect("ident").text
        self.expect("op", "(")
        args: List[Expr] = []
        if not self.check("op", ")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        return CallStmt(func=name, args=args)

    # -- expressions (precedence climbing) ---------------------------
    _BINARY_LEVELS: Tuple[Tuple[str, ...], ...] = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def parse_expr(self) -> Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        ops = self._BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self.cur.kind == "op" and self.cur.text in ops:
            op = self.advance().text
            right = self._parse_binary(level + 1)
            left = BinOp(op, left, right)
        return left

    def parse_unary(self) -> Expr:
        if self.cur.kind == "op" and self.cur.text in ("-", "!", "~"):
            op = self.advance().text
            operand = self.parse_unary()
            if op == "-" and isinstance(operand, Const) and isinstance(operand.value, (int, float)):
                return Const(-operand.value)
            return UnOp(op, operand)
        if self.accept("op", "+"):
            return self.parse_unary()
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        e = self.parse_primary()
        while self.check("op", "["):
            self.advance()
            index = self.parse_expr()
            self.expect("op", "]")
            if isinstance(e, Var) and e.name in self.shared_names:
                e = SharedLoad(array=e.name, index=index)
            else:
                e = Load(ptr=e, index=index)
        return e

    def parse_primary(self) -> Expr:
        if self.accept("op", "("):
            e = self.parse_expr()
            self.expect("op", ")")
            return e
        tok = self.cur
        if tok.kind == "int":
            self.advance()
            return Const(int(tok.text, 0))
        if tok.kind == "float":
            self.advance()
            return Const(float(tok.text.rstrip("fF")))
        if tok.kind == "string":
            self.advance()
            body = tok.text[1:-1]
            return Const(body.replace('\\"', '"').replace("\\\\", "\\"))
        if tok.kind == "kw" and tok.text in ("int", "float"):
            # cast syntax: int(expr) / float(expr)
            self.advance()
            self.expect("op", "(")
            arg = self.parse_expr()
            self.expect("op", ")")
            return Call(tok.text, [arg])
        if tok.kind == "ident":
            self.advance()
            if "." in tok.text:
                return SpecialReg(tok.text)
            if self.check("op", "("):
                self.advance()
                args: List[Expr] = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                if tok.text not in INTRINSICS:
                    raise KIRParseError(
                        f"unknown function {tok.text!r} in expression", tok.line, tok.col
                    )
                return Call(tok.text, args)
            return Var(tok.text)
        raise self.error(f"unexpected token {tok.text!r} in expression")


def parse_kernel(source: str, validate: bool = True) -> Kernel:
    """Parse mini-CUDA source into a (validated) :class:`Kernel`."""
    kernel = _Parser(tokenize(source)).parse_kernel()
    if validate:
        validate_kernel(kernel)
    return kernel
