"""Static validation of KIR kernels: typing, scoping, site numbering.

``validate_kernel`` must run before analysis, instrumentation, or
execution.  It performs, in one pass:

* lexical scope checking (no use-before-def, no shadowing),
* C-style type inference/checking for every expression,
* numbering of virtual-variable definition **sites** (params first,
  then every Decl/Assign in program order, including loop init/update),
* loop-nest annotation (``in_loop`` / ``loop_id`` per statement),
* detection of ``__syncthreads`` (selects the lockstep interpreter).

Re-running validation renumbers sites, so transformation passes call
it again after mutating a kernel.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import KIRTypeError, KIRValidationError
from repro.kir.astnodes import (
    Assign,
    AtomicAdd,
    BinOp,
    Break,
    Call,
    CallStmt,
    Const,
    Continue,
    Decl,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Return,
    SharedLoad,
    SharedStore,
    SpecialReg,
    Stmt,
    Store,
    SyncThreads,
    UnOp,
    Var,
    While,
)
from repro.kir.types import DType, promote

# Intrinsics: name -> (arity, kind) where kind determines the result type.
#   "float"    : all numeric args coerced to float, result float
#   "promote"  : result is the promotion of the numeric args
#   "int"      : int args, result int
#   "cast_int" / "cast_float" : explicit casts
#   "bits"     : float -> int bit reinterpretation (checksum support)
INTRINSICS: Dict[str, tuple] = {
    "sqrt": (1, "float"),
    "rsqrt": (1, "float"),
    "exp": (1, "float"),
    "log": (1, "float"),
    "sin": (1, "float"),
    "cos": (1, "float"),
    "acos": (1, "float"),
    "atan2": (2, "float"),
    "floor": (1, "float"),
    "fabs": (1, "float"),
    "pow": (2, "float"),
    "fmin": (2, "float"),
    "fmax": (2, "float"),
    "abs": (1, "int"),
    "min": (2, "promote"),
    "max": (2, "promote"),
    "int": (1, "cast_int"),
    "float": (1, "cast_float"),
    "__float_as_int": (1, "bits"),
}


class _Scope:
    """Lexical scope chain mapping names to declared types."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, DType] = {}

    def lookup(self, name: str) -> Optional[DType]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def declare(self, name: str, dtype: DType) -> None:
        if self.lookup(name) is not None:
            raise KIRValidationError(f"redeclaration / shadowing of {name!r}")
        self.names[name] = dtype


class _Validator:
    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.next_site = 0
        self.next_loop = 0
        self.uses_sync = False
        self.shared_names = {s.name: s.dtype for s in kernel.shared}

    # -- expressions -------------------------------------------------
    def expr(self, e: Expr, scope: _Scope) -> DType:
        if e is None:
            raise KIRValidationError("missing expression")
        dtype = self._expr(e, scope)
        e.dtype = dtype
        return dtype

    def _expr(self, e: Expr, scope: _Scope) -> DType:
        if isinstance(e, Const):
            if isinstance(e.value, float):
                return DType.FLOAT32
            if isinstance(e.value, int):
                return DType.INT32
            if isinstance(e.value, str):
                return DType.STR
            raise KIRTypeError(f"bad constant {e.value!r}")
        if isinstance(e, Var):
            dtype = scope.lookup(e.name)
            if dtype is None:
                raise KIRValidationError(f"use of undeclared variable {e.name!r}")
            return dtype
        if isinstance(e, SpecialReg):
            if e.name not in SpecialReg.VALID:
                raise KIRValidationError(f"unknown special register {e.name!r}")
            return DType.INT32
        if isinstance(e, BinOp):
            lt = self.expr(e.left, scope)
            rt = self.expr(e.right, scope)
            if e.op in BinOp.ARITH:
                if e.op in ("%",) and (lt is not DType.INT32 or rt is not DType.INT32):
                    raise KIRTypeError("% requires int operands")
                return promote(lt, rt)
            if e.op in BinOp.COMPARE:
                if lt.is_pointer or rt.is_pointer:
                    if lt is not rt:
                        raise KIRTypeError(f"cannot compare {lt} with {rt}")
                else:
                    promote(lt, rt)  # just checks compatibility
                return DType.INT32
            if e.op in BinOp.LOGICAL:
                if not (lt.is_numeric and rt.is_numeric):
                    raise KIRTypeError(f"{e.op} requires numeric operands")
                return DType.INT32
            if e.op in BinOp.BITWISE:
                if lt is not DType.INT32 or rt is not DType.INT32:
                    raise KIRTypeError(f"{e.op} requires int operands")
                return DType.INT32
            raise KIRValidationError(f"unknown binary operator {e.op!r}")
        if isinstance(e, UnOp):
            t = self.expr(e.operand, scope)
            if e.op == "-":
                if not t.is_numeric:
                    raise KIRTypeError("unary - requires a numeric operand")
                return t
            if e.op == "!":
                if not t.is_numeric:
                    raise KIRTypeError("! requires a numeric operand")
                return DType.INT32
            if e.op == "~":
                if t is not DType.INT32:
                    raise KIRTypeError("~ requires an int operand")
                return DType.INT32
            raise KIRValidationError(f"unknown unary operator {e.op!r}")
        if isinstance(e, Call):
            if e.func not in INTRINSICS:
                raise KIRValidationError(f"unknown intrinsic {e.func!r}")
            arity, kind = INTRINSICS[e.func]
            if len(e.args) != arity:
                raise KIRValidationError(
                    f"{e.func} expects {arity} argument(s), got {len(e.args)}"
                )
            arg_types = [self.expr(a, scope) for a in e.args]
            for t in arg_types:
                if not t.is_numeric:
                    # int(ptr) is allowed: the checksum XORs pointer bits
                    if kind == "cast_int" and t.is_pointer:
                        continue
                    raise KIRTypeError(f"{e.func} requires numeric arguments")
            if kind == "float" or kind == "cast_float":
                return DType.FLOAT32
            if kind == "promote":
                return promote(*arg_types) if arity == 2 else arg_types[0]
            if kind in ("int", "cast_int", "bits"):
                return DType.INT32
            raise KIRValidationError(f"bad intrinsic kind {kind!r}")
        if isinstance(e, Load):
            pt = self.expr(e.ptr, scope)
            it = self.expr(e.index, scope)
            if not pt.is_pointer:
                raise KIRTypeError("load base is not a pointer")
            if it is not DType.INT32:
                raise KIRTypeError("load index must be int")
            return pt.element
        if isinstance(e, SharedLoad):
            if e.array not in self.shared_names:
                raise KIRValidationError(f"unknown shared array {e.array!r}")
            if self.expr(e.index, scope) is not DType.INT32:
                raise KIRTypeError("shared load index must be int")
            return self.shared_names[e.array]
        raise KIRValidationError(f"unknown expression node {type(e).__name__}")

    # -- statements --------------------------------------------------
    def block(self, body: List[Stmt], scope: _Scope, loop_id: int) -> None:
        for stmt in body:
            self.stmt(stmt, scope, loop_id)

    def _mark(self, stmt: Stmt, loop_id: int) -> None:
        stmt.in_loop = loop_id >= 0
        stmt.loop_id = loop_id

    def _assign_site(self, stmt: Stmt) -> None:
        stmt.site = self.next_site
        self.next_site += 1

    def stmt(self, stmt: Stmt, scope: _Scope, loop_id: int) -> None:
        self._mark(stmt, loop_id)
        if isinstance(stmt, Decl):
            dtype = self.expr(stmt.init, scope)
            if stmt.var_dtype.is_pointer:
                if dtype is not stmt.var_dtype:
                    raise KIRTypeError(
                        f"cannot initialize {stmt.var_dtype} {stmt.name} from {dtype}"
                    )
            elif not dtype.is_numeric:
                raise KIRTypeError(f"cannot initialize {stmt.name} from {dtype}")
            scope.declare(stmt.name, stmt.var_dtype)
            self._assign_site(stmt)
        elif isinstance(stmt, Assign):
            target = scope.lookup(stmt.name)
            if target is None:
                raise KIRValidationError(f"assignment to undeclared {stmt.name!r}")
            dtype = self.expr(stmt.value, scope)
            if target.is_pointer:
                if dtype is not target:
                    raise KIRTypeError(f"cannot assign {dtype} to {target} {stmt.name}")
            elif not dtype.is_numeric:
                raise KIRTypeError(f"cannot assign {dtype} to {stmt.name}")
            stmt.target_dtype = target
            self._assign_site(stmt)
        elif isinstance(stmt, Store):
            pt = self.expr(stmt.ptr, scope)
            if not pt.is_pointer:
                raise KIRTypeError("store base is not a pointer")
            if self.expr(stmt.index, scope) is not DType.INT32:
                raise KIRTypeError("store index must be int")
            if not self.expr(stmt.value, scope).is_numeric:
                raise KIRTypeError("stored value must be numeric")
        elif isinstance(stmt, SharedStore):
            if stmt.array not in self.shared_names:
                raise KIRValidationError(f"unknown shared array {stmt.array!r}")
            if self.expr(stmt.index, scope) is not DType.INT32:
                raise KIRTypeError("shared store index must be int")
            if not self.expr(stmt.value, scope).is_numeric:
                raise KIRTypeError("stored value must be numeric")
        elif isinstance(stmt, AtomicAdd):
            if stmt.space == "shared":
                if stmt.array not in self.shared_names:
                    raise KIRValidationError(f"unknown shared array {stmt.array!r}")
            elif stmt.space == "global":
                if not self.expr(stmt.target, scope).is_pointer:
                    raise KIRTypeError("atomicAdd target is not a pointer")
            else:
                raise KIRValidationError(f"bad atomic space {stmt.space!r}")
            if self.expr(stmt.index, scope) is not DType.INT32:
                raise KIRTypeError("atomicAdd index must be int")
            if not self.expr(stmt.value, scope).is_numeric:
                raise KIRTypeError("atomicAdd value must be numeric")
        elif isinstance(stmt, For):
            my_loop = self.next_loop
            self.next_loop += 1
            stmt.loop_id = my_loop  # the For itself owns its loop id
            stmt.in_loop = loop_id >= 0
            inner = _Scope(scope)
            if stmt.init is not None:
                # the iterator is defined once, at the loop's outer level
                self.stmt(stmt.init, inner, loop_id)
            if stmt.cond is None:
                raise KIRValidationError("for loop requires a condition")
            if not self.expr(stmt.cond, inner).is_numeric:
                raise KIRTypeError("loop condition must be numeric")
            body_scope = _Scope(inner)
            self.block(stmt.body, body_scope, my_loop)
            if stmt.update is not None:
                # the update executes every iteration: it is loop state
                self.stmt(stmt.update, inner, my_loop)
        elif isinstance(stmt, While):
            my_loop = self.next_loop
            self.next_loop += 1
            stmt.loop_id = my_loop
            stmt.in_loop = loop_id >= 0
            if not self.expr(stmt.cond, scope).is_numeric:
                raise KIRTypeError("loop condition must be numeric")
            self.block(stmt.body, _Scope(scope), my_loop)
        elif isinstance(stmt, If):
            if not self.expr(stmt.cond, scope).is_numeric:
                raise KIRTypeError("if condition must be numeric")
            self.block(stmt.then, _Scope(scope), loop_id)
            self.block(stmt.els, _Scope(scope), loop_id)
        elif isinstance(stmt, (Break, Continue)):
            if loop_id < 0:
                raise KIRValidationError(
                    f"{type(stmt).__name__.lower()} outside of a loop"
                )
        elif isinstance(stmt, Return):
            pass
        elif isinstance(stmt, SyncThreads):
            self.uses_sync = True
        elif isinstance(stmt, CallStmt):
            if not stmt.func.startswith("__"):
                raise KIRValidationError(
                    f"library call {stmt.func!r} must use the __ namespace"
                )
            for a in stmt.args:
                self.expr(a, scope)
        else:
            raise KIRValidationError(f"unknown statement node {type(stmt).__name__}")


def validate_kernel(kernel: Kernel) -> Kernel:
    """Validate (and annotate) a kernel in place; returns the kernel."""
    v = _Validator(kernel)
    top = _Scope()
    seen = set()
    for p in kernel.params:
        if p.name in seen:
            raise KIRValidationError(f"duplicate parameter {p.name!r}")
        seen.add(p.name)
        top.names[p.name] = p.dtype
        p.site = v.next_site
        v.next_site += 1
    shared_seen = set()
    for s in kernel.shared:
        if s.name in shared_seen or s.name in seen:
            raise KIRValidationError(f"duplicate shared array {s.name!r}")
        if s.size <= 0:
            raise KIRValidationError(f"shared array {s.name!r} has size {s.size}")
        shared_seen.add(s.name)
    v.block(kernel.body, _Scope(top), -1)
    kernel.uses_sync = v.uses_sync
    kernel.n_sites = v.next_site
    kernel.validated = True
    return kernel
