"""KIR — the kernel intermediate representation.

KIR plays the role CUDA C++ source plays in the paper: the
representation the Hauberk translator instruments.  It is a small,
typed, CUDA-shaped AST with

* a programmatic builder (:mod:`repro.kir.builder`),
* a mini-CUDA text parser (:mod:`repro.kir.parser`),
* a source printer (:mod:`repro.kir.printer`),
* static analyses — def/use virtual variables, loop nests and trip
  counts, cumulative backward dataflow dependency (the Figure 9
  metric), and live-range register pressure (:mod:`repro.kir.analysis`),
* two interpreters — a fast closure-compiled path and a lockstep
  generator path for ``__syncthreads`` (:mod:`repro.kir.interp`).
"""

from repro.kir.types import DType
from repro.kir.astnodes import (
    Assign,
    AtomicAdd,
    BinOp,
    Break,
    Call,
    CallStmt,
    Const,
    Continue,
    Decl,
    For,
    If,
    Kernel,
    KernelParam,
    Load,
    Return,
    SharedDecl,
    SharedLoad,
    SharedStore,
    SpecialReg,
    Store,
    SyncThreads,
    UnOp,
    Var,
    While,
)
from repro.kir.parser import parse_kernel
from repro.kir.printer import kernel_to_source
from repro.kir.validate import validate_kernel

__all__ = [
    "DType",
    "Kernel",
    "KernelParam",
    "SharedDecl",
    "Const",
    "Var",
    "BinOp",
    "UnOp",
    "Call",
    "Load",
    "SharedLoad",
    "SpecialReg",
    "Decl",
    "Assign",
    "Store",
    "SharedStore",
    "AtomicAdd",
    "For",
    "While",
    "If",
    "Break",
    "Continue",
    "Return",
    "SyncThreads",
    "CallStmt",
    "parse_kernel",
    "kernel_to_source",
    "validate_kernel",
]
