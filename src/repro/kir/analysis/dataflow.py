"""Virtual-variable site table and read/write set computation.

A *virtual variable* (paper Section V.A) is "a subset of the live range
of program state where the subset has one definition and multiple
uses" — i.e. one defining statement.  Kernel parameters are also
virtual variables (checksummed at entry/exit without duplication).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import KIRValidationError
from repro.kir.astnodes import (
    Assign,
    BinOp,
    Call,
    Decl,
    Expr,
    For,
    If,
    Kernel,
    Load,
    SharedLoad,
    Stmt,
    Var,
    While,
    walk_exprs,
    walk_stmts,
    child_exprs,
)
from repro.kir.types import DType


@dataclass
class SiteInfo:
    """Metadata for one virtual-variable definition site."""

    site: int
    name: str
    dtype: DType
    kind: str  # "param" | "decl" | "assign"
    stmt: Optional[Stmt]
    in_loop: bool
    loop_id: int
    #: Names read by the defining expression (empty for params).
    reads: Set[str] = field(default_factory=set)
    #: Number of memory loads in the defining expression.
    n_loads: int = 0
    #: Number of operator nodes in the defining expression (the paper's
    #: "temporary variables" for compound definitions, Figure 9).
    n_ops: int = 0
    #: True for ``x = x + e`` style accumulation of an outer variable.
    self_accumulating: bool = False

    @property
    def sensitivity_class(self) -> str:
        return self.dtype.sensitivity_class


def names_read_expr(e: Expr) -> Set[str]:
    """All variable names read by an expression."""
    return {node.name for node in walk_exprs(e) if isinstance(node, Var)}


def count_loads(e: Expr) -> int:
    return sum(1 for node in walk_exprs(e) if isinstance(node, (Load, SharedLoad)))


def count_ops(e: Expr) -> int:
    from repro.kir.astnodes import UnOp

    return sum(1 for node in walk_exprs(e) if isinstance(node, (BinOp, UnOp, Call)))


def names_read_stmt(stmt: Stmt) -> Set[str]:
    """All variable names read (transitively) by a statement."""
    names: Set[str] = set()
    for e in child_exprs(stmt):
        names |= names_read_expr(e)
    if isinstance(stmt, For):
        if stmt.init is not None:
            names |= names_read_expr(stmt.init.init)
        if stmt.update is not None:
            names |= names_read_expr(stmt.update.value)
    for block in _blocks_of(stmt):
        for s in block:
            names |= names_read_stmt(s)
    return names


def names_written_stmt(stmt: Stmt) -> Set[str]:
    """All variable names written (transitively) by a statement."""
    names: Set[str] = set()
    if isinstance(stmt, Decl):
        names.add(stmt.name)
    elif isinstance(stmt, Assign):
        names.add(stmt.name)
    elif isinstance(stmt, For):
        if stmt.init is not None:
            names.add(stmt.init.name)
        if stmt.update is not None:
            names.add(stmt.update.name)
    for block in _blocks_of(stmt):
        for s in block:
            names |= names_written_stmt(s)
    return names


def _blocks_of(stmt: Stmt):
    if isinstance(stmt, For):
        return [stmt.body]
    if isinstance(stmt, While):
        return [stmt.body]
    if isinstance(stmt, If):
        return [stmt.then, stmt.els]
    return []


def is_self_accumulating(stmt: Stmt, outer_names: Set[str]) -> bool:
    """True for an accumulation of a variable declared outside the loop.

    The paper harvests these for free (loop-detector step i): an
    ``x = x + e`` / ``x = e + x`` / ``x = x - e`` assignment whose
    target is declared outside the loop already carries an
    accumulated value that survives the loop.
    """
    if not isinstance(stmt, Assign):
        return False
    if stmt.name not in outer_names:
        return False
    v = stmt.value
    if not isinstance(v, BinOp) or v.op not in ("+", "-"):
        return False
    if isinstance(v.left, Var) and v.left.name == stmt.name:
        return True
    if v.op == "+" and isinstance(v.right, Var) and v.right.name == stmt.name:
        return True
    return False


def collect_sites(kernel: Kernel) -> List[SiteInfo]:
    """Site table for a validated kernel, ordered by site id."""
    if not kernel.validated:
        raise KIRValidationError("kernel must be validated before analysis")
    sites: Dict[int, SiteInfo] = {}
    for p in kernel.params:
        sites[p.site] = SiteInfo(
            site=p.site,
            name=p.name,
            dtype=p.dtype,
            kind="param",
            stmt=None,
            in_loop=False,
            loop_id=-1,
        )
    # Track, per loop id, which names are declared outside it; needed for
    # self-accumulator detection.  Build the declared-before map lazily.
    decl_positions: Dict[str, int] = {p.name: -1 for p in kernel.params}
    order = list(walk_stmts(kernel.body))
    for pos, (stmt, _depth) in enumerate(order):
        if isinstance(stmt, Decl) and stmt.name not in decl_positions:
            decl_positions[stmt.name] = pos
    loop_spans = _loop_spans(order)
    for pos, (stmt, _depth) in enumerate(order):
        if not isinstance(stmt, (Decl, Assign)) or stmt.site < 0:
            continue
        if stmt.site in sites:
            continue
        if isinstance(stmt, Decl):
            dtype = stmt.var_dtype
            kind = "decl"
            rhs = stmt.init
        else:
            dtype = _lookup_dtype(kernel, stmt.name)
            kind = "assign"
            rhs = stmt.value
        outer_names = _names_declared_outside(stmt, decl_positions, loop_spans, pos)
        sites[stmt.site] = SiteInfo(
            site=stmt.site,
            name=stmt.name,
            dtype=dtype,
            kind=kind,
            stmt=stmt,
            in_loop=stmt.in_loop,
            loop_id=stmt.loop_id,
            reads=names_read_expr(rhs),
            n_loads=count_loads(rhs),
            n_ops=count_ops(rhs),
            self_accumulating=stmt.in_loop and is_self_accumulating(stmt, outer_names),
        )
    return [sites[i] for i in sorted(sites)]


def _lookup_dtype(kernel: Kernel, name: str) -> DType:
    """Resolve the declared type of an assigned name."""
    for p in kernel.params:
        if p.name == name:
            return p.dtype
    for stmt, _ in walk_stmts(kernel.body):
        if isinstance(stmt, Decl) and stmt.name == name:
            return stmt.var_dtype
    raise KIRValidationError(f"cannot resolve type of {name!r}")


def _loop_spans(order) -> Dict[int, range]:
    """Map loop id -> range of walk positions covered by the loop.

    ``walk_stmts`` yields a loop statement immediately followed by all
    of its descendants, so each loop's span is contiguous.
    """
    spans: Dict[int, range] = {}
    for pos, (stmt, _depth) in enumerate(order):
        if isinstance(stmt, (For, While)):
            n_descendants = len(list(walk_stmts([stmt])))
            spans[stmt.loop_id] = range(pos, pos + n_descendants)
    return spans


def _names_declared_outside(
    stmt: Stmt, decl_positions: Dict[str, int], loop_spans: Dict[int, range], pos: int
) -> Set[str]:
    """Names whose declaration lies outside the statement's innermost loop."""
    if stmt.loop_id < 0 or stmt.loop_id not in loop_spans:
        return set(decl_positions)
    span = loop_spans[stmt.loop_id]
    return {name for name, dpos in decl_positions.items() if dpos not in span}
