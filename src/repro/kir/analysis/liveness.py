"""Live-range estimation and register-pressure scoring.

Section V.A motivates the checksum design with register pressure: naive
duplication "can largely increase the register pressure (e.g. by two
times)" causing spill traffic, while Hauberk's duplicate "is alive only
for two statements".  The GPU cost model charges a spill penalty when
per-thread pressure exceeds the device's register budget, so these
estimates are what make Figure 13's MRI-Q / MRI-FHD behaviour emerge.

The estimate linearizes the kernel in ``walk_stmts`` order and gives
every scalar variable an interval [first definition, last use], with
the standard structured-loop extension: a value used anywhere inside a
loop is live across the whole loop span (it must survive the back
edge).  Pressure is the maximum interval overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import KIRValidationError
from repro.kir.astnodes import (
    Assign,
    Decl,
    Kernel,
    Stmt,
    walk_stmts,
)
from repro.kir.analysis.dataflow import _loop_spans


@dataclass
class LiveInterval:
    """Half-open live range of one variable over walk positions."""

    name: str
    start: int
    end: int

    @property
    def length(self) -> int:
        return self.end - self.start


def live_intervals(kernel: Kernel) -> List[LiveInterval]:
    """Live intervals for all scalar locals and parameters."""
    if not kernel.validated:
        raise KIRValidationError("kernel must be validated before analysis")
    order = list(walk_stmts(kernel.body))
    spans = _loop_spans(order)

    first_def: Dict[str, int] = {p.name: 0 for p in kernel.params}
    last_use: Dict[str, int] = {p.name: 0 for p in kernel.params}

    def note_use(name: str, pos: int) -> None:
        if name in first_def:
            last_use[name] = max(last_use.get(name, pos), pos)

    for pos, (stmt, _depth) in enumerate(order):
        # uses at this statement (shallow: compound stmts contribute
        # their own children when visited)
        for name in _shallow_reads(stmt):
            note_use(name, pos)
        if isinstance(stmt, Decl) and stmt.name not in first_def:
            first_def[stmt.name] = pos
            last_use.setdefault(stmt.name, pos)
        elif isinstance(stmt, Assign):
            first_def.setdefault(stmt.name, pos)
            last_use[stmt.name] = max(last_use.get(stmt.name, pos), pos)

    # Loop extension: any variable used inside a loop but defined before
    # it stays live through the loop's entire span.
    for span in spans.values():
        for name, fd in first_def.items():
            if fd < span.start:
                # used anywhere within the loop?
                if any(
                    name in _shallow_reads(order[p][0]) for p in span
                ):
                    last_use[name] = max(last_use[name], span.stop - 1)

    return [
        LiveInterval(name=n, start=first_def[n], end=last_use.get(n, first_def[n]))
        for n in first_def
    ]


def _shallow_reads(stmt: Stmt) -> frozenset:
    """Names read directly by a statement (not by nested blocks)."""
    from repro.kir.astnodes import child_exprs
    from repro.kir.analysis.dataflow import names_read_expr

    names = set()
    for e in child_exprs(stmt):
        names |= names_read_expr(e)
    return frozenset(names)


def register_pressure(kernel: Kernel) -> int:
    """Maximum number of simultaneously live scalar values.

    This approximates the per-thread register requirement the CUDA
    compiler would report; the GPU cost model compares it with the
    device's registers-per-thread budget to decide spill cost.
    """
    intervals = live_intervals(kernel)
    events: List[Tuple[int, int]] = []
    for iv in intervals:
        events.append((iv.start, 1))
        events.append((iv.end + 1, -1))
    events.sort()
    live = peak = 0
    for _pos, delta in events:
        live += delta
        peak = max(peak, live)
    return peak
