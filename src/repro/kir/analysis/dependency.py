"""Cumulative backward dataflow dependency — the Figure 9 metric.

For a loop, Hauberk selects the virtual variable whose computation
"directly or indirectly uses many other variables" so that errors in
those variables propagate into the protected one (Principle 2).  The
paper's count includes virtual variables defined inside the loop,
temporary variables of compound expressions, and memory-load data, but
excludes constants and variables already protected by non-loop error
detectors (i.e. defined outside the loop).

Our metric for a site ``s`` in loop ``L``::

    CBD(s) = sum over reachable in-loop sites r (r != s, backward
             transitive closure over in-loop def-use edges) of
             (1 + n_ops(r) + n_loads(r))  +  n_ops(s) + n_loads(s)

``n_ops`` counts operator nodes (the paper's T1..T9 temporaries) and
``n_loads`` memory loads.  The absolute value differs from hand-drawn
Figure 9 by a small constant, but the *ordering* — which drives target
selection — matches; the Figure 9 bench asserts the paper's choice
(energyx2 over energyx1 for the CP loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.errors import KIRValidationError
from repro.kir.astnodes import Kernel
from repro.kir.analysis.dataflow import SiteInfo, collect_sites
from repro.kir.analysis.loops import LoopInfo, find_loops


@dataclass
class DependencyGraph:
    """Def-use graph restricted to one loop's virtual variables."""

    loop_id: int
    #: In-loop sites by id.
    sites: Dict[int, SiteInfo]
    #: edges[s] = set of in-loop site ids whose values feed site s.
    edges: Dict[int, Set[int]]

    def backward_closure(self, site: int) -> Set[int]:
        """All in-loop sites reachable backwards from ``site`` (excl. self)."""
        seen: Set[int] = set()
        frontier = list(self.edges.get(site, ()))
        while frontier:
            s = frontier.pop()
            if s in seen or s == site:
                continue
            seen.add(s)
            frontier.extend(self.edges.get(s, ()))
        return seen

    def forward_dependents(self, site: int) -> Set[int]:
        """All in-loop sites whose values (transitively) use ``site``."""
        out: Set[int] = set()
        for s in self.sites:
            if s != site and site in self.backward_closure(s) | self.edges.get(s, set()):
                out.add(s)
        return out


def _descendant_loop_ids(loop: LoopInfo, loops: Dict[int, LoopInfo]) -> Set[int]:
    """The loop's own id plus all transitively nested loop ids."""
    out: Set[int] = {loop.loop_id}
    stack = list(loop.children)
    while stack:
        lid = stack.pop()
        out.add(lid)
        stack.extend(loops[lid].children)
    return out


def build_loop_dependency_graph(kernel: Kernel, loop: LoopInfo) -> DependencyGraph:
    """Def-use graph over the virtual variables defined inside ``loop``."""
    all_sites = collect_sites(kernel)
    inner_ids = _descendant_loop_ids(loop, find_loops(kernel))
    in_loop_ids = {s.site for s in all_sites if s.loop_id in inner_ids}
    sites = {s.site: s for s in all_sites if s.site in in_loop_ids}
    # Map each name to the in-loop sites defining it; a use of that name
    # inside the loop may see any of them (conservative reaching defs).
    defs_by_name: Dict[str, Set[int]] = {}
    for s in sites.values():
        defs_by_name.setdefault(s.name, set()).add(s.site)
    edges: Dict[int, Set[int]] = {}
    for s in sites.values():
        feeding: Set[int] = set()
        for name in s.reads:
            feeding |= defs_by_name.get(name, set())
        feeding.discard(s.site)
        edges[s.site] = feeding
    return DependencyGraph(loop_id=loop.loop_id, sites=sites, edges=edges)


def cumulative_backward_dependency(graph: DependencyGraph, site: int) -> int:
    """The Figure 9 score for one in-loop site (see module docstring)."""
    if site not in graph.sites:
        raise KIRValidationError(f"site {site} is not defined in loop {graph.loop_id}")
    score = graph.sites[site].n_ops + graph.sites[site].n_loads
    for r in graph.backward_closure(site):
        info = graph.sites[r]
        score += 1 + info.n_ops + info.n_loads
    return score


@dataclass
class LoopTargetSelection:
    """Result of the loop-detector target selection (Section V.B step i)."""

    loop_id: int
    #: Selected sites in selection order; self-accumulators first.
    selected: List[SiteInfo] = field(default_factory=list)
    #: Scores for the non-self-accumulating candidates considered.
    scores: Dict[int, int] = field(default_factory=dict)

    @property
    def selected_names(self) -> List[str]:
        return [s.name for s in self.selected]


def select_loop_targets(
    kernel: Kernel, loop: LoopInfo, maxvar: int = 1
) -> LoopTargetSelection:
    """Select up to ``maxvar`` virtual variables to protect in ``loop``.

    Follows the paper exactly:

    1. take self-accumulating virtual variables first (free protection;
       they count against ``maxvar``);
    2. drop variables with forward dataflow dependency to the selected
       ones (their errors already propagate into a protected value);
    3. among the remainder pick the largest cumulative backward
       dataflow dependency; repeat while ``maxvar`` allows, removing
       each pick and its forward dependents.
    """
    graph = build_loop_dependency_graph(kernel, loop)
    result = LoopTargetSelection(loop_id=loop.loop_id)
    remaining = set(graph.sites)

    def protectable(site_id: int) -> bool:
        # Only numeric scalars can be accumulated and range-checked.
        return graph.sites[site_id].dtype.is_numeric

    # Step 1: self-accumulators, largest cumulative backward dependency
    # first (Figure 9 picks energyx2, CBD 13, over energyx1, CBD 12).
    self_accs = [
        s for s in sorted(remaining)
        if graph.sites[s].self_accumulating and protectable(s)
    ]
    for s in self_accs:
        result.scores[s] = cumulative_backward_dependency(graph, s)
    self_accs.sort(key=lambda s: (-result.scores[s], s))
    for s in self_accs:
        if len(result.selected) >= maxvar:
            break
        if s not in remaining:
            continue  # dropped as a forward dependent of an earlier pick
        result.selected.append(graph.sites[s])
        remaining.discard(s)
        # drop the feeders of the pick: errors in them propagate into
        # the protected value ("forward dataflow dependency to the
        # selected", Section V.B step i)
        for d in graph.backward_closure(s):
            remaining.discard(d)

    # Steps 2-3: greedy largest-CBD selection.
    while len(result.selected) < maxvar and remaining:
        candidates = [s for s in remaining if protectable(s)]
        if not candidates:
            break
        for s in candidates:
            result.scores.setdefault(s, cumulative_backward_dependency(graph, s))
        best = max(candidates, key=lambda s: (result.scores[s], -s))
        if result.scores[best] == 0 and result.selected:
            # nothing left that covers other state; stop early
            break
        result.selected.append(graph.sites[best])
        remaining.discard(best)
        for d in graph.backward_closure(best):
            remaining.discard(d)
    return result


def select_all_loop_targets(kernel: Kernel, maxvar: int = 1) -> Dict[int, LoopTargetSelection]:
    """Target selection for every top-level loop of the kernel."""
    loops = find_loops(kernel)
    return {
        lid: select_loop_targets(kernel, info, maxvar)
        for lid, info in loops.items()
        if info.parent is None
    }
