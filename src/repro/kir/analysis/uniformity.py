"""Warp-uniformity (thread-dependence taint) analysis.

Section V.A argues the detector's inserted compare "is a point of
control-flow divergence, [but] because all threads in a same warp make
the same control-flow decision if there is no fault, this does not
introduce a large performance or scheduling overhead".  Reasoning about
that requires knowing which expressions are *warp-uniform* — dependent
only on kernel parameters and constants — versus *thread-varying* —
tainted (transitively) by ``threadIdx``/``blockIdx``.

The analysis is a forward taint fixpoint over variable names:

* ``threadIdx.*`` seeds the taint (``blockIdx`` is warp-uniform; pass
  ``seeds=GRID_SEEDS`` to reason about grid-wide variance instead);
* a definition is tainted if its RHS reads any tainted name or any
  memory indexed by a tainted expression (data loaded from
  thread-dependent addresses varies per thread);
* an assignment under a tainted branch condition is control-dependent
  tainted (implicit flows).

Classifying a branch: `branch_divergence(kernel)` labels every ``If``
as ``"uniform"`` or ``"divergent"``.  GPU compilers run exactly this
analysis to place reconvergence points and to hoist uniform work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple

from repro.errors import KIRValidationError
from repro.kir.astnodes import (
    Assign,
    Decl,
    Expr,
    For,
    If,
    Kernel,
    Load,
    SharedLoad,
    SpecialReg,
    Stmt,
    Var,
    While,
    walk_exprs,
)

#: Registers that vary between the threads of one warp (a warp lives
#: inside one block, so blockIdx is warp-uniform).
THREAD_SEEDS = ("threadIdx.x", "threadIdx.y")

#: Registers that vary across the whole grid (per-thread *or* per-block
#: state; use for reasoning about grid-wide value variance).
GRID_SEEDS = THREAD_SEEDS + ("blockIdx.x", "blockIdx.y")


def _expr_tainted(e: Expr, tainted: Set[str], seeds: Tuple[str, ...]) -> bool:
    for node in walk_exprs(e):
        if isinstance(node, SpecialReg) and node.name in seeds:
            return True
        if isinstance(node, Var) and node.name in tainted:
            return True
        if isinstance(node, (Load, SharedLoad)):
            # data reached through a thread-dependent address varies;
            # the index subtree is already covered by this walk, but a
            # load through a *tainted pointer* needs the base check too
            continue
    return False


def expr_varies(
    expr: Expr, varying: Set[str], seeds: Tuple[str, ...] = THREAD_SEEDS
) -> bool:
    """Whether ``expr`` may evaluate differently across ``seeds`` lanes.

    ``varying`` is a taint set from :func:`thread_varying_names`
    computed with the same ``seeds``.  This is the per-expression query
    the vectorizing engine uses to decide which branches keep scalar
    control flow and which need predication masks.
    """
    return _expr_tainted(expr, varying, seeds)


def grid_varying_names(kernel: Kernel) -> Set[str]:
    """Names that may differ between *any* two threads of the grid.

    Convenience wrapper over :func:`thread_varying_names` with
    ``GRID_SEEDS`` — the taint the whole-grid vectorizer needs, where
    lanes span blocks and ``blockIdx`` varies too.
    """
    return thread_varying_names(kernel, GRID_SEEDS)


def thread_varying_names(
    kernel: Kernel, seeds: Tuple[str, ...] = THREAD_SEEDS
) -> Set[str]:
    """Names of variables whose values may differ between threads."""
    if not kernel.validated:
        raise KIRValidationError("validate the kernel before analysis")
    tainted: Set[str] = set()
    changed = True
    while changed:
        changed = False

        def visit(body: List[Stmt], ctrl_tainted: bool) -> None:
            nonlocal changed
            for stmt in body:
                if isinstance(stmt, (Decl, Assign)):
                    name = stmt.name
                    rhs = stmt.init if isinstance(stmt, Decl) else stmt.value
                    if name not in tainted and (
                        ctrl_tainted or _expr_tainted(rhs, tainted, seeds)
                    ):
                        tainted.add(name)
                        changed = True
                elif isinstance(stmt, For):
                    inner_ctrl = ctrl_tainted or _expr_tainted(
                        stmt.cond, tainted, seeds
                    )
                    if stmt.init is not None:
                        visit([stmt.init], ctrl_tainted)
                    if stmt.update is not None:
                        visit([stmt.update], inner_ctrl)
                    visit(stmt.body, inner_ctrl)
                elif isinstance(stmt, While):
                    inner_ctrl = ctrl_tainted or _expr_tainted(
                        stmt.cond, tainted, seeds
                    )
                    visit(stmt.body, inner_ctrl)
                elif isinstance(stmt, If):
                    inner_ctrl = ctrl_tainted or _expr_tainted(
                        stmt.cond, tainted, seeds
                    )
                    visit(stmt.then, inner_ctrl)
                    visit(stmt.els, inner_ctrl)

        visit(kernel.body, False)
    return tainted


def is_warp_uniform(
    kernel: Kernel, expr: Expr, seeds: Tuple[str, ...] = THREAD_SEEDS
) -> bool:
    """True when every thread of a warp evaluates ``expr`` identically."""
    return not _expr_tainted(expr, thread_varying_names(kernel, seeds), seeds)


@dataclass
class DivergenceReport:
    """Per-branch divergence classification of a kernel."""

    #: (source rendering of the condition, "uniform" | "divergent")
    branches: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def divergent_count(self) -> int:
        return sum(1 for _c, kind in self.branches if kind == "divergent")

    @property
    def uniform_count(self) -> int:
        return len(self.branches) - self.divergent_count


def branch_divergence(kernel: Kernel) -> DivergenceReport:
    """Classify every If/loop condition as warp-uniform or divergent."""
    from repro.kir.printer import expr_to_source

    tainted = thread_varying_names(kernel)
    report = DivergenceReport()

    def visit(body: List[Stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, If):
                kind = (
                    "divergent"
                    if _expr_tainted(stmt.cond, tainted, THREAD_SEEDS)
                    else "uniform"
                )
                report.branches.append((expr_to_source(stmt.cond), kind))
                visit(stmt.then)
                visit(stmt.els)
            elif isinstance(stmt, For):
                kind = (
                    "divergent"
                    if _expr_tainted(stmt.cond, tainted, THREAD_SEEDS)
                    else "uniform"
                )
                report.branches.append((expr_to_source(stmt.cond), kind))
                visit(stmt.body)
            elif isinstance(stmt, While):
                kind = (
                    "divergent"
                    if _expr_tainted(stmt.cond, tainted, THREAD_SEEDS)
                    else "uniform"
                )
                report.branches.append((expr_to_source(stmt.cond), kind))
                visit(stmt.body)

    visit(kernel.body)
    return report
