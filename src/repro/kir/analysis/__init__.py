"""Static analyses over KIR kernels.

These are the analyses the paper's translator needs:

* :mod:`repro.kir.analysis.dataflow` — virtual-variable site table,
  read/write sets, self-accumulator detection (Section V).
* :mod:`repro.kir.analysis.loops` — loop nest and static trip-count
  derivation for the ``HauberkCheckEqual`` invariant (Section V.B).
* :mod:`repro.kir.analysis.dependency` — cumulative backward dataflow
  dependency, the loop-detector target-selection metric (Figure 9).
* :mod:`repro.kir.analysis.liveness` — live-range overlap as a
  register-pressure estimate (drives spill cost in the GPU model,
  Section V.A's motivation for checksum duplication).
"""

from repro.kir.analysis.dataflow import (
    SiteInfo,
    collect_sites,
    names_read_expr,
    names_read_stmt,
    names_written_stmt,
    is_self_accumulating,
)
from repro.kir.analysis.loops import LoopInfo, find_loops, derive_trip_count
from repro.kir.analysis.dependency import (
    DependencyGraph,
    build_loop_dependency_graph,
    cumulative_backward_dependency,
    select_loop_targets,
    LoopTargetSelection,
)
from repro.kir.analysis.liveness import live_intervals, register_pressure

__all__ = [
    "SiteInfo",
    "collect_sites",
    "names_read_expr",
    "names_read_stmt",
    "names_written_stmt",
    "is_self_accumulating",
    "LoopInfo",
    "find_loops",
    "derive_trip_count",
    "DependencyGraph",
    "build_loop_dependency_graph",
    "cumulative_backward_dependency",
    "select_loop_targets",
    "LoopTargetSelection",
    "live_intervals",
    "register_pressure",
]

from repro.kir.analysis.uniformity import (  # noqa: E402
    DivergenceReport,
    GRID_SEEDS,
    THREAD_SEEDS,
    branch_divergence,
    is_warp_uniform,
    thread_varying_names,
)

__all__ += [
    "DivergenceReport",
    "GRID_SEEDS",
    "THREAD_SEEDS",
    "branch_divergence",
    "is_warp_uniform",
    "thread_varying_names",
]

from repro.kir.analysis.sections import (  # noqa: E402
    Section,
    affected_sections,
    kernel_sections,
    section_dependencies,
    section_fingerprints,
    site_section_map,
)

__all__ += [
    "Section",
    "affected_sections",
    "kernel_sections",
    "section_dependencies",
    "section_fingerprints",
    "site_section_map",
]
