"""Dataflow sections: the equivalence-class partition behind campaign plans.

The Two-Level Model (Hari et al., PAPERS.md) gets its injection savings
from grouping sites whose faults behave alike; FastFlip (Joshi et al.)
gets its incremental savings from attributing fault behaviour to
*program sections* whose rates compose.  This pass supplies the section
structure both need for our mini-CUDA kernels:

* :func:`kernel_sections` partitions a kernel's top-level body at the
  natural dataflow boundaries — ``__syncthreads()`` barriers and
  top-level loops — into ordered :class:`Section` regions.  Parameters
  form a dedicated leading section (they are defined before any
  statement runs).  Nested control flow stays inside its enclosing
  section: only *top-level* loop headers start a new region, because a
  loop is the unit the detectors instrument and the unit Figure 4
  attributes cycles to.
* Each section carries its read/write name sets (including global
  buffer and shared-array accesses, which ``names_written_stmt`` alone
  does not see) so :func:`section_dependencies` can build the
  section-level def-use graph.
* :func:`section_fingerprints` digests each section's printed source —
  plus any detector configuration attributed to it — so the campaign
  journal can tell *which* sections changed between two runs of "the
  same" workload, and :func:`affected_sections` closes a changed set
  over the dependency graph (ancestors feed the changed code, so faults
  injected upstream now propagate into different statements;
  descendants consume its values, so their observed outcomes may
  differ).  Sections outside that closure are safe to replay from an
  old journal.

The partition is deliberately coarse.  Correct-but-coarse beats
fine-but-wrong here: merging two sections can only make the staleness
closure larger (more re-execution, never a wrong replay).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import KIRValidationError
from repro.kir.astnodes import (
    AtomicAdd,
    For,
    Kernel,
    SharedLoad,
    SharedStore,
    Stmt,
    Store,
    SyncThreads,
    While,
    child_exprs,
    walk_exprs,
    walk_stmts,
)
from repro.kir.analysis.dataflow import (
    names_read_expr,
    names_read_stmt,
    names_written_stmt,
)
from repro.kir.printer import _stmt_lines


def _digest(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


@dataclass
class Section:
    """One contiguous dataflow region of a kernel's top-level body."""

    index: int
    #: Stable name ("s0", "s1", ...) used in journal records and strata.
    name: str
    #: ``"params"`` | ``"straight"`` | ``"loop"``.
    kind: str
    statements: List[Stmt] = field(default_factory=list)
    #: Virtual-variable sites defined inside (nested statements included).
    site_ids: List[int] = field(default_factory=list)
    #: Names (variables, buffers, shared arrays) the section reads.
    reads: Set[str] = field(default_factory=set)
    #: Names the section writes — including Store/AtomicAdd buffer bases.
    writes: Set[str] = field(default_factory=set)
    #: Digest of the section's printed source.
    fingerprint: str = ""


def _buffer_reads(stmt: Stmt) -> Set[str]:
    """Shared arrays read anywhere inside ``stmt``.

    Global buffer reads already appear in ``names_read_stmt`` (the
    pointer base is a ``Var`` inside the ``Load``); shared arrays are
    referenced by bare name and need explicit collection.
    """
    names: Set[str] = set()
    for s, _depth in walk_stmts([stmt]):
        for e in child_exprs(s):
            for node in walk_exprs(e):
                if isinstance(node, SharedLoad):
                    names.add(node.array)
    return names


def _buffer_writes(stmt: Stmt) -> Set[str]:
    """Buffer/array names written anywhere inside ``stmt``."""
    names: Set[str] = set()
    for s, _depth in walk_stmts([stmt]):
        if isinstance(s, Store):
            names |= names_read_expr(s.ptr)
        elif isinstance(s, SharedStore):
            names.add(s.array)
        elif isinstance(s, AtomicAdd):
            if s.space == "shared":
                names.add(s.array)
            elif s.target is not None:
                names |= names_read_expr(s.target)
    return names


def _section_sites(statements: Sequence[Stmt]) -> List[int]:
    sites = []
    for top in statements:
        for stmt, _depth in walk_stmts([top]):
            if stmt.site >= 0:
                sites.append(stmt.site)
    return sorted(set(sites))


def _close_group(sections: List[Section], group: List[Stmt], kind: str) -> None:
    if not group:
        return
    reads: Set[str] = set()
    writes: Set[str] = set()
    for stmt in group:
        reads |= names_read_stmt(stmt) | _buffer_reads(stmt)
        writes |= names_written_stmt(stmt) | _buffer_writes(stmt)
    lines: List[str] = []
    for stmt in group:
        lines.extend(_stmt_lines(stmt, 0))
    sections.append(Section(
        index=len(sections),
        name=f"s{len(sections)}",
        kind=kind,
        statements=list(group),
        site_ids=_section_sites(group),
        reads=reads,
        writes=writes,
        fingerprint=_digest([kind, lines]),
    ))
    group.clear()


def kernel_sections(kernel: Kernel) -> List[Section]:
    """Ordered section partition of a validated kernel.

    Section 0 is always the parameter section; body statements follow,
    split at top-level loops (one section per loop, nested content
    included) and after ``__syncthreads()`` barriers (the barrier
    terminates the section it ends, mirroring its role as a dataflow
    join point).
    """
    if not kernel.validated:
        raise KIRValidationError("kernel must be validated before analysis")
    sections: List[Section] = [Section(
        index=0,
        name="s0",
        kind="params",
        site_ids=sorted(p.site for p in kernel.params),
        writes={p.name for p in kernel.params}
        | {s.name for s in kernel.shared},
        fingerprint=_digest([
            "params",
            [[p.name, p.dtype.value] for p in kernel.params],
            [[s.name, s.dtype.value, s.size] for s in kernel.shared],
        ]),
    )]
    group: List[Stmt] = []
    for stmt in kernel.body:
        if isinstance(stmt, (For, While)):
            _close_group(sections, group, "straight")
            _close_group(sections, [stmt], "loop")
        elif isinstance(stmt, SyncThreads):
            group.append(stmt)
            _close_group(sections, group, "straight")
        else:
            group.append(stmt)
    _close_group(sections, group, "straight")
    return sections


def site_section_map(
    kernel: Kernel, sections: Optional[List[Section]] = None
) -> Dict[int, str]:
    """Map every virtual-variable site id to its section name."""
    if sections is None:
        sections = kernel_sections(kernel)
    mapping: Dict[int, str] = {}
    for sec in sections:
        for site in sec.site_ids:
            mapping[site] = sec.name
    return mapping


def section_dependencies(sections: List[Section]) -> Dict[str, Set[str]]:
    """Section-level def-use edges: name -> upstream sections it depends on.

    A later section depends on an earlier one when it reads a name the
    earlier one writes (flow dependence) or when both write the same
    buffer (output dependence — the later store's observed effect rides
    on what the earlier one left behind).  Sections only ever depend on
    *earlier* sections; the top-level body has no backward control flow.
    """
    deps: Dict[str, Set[str]] = {sec.name: set() for sec in sections}
    for j, later in enumerate(sections):
        for earlier in sections[:j]:
            if (earlier.writes & later.reads) or (earlier.writes & later.writes):
                deps[later.name].add(earlier.name)
    return deps


def affected_sections(
    sections: List[Section], changed: Iterable[str]
) -> Set[str]:
    """Directed closure of ``changed`` over the dependency graph.

    Returns changed sections plus every transitive *ancestor* (a fault
    injected there propagates through the changed code, so its recorded
    outcome may differ) and every transitive *descendant* (it consumes
    the changed code's values).  The two walks stay directed and never
    mix: a sibling reachable only *through* a common ancestor — e.g.
    two independent chains both fed by the parameter section — neither
    feeds nor consumes the changed code, so its trials' corruption
    paths are untouched and its journal records replay soundly.
    """
    deps = section_dependencies(sections)
    children: Dict[str, Set[str]] = {name: set() for name in deps}
    for name, parents in deps.items():
        for parent in parents:
            children[parent].add(name)

    affected: Set[str] = set(changed)
    for edges in (deps, children):
        frontier = [name for name in changed if name in edges]
        seen = set(frontier)
        while frontier:
            name = frontier.pop()
            for neighbour in edges[name]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    affected.add(neighbour)
                    frontier.append(neighbour)
    return affected


def _config_token(det: str, cfg) -> list:
    """JSON-stable fingerprint of one detector configuration."""
    return [
        det, cfg.variable, cfg.loop_id, bool(cfg.self_accumulating),
        bool(cfg.has_trip_check), cfg.ranges.alpha,
        [[r.lo, r.hi] for r in cfg.ranges.ranges],
    ]


def section_fingerprints(kernel: Kernel, cb=None) -> Dict[str, str]:
    """Per-section content fingerprints, detector configuration included.

    The journal's incremental-resume check: two runs may replay each
    other's records for a section only when its fingerprint matches
    (and no changed section sits in its dependency closure — see
    :func:`affected_sections`).  Detector configs are attributed to the
    section defining their watched variable (falling back to the
    section owning their loop); an unattributable config conservatively
    taints every section.
    """
    sections = kernel_sections(kernel)
    section_of_var: Dict[str, str] = {}
    for sec in sections:
        for top in sec.statements:
            for stmt, _depth in walk_stmts([top]):
                target = getattr(stmt, "name", None)
                if stmt.site >= 0 and target and target not in section_of_var:
                    section_of_var[target] = sec.name
    section_of_loop: Dict[int, str] = {}
    for sec in sections:
        for top in sec.statements:
            for stmt, _depth in walk_stmts([top]):
                if isinstance(stmt, (For, While)) and \
                        stmt.loop_id not in section_of_loop:
                    section_of_loop[stmt.loop_id] = sec.name

    tokens: Dict[str, List[list]] = {sec.name: [] for sec in sections}
    detectors = getattr(cb, "detectors", None) or {}
    for det, cfg in sorted(detectors.items()):
        token = _config_token(det, cfg)
        target = section_of_var.get(cfg.variable)
        if target is None:
            target = section_of_loop.get(cfg.loop_id)
        if target is None:
            for name in tokens:
                tokens[name].append(token)
        else:
            tokens[target].append(token)

    return {
        sec.name: _digest([sec.fingerprint, sorted(map(json.dumps, tokens[sec.name]))])
        for sec in sections
    }
