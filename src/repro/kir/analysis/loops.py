"""Loop-nest discovery and static trip-count derivation.

The loop detector checks the accumulation counter against a derived
iteration-count invariant (Section V.B step iii/iv): "often, we can
calculate the loop iteration count (e.g. loop iteration count is MAX
for ``for(int i=0; i<MAX; i++)``)".  ``derive_trip_count`` recognizes
the affine-for pattern and returns an expression for the count that is
evaluated *before* the loop, or ``None`` when the count cannot be
derived (e.g. the bound is written inside the body, or data-dependent
``break``/``while`` control).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kir.astnodes import (
    Assign,
    BinOp,
    Break,
    Call,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Return,
    Stmt,
    Var,
    While,
)
from repro.kir.analysis.dataflow import names_read_expr, names_written_stmt


@dataclass
class LoopInfo:
    """One loop in a kernel's loop forest."""

    loop_id: int
    stmt: Stmt  # the For/While node
    depth: int  # 0 = top-level loop
    parent: Optional[int]
    is_for: bool
    iter_var: Optional[str]
    #: Expression computing the trip count before loop entry, if derivable.
    trip_count: Optional[Expr]
    children: List[int] = field(default_factory=list)

    @property
    def body(self) -> List[Stmt]:
        return self.stmt.body


def _contains_early_exit(body: List[Stmt]) -> bool:
    """True if the loop body can leave the loop before the condition fails."""
    for stmt in body:
        if isinstance(stmt, (Break, Return)):
            return True
        if isinstance(stmt, If):
            if _contains_early_exit(stmt.then) or _contains_early_exit(stmt.els):
                return True
        # nested loops capture their own breaks; do not recurse into them
    return False


def _affine_step(update: Assign, it: str) -> Optional[int]:
    """Signed constant step of ``i = i + c`` / ``i = i - c``, else None."""
    v = update.value
    if update.name != it or not isinstance(v, BinOp) or v.op not in ("+", "-"):
        return None
    if isinstance(v.left, Var) and v.left.name == it and isinstance(v.right, Const):
        step = v.right.value
        if v.op == "-":
            step = -step
        return step if isinstance(step, int) else None
    if (
        v.op == "+"
        and isinstance(v.right, Var)
        and v.right.name == it
        and isinstance(v.left, Const)
        and isinstance(v.left.value, int)
    ):
        return v.left.value
    return None


def _iterator_bounds(cond: Expr, it: str) -> Optional[Tuple[str, Expr]]:
    """Normalize a loop condition to (comparison-op, bound) on the iterator.

    Handles ``i < B`` / ``i <= B`` / ``i > B`` / ``i >= B`` and the
    conjunction form the paper calls out — ``i < A && i < B`` derives
    ``min(A, B)`` (Section V.B: "for a loop for(int x=0,y=0; x<A &&
    y<B; ...) the loop iteration count is the minimum of A and B").
    """
    if isinstance(cond, BinOp) and cond.op == "&&":
        left = _iterator_bounds(cond.left, it)
        right = _iterator_bounds(cond.right, it)
        if left is None or right is None or left[0] != right[0]:
            return None
        op = left[0]
        pick = "min" if op in ("<", "<=") else "max"
        return op, Call(pick, [left[1], right[1]])
    if not isinstance(cond, BinOp) or cond.op not in ("<", "<=", ">", ">="):
        return None
    if isinstance(cond.left, Var) and cond.left.name == it:
        return cond.op, cond.right
    # flipped spelling: B > i  <=>  i < B
    if isinstance(cond.right, Var) and cond.right.name == it:
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return flip[cond.op], cond.left
    return None


def derive_trip_count(loop: For) -> Optional[Expr]:
    """Trip-count expression for an affine for loop, else ``None``.

    Recognized shapes (Section V.B step iii):

    * ``for (int i = start; i < bound; i += step)`` with constant
      positive step (also ``<=``, and ``bound > i`` spellings);
    * decreasing loops ``for (int i = start; i > bound; i -= step)``
      (also ``>=``);
    * conjunction bounds ``i < A && i < B`` -> ``min(A, B)``;

    provided neither the iterator nor any variable in ``start``/the
    bound is written in the body, and the body cannot exit early.
    The returned expression uses C integer arithmetic, clamped at zero.
    """
    if loop.init is None or loop.update is None or loop.cond is None:
        return None
    it = loop.init.name
    normalized = _iterator_bounds(loop.cond, it)
    if normalized is None:
        return None
    op, bound = normalized
    step = _affine_step(loop.update, it)
    if step is None or step == 0:
        return None
    increasing = step > 0
    if increasing and op not in ("<", "<="):
        return None
    if not increasing and op not in (">", ">="):
        return None
    written = names_written_stmt(loop) - {it}
    invariants = names_read_expr(bound) | names_read_expr(loop.init.init)
    if invariants & written:
        return None
    if _contains_early_exit(loop.body):
        return None
    start = loop.init.init
    if increasing:
        span: Expr = BinOp("-", bound, start)
    else:
        span = BinOp("-", start, bound)
        step = -step
    if op in ("<=", ">="):
        span = BinOp("+", span, Const(1))
    if step != 1:
        span = BinOp("/", BinOp("+", span, Const(step - 1)), Const(step))
    return Call("max", [span, Const(0)])


def find_loops(kernel: Kernel) -> Dict[int, LoopInfo]:
    """All loops in a validated kernel, keyed by loop id."""
    loops: Dict[int, LoopInfo] = {}

    def visit(body: List[Stmt], depth: int, parent: Optional[int]) -> None:
        for stmt in body:
            if isinstance(stmt, For):
                info = LoopInfo(
                    loop_id=stmt.loop_id,
                    stmt=stmt,
                    depth=depth,
                    parent=parent,
                    is_for=True,
                    iter_var=stmt.init.name if stmt.init is not None else None,
                    trip_count=derive_trip_count(stmt),
                )
                loops[stmt.loop_id] = info
                if parent is not None:
                    loops[parent].children.append(stmt.loop_id)
                visit(stmt.body, depth + 1, stmt.loop_id)
            elif isinstance(stmt, While):
                info = LoopInfo(
                    loop_id=stmt.loop_id,
                    stmt=stmt,
                    depth=depth,
                    parent=parent,
                    is_for=False,
                    iter_var=None,
                    trip_count=None,
                )
                loops[stmt.loop_id] = info
                if parent is not None:
                    loops[parent].children.append(stmt.loop_id)
                visit(stmt.body, depth + 1, stmt.loop_id)
            elif isinstance(stmt, If):
                visit(stmt.then, depth, parent)
                visit(stmt.els, depth, parent)
    visit(kernel.body, 0, None)
    return loops


def top_level_loops(kernel: Kernel) -> List[LoopInfo]:
    """Loops not nested in another loop, in program order."""
    loops = find_loops(kernel)
    return [info for info in loops.values() if info.parent is None]
