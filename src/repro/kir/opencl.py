"""OpenCL C front-end for KIR.

The paper notes that because Hauberk mutates *source*, "the framework
can be easily ported to other parallel programming languages (e.g.,
OpenCL)" (Sections IV.B and VII).  This module makes that concrete: an
OpenCL C kernel is translated into the mini-CUDA dialect and parsed
into the same IR, after which every Hauberk pass (translator, SWIFI,
baselines) applies unchanged.

Supported OpenCL constructs:

====================================  ================================
OpenCL                                lowering
====================================  ================================
``__kernel void f(...)``              ``kernel f(...)``
``__global float* p``                 ``float* p``
``__local float t[64];``              ``shared float t[64];`` (hoisted)
``barrier(CLK_LOCAL_MEM_FENCE)``      ``__syncthreads()``
``get_global_id(0|1)``                ``blockIdx*blockDim + threadIdx``
``get_local_id / get_group_id``       ``threadIdx / blockIdx``
``get_local_size / get_num_groups``   ``blockDim / gridDim``
``get_global_size(d)``                ``gridDim*blockDim``
``size_t`` / ``uint``                 ``int``
``sqrtf`` & friends / ``native_*``    the unsuffixed intrinsics
====================================  ================================

The translation is textual (like a preprocessor pass); the result goes
through the full mini-CUDA parser and validator, so anything the
rewrite misses fails loudly rather than silently.
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import KIRParseError
from repro.kir.astnodes import Kernel
from repro.kir.parser import parse_kernel

_DIM = {"0": "x", "1": "y"}

_SIMPLE_SUBS: Tuple[Tuple[str, str], ...] = (
    (r"\b__kernel\s+void\s+", "kernel "),
    (r"\b__global\s+", ""),
    (r"\b__constant\s+", ""),
    (r"\b__private\s+", ""),
    (r"\bconst\s+", ""),
    (r"\bbarrier\s*\(\s*[A-Za-z_|\s]*\)", "__syncthreads()"),
    (r"\bsize_t\b", "int"),
    (r"\buint\b", "int"),
    (r"\bunsigned\s+int\b", "int"),
    (r"\bnative_(sqrt|sin|cos|exp|log)\b", r"\1"),
    (r"\b(sqrt|sin|cos|exp|log|fabs|floor|pow|fmin|fmax|acos)f\b", r"\1"),
)


def _workitem_subs(text: str) -> str:
    def global_id(m):
        d = _DIM.get(m.group(1))
        if d is None:
            raise KIRParseError(f"unsupported get_global_id dimension {m.group(1)}")
        return f"(blockIdx.{d} * blockDim.{d} + threadIdx.{d})"

    def global_size(m):
        d = _DIM.get(m.group(1))
        if d is None:
            raise KIRParseError(f"unsupported get_global_size dimension {m.group(1)}")
        return f"(gridDim.{d} * blockDim.{d})"

    def plain(reg_name):
        def sub(m):
            d = _DIM.get(m.group(1))
            if d is None:
                raise KIRParseError(f"unsupported work-item dimension {m.group(1)}")
            return f"{reg_name}.{d}"

        return sub

    text = re.sub(r"\bget_global_id\s*\(\s*(\d)\s*\)", global_id, text)
    text = re.sub(r"\bget_global_size\s*\(\s*(\d)\s*\)", global_size, text)
    text = re.sub(r"\bget_local_id\s*\(\s*(\d)\s*\)", plain("threadIdx"), text)
    text = re.sub(r"\bget_group_id\s*\(\s*(\d)\s*\)", plain("blockIdx"), text)
    text = re.sub(r"\bget_local_size\s*\(\s*(\d)\s*\)", plain("blockDim"), text)
    text = re.sub(r"\bget_num_groups\s*\(\s*(\d)\s*\)", plain("gridDim"), text)
    return text


_LOCAL_DECL = re.compile(
    r"\b__local\s+(int|float)\s+([A-Za-z_]\w*)\s*\[\s*(\d+)\s*\]\s*;"
)


def _hoist_local_decls(text: str) -> str:
    """Move ``__local`` array declarations to the shared-decl slot.

    The mini-CUDA grammar requires ``shared`` declarations at the top
    of the kernel body; OpenCL allows ``__local`` anywhere.
    """
    decls: List[str] = []

    def grab(m):
        decls.append(f"    shared {m.group(1)} {m.group(2)}[{m.group(3)}];")
        return ""

    text = _LOCAL_DECL.sub(grab, text)
    if not decls:
        return text
    brace = text.find("{")
    if brace < 0:
        raise KIRParseError("OpenCL kernel has no body")
    return text[: brace + 1] + "\n" + "\n".join(decls) + text[brace + 1 :]


def opencl_to_minicuda(source: str) -> str:
    """Translate OpenCL C kernel source into the mini-CUDA dialect."""
    text = source
    for pattern, replacement in _SIMPLE_SUBS:
        text = re.sub(pattern, replacement, text)
    text = _workitem_subs(text)
    text = _hoist_local_decls(text)
    if "__local" in text:
        raise KIRParseError("unsupported __local usage (only 1-D array decls)")
    return text


def parse_opencl_kernel(source: str, validate: bool = True) -> Kernel:
    """Parse an OpenCL C kernel into a (validated) KIR :class:`Kernel`."""
    return parse_kernel(opencl_to_minicuda(source), validate=validate)
