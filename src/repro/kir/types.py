"""Static types of the kernel IR.

The paper classifies GPU program state into three data types — pointer,
integer, and FP (Figure 1) — and reports per-type error sensitivity.
KIR carries exactly those three classes (plus a string type used only
by instrumentation-library call arguments).
"""

from __future__ import annotations

import enum

from repro.errors import KIRTypeError


class DType(enum.Enum):
    """Scalar type of a KIR value (all 32-bit, as in the paper's GPUs)."""

    INT32 = "int"
    FLOAT32 = "float"
    #: Pointer into the flat device word address space.
    PTR_INT32 = "int*"
    PTR_FLOAT32 = "float*"
    #: Used only for literal arguments of instrumentation-library calls.
    STR = "str"

    # ------------------------------------------------------------------
    @property
    def is_pointer(self) -> bool:
        return self in (DType.PTR_INT32, DType.PTR_FLOAT32)

    @property
    def is_float(self) -> bool:
        return self is DType.FLOAT32

    @property
    def is_int(self) -> bool:
        return self is DType.INT32

    @property
    def is_numeric(self) -> bool:
        return self in (DType.INT32, DType.FLOAT32)

    @property
    def element(self) -> "DType":
        """Element type of a pointer type."""
        if self is DType.PTR_INT32:
            return DType.INT32
        if self is DType.PTR_FLOAT32:
            return DType.FLOAT32
        raise KIRTypeError(f"{self} is not a pointer type")

    @property
    def sensitivity_class(self) -> str:
        """The Figure 1 data-type class: 'pointer', 'integer', or 'fp'."""
        if self.is_pointer:
            return "pointer"
        if self is DType.INT32:
            return "integer"
        if self is DType.FLOAT32:
            return "fp"
        raise KIRTypeError(f"{self} has no sensitivity class")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def parse_dtype(text: str) -> DType:
    """Parse a C-like type spelling into a :class:`DType`."""
    mapping = {
        "int": DType.INT32,
        "float": DType.FLOAT32,
        "int*": DType.PTR_INT32,
        "float*": DType.PTR_FLOAT32,
    }
    try:
        return mapping[text.replace(" ", "")]
    except KeyError:
        raise KIRTypeError(f"unknown type spelling {text!r}") from None


def promote(a: DType, b: DType) -> DType:
    """Usual arithmetic conversion for a binary operation.

    Pointer arithmetic (``ptr + int``) yields the pointer type; mixed
    int/float yields float, matching C semantics.
    """
    if a is DType.STR or b is DType.STR:
        raise KIRTypeError("string values are not arithmetic")
    if a.is_pointer and b is DType.INT32:
        return a
    if b.is_pointer and a is DType.INT32:
        return b
    if a.is_pointer or b.is_pointer:
        raise KIRTypeError(f"invalid pointer arithmetic between {a} and {b}")
    if DType.FLOAT32 in (a, b):
        return DType.FLOAT32
    return DType.INT32
