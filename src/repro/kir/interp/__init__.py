"""KIR interpreters.

Two execution paths over the same semantics:

* :mod:`repro.kir.interp.compiler` — AST compiled to Python closures;
  the fast path used for every kernel without ``__syncthreads``.
* :mod:`repro.kir.interp.lockstep` — generator-based lockstep execution
  of all threads in a block, required for barrier semantics.

Shared runtime pieces (C-semantics arithmetic, intrinsics, the
instrumentation-library protocol, execution context) live in
:mod:`repro.kir.interp.evalcore`.
"""

from repro.kir.interp.evalcore import (
    ExecContext,
    InstrumentationLibrary,
    BreakSignal,
    ContinueSignal,
    ReturnSignal,
)
from repro.kir.interp.compiler import CompiledKernel, compile_kernel
from repro.kir.interp.lockstep import LockstepProgram

__all__ = [
    "ExecContext",
    "InstrumentationLibrary",
    "BreakSignal",
    "ContinueSignal",
    "ReturnSignal",
    "CompiledKernel",
    "compile_kernel",
    "LockstepProgram",
]
