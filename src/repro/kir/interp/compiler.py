"""AST -> Python-closure compilation (the fast interpreter path).

Each expression compiles to a function ``f(frame, ctx) -> value`` and
each statement to a procedure ``s(frame, ctx)``; closures are
specialized on static types, so an int add compiles to a wrapping add
and a float divide to IEEE ``fdiv`` with no per-call dispatch.  Every
statement inlines the watchdog bump and cycle accounting; loop-body and
loop-condition cycles are attributed separately so the Figure 4 loop
fraction and the Figure 13 overheads fall out of execution directly.
"""

from __future__ import annotations

from typing import Callable, List

from repro.errors import KernelCrash, KernelHang, KIRError, KIRValidationError
from repro.kir.astnodes import (
    Assign,
    AtomicAdd,
    BinOp,
    Break,
    Call,
    CallStmt,
    Const,
    Continue,
    Decl,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Return,
    SharedLoad,
    SharedStore,
    SpecialReg,
    Stmt,
    Store,
    SyncThreads,
    UnOp,
    Var,
    While,
)
from repro.kir.interp.evalcore import (
    BreakSignal,
    ContinueSignal,
    ExecContext,
    INTRINSIC_IMPL,
    ReturnSignal,
    c_int_cast,
    fdiv,
    idiv,
    imod,
    truthy,
)
from repro.kir.types import DType
from repro.bits import wrap_i32

ExprFn = Callable[[dict, ExecContext], object]
StmtFn = Callable[[dict, ExecContext], None]


# ---------------------------------------------------------------------------
# expression compilation
# ---------------------------------------------------------------------------


def compile_expr(e: Expr) -> ExprFn:
    if isinstance(e, Const):
        v = e.value
        return lambda fr, ctx: v
    if isinstance(e, Var):
        n = e.name
        return lambda fr, ctx: fr[n]
    if isinstance(e, SpecialReg):
        n = e.name
        return lambda fr, ctx: fr[n]
    if isinstance(e, BinOp):
        return _compile_binop(e)
    if isinstance(e, UnOp):
        f = compile_expr(e.operand)
        if e.op == "-":
            if e.dtype is DType.INT32:
                return lambda fr, ctx: wrap_i32(-f(fr, ctx))
            return lambda fr, ctx: -f(fr, ctx)
        if e.op == "!":
            return lambda fr, ctx: 0 if truthy(f(fr, ctx)) else 1
        if e.op == "~":
            return lambda fr, ctx: wrap_i32(~f(fr, ctx))
        raise KIRError(f"cannot compile unary {e.op!r}")
    if isinstance(e, Call):
        if e.func == "__float_as_int":
            from repro.bits import float_to_bits, bits_to_int

            f = compile_expr(e.args[0])
            return lambda fr, ctx: bits_to_int(float_to_bits(float(f(fr, ctx))))
        impl = INTRINSIC_IMPL.get(e.func)
        if impl is None:
            raise KIRError(f"cannot compile intrinsic {e.func!r}")
        fns = [compile_expr(a) for a in e.args]
        if len(fns) == 1:
            f0 = fns[0]
            return lambda fr, ctx: impl(f0(fr, ctx))
        if len(fns) == 2:
            f0, f1 = fns
            return lambda fr, ctx: impl(f0(fr, ctx), f1(fr, ctx))
        return lambda fr, ctx: impl(*[f(fr, ctx) for f in fns])
    if isinstance(e, Load):
        p = compile_expr(e.ptr)
        i = compile_expr(e.index)
        if e.dtype is DType.FLOAT32:
            return lambda fr, ctx: ctx.load_f32(p(fr, ctx) + i(fr, ctx))
        return lambda fr, ctx: ctx.load_i32(p(fr, ctx) + i(fr, ctx))
    if isinstance(e, SharedLoad):
        name = e.array
        i = compile_expr(e.index)

        def shared_load(fr, ctx):
            arr = ctx.shared[name]
            idx = i(fr, ctx)
            if 0 <= idx < len(arr):
                return arr[idx]
            raise KernelCrash(f"shared memory OOB read {name}[{idx}]", ctx.thread, ctx.block)

        return shared_load
    raise KIRError(f"cannot compile expression {type(e).__name__}")


def _compile_binop(e: BinOp) -> ExprFn:
    op = e.op
    l = compile_expr(e.left)  # noqa: E741 -- l/r mirror the BinOp fields
    r = compile_expr(e.right)
    lt, rt = e.left.dtype, e.right.dtype
    int_arith = e.dtype is DType.INT32 and lt is DType.INT32 and rt is DType.INT32
    ptr_arith = e.dtype is not None and e.dtype.is_pointer
    if op == "+":
        if ptr_arith:
            return lambda fr, ctx: l(fr, ctx) + r(fr, ctx)
        if int_arith:
            return lambda fr, ctx: wrap_i32(l(fr, ctx) + r(fr, ctx))
        return lambda fr, ctx: l(fr, ctx) + r(fr, ctx)
    if op == "-":
        if int_arith and not ptr_arith:
            return lambda fr, ctx: wrap_i32(l(fr, ctx) - r(fr, ctx))
        return lambda fr, ctx: l(fr, ctx) - r(fr, ctx)
    if op == "*":
        if int_arith:
            return lambda fr, ctx: wrap_i32(l(fr, ctx) * r(fr, ctx))
        return lambda fr, ctx: l(fr, ctx) * r(fr, ctx)
    if op == "/":
        if int_arith:
            return lambda fr, ctx: idiv(l(fr, ctx), r(fr, ctx))
        return lambda fr, ctx: fdiv(l(fr, ctx), r(fr, ctx))
    if op == "%":
        return lambda fr, ctx: imod(l(fr, ctx), r(fr, ctx))
    if op == "<":
        return lambda fr, ctx: 1 if l(fr, ctx) < r(fr, ctx) else 0
    if op == "<=":
        return lambda fr, ctx: 1 if l(fr, ctx) <= r(fr, ctx) else 0
    if op == ">":
        return lambda fr, ctx: 1 if l(fr, ctx) > r(fr, ctx) else 0
    if op == ">=":
        return lambda fr, ctx: 1 if l(fr, ctx) >= r(fr, ctx) else 0
    if op == "==":
        return lambda fr, ctx: 1 if l(fr, ctx) == r(fr, ctx) else 0
    if op == "!=":
        return lambda fr, ctx: 1 if l(fr, ctx) != r(fr, ctx) else 0
    if op == "&&":
        return lambda fr, ctx: 1 if (truthy(l(fr, ctx)) and truthy(r(fr, ctx))) else 0
    if op == "||":
        return lambda fr, ctx: 1 if (truthy(l(fr, ctx)) or truthy(r(fr, ctx))) else 0
    if op == "&":
        return lambda fr, ctx: wrap_i32(l(fr, ctx) & r(fr, ctx))
    if op == "|":
        return lambda fr, ctx: wrap_i32(l(fr, ctx) | r(fr, ctx))
    if op == "^":
        return lambda fr, ctx: wrap_i32(l(fr, ctx) ^ r(fr, ctx))
    if op == "<<":
        return lambda fr, ctx: wrap_i32(l(fr, ctx) << (r(fr, ctx) & 31))
    if op == ">>":
        return lambda fr, ctx: wrap_i32(l(fr, ctx) >> (r(fr, ctx) & 31))
    raise KIRError(f"cannot compile operator {op!r}")


def _converter(target: DType, source: DType):
    """Implicit conversion applied on assignment, C-style."""
    if target is DType.FLOAT32 and source is DType.INT32:
        return float
    if target is DType.INT32 and source is DType.FLOAT32:
        return c_int_cast
    return None


# ---------------------------------------------------------------------------
# statement compilation
# ---------------------------------------------------------------------------


class _KernelCompiler:
    def __init__(self, kernel: Kernel, costmodel):
        self.kernel = kernel
        self.cm = costmodel

    def compile_stmt(self, s: Stmt) -> StmtFn:
        cm = self.cm
        in_loop = s.in_loop
        if isinstance(s, Decl):
            val = compile_expr(s.init)
            conv = _converter(s.var_dtype, s.init.dtype)
            cost = (cm.expr_cost(s.init) + cm.write_cost) * s.cost_scale
            name = s.name
            if conv is None:
                return self._wrap_assign(name, val, cost, in_loop)
            return self._wrap_assign_conv(name, val, conv, cost, in_loop)
        if isinstance(s, Assign):
            val = compile_expr(s.value)
            conv = _converter(s.target_dtype, s.value.dtype)
            cost = (cm.expr_cost(s.value) + cm.write_cost) * s.cost_scale
            name = s.name
            if conv is None:
                return self._wrap_assign(name, val, cost, in_loop)
            return self._wrap_assign_conv(name, val, conv, cost, in_loop)
        if isinstance(s, Store):
            p = compile_expr(s.ptr)
            i = compile_expr(s.index)
            v = compile_expr(s.value)
            is_float = s.ptr.dtype.element is DType.FLOAT32
            cost = (
                cm.expr_cost(s.ptr)
                + cm.expr_cost(s.index)
                + cm.expr_cost(s.value)
                + cm.mem_global
            ) * s.cost_scale
            if in_loop:
                def store_l(fr, ctx):
                    ctx.steps += 1
                    if ctx.steps > ctx.budget:
                        raise KernelHang()
                    ctx.cycles += cost
                    ctx.loop_cycles += cost
                    addr = p(fr, ctx) + i(fr, ctx)
                    if is_float:
                        ctx.store_f32(addr, v(fr, ctx))
                    else:
                        ctx.store_i32(addr, v(fr, ctx))
                return store_l

            def store_nl(fr, ctx):
                ctx.steps += 1
                if ctx.steps > ctx.budget:
                    raise KernelHang()
                ctx.cycles += cost
                addr = p(fr, ctx) + i(fr, ctx)
                if is_float:
                    ctx.store_f32(addr, v(fr, ctx))
                else:
                    ctx.store_i32(addr, v(fr, ctx))
            return store_nl
        if isinstance(s, SharedStore):
            name = s.array
            i = compile_expr(s.index)
            v = compile_expr(s.value)
            cost = cm.expr_cost(s.index) + cm.expr_cost(s.value) + cm.mem_shared

            def shared_store(fr, ctx):
                ctx.steps += 1
                if ctx.steps > ctx.budget:
                    raise KernelHang()
                ctx.cycles += cost
                if in_loop:
                    ctx.loop_cycles += cost
                arr = ctx.shared[name]
                idx = i(fr, ctx)
                if not 0 <= idx < len(arr):
                    raise KernelCrash(
                        f"shared memory OOB write {name}[{idx}]", ctx.thread, ctx.block
                    )
                arr[idx] = v(fr, ctx)
            return shared_store
        if isinstance(s, AtomicAdd):
            return self._compile_atomic(s)
        if isinstance(s, For):
            return self._compile_for(s)
        if isinstance(s, While):
            return self._compile_while(s)
        if isinstance(s, If):
            return self._compile_if(s)
        if isinstance(s, Break):
            def brk(fr, ctx):
                ctx.steps += 1
                raise BreakSignal()
            return brk
        if isinstance(s, Continue):
            def cont(fr, ctx):
                ctx.steps += 1
                raise ContinueSignal()
            return cont
        if isinstance(s, Return):
            def ret(fr, ctx):
                ctx.steps += 1
                raise ReturnSignal()
            return ret
        if isinstance(s, SyncThreads):
            raise KIRValidationError(
                "kernels with __syncthreads need the lockstep interpreter"
            )
        if isinstance(s, CallStmt):
            fns = [compile_expr(a) for a in s.args]
            func = s.func
            cost = self.cm.libcall_cost(func) * s.cost_scale

            def libcall(fr, ctx):
                ctx.steps += 1
                if ctx.steps > ctx.budget:
                    raise KernelHang()
                if cost:
                    ctx.cycles += cost
                    if in_loop:
                        ctx.loop_cycles += cost
                ctx.lib.invoke(func, ctx, fr, [f(fr, ctx) for f in fns])
            return libcall
        raise KIRError(f"cannot compile statement {type(s).__name__}")

    # -- leaf wrappers -------------------------------------------------
    @staticmethod
    def _wrap_assign(name: str, val: ExprFn, cost: float, in_loop: bool) -> StmtFn:
        if in_loop:
            def run_l(fr, ctx):
                ctx.steps += 1
                if ctx.steps > ctx.budget:
                    raise KernelHang()
                ctx.cycles += cost
                ctx.loop_cycles += cost
                fr[name] = val(fr, ctx)
            return run_l

        def run(fr, ctx):
            ctx.steps += 1
            if ctx.steps > ctx.budget:
                raise KernelHang()
            ctx.cycles += cost
            fr[name] = val(fr, ctx)
        return run

    @staticmethod
    def _wrap_assign_conv(
        name: str, val: ExprFn, conv, cost: float, in_loop: bool
    ) -> StmtFn:
        def run(fr, ctx):
            ctx.steps += 1
            if ctx.steps > ctx.budget:
                raise KernelHang()
            ctx.cycles += cost
            if in_loop:
                ctx.loop_cycles += cost
            fr[name] = conv(val(fr, ctx))
        return run

    # -- compound statements -------------------------------------------
    def _compile_atomic(self, s: AtomicAdd) -> StmtFn:
        i = compile_expr(s.index)
        v = compile_expr(s.value)
        in_loop = s.in_loop
        if s.space == "shared":
            name = s.array
            cost = self.cm.expr_cost(s.index) + self.cm.expr_cost(s.value) + self.cm.atomic_shared

            def atomic_shared(fr, ctx):
                ctx.steps += 1
                if ctx.steps > ctx.budget:
                    raise KernelHang()
                ctx.cycles += cost
                if in_loop:
                    ctx.loop_cycles += cost
                arr = ctx.shared[name]
                idx = i(fr, ctx)
                if not 0 <= idx < len(arr):
                    raise KernelCrash(
                        f"shared memory OOB atomic {name}[{idx}]", ctx.thread, ctx.block
                    )
                arr[idx] = arr[idx] + v(fr, ctx)
                if isinstance(arr[idx], int):
                    arr[idx] = wrap_i32(arr[idx])
            return atomic_shared
        p = compile_expr(s.target)
        is_float = s.target.dtype.element is DType.FLOAT32
        cost = (
            self.cm.expr_cost(s.target)
            + self.cm.expr_cost(s.index)
            + self.cm.expr_cost(s.value)
            + self.cm.atomic_global
        )

        def atomic_global(fr, ctx):
            ctx.steps += 1
            if ctx.steps > ctx.budget:
                raise KernelHang()
            ctx.cycles += cost
            if in_loop:
                ctx.loop_cycles += cost
            addr = p(fr, ctx) + i(fr, ctx)
            if is_float:
                ctx.store_f32(addr, ctx.load_f32(addr) + v(fr, ctx))
            else:
                ctx.store_i32(
                    addr, wrap_i32(ctx.load_i32(addr) + v(fr, ctx))
                )
        return atomic_global

    def _compile_for(self, s: For) -> StmtFn:
        init_fn = self.compile_stmt(s.init) if s.init is not None else None
        cond_fn = compile_expr(s.cond)
        cond_cost = self.cm.expr_cost(s.cond) + self.cm.branch_cost
        update_fn = self.compile_stmt(s.update) if s.update is not None else None
        body_fns = [self.compile_stmt(b) for b in s.body]

        def run(fr, ctx):
            if init_fn is not None:
                init_fn(fr, ctx)
            try:
                while True:
                    ctx.steps += 1
                    if ctx.steps > ctx.budget:
                        raise KernelHang()
                    ctx.cycles += cond_cost
                    ctx.loop_cycles += cond_cost
                    if not truthy(cond_fn(fr, ctx)):
                        break
                    try:
                        for b in body_fns:
                            b(fr, ctx)
                    except ContinueSignal:
                        pass
                    if update_fn is not None:
                        update_fn(fr, ctx)
            except BreakSignal:
                pass
        return run

    def _compile_while(self, s: While) -> StmtFn:
        cond_fn = compile_expr(s.cond)
        cond_cost = self.cm.expr_cost(s.cond) + self.cm.branch_cost
        body_fns = [self.compile_stmt(b) for b in s.body]

        def run(fr, ctx):
            try:
                while True:
                    ctx.steps += 1
                    if ctx.steps > ctx.budget:
                        raise KernelHang()
                    ctx.cycles += cond_cost
                    ctx.loop_cycles += cond_cost
                    if not truthy(cond_fn(fr, ctx)):
                        break
                    try:
                        for b in body_fns:
                            b(fr, ctx)
                    except ContinueSignal:
                        pass
            except BreakSignal:
                pass
        return run

    def _compile_if(self, s: If) -> StmtFn:
        cond_fn = compile_expr(s.cond)
        cost = (self.cm.expr_cost(s.cond) + self.cm.branch_cost) * s.cost_scale
        then_fns = [self.compile_stmt(b) for b in s.then]
        else_fns = [self.compile_stmt(b) for b in s.els]
        in_loop = s.in_loop

        def run(fr, ctx):
            ctx.steps += 1
            if ctx.steps > ctx.budget:
                raise KernelHang()
            ctx.cycles += cost
            if in_loop:
                ctx.loop_cycles += cost
            if truthy(cond_fn(fr, ctx)):
                for b in then_fns:
                    b(fr, ctx)
            else:
                for b in else_fns:
                    b(fr, ctx)
        return run


class CompiledKernel:
    """A kernel compiled to closures, reusable across launches."""

    def __init__(self, kernel: Kernel, costmodel):
        if not kernel.validated:
            raise KIRValidationError("validate the kernel before compiling")
        if kernel.uses_sync:
            raise KIRValidationError(
                f"kernel {kernel.name} uses __syncthreads; use LockstepProgram"
            )
        self.kernel = kernel
        self.costmodel = costmodel
        compiler = _KernelCompiler(kernel, costmodel)
        self._body: List[StmtFn] = [compiler.compile_stmt(s) for s in kernel.body]

    def run_thread(self, frame: dict, ctx: ExecContext) -> None:
        """Execute one thread to completion (or crash/hang)."""
        try:
            for fn in self._body:
                fn(frame, ctx)
        except ReturnSignal:
            pass

    def run_thread_at(self, frame: dict, ctx: ExecContext, block: int,
                      thread: int) -> None:
        """Position ``ctx`` on (block, thread-in-block) and run the thread.

        Replay entry point: one faulted thread re-executed in isolation
        gets the same ``ctx.block``/``ctx.thread`` it had in the full
        grid, so FI gtid targeting and crash attribution are identical.
        """
        ctx.reset_thread(block, thread)
        self.run_thread(frame, ctx)


def compile_kernel(kernel: Kernel, costmodel=None) -> CompiledKernel:
    """Compile a validated kernel; uses the default GPU cost model."""
    if costmodel is None:
        from repro.gpu.costmodel import CostModel

        costmodel = CostModel()
    return CompiledKernel(kernel, costmodel)
