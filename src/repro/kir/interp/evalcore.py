"""Runtime semantics shared by both interpreters.

Arithmetic follows C-on-GPU conventions from the paper:

* integers are 32-bit two's complement (wrapping);
* FP division by zero "does not lead to an exception but returns an
  infinite value" (Observation 1 discussion) — so ``fdiv`` yields
  +/-inf or NaN, never a Python exception;
* integer division by zero crashes the kernel (detected by the GPU
  runtime — a *failure*, not an SDC);
* ``sqrt``/``log`` of invalid inputs produce NaN, as on real FPUs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

from repro.bits import wrap_i32
from repro.errors import KernelCrash, KernelHang

NAN = float("nan")
INF = float("inf")


# ---------------------------------------------------------------------------
# control-flow signals
# ---------------------------------------------------------------------------


class BreakSignal(Exception):
    """Raised by a compiled ``break``; caught by the innermost loop."""


class ContinueSignal(Exception):
    """Raised by a compiled ``continue``; caught by the loop body."""


class ReturnSignal(Exception):
    """Raised by a compiled ``return``; ends the thread."""


# ---------------------------------------------------------------------------
# C-semantics arithmetic helpers
# ---------------------------------------------------------------------------


def fdiv(a: float, b: float) -> float:
    """IEEE float division: x/0 -> signed inf, 0/0 -> NaN."""
    if b == 0.0:
        if a == 0.0 or a != a:
            return NAN
        return INF if (a > 0.0) == (not _signbit(b)) else -INF
    try:
        return a / b
    except OverflowError:  # huge-int operand edge case
        return INF if (a > 0) == (b > 0) else -INF


def _signbit(x: float) -> bool:
    return math.copysign(1.0, x) < 0


def idiv(a: int, b: int) -> int:
    """C integer division (truncation toward zero); /0 crashes."""
    if b == 0:
        raise KernelCrash("integer division by zero")
    q = abs(a) // abs(b)
    return wrap_i32(-q if (a < 0) != (b < 0) else q)


def imod(a: int, b: int) -> int:
    """C remainder: sign of the dividend; %0 crashes."""
    if b == 0:
        raise KernelCrash("integer modulo by zero")
    r = abs(a) % abs(b)
    return wrap_i32(-r if a < 0 else r)


def c_int_cast(x) -> int:
    """C-like float->int conversion: truncate; NaN -> 0; saturate inf."""
    if isinstance(x, int):
        return wrap_i32(x)
    if x != x:  # NaN (CUDA __float2int_rz returns 0)
        return 0
    if x >= 2147483648.0:
        return 2147483647
    if x <= -2147483649.0:
        return -2147483648
    return wrap_i32(int(x))


def truthy(x) -> bool:
    """C truth: non-zero is true (NaN is non-zero, hence true)."""
    return x != 0


def _safe_sqrt(x: float) -> float:
    if x != x or x < 0.0:
        return NAN
    if x == INF:
        return INF
    return math.sqrt(x)


def _safe_rsqrt(x: float) -> float:
    if x != x or x < 0.0:
        return NAN
    if x == 0.0:
        return INF
    if x == INF:
        return 0.0
    return 1.0 / math.sqrt(x)


def _safe_exp(x: float) -> float:
    if x != x:
        return NAN
    try:
        return math.exp(x)
    except OverflowError:
        return INF


def _safe_log(x: float) -> float:
    if x != x or x < 0.0:
        return NAN
    if x == 0.0:
        return -INF
    if x == INF:
        return INF
    return math.log(x)


def _safe_acos(x: float) -> float:
    if x != x or x < -1.0 or x > 1.0:
        return NAN
    return math.acos(x)


def _safe_sin(x: float) -> float:
    if x != x or math.isinf(x):
        return NAN
    return math.sin(x)


def _safe_cos(x: float) -> float:
    if x != x or math.isinf(x):
        return NAN
    return math.cos(x)


def _safe_pow(a: float, b: float) -> float:
    try:
        r = math.pow(a, b)
    except (ValueError, OverflowError):
        return NAN
    return r


def _safe_floor(x: float) -> float:
    if x != x or math.isinf(x):
        return x
    return float(math.floor(x))


def _safe_atan2(a: float, b: float) -> float:
    if a != a or b != b:
        return NAN
    return math.atan2(a, b)


#: Intrinsic name -> Python callable on evaluated (float/int) args.
INTRINSIC_IMPL: Dict[str, Callable] = {
    "sqrt": _safe_sqrt,
    "rsqrt": _safe_rsqrt,
    "exp": _safe_exp,
    "log": _safe_log,
    "sin": _safe_sin,
    "cos": _safe_cos,
    "acos": _safe_acos,
    "atan2": _safe_atan2,
    "floor": _safe_floor,
    "fabs": lambda x: abs(float(x)),
    "pow": _safe_pow,
    "fmin": lambda a, b: NAN if (a != a or b != b) else min(float(a), float(b)),
    "fmax": lambda a, b: NAN if (a != a or b != b) else max(float(a), float(b)),
    "abs": lambda x: wrap_i32(abs(int(x))),
    "min": min,
    "max": max,
    "int": c_int_cast,
    "float": float,
}


# ---------------------------------------------------------------------------
# instrumentation-library protocol
# ---------------------------------------------------------------------------


class InstrumentationLibrary:
    """Base class for libraries bound at kernel launch (Figure 12).

    A ``CallStmt`` whose function name is ``__hauberk_<op>`` dispatches
    to the method ``lib_<op>(ctx, frame, *args)``.  Arguments are
    evaluated values; string constants arrive as ``str`` (the FI
    library receives variable names this way so it can read and write
    the calling frame directly — the mutation-based injection of
    Section VII).
    """

    PREFIX = "__hauberk_"

    #: Vectorized-engine eligibility (duck-typed so ``gpu.runtime``
    #: never imports concrete libraries).  A compatible library promises
    #: its hooks are pure no-ops on every lane except at most one
    #: (``vector_excluded_gtid``), and implements ``vector_reset`` to
    #: restore pre-launch state when a vectorized attempt bails out and
    #: the launch reruns sequentially.  Default: opt out.
    vector_compatible = False

    def vector_excluded_gtid(self, n_threads: int) -> "Optional[int]":
        """The one gtid whose hooks have effects (None: all are no-ops)."""
        return None

    def vector_reset(self) -> None:
        """Undo any hook state before a scalar rerun of the launch."""

    def invoke(self, func: str, ctx: "ExecContext", frame: dict, args: Sequence) -> None:
        if not func.startswith(self.PREFIX):
            raise KernelCrash(f"unbound library call {func}")
        method = getattr(self, "lib_" + func[len(self.PREFIX):], None)
        if method is None:
            raise KernelCrash(f"library has no handler for {func}")
        method(ctx, frame, *args)

    def handles(self, func: str) -> bool:
        return func.startswith(self.PREFIX) and hasattr(
            self, "lib_" + func[len(self.PREFIX):]
        )


class NullLibrary(InstrumentationLibrary):
    """Ignores every instrumentation call (original-binary behaviour)."""

    vector_compatible = True

    def invoke(self, func: str, ctx: "ExecContext", frame: dict, args: Sequence) -> None:
        return None


# ---------------------------------------------------------------------------
# execution context
# ---------------------------------------------------------------------------


class ExecContext:
    """Mutable per-launch execution state shared by all threads.

    Attributes of note:

    * ``memory`` — the installed :class:`~repro.memspace.MemorySpace`
      (normally the device :class:`~repro.gpu.memory.GlobalMemory`);
    * ``load_f32`` .. ``store_i32`` — the four accessors of that space,
      bound as instance attributes so compiled closures reach device
      memory in one attribute lookup (``ctx.load_f32``) instead of two
      (``ctx.memory.load_f32``), keeping the layered protocol off the
      hot path;
    * ``lib`` — bound instrumentation library (FI / profiler / FT);
    * ``budget`` — per-thread statement budget; exceeding it raises
      :class:`~repro.errors.KernelHang` (the watchdog);
    * ``cycles`` / ``loop_cycles`` — cost-model accounting used for
      Figure 4 and all of Figure 13.
    """

    __slots__ = (
        "memory",
        "load_f32",
        "load_i32",
        "store_f32",
        "store_i32",
        "lib",
        "budget",
        "steps",
        "max_steps",
        "cycles",
        "loop_cycles",
        "shared",
        "thread",
        "block",
        "spill_factor",
    )

    def __init__(
        self,
        memory,
        lib: Optional[InstrumentationLibrary] = None,
        budget: int = 2_000_000,
    ):
        self._bind_memory(memory)
        self.lib = lib if lib is not None else NullLibrary()
        self.budget = budget
        self.steps = 0
        self.max_steps = 0
        self.cycles = 0.0
        self.loop_cycles = 0.0
        self.shared: Dict[str, List] = {}
        self.thread = -1
        self.block = -1
        self.spill_factor = 1.0

    def tick(self) -> None:
        """Per-statement watchdog bump (inlined by the compiler)."""
        self.steps += 1
        if self.steps > self.budget:
            raise KernelHang(
                f"thread {self.thread} in block {self.block} exceeded "
                f"{self.budget} statements"
            )

    def reset_thread(self, block: int, thread: int) -> None:
        if self.steps > self.max_steps:
            self.max_steps = self.steps
        self.steps = 0
        self.thread = thread
        self.block = block

    def _bind_memory(self, memory) -> None:
        self.memory = memory
        self.load_f32 = memory.load_f32
        self.load_i32 = memory.load_i32
        self.store_f32 = memory.store_f32
        self.store_i32 = memory.store_i32

    def swap_memory(self, memory):
        """Install a different memory space; returns the old one.

        Compiled closures fetch the bound ``ctx.load_f32`` (etc.)
        accessors on every access, and this rebinds all four — so
        recording/guarded layers (footprint capture, the differential
        replay guard) slot in for one launch or one replayed thread
        without touching the zero-cost normal path.
        """
        previous = self.memory
        self._bind_memory(memory)
        return previous
