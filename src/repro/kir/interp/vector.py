"""Warp-vectorized KIR execution: NumPy array programs over the grid.

The third execution engine.  Where the closure compiler runs one
Python closure per thread per statement, this compiler lowers
straight-line regions to NumPy array operations evaluated over every
thread of the grid at once: the thread id is an ``arange``, each
per-thread register is an ndarray column, and global loads/stores are
gathers/scatters against the ``np.uint32`` device backing store.

Semantics are *bit-exact* with the closure interpreter:

* kernel floats are IEEE float64 everywhere except through memory
  (stores round through binary32), so float columns are ``np.float64``
  and every operation maps to the identical IEEE double operation;
* int columns are ``np.int64`` wrapped to two's-complement int32 after
  the same operations the scalar path wraps (products and shifted
  values stay well inside int64);
* transcendentals that NumPy does not guarantee to round like
  ``libm`` (exp/log/sin/cos/acos/atan2/pow) evaluate element-wise
  through the *same* scalar implementations the interpreter uses;
  sqrt and division are correctly rounded in both and stay vectorized;
* cost-model charges are dyadic rationals (multiples of 1/8), so
  per-lane float64 accumulation followed by ``np.sum`` equals the
  sequential single-accumulator total bit-for-bit.

Branch divergence is handled with predication masks driven by the
uniformity analysis (:mod:`repro.kir.analysis.uniformity`): branches
whose condition is statically grid-uniform keep scalar control flow,
divergent branches run both arms under an active-lane mask, and loops
iterate with a draining mask (lanes leave at their own trip counts,
paying the failing-condition check exactly like the scalar path).

Sequential-equivalence guard: the grid *is* sequential in the closure
engine (threads run in gtid order), so any cross-lane data flow through
global memory would let vector execution diverge from it.  Per-address
``owner``/``read_by`` maps detect any lane touching a word another lane
wrote (or writing a word another lane read) and raise
:class:`VectorBailout`; the runtime then falls back to the scalar
engines for that launch.  Same for any in-lane crash or watchdog
overrun — sequential failure semantics (lowest-gtid failing thread,
earlier threads' stores visible) are reproduced by a scalar rerun.

Fault injection composes by exclusion: ``__hauberk_fi`` hooks are
no-ops for every lane but the targeted gtid, so the untargeted lanes
vectorize (hooks charge cost only) and the targeted lane replays
scalar afterwards behind :class:`VectorReplayGuard`, splicing its
cycles/steps into the vector totals — mirroring the differential
engine's undo/replay machinery.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.bits import bits_to_int, float_to_bits, wrap_i32
from repro.errors import (
    KernelCrash,
    KernelHang,
    KIRError,
    KIRValidationError,
)
from repro.gpu.memory import GlobalMemory, ThreadFootprint
from repro.gpu.paging import PagedWords
from repro.kir.analysis.uniformity import GRID_SEEDS, expr_varies, grid_varying_names
from repro.kir.astnodes import (
    Assign,
    AtomicAdd,
    BinOp,
    Break,
    Call,
    CallStmt,
    Const,
    Continue,
    Decl,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Return,
    SpecialReg,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
    walk_stmts,
)
from repro.kir.interp.evalcore import (
    INTRINSIC_IMPL,
    c_int_cast,
    fdiv,
    idiv,
    imod,
    truthy,
)
from repro.kir.types import DType
from repro.memspace import WordReinterpret

NAN = float("nan")
INF = float("inf")
_U32 = 0xFFFFFFFF
_I32_SIGN = 0x80000000

#: Fallback taxonomy — static obstacles (mirrors the differential
#: engine's replay obstacles: cross-thread channels besides global
#: memory defeat lane-parallel execution).
OBSTACLE_SYNC = "uses_sync"
OBSTACLE_SHARED = "shared_memory"
OBSTACLE_ATOMICS = "atomics"
#: Fallback taxonomy — per-launch conditions.
BAIL_LANE_FAILURE = "lane_failure"
BAIL_HAZARD = "cross_lane_hazard"
BAIL_REPLAY_HAZARD = "replay_hazard"
BAIL_REPLAY_FAILURE = "replay_failure"
BAIL_UNTRACKED = "untracked_address"
BAIL_ANALYSIS = "divergence_analysis"
FALLBACK_LIBRARY = "library"
FALLBACK_RECORDER = "recorder"


class VectorBailout(Exception):
    """Vector execution cannot serve this launch bit-exactly.

    Carries the fallback ``reason`` (one of the taxonomy constants);
    the runtime restores the pre-launch memory snapshot and reruns the
    launch on the scalar engines.
    """

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


def vectorize_obstacle(kernel: Kernel) -> Optional[str]:
    """Why this kernel cannot vectorize at all (None if it can).

    Same taxonomy as ``kernel_replay_obstacle``: barriers, shared
    arrays, and atomics are cross-thread channels the lane-parallel
    model cannot order correctly.
    """
    if kernel.uses_sync:
        return OBSTACLE_SYNC
    if kernel.shared:
        return OBSTACLE_SHARED
    for stmt, _depth in walk_stmts(kernel.body):
        if isinstance(stmt, AtomicAdd):
            return OBSTACLE_ATOMICS
    return None


# ---------------------------------------------------------------------------
# vector arithmetic helpers (bit-exact with the scalar evalcore ones)
# ---------------------------------------------------------------------------


def _is_arr(v) -> bool:
    return isinstance(v, np.ndarray)


def _wrap(v):
    """int32 two's-complement wrap for scalars and int64 columns."""
    if isinstance(v, np.ndarray):
        return ((v & _U32) ^ _I32_SIGN) - _I32_SIGN
    return wrap_i32(v)


def _v_sqrt(x):
    bad = ~(x >= 0.0)  # negatives and NaN
    r = np.sqrt(np.where(bad, 1.0, x))
    return np.where(bad, NAN, r)


def _v_rsqrt(x):
    pos = x > 0.0
    r = 1.0 / np.sqrt(np.where(pos, x, 1.0))
    r = np.where(pos, r, NAN)
    return np.where(x == 0.0, INF, r)


def _v_floor(x):
    r = np.floor(x)
    nan = x != x
    if nan.any():
        # scalar path returns the input NaN (payload preserved)
        return np.where(nan, x, r)
    return r


def _v_min(a, b):
    # Python ``min(a, b)`` keeps ``a`` unless ``b < a`` — including the
    # signed-zero and NaN orderings np.minimum would resolve differently
    return np.where(b < a, b, a)


def _v_max(a, b):
    return np.where(b > a, b, a)


def _v_fmin(a, b):
    r = _v_min(a, b)
    nan = (a != a) | (b != b)
    return np.where(nan, NAN, r) if np.any(nan) else r


def _v_fmax(a, b):
    r = _v_max(a, b)
    nan = (a != a) | (b != b)
    return np.where(nan, NAN, r) if np.any(nan) else r


def _v_c_int_cast(x):
    if not _is_arr(x):
        return c_int_cast(x)
    if x.dtype != np.float64:
        return _wrap(x)
    nan = x != x
    hi = x >= 2147483648.0
    lo = x <= -2147483649.0
    safe = np.where(nan | hi | lo, 0.0, x)
    t = _wrap(safe.astype(np.int64))  # astype truncates toward zero
    t = np.where(hi, 2147483647, t)
    t = np.where(lo, -2147483648, t)
    return np.where(nan, 0, t)


def _v_float(x):
    return x.astype(np.float64) if x.dtype != np.float64 else x


def _v_float_as_int(x):
    bits = x.astype(np.float32).view(np.uint32)
    nan = x != x
    if nan.any():
        # payload-preserving narrow (the cast quietens signaling NaNs)
        idx = np.flatnonzero(nan)
        bits[idx] = [float_to_bits(float(v)) for v in x[idx]]
    return _wrap(bits.astype(np.int64))


def _map1(impl, x):
    return np.fromiter((impl(v) for v in x.tolist()), np.float64, count=len(x))


def _map2(impl, a, b):
    n = len(a) if _is_arr(a) else len(b)
    av = a.tolist() if _is_arr(a) else (a,) * n
    bv = b.tolist() if _is_arr(b) else (b,) * n
    return np.fromiter((impl(x, y) for x, y in zip(av, bv)), np.float64, count=n)


#: Intrinsics with a true vector implementation (bit-exact: sqrt and
#: division are correctly rounded in both libm and NumPy; the rest are
#: exact operations).  Anything absent here evaluates element-wise
#: through the scalar ``INTRINSIC_IMPL`` entry.
_VEC_UNARY: Dict[str, Callable] = {
    "sqrt": _v_sqrt,
    "rsqrt": _v_rsqrt,
    "floor": _v_floor,
    "fabs": np.abs,
    "abs": lambda x: _wrap(np.abs(x)),
    "int": _v_c_int_cast,
    "float": _v_float,
}
_VEC_BINARY: Dict[str, Callable] = {
    "fmin": _v_fmin,
    "fmax": _v_fmax,
    "min": _v_min,
    "max": _v_max,
}


# ---------------------------------------------------------------------------
# per-launch vector state
# ---------------------------------------------------------------------------


class _LoopFrame:
    """Break/continue accumulator masks for one loop nesting level."""

    __slots__ = ("brk", "cont")

    def __init__(self):
        self.brk: Optional[np.ndarray] = None
        self.cont: Optional[np.ndarray] = None


class _VectorCtx:
    """Per-launch lane state: registers live in ``vf`` (the vector
    frame, a plain dict), everything else lives here."""

    __slots__ = (
        "mem", "lanes", "n", "budget", "steps", "cycles", "loop_cycles",
        "loop_stack", "zeros", "capacity", "tracked", "owner", "read_by",
        "footprints",
    )

    def __init__(self, mem: GlobalMemory, lanes: np.ndarray, budget: int,
                 record_footprints: bool = False):
        n = len(lanes)
        self.mem = mem
        self.lanes = lanes
        self.n = n
        self.budget = budget
        self.steps = np.zeros(n, np.int64)
        self.cycles = np.zeros(n, np.float64)
        self.loop_cycles = np.zeros(n, np.float64)
        self.loop_stack: List[_LoopFrame] = []
        self.zeros = np.zeros(n, bool)  # shared immutable empty mask
        self.capacity = mem.capacity
        # hazard maps cover the allocated region only (cheap to zero);
        # unallocated-but-in-bounds accesses are legal yet untracked,
        # so they bail to the scalar engines instead.  Over a paged
        # memory the allocated region can span gigabytes, so the maps
        # ride the same sparse page store (lazy fill -1) instead of
        # materializing GB-scale np.full arrays.
        self.tracked = mem.used_words
        if mem.is_paged:
            self.owner = PagedWords(self.tracked, mem.page_words,
                                    dtype=np.int64, fill=-1)
            self.read_by = PagedWords(self.tracked, mem.page_words,
                                      dtype=np.int64, fill=-1)
        else:
            self.owner = np.full(self.tracked, -1, np.int64)
            self.read_by = np.full(self.tracked, -1, np.int64)
        self.footprints = (
            [ThreadFootprint() for _ in range(n)] if record_footprints else None
        )

    # -- watchdog / accounting ---------------------------------------

    def tick(self, m: Optional[np.ndarray]) -> None:
        s = self.steps
        if m is None:
            s += 1
        else:
            s += m
        # only just-ticked lanes can newly exceed the budget, so the
        # global max is an exact proxy for the scalar per-lane check
        if self.n and s.max() > self.budget:
            raise VectorBailout(BAIL_LANE_FAILURE)

    def tick_nocheck(self, m: Optional[np.ndarray]) -> None:
        # Break/Continue/Return bump steps without the budget check,
        # exactly like the scalar compiler
        if m is None:
            self.steps += 1
        else:
            self.steps += m

    def charge(self, m: Optional[np.ndarray], cost: float, in_loop: bool) -> None:
        if m is None:
            self.cycles += cost
            if in_loop:
                self.loop_cycles += cost
        else:
            np.add(self.cycles, cost, out=self.cycles, where=m)
            if in_loop:
                np.add(self.loop_cycles, cost, out=self.loop_cycles, where=m)

    def charge_loop_head(self, m: Optional[np.ndarray], cost: float) -> None:
        # loop condition checks charge cycles *and* loop_cycles
        if m is None:
            self.cycles += cost
            self.loop_cycles += cost
        else:
            np.add(self.cycles, cost, out=self.cycles, where=m)
            np.add(self.loop_cycles, cost, out=self.loop_cycles, where=m)

    # -- global memory (gather/scatter + sequential-equivalence) ------

    def _compress(self, addr, value, m: Optional[np.ndarray], is_float: bool):
        """Active-lane (positions, lanes, addrs, values) for a store."""
        if m is None:
            pos = None
            lanes = self.lanes
            k = self.n
        else:
            pos = np.flatnonzero(m)
            lanes = self.lanes[pos]
            k = len(pos)
        if _is_arr(addr):
            addrs = addr if pos is None else addr[pos]
        else:
            addrs = np.full(k, addr, np.int64)
        if _is_arr(value):
            values = value if pos is None else value[pos]
        else:
            values = np.full(k, value, np.float64 if is_float else np.int64)
        return pos, lanes, addrs, values

    def _check_addrs(self, addrs: np.ndarray) -> None:
        if len(addrs) == 0:
            return
        amin = addrs.min()
        amax = addrs.max()
        if amin < 0 or amax >= self.capacity:
            raise VectorBailout(BAIL_LANE_FAILURE)
        if amax >= self.tracked:
            raise VectorBailout(BAIL_UNTRACKED)

    def load(self, addr, m: Optional[np.ndarray], is_float: bool):
        if not _is_arr(addr):
            return self._load_uniform(addr, m, is_float)
        if m is None:
            pos = None
            lanes = self.lanes
            addrs = addr
        else:
            pos = np.flatnonzero(m)
            lanes = self.lanes[pos]
            addrs = addr[pos]
        self._check_addrs(addrs)
        ow = self.owner[addrs]
        if ((ow != -1) & (ow != lanes)).any():
            raise VectorBailout(BAIL_HAZARD)
        # mark readers: -1 none, gtid sole reader, -2 multiple readers
        rb = self.read_by[addrs]
        mark = np.where((rb == -1) | (rb == lanes), lanes, -2)
        self.read_by[addrs] = mark
        if len(addrs) > 1:
            # duplicate addresses collapse under fancy assignment
            # (last-wins); detect and demote them to "multiple readers"
            back = self.read_by[addrs]
            dup = back != mark
            if dup.any():
                self.read_by[addrs[dup]] = -2
                # every lane of a duplicated address is a co-reader
                first = np.zeros(len(addrs), bool)
                seen: Set[int] = set()
                for j, a in enumerate(addrs.tolist()):
                    if a in seen:
                        first[j] = False
                    else:
                        seen.add(a)
                        first[j] = True
                multi = np.isin(addrs, addrs[~first])
                if multi.any():
                    self.read_by[addrs[multi]] = -2
        if is_float:
            vals = self.mem.gather_f32(addrs)
        else:
            vals = self.mem.gather_i32(addrs)
        if self.footprints is not None:
            fps = self.footprints
            if pos is None:
                for j, a in enumerate(addrs.tolist()):
                    fps[j].loads.add(a)
            else:
                for j, a in zip(pos.tolist(), addrs.tolist()):
                    fps[j].loads.add(a)
        if pos is None:
            return vals
        out = np.zeros(self.n, np.float64 if is_float else np.int64)
        out[pos] = vals
        return out

    def _load_uniform(self, addr: int, m: Optional[np.ndarray], is_float: bool):
        """All active lanes read the same address: scalar result."""
        if not 0 <= addr < self.capacity:
            raise VectorBailout(BAIL_LANE_FAILURE)
        if addr >= self.tracked:
            raise VectorBailout(BAIL_UNTRACKED)
        readers = self.lanes if m is None else self.lanes[m]
        if len(readers) == 0:
            # no lane actually reads (empty active set): plain load
            return self.mem.load_f32(addr) if is_float else self.mem.load_i32(addr)
        ow = self.owner[addr]
        if ow != -1 and not (len(readers) == 1 and readers[0] == ow):
            raise VectorBailout(BAIL_HAZARD)
        rb = self.read_by[addr]
        if len(readers) > 1:
            self.read_by[addr] = -2
        elif rb == -1 or rb == readers[0]:
            self.read_by[addr] = readers[0]
        else:
            self.read_by[addr] = -2
        if self.footprints is not None:
            fps = self.footprints
            if m is None:
                for fp in fps:
                    fp.loads.add(addr)
            else:
                for j in np.flatnonzero(m).tolist():
                    fps[j].loads.add(addr)
        return self.mem.load_f32(addr) if is_float else self.mem.load_i32(addr)

    def store(self, addr, value, m: Optional[np.ndarray], is_float: bool) -> None:
        pos, lanes, addrs, values = self._compress(addr, value, m, is_float)
        if len(addrs) == 0:
            return
        self._check_addrs(addrs)
        ow = self.owner[addrs]
        if ((ow != -1) & (ow != lanes)).any():
            raise VectorBailout(BAIL_HAZARD)
        rb = self.read_by[addrs]
        if ((rb != -1) & (rb != lanes)).any():
            raise VectorBailout(BAIL_HAZARD)
        if self.footprints is not None:
            self._store_recorded(pos, addrs, values, is_float)
        elif is_float:
            self.mem.scatter_f32(addrs, values)
        else:
            self.mem.scatter_i32(addrs, values)
        self.owner[addrs] = lanes

    def _store_recorded(self, pos, addrs, values, is_float: bool) -> None:
        """Scatter while journaling per-lane (addr, old, new) bits."""
        mem = self.mem
        old = mem.gather_words(addrs)
        if is_float:
            mem.scatter_f32(addrs, values)
        else:
            mem.scatter_i32(addrs, values)
        fps = self.footprints
        positions = range(len(addrs)) if pos is None else pos.tolist()
        # per-lane "new" is the lane's own written pattern, recomputed
        # scalar (duplicates would otherwise all see the last winner)
        if is_float:
            news = [float_to_bits(float(v)) for v in values.tolist()]
        else:
            news = [int(v) & _U32 for v in values.tolist()]
        for j, a, o, nw in zip(positions, addrs.tolist(), old.tolist(), news):
            fps[j].stores.append((a, o, nw))


# ---------------------------------------------------------------------------
# expression compilation:  f(vf, vc, m) -> scalar | column
# ---------------------------------------------------------------------------

VExprFn = Callable[[dict, _VectorCtx, Optional[np.ndarray]], object]
VStmtFn = Callable[[dict, _VectorCtx, Optional[np.ndarray]], Optional[np.ndarray]]


def _truthy_mask(v, m: Optional[np.ndarray]) -> np.ndarray:
    """Active lanes where ``v`` is C-true (NaN counts as true)."""
    t = v != 0
    return t if m is None else (m & t)


def compile_vexpr(e: Expr) -> VExprFn:
    if isinstance(e, Const):
        v = e.value
        return lambda vf, vc, m: v
    if isinstance(e, Var):
        n = e.name
        return lambda vf, vc, m: vf[n]
    if isinstance(e, SpecialReg):
        n = e.name
        return lambda vf, vc, m: vf[n]
    if isinstance(e, BinOp):
        return _compile_vbinop(e)
    if isinstance(e, UnOp):
        f = compile_vexpr(e.operand)
        if e.op == "-":
            if e.dtype is DType.INT32:
                return lambda vf, vc, m: _wrap(-f(vf, vc, m))
            return lambda vf, vc, m: -f(vf, vc, m)
        if e.op == "!":
            def notop(vf, vc, m):
                v = f(vf, vc, m)
                if _is_arr(v):
                    return (v == 0).astype(np.int64)
                return 0 if truthy(v) else 1
            return notop
        if e.op == "~":
            return lambda vf, vc, m: _wrap(~f(vf, vc, m))
        raise KIRError(f"cannot compile unary {e.op!r}")
    if isinstance(e, Call):
        return _compile_vcall(e)
    if isinstance(e, Load):
        p = compile_vexpr(e.ptr)
        i = compile_vexpr(e.index)
        is_float = e.dtype is DType.FLOAT32

        def load(vf, vc, m):
            return vc.load(p(vf, vc, m) + i(vf, vc, m), m, is_float)
        return load
    raise KIRError(f"cannot vectorize expression {type(e).__name__}")


def _compile_vcall(e: Call) -> VExprFn:
    func = e.func
    fns = [compile_vexpr(a) for a in e.args]
    if func == "__float_as_int":
        f0 = fns[0]

        def fai(vf, vc, m):
            v = f0(vf, vc, m)
            if _is_arr(v):
                return _v_float_as_int(v)
            return bits_to_int(float_to_bits(float(v)))
        return fai
    impl = INTRINSIC_IMPL.get(func)
    if impl is None:
        raise KIRError(f"cannot compile intrinsic {func!r}")
    if len(fns) == 1:
        f0 = fns[0]
        vec = _VEC_UNARY.get(func)

        def call1(vf, vc, m):
            v = f0(vf, vc, m)
            if _is_arr(v):
                return vec(v) if vec is not None else _map1(impl, v)
            return impl(v)
        return call1
    if len(fns) == 2:
        f0, f1 = fns
        vec = _VEC_BINARY.get(func)

        def call2(vf, vc, m):
            a = f0(vf, vc, m)
            b = f1(vf, vc, m)
            if _is_arr(a) or _is_arr(b):
                return vec(a, b) if vec is not None else _map2(impl, a, b)
            return impl(a, b)
        return call2
    raise KIRError(f"cannot vectorize intrinsic {func!r} arity {len(fns)}")


def _compile_vbinop(e: BinOp) -> VExprFn:
    op = e.op
    l = compile_vexpr(e.left)  # noqa: E741 -- l/r mirror the BinOp fields
    r = compile_vexpr(e.right)
    lt, rt = e.left.dtype, e.right.dtype
    int_arith = e.dtype is DType.INT32 and lt is DType.INT32 and rt is DType.INT32
    ptr_arith = e.dtype is not None and e.dtype.is_pointer
    if op == "+":
        if ptr_arith:
            return lambda vf, vc, m: l(vf, vc, m) + r(vf, vc, m)
        if int_arith:
            return lambda vf, vc, m: _wrap(l(vf, vc, m) + r(vf, vc, m))
        return lambda vf, vc, m: l(vf, vc, m) + r(vf, vc, m)
    if op == "-":
        if int_arith and not ptr_arith:
            return lambda vf, vc, m: _wrap(l(vf, vc, m) - r(vf, vc, m))
        return lambda vf, vc, m: l(vf, vc, m) - r(vf, vc, m)
    if op == "*":
        if int_arith:
            return lambda vf, vc, m: _wrap(l(vf, vc, m) * r(vf, vc, m))
        return lambda vf, vc, m: l(vf, vc, m) * r(vf, vc, m)
    if op == "/":
        if int_arith:
            return _compile_idiv(l, r, imod_op=False)
        def fdivop(vf, vc, m):
            a = l(vf, vc, m)
            b = r(vf, vc, m)
            if not (_is_arr(a) or _is_arr(b)):
                return fdiv(a, b)
            return a / b  # IEEE: inf/NaN match fdiv under errstate
        return fdivop
    if op == "%":
        return _compile_idiv(l, r, imod_op=True)
    if op in ("<", "<=", ">", ">=", "==", "!="):
        cmp = {
            "<": operator.lt, "<=": operator.le, ">": operator.gt,
            ">=": operator.ge, "==": operator.eq, "!=": operator.ne,
        }[op]

        def cmpop(vf, vc, m):
            v = cmp(l(vf, vc, m), r(vf, vc, m))
            if _is_arr(v):
                return v.astype(np.int64)
            return 1 if v else 0
        return cmpop
    if op == "&&":
        def andop(vf, vc, m):
            a = l(vf, vc, m)
            if not _is_arr(a):
                if not truthy(a):
                    return 0  # short-circuit: r never evaluates
                b = r(vf, vc, m)
                if _is_arr(b):
                    return (b != 0).astype(np.int64)
                return 1 if truthy(b) else 0
            am = a != 0
            m2 = am if m is None else (m & am)
            if not m2.any():
                return np.zeros(len(a), np.int64)
            # only lanes with a true LHS evaluate the RHS (their loads,
            # faults, and crashes are the only ones that may happen)
            b = r(vf, vc, m2)
            bm = (b != 0) if _is_arr(b) else truthy(b)
            return (am & bm).astype(np.int64)
        return andop
    if op == "||":
        def orop(vf, vc, m):
            a = l(vf, vc, m)
            if not _is_arr(a):
                if truthy(a):
                    return 1
                b = r(vf, vc, m)
                if _is_arr(b):
                    return (b != 0).astype(np.int64)
                return 1 if truthy(b) else 0
            am = a != 0
            m2 = (~am) if m is None else (m & ~am)
            if not m2.any():
                return am.astype(np.int64)
            b = r(vf, vc, m2)
            bm = (b != 0) if _is_arr(b) else truthy(b)
            return (am | bm).astype(np.int64)
        return orop
    if op == "&":
        return lambda vf, vc, m: _wrap(l(vf, vc, m) & r(vf, vc, m))
    if op == "|":
        return lambda vf, vc, m: _wrap(l(vf, vc, m) | r(vf, vc, m))
    if op == "^":
        return lambda vf, vc, m: _wrap(l(vf, vc, m) ^ r(vf, vc, m))
    if op == "<<":
        return lambda vf, vc, m: _wrap(l(vf, vc, m) << (r(vf, vc, m) & 31))
    if op == ">>":
        return lambda vf, vc, m: _wrap(l(vf, vc, m) >> (r(vf, vc, m) & 31))
    raise KIRError(f"cannot compile operator {op!r}")


def _compile_idiv(l: VExprFn, r: VExprFn, imod_op: bool) -> VExprFn:
    scalar_impl = imod if imod_op else idiv

    def divop(vf, vc, m):
        a = l(vf, vc, m)
        b = r(vf, vc, m)
        if not (_is_arr(a) or _is_arr(b)):
            return scalar_impl(a, b)  # raises KernelCrash on /0
        bz = (b == 0) if _is_arr(b) else b == 0
        if _is_arr(bz):
            active_zero = bz if m is None else (bz & m)
            if active_zero.any():
                raise VectorBailout(BAIL_LANE_FAILURE)
            b = np.where(bz, 1, b)  # inactive-lane garbage: neutralize
        elif bz:
            raise VectorBailout(BAIL_LANE_FAILURE)
        q = np.abs(a) // np.abs(b) if not imod_op else np.abs(a) % np.abs(b)
        if imod_op:
            neg = (a < 0) if _is_arr(a) else a < 0
            return _wrap(np.where(neg, -q, q))
        neg = ((a < 0) != (b < 0))
        return _wrap(np.where(neg, -q, q))
    return divop


# ---------------------------------------------------------------------------
# statement compilation:  s(vf, vc, m) -> surviving mask
# ---------------------------------------------------------------------------


def _run_vblock(fns: List[VStmtFn], vf: dict, vc: _VectorCtx,
                m: Optional[np.ndarray]) -> Optional[np.ndarray]:
    for fn in fns:
        m = fn(vf, vc, m)
        if m is not None and not m.any():
            break
    return m


class _VectorCompiler:
    def __init__(self, kernel: Kernel, costmodel, varying: Set[str]):
        self.kernel = kernel
        self.cm = costmodel
        self.varying = varying

    def _uniform(self, e: Expr) -> bool:
        return not expr_varies(e, self.varying, GRID_SEEDS)

    def compile_stmt(self, s: Stmt) -> VStmtFn:
        cm = self.cm
        in_loop = s.in_loop
        if isinstance(s, (Decl, Assign)):
            if isinstance(s, Decl):
                rhs, target = s.init, s.var_dtype
            else:
                rhs, target = s.value, s.target_dtype
            val = compile_vexpr(rhs)
            cost = (cm.expr_cost(rhs) + cm.write_cost) * s.cost_scale
            name = s.name
            to_float = target is DType.FLOAT32 and rhs.dtype is DType.INT32
            to_int = target is DType.INT32 and rhs.dtype is DType.FLOAT32

            def assign(vf, vc, m):
                vc.tick(m)
                vc.charge(m, cost, in_loop)
                v = val(vf, vc, m)
                if to_float:
                    v = _v_float(v) if _is_arr(v) else float(v)
                elif to_int:
                    v = _v_c_int_cast(v)
                if m is None:
                    vf[name] = v
                else:
                    old = vf.get(name)
                    # a name first defined under divergence holds its
                    # value only in active lanes; the rest keep what
                    # they had (or a dead placeholder — KIR scoping
                    # guarantees they redefine before reading)
                    vf[name] = v if old is None else np.where(m, v, old)
                return m
            return assign
        if isinstance(s, Store):
            p = compile_vexpr(s.ptr)
            i = compile_vexpr(s.index)
            v = compile_vexpr(s.value)
            is_float = s.ptr.dtype.element is DType.FLOAT32
            cost = (
                cm.expr_cost(s.ptr)
                + cm.expr_cost(s.index)
                + cm.expr_cost(s.value)
                + cm.mem_global
            ) * s.cost_scale

            def store(vf, vc, m):
                vc.tick(m)
                vc.charge(m, cost, in_loop)
                addr = p(vf, vc, m) + i(vf, vc, m)
                vc.store(addr, v(vf, vc, m), m, is_float)
                return m
            return store
        if isinstance(s, For):
            return self._compile_for(s)
        if isinstance(s, While):
            return self._compile_while(s)
        if isinstance(s, If):
            return self._compile_if(s)
        if isinstance(s, Break):
            def brk(vf, vc, m):
                vc.tick_nocheck(m)
                fr = vc.loop_stack[-1]
                bm = np.ones(vc.n, bool) if m is None else m
                fr.brk = bm if fr.brk is None else (fr.brk | bm)
                return vc.zeros
            return brk
        if isinstance(s, Continue):
            def cont(vf, vc, m):
                vc.tick_nocheck(m)
                fr = vc.loop_stack[-1]
                cm_ = np.ones(vc.n, bool) if m is None else m
                fr.cont = cm_ if fr.cont is None else (fr.cont | cm_)
                return vc.zeros
            return cont
        if isinstance(s, Return):
            def ret(vf, vc, m):
                vc.tick_nocheck(m)
                return vc.zeros
            return ret
        if isinstance(s, CallStmt):
            cost = cm.libcall_cost(s.func) * s.cost_scale

            def libcall(vf, vc, m):
                # the engine only serves launches whose library is a
                # no-op for every vectorized lane (null library, or FI
                # with the targeted gtid excluded from the lane set),
                # so hooks charge their cost and nothing else
                vc.tick(m)
                if cost:
                    vc.charge(m, cost, in_loop)
                return m
            return libcall
        raise KIRError(f"cannot vectorize statement {type(s).__name__}")

    # -- control flow --------------------------------------------------

    def _compile_if(self, s: If) -> VStmtFn:
        cond_fn = compile_vexpr(s.cond)
        cost = (self.cm.expr_cost(s.cond) + self.cm.branch_cost) * s.cost_scale
        then_fns = [self.compile_stmt(b) for b in s.then]
        else_fns = [self.compile_stmt(b) for b in s.els]
        in_loop = s.in_loop
        uniform = self._uniform(s.cond)

        if uniform:
            # statically grid-uniform: scalar control flow (the taint
            # analysis over-approximates divergence, so a uniform
            # verdict is sound; the isinstance check is a backstop)
            def run_uniform(vf, vc, m):
                vc.tick(m)
                vc.charge(m, cost, in_loop)
                c = cond_fn(vf, vc, m)
                if _is_arr(c):
                    raise VectorBailout(BAIL_ANALYSIS)
                return _run_vblock(then_fns if truthy(c) else else_fns, vf, vc, m)
            return run_uniform

        def run(vf, vc, m):
            vc.tick(m)
            vc.charge(m, cost, in_loop)
            c = cond_fn(vf, vc, m)
            if not _is_arr(c):
                return _run_vblock(then_fns if truthy(c) else else_fns, vf, vc, m)
            mt = _truthy_mask(c, m)
            me = (c == 0) if m is None else (m & (c == 0))
            out_t = mt
            if mt.any():
                out_t = _run_vblock(then_fns, vf, vc, mt)
                if out_t is None:
                    out_t = mt
            out_e = me
            if me.any():
                out_e = _run_vblock(else_fns, vf, vc, me)
                if out_e is None:
                    out_e = me
            return out_t | out_e
        return run

    def _compile_for(self, s: For) -> VStmtFn:
        init_fn = self.compile_stmt(s.init) if s.init is not None else None
        cond_fn = compile_vexpr(s.cond)
        cond_cost = self.cm.expr_cost(s.cond) + self.cm.branch_cost
        update_fn = self.compile_stmt(s.update) if s.update is not None else None
        body_fns = [self.compile_stmt(b) for b in s.body]
        return self._loop_runner(init_fn, cond_fn, cond_cost, update_fn, body_fns)

    def _compile_while(self, s: While) -> VStmtFn:
        cond_fn = compile_vexpr(s.cond)
        cond_cost = self.cm.expr_cost(s.cond) + self.cm.branch_cost
        body_fns = [self.compile_stmt(b) for b in s.body]
        return self._loop_runner(None, cond_fn, cond_cost, None, body_fns)

    @staticmethod
    def _loop_runner(init_fn, cond_fn, cond_cost, update_fn, body_fns) -> VStmtFn:
        """Masked iteration with a draining active-lane mask.

        Each iteration check ticks and charges ``cond_cost`` to every
        still-active lane — including the failing check that exits a
        lane — exactly like the scalar loop head.  Lanes leave through
        the condition, ``break`` (skipping the update), or ``return``
        (leaving the kernel); ``continue`` rejoins before the update.
        """

        def run(vf, vc, m):
            if init_fn is not None:
                init_fn(vf, vc, m)
            active = m
            exited: Optional[np.ndarray] = None  # None = no lane yet
            while True:
                vc.tick(active)
                vc.charge_loop_head(active, cond_cost)
                c = cond_fn(vf, vc, active)
                if not _is_arr(c):
                    if not truthy(c):
                        if active is None:
                            return None  # uniform trip count, all exit
                        exited = active if exited is None else (exited | active)
                        break
                    live = active
                else:
                    cm_ = c != 0
                    live = cm_ if active is None else (active & cm_)
                    gone = (~cm_) if active is None else (active & ~cm_)
                    if gone.any():
                        exited = gone if exited is None else (exited | gone)
                    if not live.any():
                        break
                frame = _LoopFrame()
                vc.loop_stack.append(frame)
                try:
                    m_body = _run_vblock(body_fns, vf, vc, live)
                finally:
                    vc.loop_stack.pop()
                if m_body is None:
                    m_body = live
                if frame.cont is not None:
                    m_body = frame.cont if m_body is None else (m_body | frame.cont)
                if frame.brk is not None:
                    exited = frame.brk if exited is None else (exited | frame.brk)
                nonempty = m_body is None or m_body.any()
                if nonempty and update_fn is not None:
                    update_fn(vf, vc, m_body)
                active = m_body
                if not nonempty:
                    break
            return exited if exited is not None else vc.zeros
        return run


# ---------------------------------------------------------------------------
# the compiled vector program
# ---------------------------------------------------------------------------


@dataclass
class VectorRunResult:
    """Per-lane outcome of one vectorized grid sweep."""

    lanes: np.ndarray          #: gtids executed (int64)
    steps: np.ndarray          #: per-lane statement counts
    cycles: np.ndarray         #: per-lane cost-model cycles
    loop_cycles: np.ndarray    #: per-lane cycles inside loops
    #: Per-word last-writer gtid (-1 none): an ndarray over dense
    #: memory, a sparse ``PagedWords`` map over paged memory (same
    #: indexing spelling either way).
    owner: object
    read_by: object            #: per-word reader gtid (-1 none, -2 many)
    tracked: int               #: words covered by owner/read_by
    footprints: Optional[List[ThreadFootprint]] = None

    @property
    def total_cycles(self) -> float:
        return float(self.cycles.sum())

    @property
    def total_loop_cycles(self) -> float:
        return float(self.loop_cycles.sum())

    @property
    def max_steps(self) -> int:
        return int(self.steps.max()) if len(self.steps) else 0


class VectorizedKernel:
    """A kernel compiled to a whole-grid NumPy array program."""

    def __init__(self, kernel: Kernel, costmodel):
        if not kernel.validated:
            raise KIRValidationError("validate the kernel before compiling")
        obstacle = vectorize_obstacle(kernel)
        if obstacle is not None:
            raise KIRValidationError(
                f"kernel {kernel.name} cannot vectorize: {obstacle}"
            )
        self.kernel = kernel
        self.costmodel = costmodel
        #: grid-varying names (GRID_SEEDS taint) — drives the static
        #: uniform-branch specialization and the compile span metadata
        self.varying = grid_varying_names(kernel)
        self.divergent_branches = sum(
            1 for stmt, _d in walk_stmts(kernel.body)
            if isinstance(stmt, (If, For, While))
            and expr_varies(stmt.cond, self.varying, GRID_SEEDS)
        )
        compiler = _VectorCompiler(kernel, costmodel, self.varying)
        self._body: List[VStmtFn] = [compiler.compile_stmt(s) for s in kernel.body]

    def run_lanes(
        self,
        memory: GlobalMemory,
        base_frame: dict,
        gx: int,
        gy: int,
        bx: int,
        by: int,
        lanes: np.ndarray,
        budget: int,
        record_footprints: bool = False,
    ) -> VectorRunResult:
        """Execute ``lanes`` (an int64 gtid array) as one array program.

        Raises :class:`VectorBailout` whenever bit-exact sequential
        semantics cannot be guaranteed; the caller falls back to the
        scalar engines against the pre-launch memory snapshot.
        """
        block_size = bx * by
        block = lanes // block_size
        tib = lanes % block_size
        vf = dict(base_frame)
        vf["blockIdx.x"] = block % gx
        vf["blockIdx.y"] = block // gx
        vf["threadIdx.x"] = tib % bx
        vf["threadIdx.y"] = tib // bx
        vc = _VectorCtx(memory, lanes, budget, record_footprints)
        with np.errstate(all="ignore"):
            try:
                _run_vblock(self._body, vf, vc, None)
            except (KernelCrash, KernelHang):
                # a uniform-expression crash (e.g. division by zero on
                # a scalar operand) hits every lane; the scalar rerun
                # attributes it to the lowest gtid at the right point
                raise VectorBailout(BAIL_LANE_FAILURE)
        return VectorRunResult(
            lanes=lanes,
            steps=vc.steps,
            cycles=vc.cycles,
            loop_cycles=vc.loop_cycles,
            owner=vc.owner,
            read_by=vc.read_by,
            tracked=vc.tracked,
            footprints=vc.footprints,
        )


class VectorReplayGuard(WordReinterpret):
    """Memory view for the targeted lane's scalar replay.

    After the untargeted lanes ran vectorized, the FI-targeted gtid
    re-executes scalar against true device memory.  Sequential
    equivalence holds only while the target touches no word another
    lane wrote (load/store) or read (store); any conflict raises
    :class:`VectorBailout` and the whole launch reruns scalar.  Stores
    are journaled so a bailed replay unwinds its own writes.
    """

    __slots__ = ("mem", "lane", "owner", "read_by", "tracked", "journal")

    def __init__(self, mem: GlobalMemory, lane: int, vres: VectorRunResult):
        self.mem = mem
        self.lane = lane
        self.owner = vres.owner
        self.read_by = vres.read_by
        self.tracked = vres.tracked
        self.journal: Dict[int, int] = {}

    def _check_load(self, addr: int) -> None:
        if 0 <= addr < self.tracked:
            ow = self.owner[addr]
            if ow != -1 and ow != self.lane:
                raise VectorBailout(BAIL_REPLAY_HAZARD)

    def load_word(self, addr: int) -> int:
        self._check_load(addr)
        return self.mem.load_word(addr)

    def load_f32(self, addr: int) -> float:
        self._check_load(addr)
        return self.mem.load_f32(addr)

    def load_i32(self, addr: int) -> int:
        self._check_load(addr)
        return self.mem.load_i32(addr)

    def store_word(self, addr: int, bits: int) -> None:
        if 0 <= addr < self.tracked:
            ow = self.owner[addr]
            rb = self.read_by[addr]
            if (ow != -1 and ow != self.lane) or (rb != -1 and rb != self.lane):
                raise VectorBailout(BAIL_REPLAY_HAZARD)
            if addr not in self.journal:
                self.journal[addr] = self.mem.load_word(addr)
        elif addr < 0 or addr >= self.mem.capacity:
            self.mem.store_word(addr, bits)  # raises the scalar error
            return
        else:
            if addr not in self.journal:
                self.journal[addr] = self.mem.load_word(addr)
        self.mem.store_word(addr, bits)

    def store_f32(self, addr: int, value: float) -> None:
        # route through store_word for journaling; float_to_bits is
        # bit-identical to the GlobalMemory fast path
        self.store_word(addr, float_to_bits(value))

    def store_i32(self, addr: int, value: int) -> None:
        self.store_word(addr, value & _U32)

    def rollback(self) -> None:
        if not self.journal:
            return
        n = len(self.journal)
        self.mem.scatter_words(
            np.fromiter(self.journal.keys(), np.int64, count=n),
            np.fromiter(self.journal.values(), np.uint32, count=n),
        )
