"""Generator-based lockstep interpreter for kernels with barriers.

Threads of a block run as coroutines that yield at ``__syncthreads``;
a round-robin scheduler advances every active thread to the next
barrier (or to completion) before any thread proceeds past it.  A
thread that exits early simply leaves the active set — matching the
semantics of modern CUDA barriers, which only wait on non-exited
threads — so a fault that diverts one thread around a barrier degrades
results rather than deadlocking the simulator (a real hang is still
modeled via the per-thread statement budget).

This path is an order of magnitude slower than the closure compiler,
and is selected automatically only for ``kernel.uses_sync`` kernels
(TPACF's shared-memory histogram in this repository).
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.errors import KernelCrash, KernelHang, KIRValidationError
from repro.kir.astnodes import (
    Assign,
    AtomicAdd,
    Break,
    CallStmt,
    Continue,
    Decl,
    Expr,
    For,
    If,
    Kernel,
    Return,
    SharedStore,
    Stmt,
    Store,
    SyncThreads,
    While,
)
from repro.kir.interp.compiler import ExprFn, compile_expr, _converter
from repro.kir.interp.evalcore import (
    BreakSignal,
    ContinueSignal,
    ExecContext,
    ReturnSignal,
    truthy,
)
from repro.kir.types import DType
from repro.bits import wrap_i32


class _ThreadState:
    __slots__ = ("steps", "thread")

    def __init__(self, thread: int):
        self.steps = 0
        self.thread = thread


class LockstepProgram:
    """A kernel prepared for lockstep execution (exprs precompiled)."""

    def __init__(self, kernel: Kernel, costmodel=None):
        if not kernel.validated:
            raise KIRValidationError("validate the kernel before compiling")
        if costmodel is None:
            from repro.gpu.costmodel import CostModel

            costmodel = CostModel()
        self.kernel = kernel
        self.cm = costmodel
        self._efn: Dict[int, ExprFn] = {}
        self._ecost: Dict[int, float] = {}

    # -- expression cache ---------------------------------------------
    def _fn(self, e: Expr) -> ExprFn:
        f = self._efn.get(id(e))
        if f is None:
            f = compile_expr(e)
            self._efn[id(e)] = f
        return f

    def _cost(self, e: Expr) -> float:
        c = self._ecost.get(id(e))
        if c is None:
            c = self.cm.expr_cost(e)
            self._ecost[id(e)] = c
        return c

    # -- execution ------------------------------------------------------
    def run_block(self, frames: List[dict], ctx: ExecContext) -> None:
        """Run all threads of one block in lockstep until completion."""
        states = [_ThreadState(t) for t in range(len(frames))]
        gens = [
            self._thread_gen(frames[t], states[t], ctx) for t in range(len(frames))
        ]
        active = list(range(len(frames)))
        while active:
            still: List[int] = []
            for t in active:
                ctx.thread = t
                try:
                    next(gens[t])
                    still.append(t)  # parked at a barrier
                except StopIteration:
                    pass
            active = still
        for st in states:
            if st.steps > ctx.max_steps:
                ctx.max_steps = st.steps

    def _thread_gen(self, fr: dict, st: _ThreadState, ctx: ExecContext) -> Iterator:
        try:
            yield from self._exec_block(self.kernel.body, fr, st, ctx)
        except ReturnSignal:
            return

    def _exec_block(self, stmts: List[Stmt], fr: dict, st: _ThreadState, ctx) -> Iterator:
        for s in stmts:
            yield from self._exec_stmt(s, fr, st, ctx)

    def _tick(self, st: _ThreadState, ctx: ExecContext) -> None:
        st.steps += 1
        if st.steps > ctx.budget:
            raise KernelHang(f"thread {st.thread} exceeded {ctx.budget} statements")

    def _exec_stmt(self, s: Stmt, fr: dict, st: _ThreadState, ctx) -> Iterator:
        if isinstance(s, SyncThreads):
            self._tick(st, ctx)
            ctx.cycles += self.cm.sync_cost
            yield "sync"
            return
        if isinstance(s, (Decl, Assign)):
            self._tick(st, ctx)
            if isinstance(s, Decl):
                rhs, target = s.init, s.var_dtype
            else:
                rhs, target = s.value, s.target_dtype
            cost = (self._cost(rhs) + self.cm.write_cost) * s.cost_scale
            ctx.cycles += cost
            if s.in_loop:
                ctx.loop_cycles += cost
            value = self._fn(rhs)(fr, ctx)
            conv = _converter(target, rhs.dtype)
            fr[s.name] = value if conv is None else conv(value)
            return
        if isinstance(s, Store):
            self._tick(st, ctx)
            cost = (
                self._cost(s.ptr) + self._cost(s.index) + self._cost(s.value)
                + self.cm.mem_global
            ) * s.cost_scale
            ctx.cycles += cost
            if s.in_loop:
                ctx.loop_cycles += cost
            addr = self._fn(s.ptr)(fr, ctx) + self._fn(s.index)(fr, ctx)
            value = self._fn(s.value)(fr, ctx)
            if s.ptr.dtype.element is DType.FLOAT32:
                ctx.store_f32(addr, value)
            else:
                ctx.store_i32(addr, value)
            return
        if isinstance(s, SharedStore):
            self._tick(st, ctx)
            cost = self._cost(s.index) + self._cost(s.value) + self.cm.mem_shared
            ctx.cycles += cost
            if s.in_loop:
                ctx.loop_cycles += cost
            arr = ctx.shared[s.array]
            idx = self._fn(s.index)(fr, ctx)
            if not 0 <= idx < len(arr):
                raise KernelCrash(
                    f"shared memory OOB write {s.array}[{idx}]", st.thread, ctx.block
                )
            arr[idx] = self._fn(s.value)(fr, ctx)
            return
        if isinstance(s, AtomicAdd):
            self._tick(st, ctx)
            value = self._fn(s.value)(fr, ctx)
            idx = self._fn(s.index)(fr, ctx)
            if s.space == "shared":
                ctx.cycles += self.cm.atomic_shared
                arr = ctx.shared[s.array]
                if not 0 <= idx < len(arr):
                    raise KernelCrash(
                        f"shared memory OOB atomic {s.array}[{idx}]", st.thread, ctx.block
                    )
                result = arr[idx] + value
                arr[idx] = wrap_i32(result) if isinstance(result, int) else result
            else:
                ctx.cycles += self.cm.atomic_global
                addr = self._fn(s.target)(fr, ctx) + idx
                if s.target.dtype.element is DType.FLOAT32:
                    ctx.store_f32(addr, ctx.load_f32(addr) + value)
                else:
                    ctx.store_i32(
                        addr, wrap_i32(ctx.load_i32(addr) + value)
                    )
            if s.in_loop:
                ctx.loop_cycles += self.cm.atomic_shared
            return
        if isinstance(s, For):
            if s.init is not None:
                yield from self._exec_stmt(s.init, fr, st, ctx)
            cond_fn = self._fn(s.cond)
            cond_cost = self._cost(s.cond) + self.cm.branch_cost
            try:
                while True:
                    self._tick(st, ctx)
                    ctx.cycles += cond_cost
                    ctx.loop_cycles += cond_cost
                    if not truthy(cond_fn(fr, ctx)):
                        break
                    try:
                        yield from self._exec_block(s.body, fr, st, ctx)
                    except ContinueSignal:
                        pass
                    if s.update is not None:
                        yield from self._exec_stmt(s.update, fr, st, ctx)
            except BreakSignal:
                pass
            return
        if isinstance(s, While):
            cond_fn = self._fn(s.cond)
            cond_cost = self._cost(s.cond) + self.cm.branch_cost
            try:
                while True:
                    self._tick(st, ctx)
                    ctx.cycles += cond_cost
                    ctx.loop_cycles += cond_cost
                    if not truthy(cond_fn(fr, ctx)):
                        break
                    try:
                        yield from self._exec_block(s.body, fr, st, ctx)
                    except ContinueSignal:
                        pass
            except BreakSignal:
                pass
            return
        if isinstance(s, If):
            self._tick(st, ctx)
            cost = (self._cost(s.cond) + self.cm.branch_cost) * s.cost_scale
            ctx.cycles += cost
            if s.in_loop:
                ctx.loop_cycles += cost
            if truthy(self._fn(s.cond)(fr, ctx)):
                yield from self._exec_block(s.then, fr, st, ctx)
            else:
                yield from self._exec_block(s.els, fr, st, ctx)
            return
        if isinstance(s, Break):
            self._tick(st, ctx)
            raise BreakSignal()
        if isinstance(s, Continue):
            self._tick(st, ctx)
            raise ContinueSignal()
        if isinstance(s, Return):
            self._tick(st, ctx)
            raise ReturnSignal()
        if isinstance(s, CallStmt):
            self._tick(st, ctx)
            cost = self.cm.libcall_cost(s.func)
            if cost:
                ctx.cycles += cost
                if s.in_loop:
                    ctx.loop_cycles += cost
            args = [self._fn(a)(fr, ctx) for a in s.args]
            ctx.lib.invoke(s.func, ctx, fr, args)
            return
        raise KIRValidationError(f"lockstep cannot execute {type(s).__name__}")
