"""AST node definitions for KIR.

Nodes are plain mutable dataclasses.  Two pieces of derived metadata
are filled in by :func:`repro.kir.validate.validate_kernel`:

* every expression gets a static ``dtype``;
* every *defining* statement (``Decl``, ``Assign``, loop init/update)
  gets a ``site`` id — the paper's **virtual variable**: "a subset of
  the live range of program state where the subset has one definition
  and multiple uses" (Section V.A).  Fault-injection targets, the
  profiler, and both detectors all key off site ids.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.kir.types import DType

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class of all KIR expressions."""

    #: Static type, assigned by validation.
    dtype: Optional[DType] = field(default=None, init=False, repr=False, compare=False)


@dataclass
class Const(Expr):
    """Literal constant (int, float, or str for library-call arguments)."""

    value: object = 0

    def __post_init__(self) -> None:
        if isinstance(self.value, bool):
            self.value = int(self.value)


@dataclass
class Var(Expr):
    """Reference to a local variable or kernel parameter."""

    name: str = ""


@dataclass
class SpecialReg(Expr):
    """CUDA special register: threadIdx.x, blockIdx.y, blockDim.x, ..."""

    name: str = "threadIdx.x"

    VALID = (
        "threadIdx.x",
        "threadIdx.y",
        "blockIdx.x",
        "blockIdx.y",
        "blockDim.x",
        "blockDim.y",
        "gridDim.x",
        "gridDim.y",
    )


@dataclass
class BinOp(Expr):
    """Binary operation with C semantics."""

    op: str = "+"
    left: Expr = None
    right: Expr = None

    ARITH = ("+", "-", "*", "/", "%")
    COMPARE = ("<", "<=", ">", ">=", "==", "!=")
    LOGICAL = ("&&", "||")
    BITWISE = ("&", "|", "^", "<<", ">>")


@dataclass
class UnOp(Expr):
    """Unary operation: arithmetic negate, logical not, bitwise not."""

    op: str = "-"
    operand: Expr = None

    VALID = ("-", "!", "~")


@dataclass
class Call(Expr):
    """Intrinsic function call (sqrt, sin, min, casts, ...)."""

    func: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Load(Expr):
    """Global-memory load: ``ptr[index]``."""

    ptr: Expr = None
    index: Expr = None


@dataclass
class SharedLoad(Expr):
    """Shared-memory load: ``name[index]`` for a declared shared array."""

    array: str = ""
    index: Expr = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class of all KIR statements.

    ``site`` is the virtual-variable id for defining statements (-1
    otherwise).  ``in_loop`` / ``loop_id`` locate the statement in the
    loop nest; both are filled by validation and used for cycle
    attribution (Figure 4) and detector placement.
    """

    site: int = field(default=-1, init=False, repr=False, compare=False)
    in_loop: bool = field(default=False, init=False, repr=False, compare=False)
    loop_id: int = field(default=-1, init=False, repr=False, compare=False)
    #: Cycle-cost multiplier.  Instrumentation passes set this below 1
    #: for statements that are data-independent of the original code
    #: (duplicates, checksum updates) and therefore dual-issue into
    #: scheduler slack on a real GPU.
    cost_scale: float = field(default=1.0, init=False, repr=False, compare=False)


@dataclass
class Decl(Stmt):
    """Declaration with initializer: ``float x = expr;`` — a definition."""

    name: str = ""
    var_dtype: DType = DType.FLOAT32
    init: Expr = None


@dataclass
class Assign(Stmt):
    """Re-assignment: ``x = expr;`` — a (new) virtual-variable definition."""

    name: str = ""
    value: Expr = None
    #: Declared type of the target, filled in by validation.
    target_dtype: Optional[DType] = field(
        default=None, init=False, repr=False, compare=False
    )


@dataclass
class Store(Stmt):
    """Global-memory store: ``ptr[index] = value;``"""

    ptr: Expr = None
    index: Expr = None
    value: Expr = None


@dataclass
class SharedStore(Stmt):
    """Shared-memory store: ``name[index] = value;``"""

    array: str = ""
    index: Expr = None
    value: Expr = None


@dataclass
class AtomicAdd(Stmt):
    """``atomicAdd(&arr[index], value)`` on shared or global memory."""

    space: str = "shared"  # "shared" | "global"
    target: Expr = None  # pointer expr (global) — None for shared
    array: str = ""  # shared array name — "" for global
    index: Expr = None
    value: Expr = None


@dataclass
class For(Stmt):
    """C-style for loop.  ``init`` is a Decl, ``update`` an Assign."""

    init: Optional[Decl] = None
    cond: Expr = None
    update: Optional[Assign] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    """While loop (also used for do-while lowering by the parser)."""

    cond: Expr = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    """Two-armed conditional."""

    cond: Expr = None
    then: List[Stmt] = field(default_factory=list)
    els: List[Stmt] = field(default_factory=list)


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    """Early thread exit (``return;`` in a ``void`` kernel)."""


@dataclass
class SyncThreads(Stmt):
    """``__syncthreads()`` barrier — forces the lockstep interpreter."""


@dataclass
class CallStmt(Stmt):
    """Call into a bound instrumentation library (Figure 12).

    The interpreter routes any ``__hauberk_*`` function to the library
    object bound at launch; args are evaluated before the call except
    string constants, which pass through verbatim (used for variable
    names so the library can read/write the calling frame).
    """

    func: str = ""
    args: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Kernel container
# ---------------------------------------------------------------------------


@dataclass
class KernelParam:
    """Formal parameter of a kernel (a virtual variable per Section V.A)."""

    name: str
    dtype: DType
    site: int = field(default=-1, repr=False, compare=False)


@dataclass
class SharedDecl:
    """Per-block shared-memory array declaration."""

    name: str
    dtype: DType
    size: int


@dataclass
class Kernel:
    """A GPU kernel: the unit the Hauberk translator instruments."""

    name: str
    params: List[KernelParam] = field(default_factory=list)
    shared: List[SharedDecl] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)

    #: Set by validation.
    validated: bool = field(default=False, repr=False, compare=False)
    uses_sync: bool = field(default=False, repr=False, compare=False)
    n_sites: int = field(default=0, repr=False, compare=False)

    def clone(self) -> "Kernel":
        """Deep copy for transformation passes (translator, baselines)."""
        return copy.deepcopy(self)

    @property
    def shared_mem_words(self) -> int:
        """Total shared memory footprint in 4-byte words."""
        return sum(s.size for s in self.shared)

    def param(self, name: str) -> KernelParam:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"kernel {self.name} has no parameter {name!r}")


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def child_exprs(stmt: Stmt) -> List[Expr]:
    """Direct expression children of a statement (evaluation order)."""
    if isinstance(stmt, Decl):
        return [stmt.init] if stmt.init is not None else []
    if isinstance(stmt, Assign):
        return [stmt.value]
    if isinstance(stmt, Store):
        return [stmt.ptr, stmt.index, stmt.value]
    if isinstance(stmt, SharedStore):
        return [stmt.index, stmt.value]
    if isinstance(stmt, AtomicAdd):
        out = []
        if stmt.target is not None:
            out.append(stmt.target)
        out.extend([stmt.index, stmt.value])
        return out
    if isinstance(stmt, For):
        return [stmt.cond] if stmt.cond is not None else []
    if isinstance(stmt, While):
        return [stmt.cond]
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, CallStmt):
        return list(stmt.args)
    return []


def child_blocks(stmt: Stmt) -> List[List[Stmt]]:
    """Nested statement lists of a compound statement."""
    if isinstance(stmt, For):
        return [stmt.body]
    if isinstance(stmt, While):
        return [stmt.body]
    if isinstance(stmt, If):
        return [stmt.then, stmt.els]
    return []


def walk_exprs(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_exprs(expr.left)
        yield from walk_exprs(expr.right)
    elif isinstance(expr, UnOp):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, Call):
        for a in expr.args:
            yield from walk_exprs(a)
    elif isinstance(expr, Load):
        yield from walk_exprs(expr.ptr)
        yield from walk_exprs(expr.index)
    elif isinstance(expr, SharedLoad):
        yield from walk_exprs(expr.index)


def walk_stmts(body: List[Stmt], _depth: int = 0) -> Iterator[Tuple[Stmt, int]]:
    """Pre-order traversal of a statement list yielding (stmt, loop_depth).

    Loop init/update statements are yielded as part of their ``For``
    (at the loop's own depth for init, inside for update), matching
    how the validator assigns ``in_loop``.
    """
    for stmt in body:
        yield stmt, _depth
        if isinstance(stmt, For):
            if stmt.init is not None:
                yield stmt.init, _depth
            if stmt.update is not None:
                yield stmt.update, _depth + 1
            yield from walk_stmts(stmt.body, _depth + 1)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body, _depth + 1)
        elif isinstance(stmt, If):
            yield from walk_stmts(stmt.then, _depth)
            yield from walk_stmts(stmt.els, _depth)


def defining_statements(body: List[Stmt]) -> Iterator[Tuple[Stmt, int]]:
    """All virtual-variable definitions with their loop depth."""
    for stmt, depth in walk_stmts(body):
        if isinstance(stmt, (Decl, Assign)):
            yield stmt, depth
