"""Command-line interface: regenerate paper experiments from a shell.

Usage::

    python -m repro list                      # available experiments
    python -m repro run fig04 --scale loopy   # regenerate one figure
    python -m repro run all --scale smoke     # everything, fast
    python -m repro run fig04 --trace t.jsonl # + a JSON-lines trace
    python -m repro run fig04 --json-dir out/ # + tables as JSON
    python -m repro run fig14 --run-dir runs  # durable trial journal
    python -m repro run fig14 --resume runs   # resume a killed campaign
    python -m repro run sec9c --progress --profile --run-dir runs
                                              # live progress + phase profile
    python -m repro report runs               # post-mortem of a journaled run
    python -m repro metrics fig04             # Prometheus metrics dump
    python -m repro workloads                 # benchmark inventory
    python -m repro inspect CP --mode ft      # show instrumented source
    python -m repro serve --port 7070 --fleet 2 --run-dir runs
                                              # campaign fleet coordinator
    python -m repro submit --endpoint 127.0.0.1:7070 --workload cp
                                              # ship a campaign to it
    python -m repro status --endpoint 127.0.0.1:7070
                                              # fleet queue/lease/run state
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import sys
import time
from typing import Callable, Dict, Tuple

from repro.harness.config import BENCH, LOOPY, SMOKE

_SCALES = {"smoke": SMOKE, "bench": BENCH, "loopy": LOOPY}


def _workers_arg(value: str):
    """argparse type for --workers: a count, or 'auto' for one per CPU."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def _campaign_parent() -> argparse.ArgumentParser:
    """Shared campaign flags, parsed into one ``CampaignOptions``.

    A single parent parser keeps ``run`` and ``metrics`` (and any future
    campaign-driving subcommand) flag-for-flag identical.
    """
    parent = argparse.ArgumentParser(add_help=False)
    grp = parent.add_argument_group("campaign execution")
    grp.add_argument("--workers", type=_workers_arg, metavar="N",
                     help="campaign worker processes (or 'auto'; default 1)")
    grp.add_argument("--no-differential", action="store_true",
                     help="run every campaign trial as a full grid "
                          "execution instead of differential replay")
    grp.add_argument("--run-dir", metavar="DIR",
                     help="journal every campaign trial under DIR "
                          "(one subdirectory per campaign fingerprint)")
    grp.add_argument("--resume", metavar="DIR",
                     help="resume campaigns from the journal under DIR: "
                          "already-recorded trials replay instead of "
                          "re-executing (implies journaling to DIR)")
    grp.add_argument("--retries", type=int, metavar="N",
                     help="worker deaths tolerated per fault spec before "
                          "quarantine (0 = fail the campaign; default 2)")
    grp.add_argument("--trial-timeout", type=float, metavar="SECONDS",
                     help="per-trial wall-clock budget; a trial exceeding "
                          "it is classified as a hang")
    grp.add_argument("--progress", action="store_true",
                     help="render a live progress line (bar, trials/sec, "
                          "ETA, outcome tallies) on stderr")
    grp.add_argument("--profile", action="store_true",
                     help="attribute wall-clock to campaign phases; "
                          "journaled campaigns also write profile.json")
    grp.add_argument("--budget", type=int, metavar="N",
                     help="plan campaigns statistically: run only N trials "
                          "per campaign, allocated across strata, and "
                          "extrapolate rates to the full fault population")
    grp.add_argument("--plan", choices=("stratified", "neyman"),
                     help="budget allocation method (default stratified; "
                          "neyman runs a quarter-budget pilot first and "
                          "weights strata by observed SDC variance)")
    grp.add_argument("--confidence", type=float, metavar="LEVEL",
                     help="confidence level for planned-campaign interval "
                          "estimates, in (0, 1) (default 0.95)")
    grp.add_argument("--engine",
                     choices=("auto", "vector", "closure", "lockstep"),
                     help="kernel execution engine (default auto: "
                          "vectorized array programs where bit-exact, "
                          "scalar fallback otherwise)")
    grp.add_argument("--fleet", type=int, metavar="N",
                     help="run campaigns through an in-process fleet "
                          "coordinator with N spawned worker processes "
                          "(bit-identical to --workers)")
    grp.add_argument("--endpoint", metavar="HOST:PORT",
                     help="submit campaigns to a running "
                          "'python -m repro serve' coordinator instead "
                          "of executing locally")
    return parent


def _resolve_scale(args):
    """The preset named by --scale, with the campaign flags folded in."""
    if getattr(args, "engine", None):
        # runtimes (including fork workers) consult the env at build
        # time, so one setting covers every launch of the invocation
        import os

        from repro.gpu.runtime import ENGINE_ENV_VAR

        os.environ[ENGINE_ENV_VAR] = args.engine
    scale = _SCALES[args.scale]
    changes = {}
    workers = getattr(args, "workers", None)
    if workers is not None:
        from repro.exec import resolve_workers

        changes["workers"] = resolve_workers(workers)
    if getattr(args, "no_differential", False):
        changes["differential"] = False
    if getattr(args, "run_dir", None):
        changes["run_dir"] = args.run_dir
    if getattr(args, "resume", None):
        changes["resume"] = args.resume
    retries = getattr(args, "retries", None)
    if retries is not None:
        from repro.exec import RetryPolicy

        changes["retry"] = RetryPolicy(max_deaths=retries)
    if getattr(args, "trial_timeout", None) is not None:
        changes["trial_timeout"] = args.trial_timeout
    if getattr(args, "budget", None) is not None:
        changes["budget"] = args.budget
    if getattr(args, "plan", None):
        changes["plan"] = args.plan
    if getattr(args, "confidence", None) is not None:
        changes["confidence"] = args.confidence
    if getattr(args, "progress", False):
        changes["progress"] = True
    if getattr(args, "profile", False):
        changes["profile"] = True
    if getattr(args, "fleet", None) is not None:
        changes["fleet"] = args.fleet
    if getattr(args, "endpoint", None):
        changes["endpoint"] = args.endpoint
    if changes:
        scale = dataclasses.replace(
            scale, campaign=scale.campaign.evolve(**changes)
        )
    return scale


@contextlib.contextmanager
def _observability(args):
    """Install tracer / report sink for the duration of a command."""
    from repro.harness.reporting import ReportSink, set_report_sink
    from repro.obs import JsonlSink, Tracer, use_tracer

    trace_path = getattr(args, "trace", None)
    json_dir = getattr(args, "json_dir", None)
    if json_dir:
        set_report_sink(ReportSink(json_dir))
    try:
        if trace_path:
            tracer = Tracer(JsonlSink(trace_path))
            with use_tracer(tracer):
                yield
            tracer.close()
            print(f"[trace written to {trace_path}]", file=sys.stderr)
        else:
            yield
    finally:
        if json_dir:
            set_report_sink(None)
            print(f"[JSON tables written to {json_dir}]", file=sys.stderr)


def _experiments() -> Dict[str, Tuple[Callable, Callable, str]]:
    """name -> (run, print, description); imported lazily."""
    from repro.harness import (
        fig01_sensitivity,
        fig02_memory,
        fig03_graphics,
        fig04_loops,
        fig09_dependency,
        fig10_ranges,
        fig13_overhead,
        fig14_coverage,
        fig15_bitflip,
        fig16_falsepos,
        sec9c_alpha,
        sec9d_instrumentation,
    )

    return {
        "fig01": (fig01_sensitivity.run_fig01, fig01_sensitivity.print_fig01,
                  "error sensitivity: GPU HPC / graphics / CPU"),
        "fig02": (fig02_memory.run_fig02, fig02_memory.print_fig02,
                  "memory footprint by data type"),
        "fig03": (fig03_graphics.run_fig03, fig03_graphics.print_fig03,
                  "transient vs intermittent faults in graphics"),
        "fig04": (fig04_loops.run_fig04, fig04_loops.print_fig04,
                  "GPU time spent on loops"),
        "fig09": (fig09_dependency.run_fig09, fig09_dependency.print_fig09,
                  "CP loop dependency scores / target selection"),
        "fig10": (fig10_ranges.run_fig10, fig10_ranges.print_fig10,
                  "MRI-Q variable value distributions"),
        "fig13": (fig13_overhead.run_fig13, fig13_overhead.print_fig13,
                  "performance overhead of every technique"),
        "fig14": (fig14_coverage.run_fig14, fig14_coverage.print_fig14,
                  "detection coverage by benchmark and error bits"),
        "fig15": (fig15_bitflip.run_fig15, fig15_bitflip.print_fig15,
                  "FP value change magnitude vs bits flipped"),
        "fig16": (fig16_falsepos.run_fig16, fig16_falsepos.print_fig16,
                  "false-positive ratio vs training sets"),
        "sec9c": (sec9c_alpha.run_sec9c, sec9c_alpha.print_sec9c,
                  "MRI-FHD coverage vs alpha"),
        "sec9d": (sec9d_instrumentation.run_sec9d,
                  sec9d_instrumentation.print_sec9d,
                  "instrumentation time"),
    }


def cmd_list(_args) -> int:
    for name, (_r, _p, desc) in _experiments().items():
        print(f"  {name:7s} {desc}")
    return 0


def cmd_run(args) -> int:
    experiments = _experiments()
    names = list(experiments) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in experiments]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'python -m repro list'",
              file=sys.stderr)
        return 2
    scale = _resolve_scale(args)
    with _observability(args):
        for name in names:
            run, show, desc = experiments[name]
            print(f"== {name}: {desc} (scale={args.scale}) ==")
            start = time.perf_counter()
            result = run(scale)
            show(result)
            print(f"[{name} took {time.perf_counter() - start:.1f}s]\n")
    return 0


def cmd_metrics(args) -> int:
    """Run experiment(s), then dump the metrics registry instead of tables."""
    import contextlib as _ctx
    import io

    from repro.obs import get_registry

    experiments = _experiments()
    names = list(experiments) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in experiments]
    if unknown:
        print(f"unknown experiment(s): {unknown}; try 'python -m repro list'",
              file=sys.stderr)
        return 2
    scale = _resolve_scale(args)
    with _observability(args):
        for name in names:
            run, _show, _desc = experiments[name]
            with _ctx.redirect_stdout(io.StringIO()):  # tables stay quiet
                run(scale)
    registry = get_registry()
    text = registry.render_json() if args.format == "json" \
        else registry.render_prometheus()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"[metrics written to {args.output}]", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


def cmd_report(args) -> int:
    """Generate the deterministic post-mortem for a journaled run."""
    from repro.errors import InjectionError
    from repro.obs.report import build_report, render_json, render_markdown

    try:
        report = build_report(
            args.run_dir,
            include_timing=not args.no_timing,
            trace=args.trace,
        )
    except InjectionError as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 2
    text = render_json(report) if args.format == "json" \
        else render_markdown(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"[report written to {args.output}]", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def cmd_workloads(_args) -> int:
    from repro.core.program import HauberkProgram
    from repro.harness.reporting import print_table
    from repro.workloads import all_workloads, get_workload

    rows = []
    for name in all_workloads():
        wl = get_workload(name)
        prog = HauberkProgram(wl)
        result = prog.run(mode="original", seed=0)
        ok = wl.spec.check(result.output, wl.golden(wl.generate_input(0)))
        rows.append(
            (name, result.launch.n_threads,
             f"{result.launch.total_cycles:.0f}",
             f"{100 * result.launch.loop_fraction:.1f}%", ok)
        )
    print_table(
        "Workload inventory (baseline runs)",
        ["workload", "threads", "cycles", "loop time", "golden ok"],
        rows,
    )
    return 0


def cmd_inspect(args) -> int:
    from repro.core.translator import HauberkTranslator
    from repro.kir.printer import kernel_to_source
    from repro.workloads import get_workload

    wl = get_workload(args.workload)
    build = HauberkTranslator().build(wl.kernel, args.mode)
    print(kernel_to_source(build.kernel))
    if build.detector_configs:
        print(f"\n// {len(build.detector_configs)} loop detector(s):")
        for cfg in build.detector_configs:
            print(f"//   det {cfg.detector}: {cfg.variable} "
                  f"(self-acc={cfg.self_accumulating}, trip={cfg.has_trip_check})")
    return 0


def cmd_serve(args) -> int:
    """Run the campaign fleet coordinator until interrupted."""
    from repro.exec import RetryPolicy
    from repro.fleet import serve_forever

    retry = None
    if args.retries is not None:
        retry = RetryPolicy(max_deaths=args.retries)

    def announce(endpoint: str) -> None:
        print(f"[fleet coordinator serving on {endpoint}]", file=sys.stderr,
              flush=True)

    return serve_forever(
        args.host, args.port,
        fleet=args.fleet,
        run_root=args.run_dir,
        resume=args.resume,
        lease_ttl=args.lease_ttl,
        retry=retry,
        max_runs=args.max_runs,
        announce=announce,
    )


def _submit_envelope(args):
    """Build the (program, specs, envelope) triple for ``repro submit``."""
    from repro.fleet import ProgramRecipe, envelope_for
    from repro.swifi.campaign import build_fault_specs
    from repro.swifi.options import CampaignOptions
    from repro.swifi.targets import enumerate_targets

    train_seeds = tuple(
        int(s) for s in args.train_seeds.split(",") if s.strip()
    ) if args.train_seeds else ()
    recipe = ProgramRecipe(
        workload=args.workload, train_seeds=train_seeds, alpha=args.alpha
    )
    program = recipe.build_program()
    inp = program.workload.generate_input(0)
    specs = build_fault_specs(
        enumerate_targets(program.workload.kernel), inp.n_threads,
        masks_per_site=args.masks_per_site, seed=args.seed,
    )
    if args.max_specs is not None:
        specs = specs[:args.max_specs]
    options = CampaignOptions(
        seed=args.seed,
        differential=not args.no_differential,
        trial_timeout=args.trial_timeout,
    )
    return program, specs, envelope_for(program, specs, args.mode, options)


def cmd_submit(args) -> int:
    """Submit a campaign to a running coordinator and wait for the result."""
    from repro.fleet import FleetClient, FleetError, rebuild_result

    try:
        _program, specs, envelope = _submit_envelope(args)
        with FleetClient(args.endpoint, timeout=args.timeout) as client:
            run_id = client.submit(envelope)
            print(f"[submitted {len(specs)} trials as {run_id}]",
                  file=sys.stderr)
            if args.no_wait:
                print(run_id)
                return 0
            done = client.wait(run_id, timeout=args.timeout)
        result = rebuild_result(specs, done)
    except (FleetError, OSError) as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 2
    import json

    print(json.dumps({"run": run_id, **result.summary()}, sort_keys=True))
    return 0


def cmd_status(args) -> int:
    """Print a running coordinator's status document."""
    import json

    from repro.fleet import FleetClient, FleetError

    try:
        with FleetClient(args.endpoint, timeout=args.timeout) as client:
            status = client.status()
    except (FleetError, OSError) as exc:
        print(f"repro status: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Hauberk paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments").set_defaults(fn=cmd_list)

    campaign_flags = _campaign_parent()

    run_p = sub.add_parser("run", help="run one experiment (or 'all')",
                           parents=[campaign_flags])
    run_p.add_argument("experiment")
    run_p.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    run_p.add_argument("--trace", metavar="FILE",
                       help="write a JSON-lines span/event trace to FILE")
    run_p.add_argument("--json-dir", metavar="DIR",
                       help="also write every table as JSON into DIR")
    run_p.set_defaults(fn=cmd_run)

    met_p = sub.add_parser(
        "metrics", help="run experiment(s) and dump the metrics registry",
        parents=[campaign_flags],
    )
    met_p.add_argument("experiment")
    met_p.add_argument("--scale", choices=sorted(_SCALES), default="smoke")
    met_p.add_argument("--format", choices=("prometheus", "json"),
                       default="prometheus")
    met_p.add_argument("--output", metavar="FILE",
                       help="write the dump to FILE instead of stdout")
    met_p.add_argument("--trace", metavar="FILE",
                       help="write a JSON-lines span/event trace to FILE")
    met_p.set_defaults(fn=cmd_metrics)

    rep_p = sub.add_parser(
        "report",
        help="post-mortem report for a journaled run directory",
    )
    rep_p.add_argument("run_dir", metavar="RUN_DIR",
                       help="directory previously passed as --run-dir")
    rep_p.add_argument("--format", choices=("markdown", "json"),
                       default="markdown")
    rep_p.add_argument("--output", metavar="FILE",
                       help="write the report to FILE instead of stdout")
    rep_p.add_argument("--trace", metavar="FILE",
                       help="also aggregate spans/events from this trace "
                            "JSONL into the timing section")
    rep_p.add_argument("--no-timing", action="store_true",
                       help="omit all timing sections (profile, heartbeats, "
                            "trace) — only execution-speed-independent facts")
    rep_p.set_defaults(fn=cmd_report)

    sub.add_parser("workloads", help="benchmark inventory").set_defaults(
        fn=cmd_workloads
    )

    srv_p = sub.add_parser(
        "serve", help="run the campaign fleet coordinator",
    )
    srv_p.add_argument("--host", default="127.0.0.1")
    srv_p.add_argument("--port", type=int, default=0,
                       help="TCP port to bind (default 0 = ephemeral; the "
                            "bound endpoint is announced on stderr)")
    srv_p.add_argument("--fleet", type=int, default=0, metavar="N",
                       help="also launch N local worker processes "
                            "(default 0: coordination only)")
    srv_p.add_argument("--run-dir", metavar="DIR",
                       help="journal every landed trial under DIR")
    srv_p.add_argument("--resume", action="store_true",
                       help="replay journaled trials from --run-dir instead "
                            "of re-leasing them")
    srv_p.add_argument("--lease-ttl", type=float, default=30.0,
                       metavar="SECONDS",
                       help="seconds of silence before a lease is declared "
                            "dead and reissued (default 30)")
    srv_p.add_argument("--retries", type=int, metavar="N",
                       help="lease expiries tolerated per fault spec before "
                            "quarantine (default 2)")
    srv_p.add_argument("--max-runs", type=int, metavar="N",
                       help="exit after N runs complete (CI smoke hook; "
                            "default: serve until interrupted)")
    srv_p.set_defaults(fn=cmd_serve)

    sbm_p = sub.add_parser(
        "submit", help="submit a campaign to a running coordinator",
    )
    sbm_p.add_argument("--endpoint", required=True, metavar="HOST:PORT")
    sbm_p.add_argument("--workload", required=True,
                       help="workload name (see 'python -m repro workloads')")
    sbm_p.add_argument("--mode", choices=("fi", "fift"), default="fi")
    sbm_p.add_argument("--train-seeds", metavar="S1,S2,...",
                       help="comma-separated training seeds (fift detector "
                            "ranges; default: untrained)")
    sbm_p.add_argument("--alpha", type=float,
                       help="loosen trained detector bounds by this factor "
                            "(>= 1; paper Section VI(iii))")
    sbm_p.add_argument("--masks-per-site", type=int, default=2, metavar="M")
    sbm_p.add_argument("--max-specs", type=int, metavar="N",
                       help="truncate the spec list to N trials")
    sbm_p.add_argument("--seed", type=int, default=0)
    sbm_p.add_argument("--no-differential", action="store_true")
    sbm_p.add_argument("--trial-timeout", type=float, metavar="SECONDS")
    sbm_p.add_argument("--timeout", type=float, metavar="SECONDS",
                       help="socket timeout for submit/wait")
    sbm_p.add_argument("--no-wait", action="store_true",
                       help="print the run id and exit instead of waiting "
                            "for the merged result")
    sbm_p.set_defaults(fn=cmd_submit)

    sts_p = sub.add_parser(
        "status", help="print a running coordinator's status",
    )
    sts_p.add_argument("--endpoint", required=True, metavar="HOST:PORT")
    sts_p.add_argument("--timeout", type=float, default=10.0,
                       metavar="SECONDS")
    sts_p.set_defaults(fn=cmd_status)

    ins_p = sub.add_parser("inspect", help="print an instrumented kernel")
    ins_p.add_argument("workload")
    ins_p.add_argument(
        "--mode", choices=("original", "profiler", "ft", "fi", "fift"), default="ft"
    )
    ins_p.set_defaults(fn=cmd_inspect)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
