"""Heartbeat-backed chunk leases: the fleet's unit of work ownership.

A fork pool learns about a dead worker synchronously — the broken
executor raises.  A fleet worker is a separate process behind a socket;
the only death signal is *silence*.  Leases turn silence into an event:
every chunk granted to a worker carries a TTL deadline, every beat the
worker sends extends it, and a lease whose deadline passes is treated
exactly like a ``BrokenProcessPool`` — the chunk is split and reissued,
and a single-item lease counts as an attributable strike in the shared
:class:`~repro.exec.retry.BlameLedger` (the worker was running nothing
else, so the blame is beyond doubt).

Time flows through the injectable :class:`~repro.exec.retry.Clock`
seam, so lease-expiry tests run in milliseconds on a
:class:`~repro.exec.retry.FakeClock` instead of actually waiting out
TTLs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exec.retry import SYSTEM_CLOCK, Clock

#: Default seconds of silence before a lease is declared dead.  Beats
#: arrive per completed trial batch, so this only has to outlast one
#: chunk's slowest trial plus scheduling noise.
DEFAULT_LEASE_TTL = 30.0


@dataclass
class Lease:
    """One granted chunk: who owns which spec indices until when."""

    lease_id: str
    worker_id: str
    run_id: str
    #: Global spec indices of the leased chunk (original plan order).
    indices: Tuple[int, ...]
    issued_at: float
    deadline: float
    beats: int = 0


@dataclass
class LeaseTable:
    """Grant / beat / expire bookkeeping for one coordinator.

    Not thread-safe by itself — the coordinator serializes access under
    its state lock.  Lease ids are sequential (``L000001``), never
    random: a deterministic id stream keeps logs and tests replayable.
    """

    ttl: float = DEFAULT_LEASE_TTL
    clock: Clock = SYSTEM_CLOCK
    active: Dict[str, Lease] = field(default_factory=dict)
    issued: int = field(default=0, init=False)

    def grant(self, worker_id: str, run_id: str,
              indices: Tuple[int, ...]) -> Lease:
        """Lease a chunk to a worker until ``now + ttl``."""
        self.issued += 1
        now = self.clock.now()
        lease = Lease(
            lease_id=f"L{self.issued:06d}", worker_id=worker_id,
            run_id=run_id, indices=tuple(indices),
            issued_at=now, deadline=now + self.ttl,
        )
        self.active[lease.lease_id] = lease
        return lease

    def beat(self, lease_id: str) -> bool:
        """Extend a live lease's deadline; ``False`` if it already died.

        A beat for an expired (reissued) lease is *not* resurrected:
        the chunk may already be running elsewhere, and result
        deduplication — not lease resurrection — is what keeps a
        slow-but-alive worker harmless.
        """
        lease = self.active.get(lease_id)
        if lease is None:
            return False
        lease.beats += 1
        lease.deadline = self.clock.now() + self.ttl
        return True

    def complete(self, lease_id: str) -> Optional[Lease]:
        """Retire a lease whose chunk result arrived."""
        return self.active.pop(lease_id, None)

    def expired(self) -> List[Lease]:
        """Remove and return every lease past its deadline."""
        now = self.clock.now()
        dead = [l for l in self.active.values() if l.deadline < now]
        for lease in dead:
            del self.active[lease.lease_id]
        return dead

    def release_worker(self, worker_id: str) -> List[Lease]:
        """Remove and return every lease held by a departing worker."""
        held = [l for l in self.active.values() if l.worker_id == worker_id]
        for lease in held:
            del self.active[lease.lease_id]
        return held

    def __len__(self) -> int:
        return len(self.active)
