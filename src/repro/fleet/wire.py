"""Fleet wire protocol: program recipes, campaign envelopes, framing.

The fleet's processes share no address space — workers are *spawned*
interpreters (:class:`repro.exec.pool.ForkPool` with
``start_method="spawn"``), possibly on the far side of a TCP socket
from the coordinator.  Everything that crosses that boundary is defined
here, in terms of the frozen v1 campaign types:

:class:`ProgramRecipe`
    How to rebuild a :class:`~repro.core.program.HauberkProgram`
    deterministically in another process: workload name + constructor
    kwargs, profiler training seeds, and the detector alpha.  The
    simulator is fully deterministic, so two processes that follow the
    same recipe produce bit-identical programs — the foundation of the
    fleet's ``coordinator + N workers == workers=1`` guarantee.

:class:`CampaignEnvelope`
    One submitted campaign: a recipe, the injection mode, the explicit
    fault-spec plan, and the *execution-relevant* slice of
    :class:`~repro.swifi.options.CampaignOptions` (seed, differential,
    trial timeout).  Coordinator-local knobs (``run_dir``/``resume``,
    ``workers``, ``fleet``, ``endpoint``, ``profile``, ``progress``,
    planner fields) never ship: the coordinator resolves them before
    sharding, so a worker cannot disagree with the submitter about what
    a trial means.

Framing
    Messages are line-delimited JSON (one ``json.dumps`` + ``"\\n"`` per
    message, UTF-8) over a stream socket — trivially greppable with
    ``nc``/``socat``, no length prefixes to corrupt.  See
    ``docs/architecture.md`` ("Fleet service") for the message schema.
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.errors import ReproError
from repro.swifi.campaign import TrialObservation
from repro.swifi.faultmodel import FaultSpec
from repro.swifi.journal import _decode_observation, _encode_observation
from repro.swifi.options import CampaignOptions

#: Version stamped on every envelope; bumped only with the v1 API.
WIRE_VERSION = 1

#: The CampaignOptions fields that affect what a trial *computes* —
#: the only ones a worker needs (and the only ones allowed on the wire).
EXECUTION_FIELDS = ("seed", "differential", "trial_timeout")


class WireError(ReproError):
    """A malformed or protocol-violating fleet message."""


# -- program recipes -------------------------------------------------------


@dataclass(frozen=True)
class ProgramRecipe:
    """Deterministic reconstruction instructions for one program.

    Mirrors how every harness builds its programs: instantiate the
    registered workload, train the profiler on the given seeds, then
    (optionally) tighten every detector to one alpha — the ``sec9c``
    order, which matters because ``set_alpha_all`` rescales the ranges
    training installed.
    """

    workload: str
    workload_kwargs: Dict[str, Any] = field(default_factory=dict)
    train_seeds: Tuple[int, ...] = ()
    alpha: Optional[float] = None

    def build_program(self):
        """A fresh :class:`HauberkProgram` following this recipe.

        The returned program carries ``program.recipe = self`` so the
        fleet entry points can re-derive the recipe from the program a
        caller hands them.
        """
        from repro.core.program import HauberkProgram
        from repro.workloads import get_workload

        program = HauberkProgram(
            get_workload(self.workload, **dict(self.workload_kwargs))
        )
        if self.train_seeds:
            program.train(seeds=list(self.train_seeds))
        if self.alpha is not None:
            program.set_alpha(self.alpha)
        program.recipe = self
        return program

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "workload_kwargs": dict(self.workload_kwargs),
            "train_seeds": list(self.train_seeds),
            "alpha": self.alpha,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProgramRecipe":
        return cls(
            workload=str(data["workload"]),
            workload_kwargs=dict(data.get("workload_kwargs") or {}),
            train_seeds=tuple(data.get("train_seeds") or ()),
            alpha=data.get("alpha"),
        )


# -- spec / observation / options codecs -----------------------------------


def encode_spec(spec: FaultSpec) -> Dict[str, Any]:
    """Lossless JSON form of one fault spec."""
    return {
        "site": spec.site, "mask": spec.mask, "thread": spec.thread,
        "occurrence": spec.occurrence, "burst": spec.burst,
        "timing": spec.timing, "hw_site": spec.hw_site.value,
        "label": spec.label,
    }


def decode_spec(data: Dict[str, Any]) -> FaultSpec:
    from repro.gpu.faults import FaultSite

    return FaultSpec(
        site=int(data["site"]), mask=int(data["mask"]),
        thread=int(data["thread"]), occurrence=int(data["occurrence"]),
        burst=int(data["burst"]), timing=str(data["timing"]),
        hw_site=FaultSite(data["hw_site"]), label=str(data["label"]),
    )


def encode_observation(obs: TrialObservation) -> Dict[str, Any]:
    """Same encoding the journal uses — one codec for disk and wire."""
    return _encode_observation(obs)


def decode_observation(data: Dict[str, Any]) -> TrialObservation:
    return _decode_observation(data)


def encode_options(options: CampaignOptions) -> Dict[str, Any]:
    """The execution-relevant slice of an options object."""
    return {name: getattr(options, name) for name in EXECUTION_FIELDS}


def decode_options(data: Dict[str, Any]) -> CampaignOptions:
    """Worker-side options: execution fields only, everything else default."""
    unknown = set(data) - set(EXECUTION_FIELDS)
    if unknown:
        raise WireError(
            f"non-execution option(s) on the wire: {sorted(unknown)}"
        )
    return CampaignOptions(**{k: data[k] for k in EXECUTION_FIELDS if k in data})


# -- campaign envelopes ----------------------------------------------------


@dataclass(frozen=True)
class CampaignEnvelope:
    """One campaign as submitted to (and sharded by) a coordinator."""

    recipe: ProgramRecipe
    mode: str
    specs: Tuple[FaultSpec, ...]
    options: CampaignOptions

    def to_dict(self) -> Dict[str, Any]:
        return {
            "v": WIRE_VERSION,
            "recipe": self.recipe.to_dict(),
            "mode": self.mode,
            "specs": [encode_spec(s) for s in self.specs],
            "options": encode_options(self.options),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignEnvelope":
        version = data.get("v")
        if version != WIRE_VERSION:
            raise WireError(
                f"unsupported envelope version {version!r} "
                f"(this build speaks v{WIRE_VERSION})"
            )
        return cls(
            recipe=ProgramRecipe.from_dict(data["recipe"]),
            mode=str(data["mode"]),
            specs=tuple(decode_spec(s) for s in data["specs"]),
            options=decode_options(data.get("options") or {}),
        )


def envelope_for(program, specs: List[FaultSpec], mode: str,
                 options: CampaignOptions) -> CampaignEnvelope:
    """Build the envelope for a locally-held campaign, or fail loudly.

    The fleet can only run programs it knows how to rebuild remotely:
    the program must carry a :class:`ProgramRecipe` (build it with
    ``ProgramRecipe(...).build_program()``).
    """
    recipe = getattr(program, "recipe", None)
    if recipe is None:
        raise WireError(
            "fleet campaigns need a program built from a ProgramRecipe "
            "(program.recipe is unset); construct it via "
            "ProgramRecipe(workload=...).build_program()"
        )
    return CampaignEnvelope(
        recipe=recipe, mode=mode, specs=tuple(specs),
        options=options.evolve(
            run_dir=None, resume=None, profile=False, progress=False,
            budget=None, plan=None, workers=1, fleet=None, endpoint=None,
            chunk_size=None,
        ),
    )


# -- JSONL socket framing --------------------------------------------------


def send_message(stream: IO[bytes], message: Dict[str, Any]) -> None:
    """Write one JSONL message and flush it onto the socket."""
    stream.write(json.dumps(message, sort_keys=True).encode("utf-8") + b"\n")
    stream.flush()


def recv_message(stream: IO[bytes]) -> Optional[Dict[str, Any]]:
    """Read one JSONL message; ``None`` on a cleanly closed peer."""
    line = stream.readline()
    if not line:
        return None
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable fleet message: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise WireError(f"fleet message without a type: {message!r}")
    return message


def connect(host: str, port: int, timeout: Optional[float] = None):
    """A connected ``(socket, buffered rw stream)`` pair to a coordinator."""
    sock = socket.create_connection((host, port), timeout=timeout)
    return sock, sock.makefile("rwb")


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """Split ``"host:port"``; loud errors beat silent defaults."""
    host, sep, port = endpoint.rpartition(":")
    if not sep or not host:
        raise WireError(f"endpoint must be 'host:port', got {endpoint!r}")
    try:
        return host, int(port)
    except ValueError:
        raise WireError(f"endpoint port must be an integer, got {port!r}") \
            from None
