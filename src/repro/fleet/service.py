"""Fleet service glue: local worker fleets and the ``run_campaign`` bridge.

Two consumers share this module:

* :func:`run_fleet_campaign` — what
  :func:`repro.swifi.run_campaign` delegates to when
  ``options.fleet``/``options.endpoint`` is set.  The ``fleet=N`` path
  stands up an in-process :class:`FleetCoordinator` plus a
  :class:`LocalWorkerFleet` of N spawned processes, runs the campaign
  through leases, and returns the coordinator's merged result; the
  ``endpoint`` path submits to an already-running ``repro serve`` and
  rebuilds the result from the wire.  Both are bit-identical to
  ``workers=1``.
* :func:`serve_forever` — the ``repro serve`` driver: a standing
  coordinator (optionally with its own local worker fleet) accepting
  ``repro submit`` campaigns until interrupted.

Worker processes ride the existing executor seam: each fleet worker is
one single-worker **spawn** executor
(``ForkPool(1, start_method="spawn").executor()``), so a ``kill -9``
of a worker breaks exactly one executor — the others keep leasing, and
the dead worker's leases expire back onto the queue.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import InjectionError
from repro.exec.pool import ForkPool, spawn_available
from repro.exec.retry import RetryPolicy
from repro.fleet.coordinator import FleetCoordinator, FleetError
from repro.fleet.lease import DEFAULT_LEASE_TTL
from repro.fleet.wire import envelope_for
from repro.obs.instrument import record_fleet_workers, record_plan
from repro.obs.events import get_tracer
from repro.swifi.campaign import CampaignResult
from repro.swifi.faultmodel import FaultSpec
from repro.swifi.options import CampaignOptions


class LocalWorkerFleet:
    """N fleet workers, each in its own single-worker spawn executor.

    The per-worker executor is the fault-isolation boundary: a hard
    death (``kill -9``, OOM) breaks only that worker's executor, which
    this class quietly retires — recovery is the coordinator's job (the
    dead worker's leases expire and reissue), not the launcher's.
    """

    def __init__(self, workers: int, host: str, port: int,
                 name_prefix: str = "w"):
        if workers < 1:
            raise FleetError(f"fleet needs at least one worker, got {workers}")
        if not spawn_available():  # pragma: no cover - spawn is universal
            raise FleetError("fleet workers need the spawn start method")
        self.workers = workers
        self.host = host
        self.port = port
        self.name_prefix = name_prefix
        self._executors = []
        self._futures = []

    def start(self) -> "LocalWorkerFleet":
        from repro.fleet.worker import worker_main

        for k in range(self.workers):
            pool = ForkPool(1, crash_error=InjectionError,
                            start_method="spawn")
            executor = pool.executor()
            future = executor.submit(
                worker_main, self.host, self.port, f"{self.name_prefix}{k}"
            )
            self._executors.append(executor)
            self._futures.append(future)
        record_fleet_workers(self.workers)
        return self

    def alive(self) -> int:
        """Workers whose futures are still running.

        A healthy worker blocks in its lease loop until drained, so a
        *finished* future mid-campaign means the worker returned early
        or its process died.
        """
        return sum(1 for f in self._futures if not f.done())

    def first_error(self) -> Optional[BaseException]:
        """The first dead worker's exception, if any future failed."""
        for future in self._futures:
            if future.done() and future.exception() is not None:
                return future.exception()
        return None

    def stop(self) -> None:
        """Retire every worker executor; dead ones are already broken."""
        for executor in self._executors:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        self._executors = []
        self._futures = []
        record_fleet_workers(0)

    def __enter__(self) -> "LocalWorkerFleet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_fleet_campaign(
    program,
    specs: List[FaultSpec],
    mode: str,
    options: CampaignOptions,
    *,
    runner_factory=None,
    lease_ttl: float = DEFAULT_LEASE_TTL,
) -> CampaignResult:
    """The fleet back half of :func:`repro.swifi.run_campaign`.

    Resolves the statistical plan locally (the planner needs only the
    kernel), then either submits to ``options.endpoint`` or stands up
    an in-process coordinator with ``options.fleet`` spawned workers.
    """
    if runner_factory is not None:
        raise FleetError(
            "fleet campaigns cannot carry a runner_factory: workers "
            "rebuild the trial runner from the program's ProgramRecipe"
        )
    spec_list = list(specs)
    plan = None
    if options.budget is not None and spec_list:
        from repro.swifi.parallel import _build_campaign_plan

        plan = _build_campaign_plan(program, spec_list, mode, options, None)
        record_plan(len(plan.strata), plan.trials_saved)
        get_tracer().event(
            "swifi.plan", method=plan.method, budget=plan.budget,
            population=plan.population, strata=len(plan.strata),
            trials_saved=plan.trials_saved,
        )
        spec_list = plan.selected_specs(spec_list)

    if options.endpoint is not None:
        result = _run_remote(program, spec_list, mode, options)
    else:
        result = _run_local_fleet(
            program, spec_list, mode, options, lease_ttl=lease_ttl
        )
    if plan is not None:
        from repro.swifi.planner import estimate_plan

        result.plan = estimate_plan(plan, result.trials)
    return result


def _run_remote(program, spec_list, mode, options) -> CampaignResult:
    """Submit to a running coordinator and rebuild its merged result.

    Journaling happens coordinator-side (under ``repro serve``'s
    ``--run-dir``); the submitter's own ``run_dir``/``resume`` are not
    shipped.
    """
    from repro.fleet.client import FleetClient, rebuild_result

    envelope = envelope_for(program, spec_list, mode, options)
    with FleetClient(options.endpoint) as client:
        run_id = client.submit(envelope, chunk_size=options.chunk_size)
        done = client.wait(run_id)
    return rebuild_result(spec_list, done)


def _run_local_fleet(program, spec_list, mode, options,
                     lease_ttl: float) -> CampaignResult:
    """In-process coordinator + ``options.fleet`` spawned workers."""
    envelope = envelope_for(program, spec_list, mode, options)
    coordinator = FleetCoordinator(
        run_root=options.journal_root,
        resume=options.resuming,
        retry=options.retry,
        lease_ttl=lease_ttl,
    )
    coordinator.start()
    fleet: Optional[LocalWorkerFleet] = None
    try:
        run_id = coordinator.submit(
            envelope, program=program, chunk_size=options.chunk_size
        )
        run = coordinator._runs[run_id]
        if not run.done.is_set():
            fleet = LocalWorkerFleet(
                options.fleet, coordinator.host, coordinator.port
            ).start()
        # lease expiry covers a *partially* dead fleet; a fully dead
        # fleet would leave the queue unleased forever, so watch for it
        while not run.done.wait(0.1):
            if fleet is not None and fleet.alive() == 0:
                error = fleet.first_error()
                raise FleetError(
                    "every fleet worker exited before the campaign "
                    f"finished: {error!r}" if error is not None else
                    "every fleet worker exited before the campaign finished"
                )
        run = coordinator.wait(run_id)
        return run.result
    finally:
        coordinator.stop()
        if fleet is not None:
            fleet.stop()


def serve_forever(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    fleet: int = 0,
    run_root: Optional[str] = None,
    resume: bool = False,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    retry: Optional[RetryPolicy] = None,
    max_runs: Optional[int] = None,
    announce=None,
) -> int:
    """The ``repro serve`` loop: coordinate until interrupted.

    ``fleet`` > 0 also launches that many local workers next to the
    coordinator (the single-host farm); 0 serves coordination only
    (bring your own workers).  ``max_runs`` exits after that many runs
    complete — the hook CI smoke tests and the resume parity script use
    to terminate deterministically.  ``announce`` (a callable) receives
    the bound endpoint string once serving.
    """
    import time as _time

    coordinator = FleetCoordinator(
        host, port, run_root=run_root, resume=resume,
        lease_ttl=lease_ttl, retry=retry,
    )
    coordinator.start()
    workers: Optional[LocalWorkerFleet] = None
    if fleet > 0:
        workers = LocalWorkerFleet(
            fleet, coordinator.host, coordinator.port
        ).start()
    if announce is not None:
        announce(coordinator.endpoint)
    try:
        while True:
            _time.sleep(0.1)
            if coordinator._stopping.is_set():
                return 0
            if max_runs is not None:
                with coordinator._lock:
                    finished = sum(
                        1 for r in coordinator._runs.values()
                        if r.state in ("done", "stopped")
                    )
                if finished >= max_runs:
                    return 0
    except KeyboardInterrupt:
        return 0
    finally:
        coordinator.stop()
        if workers is not None:
            workers.stop()
