"""The fleet coordinator: shard campaigns, lease chunks, merge results.

One coordinator owns the authoritative state of every submitted
campaign: the spec plan, the durable journal, the lease table, and the
deterministic merge.  Workers are stateless executors — they lease a
chunk, run it, stream the result back, and everything else (dedup,
blame, quarantine, resume) happens here.  The design constraints, in
order:

1. **Bit-identical results.**  Every observation — whether it arrived
   over a socket, was replayed from the journal, or was synthesized by
   quarantine — is merged through the same
   :func:`~repro.swifi.campaign.absorb_trial` path in original spec
   order.  ``coordinator + N workers`` therefore equals ``workers=1``
   exactly, for any worker count, any lease reissue history, and any
   kill/resume split.
2. **Silence is a death signal.**  A lease whose TTL expires without a
   beat is treated like a broken fork pool: multi-item chunks are split
   in half and requeued (binary search for a poisonous spec); a
   single-item lease is an *attributable* strike in the shared
   :class:`~repro.exec.retry.BlameLedger`, and a condemned spec is
   quarantined into the result as a ``WORKER_KILLED`` trial — the same
   policy, ledger, and record types the in-process retry layer uses.
3. **Duplicates are harmless.**  A slow-but-alive worker may race its
   own reissued lease; the first result for a chunk index wins and
   later copies are dropped.  Trials are deterministic, so the dropped
   copy is bit-identical to the kept one — dedup is bookkeeping, not
   arbitration.
4. **The journal is the recovery story.**  Chunks are journaled the
   moment they land; a SIGKILLed coordinator restarted with ``resume``
   replays the journaled prefix through the normal resume machinery and
   only leases out the remainder.
"""

from __future__ import annotations

import socket
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.exec.retry import SYSTEM_CLOCK, BlameLedger, Clock, RetryPolicy
from repro.fleet.lease import DEFAULT_LEASE_TTL, Lease, LeaseTable
from repro.fleet.wire import (
    CampaignEnvelope,
    WireError,
    decode_observation,
    encode_observation,
    encode_spec,
    recv_message,
    send_message,
)
from repro.obs.instrument import (
    record_campaign,
    record_fleet_queue_depth,
    record_fleet_workers,
    record_journal_activity,
    record_lease,
    record_quarantine,
    record_worker_death,
)
from repro.obs.events import get_tracer
from repro.swifi.campaign import (
    CampaignResult,
    QuarantineReport,
    TrialObservation,
    absorb_quarantined,
    absorb_trial,
)
from repro.swifi.journal import campaign_fingerprint
from repro.swifi.options import CampaignOptions
from repro.swifi.outcomes import Outcome, classify_outcome
from repro.swifi.parallel import (
    _absorb_replayed,
    _open_journal,
    _open_monitor,
    _section_context,
)

#: Status / wire schema version for ``repro status`` consumers.
STATUS_VERSION = 1


class FleetError(ReproError):
    """Coordinator-side fleet failure (bad submit, dead run, …)."""


@dataclass
class FleetRun:
    """Everything the coordinator tracks for one submitted campaign."""

    run_id: str
    envelope: CampaignEnvelope
    spec_list: List[Any]
    options: CampaignOptions
    program: Any = None
    journal: Any = None
    replayed: Dict[int, Any] = field(default_factory=dict)
    monitor: Any = None
    sec_of: Optional[List[Optional[str]]] = None
    #: Chunks awaiting a lease, as tuples of global spec indices.
    queue: "deque[Tuple[int, ...]]" = field(default_factory=deque)
    obs_by_index: Dict[int, TrialObservation] = field(default_factory=dict)
    quarantines: Dict[int, QuarantineReport] = field(default_factory=dict)
    ledger: Optional[BlameLedger] = None
    reap_rounds: int = 0
    state: str = "running"
    error: str = ""
    result: Optional[CampaignResult] = None
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def finished_trials(self) -> int:
        return (len(self.replayed) + len(self.obs_by_index)
                + len(self.quarantines))


class FleetCoordinator:
    """A campaign fleet's brain: socket server + scheduler + merger.

    ``run_root``/``resume`` configure the durable journal exactly like
    :class:`~repro.swifi.options.CampaignOptions` ``run_dir``/``resume``
    — the coordinator journals every landed chunk immediately and
    replays journaled trials on resume instead of re-leasing them.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        run_root: Optional[str] = None,
        resume: bool = False,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        retry: Optional[RetryPolicy] = None,
        clock: Clock = SYSTEM_CLOCK,
        reap_interval: Optional[float] = None,
    ):
        self.host = host
        self.requested_port = port
        self.run_root = run_root
        self.resume = resume
        self.retry = retry if retry is not None else RetryPolicy()
        self.clock = clock
        self.leases = LeaseTable(ttl=lease_ttl, clock=clock)
        #: Seconds between reaper sweeps (wall clock; ``None`` = no
        #: background reaper — tests with a FakeClock call :meth:`reap`).
        self.reap_interval = reap_interval if reap_interval is not None \
            else max(0.05, min(0.5, lease_ttl / 4.0))
        self._lock = threading.RLock()
        self._runs: Dict[str, FleetRun] = {}
        self._run_order: List[str] = []
        self._workers: Dict[str, Dict[str, Any]] = {}
        self._server: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._run_seq = 0

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise FleetError("coordinator not started")
        return self._server.getsockname()[1]

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "FleetCoordinator":
        """Bind the socket and start the accept + reaper threads."""
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.host, self.requested_port))
        server.listen(64)
        self._server = server
        accept = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        if self.reap_interval > 0:
            reaper = threading.Thread(
                target=self._reap_loop, name="fleet-reaper", daemon=True
            )
            reaper.start()
            self._threads.append(reaper)
        return self

    def stop(self) -> None:
        """Stop serving.  In-flight runs stay resumable via the journal."""
        self._stopping.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
            self._server = None
        with self._lock:
            for run in self._runs.values():
                if run.state == "running":
                    self._close_run(run, state="stopped")

    def __enter__(self) -> "FleetCoordinator":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission -----------------------------------------------------

    def submit(self, envelope: CampaignEnvelope, program: Any = None,
               chunk_size: Optional[int] = None) -> str:
        """Register one campaign: build, fingerprint, journal, enqueue.

        ``program`` short-circuits the recipe rebuild when the caller
        already holds the built program (the in-process fleet path); a
        wire submission always rebuilds from the recipe.  ``chunk_size``
        overrides the lease granularity (default: sized for the
        currently registered workers) — a scheduling hint, never part
        of the campaign's identity.
        """
        if self._stopping.is_set():
            raise FleetError("coordinator is stopping; submission refused")
        if program is None:
            program = envelope.recipe.build_program()
        spec_list = list(envelope.specs)
        run_options = envelope.options.evolve(
            run_dir=self.run_root,
            resume=self.run_root if self.resume else None,
        )
        fingerprint, _meta = campaign_fingerprint(
            program, spec_list, envelope.mode, run_options.seed
        )
        sec_of, affected_fn = (None, None) if run_options.journal_root is None \
            else _section_context(program, spec_list)
        journal, replayed = _open_journal(
            program, spec_list, envelope.mode, run_options,
            sec_of=sec_of, affected_fn=affected_fn,
        )
        monitor = _open_monitor(program, spec_list, run_options, journal)
        with self._lock:
            self._run_seq += 1
            run_id = f"run-{self._run_seq:03d}-{fingerprint[:8]}"
            run = FleetRun(
                run_id=run_id, envelope=envelope, spec_list=spec_list,
                options=run_options, program=program, journal=journal,
                replayed=replayed, monitor=monitor, sec_of=sec_of,
                ledger=BlameLedger(self.retry),
            )
            pending = [i for i in range(len(spec_list)) if i not in replayed]
            if journal is not None:
                record_journal_activity(replayed=len(replayed))
            if replayed and monitor is not None:
                tally: Dict[str, int] = {}
                for record in replayed.values():
                    tally[record.outcome] = tally.get(record.outcome, 0) + 1
                monitor.advance(len(replayed), tally, source="replay")
            for chunk in self._chunk(pending, chunk_size):
                run.queue.append(chunk)
            self._runs[run_id] = run
            self._run_order.append(run_id)
            record_fleet_queue_depth(self._queue_depth_locked())
            get_tracer().event(
                "fleet.submit", run=run_id, trials=len(spec_list),
                replayed=len(replayed), chunks=len(run.queue),
            )
            self._maybe_finish(run)
            return run_id

    def _chunk(self, pending: List[int],
               chunk_size: Optional[int]) -> List[Tuple[int, ...]]:
        from repro.exec.pool import chunk_slices, default_chunk_size

        if not pending:
            return []
        size = chunk_size if chunk_size is not None else \
            default_chunk_size(len(pending), max(1, len(self._workers) or 2))
        return [tuple(pending[a:b])
                for a, b in chunk_slices(len(pending), size)]

    # -- scheduling -----------------------------------------------------

    def _active_run(self) -> Optional[FleetRun]:
        for run_id in self._run_order:
            run = self._runs[run_id]
            if run.state == "running":
                return run
        return None

    def grant(self, worker_id: str,
              worker_run: Optional[str]) -> Dict[str, Any]:
        """Lease the next chunk to ``worker_id`` (wire-ready response)."""
        with self._lock:
            if self._stopping.is_set():
                return {"type": "drain"}
            run = self._active_run()
            if run is None or not run.queue:
                return {"type": "idle"}
            indices = run.queue.popleft()
            lease = self.leases.grant(worker_id, run.run_id, indices)
            record_lease("granted")
            record_fleet_queue_depth(self._queue_depth_locked())
            worker = self._workers.get(worker_id)
            if worker is not None:
                worker["leases"] = worker.get("leases", 0) + 1
            response: Dict[str, Any] = {
                "type": "grant",
                "lease": lease.lease_id,
                "run": run.run_id,
                "indices": list(indices),
                "specs": [encode_spec(run.spec_list[i]) for i in indices],
            }
            if worker_run != run.run_id:
                response["envelope"] = run.envelope.to_dict()
            get_tracer().event(
                "fleet.lease", lease=lease.lease_id, worker=worker_id,
                run=run.run_id, items=len(indices),
            )
            return response

    def beat(self, lease_id: str) -> bool:
        with self._lock:
            return self.leases.beat(lease_id)

    def absorb_result(
        self, worker_id: str, lease_id: str, run_id: str,
        indices: List[int], observations: List[TrialObservation],
        worker_pid: int = 0,
    ) -> None:
        """Land one chunk result: dedup, journal, account, retire lease."""
        with self._lock:
            run = self._runs.get(run_id)
            if run is None:
                raise FleetError(f"result for unknown run {run_id!r}")
            if len(indices) != len(observations):
                raise FleetError(
                    f"chunk carried {len(observations)} observations for "
                    f"{len(indices)} indices"
                )
            lease = self.leases.complete(lease_id)
            if lease is not None:
                record_lease("completed")
            fresh = [
                (idx, obs) for idx, obs in zip(indices, observations)
                if idx not in run.obs_by_index
                and idx not in run.quarantines
                and idx not in run.replayed
            ]
            # duplicates (a reissued lease racing its slow original) are
            # dropped: trials are deterministic, so the copies agree
            tally: Dict[str, int] = {}
            for idx, obs in fresh:
                run.obs_by_index[idx] = obs
                outcome = classify_outcome(
                    obs.failure, obs.detected, obs.output_ok
                )
                tally[outcome.value] = tally.get(outcome.value, 0) + 1
                if run.journal is not None:
                    run.journal.append_trial(
                        idx, run.spec_list[idx], outcome.value, obs,
                        section=run.sec_of[idx]
                        if run.sec_of is not None else None,
                    )
            if fresh and run.monitor is not None:
                run.monitor.advance(
                    len(fresh), tally, pid=worker_pid or None,
                    source="lease", lease=lease_id,
                )
            self._maybe_finish(run)

    # -- lease expiry: the fleet's death signal -------------------------

    def reap(self) -> List[Lease]:
        """Expire overdue leases: split/requeue chunks, blame singletons."""
        with self._lock:
            dead = self.leases.expired()
            if not dead:
                return []
            for lease in dead:
                record_lease("expired")
                record_worker_death("lease", 1)
                get_tracer().event(
                    "fleet.lease_expired", lease=lease.lease_id,
                    worker=lease.worker_id, run=lease.run_id,
                    items=len(lease.indices),
                )
                run = self._runs.get(lease.run_id)
                if run is None or run.state != "running":
                    continue
                run.reap_rounds += 1
                # results may have landed right before expiry; only the
                # still-missing indices go back on the queue
                missing = tuple(
                    i for i in lease.indices
                    if i not in run.obs_by_index
                    and i not in run.quarantines
                    and i not in run.replayed
                )
                if not missing:
                    continue
                if len(missing) > 1:
                    mid = len(missing) // 2
                    run.queue.append(missing[:mid])
                    run.queue.append(missing[mid:])
                    record_lease("reissued", 2)
                    continue
                # a single-item lease: the worker ran nothing else, so
                # the strike is attributable (same bar as an isolated
                # fork-pool death)
                idx = missing[0]
                run.ledger.strike(idx, attributable=True)
                if run.ledger.condemned(idx):
                    self._quarantine(run, idx)
                else:
                    run.queue.append(missing)
                    record_lease("reissued")
            record_fleet_queue_depth(self._queue_depth_locked())
            active = self._active_run()
            if active is not None:
                self._maybe_finish(active)
            return dead

    def _quarantine(self, run: FleetRun, idx: int) -> None:
        record = run.ledger.record(
            item=(idx, run.spec_list[idx]), key=idx, round_no=run.reap_rounds
        )
        report = QuarantineReport(
            spec=run.spec_list[idx], index=idx, deaths=record.deaths,
            rounds=record.round_no,
            note=f"fleet lease expired {record.deaths}x",
        )
        run.quarantines[idx] = report
        record_quarantine()
        if run.journal is not None:
            run.journal.append_quarantine(
                report,
                section=run.sec_of[idx] if run.sec_of is not None else None,
            )
        if run.monitor is not None:
            run.monitor.advance(
                1, {Outcome.WORKER_KILLED.value: 1}, source="lease"
            )

    # -- completion -----------------------------------------------------

    def _maybe_finish(self, run: FleetRun) -> None:
        if run.state != "running":
            return
        if run.finished_trials < len(run.spec_list) or len(
            [l for l in self.leases.active.values()
             if l.run_id == run.run_id]
        ):
            return
        tracer = get_tracer()
        result = CampaignResult()
        with tracer.span(
            "swifi.campaign", workers=f"fleet:{len(self._workers)}",
            planned_trials=len(run.spec_list), replayed=len(run.replayed),
        ) as span:
            # the deterministic merge: original spec order, one absorb
            # per spec, same helpers as the serial and pooled paths
            for i, spec in enumerate(run.spec_list):
                record = run.replayed.get(i)
                if record is not None:
                    _absorb_replayed(result, spec, record, tracer)
                elif i in run.quarantines:
                    absorb_quarantined(result, run.quarantines[i], tracer)
                else:
                    absorb_trial(result, spec, run.obs_by_index[i], tracer)
            record_campaign(result)
            span.set(**result.summary())
        run.result = result
        self._close_run(run, state="done")

    def _close_run(self, run: FleetRun, state: str) -> None:
        run.state = state
        if run.monitor is not None:
            run.monitor.close()
            run.monitor = None
        if run.journal is not None:
            record_journal_activity(appended=run.journal.appended)
            run.journal.close()
            run.journal = None
        run.done.set()
        get_tracer().event("fleet.run_closed", run=run.run_id, state=state)

    def wait(self, run_id: str, timeout: Optional[float] = None):
        """Block until a run completes; returns its ``CampaignResult``."""
        with self._lock:
            run = self._runs.get(run_id)
        if run is None:
            raise FleetError(f"unknown run {run_id!r}")
        if not run.done.wait(timeout):
            raise FleetError(f"run {run_id!r} still executing after timeout")
        if run.result is None:
            raise FleetError(
                f"run {run_id!r} ended without a result (state={run.state})"
            )
        return run

    # -- status ---------------------------------------------------------

    def _queue_depth_locked(self) -> int:
        return sum(len(r.queue) for r in self._runs.values()
                   if r.state == "running")

    def status(self) -> Dict[str, Any]:
        """The ``repro status`` document (schema-stable, see docs)."""
        with self._lock:
            return {
                "type": "status",
                "v": STATUS_VERSION,
                "state": "stopping" if self._stopping.is_set() else "serving",
                "queue_depth": self._queue_depth_locked(),
                "active_leases": len(self.leases),
                "lease_ttl": self.leases.ttl,
                "workers": [
                    {"id": wid, "pid": info.get("pid", 0),
                     "leases": info.get("leases", 0)}
                    for wid, info in sorted(self._workers.items())
                ],
                "runs": [
                    {
                        "run": run_id,
                        "state": self._runs[run_id].state,
                        "done": self._runs[run_id].finished_trials,
                        "total": len(self._runs[run_id].spec_list),
                        "quarantined": len(self._runs[run_id].quarantines),
                    }
                    for run_id in self._run_order
                ],
            }

    # -- socket plumbing ------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            server = self._server
            if server is None:
                return
            try:
                conn, _addr = server.accept()
            except OSError:
                return
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="fleet-conn", daemon=True,
            )
            handler.start()

    def _reap_loop(self) -> None:
        import time as _time

        while not self._stopping.is_set():
            _time.sleep(self.reap_interval)
            try:
                self.reap()
            except Exception:  # the reaper must outlive bad state
                if self._stopping.is_set():
                    return

    def _serve_connection(self, conn: socket.socket) -> None:
        stream = conn.makefile("rwb")
        try:
            while not self._stopping.is_set():
                try:
                    message = recv_message(stream)
                except (WireError, OSError):
                    return
                if message is None:
                    return
                try:
                    reply = self._dispatch(message)
                except (FleetError, WireError) as exc:
                    reply = {"type": "error", "error": str(exc)}
                if reply is not None:
                    try:
                        send_message(stream, reply)
                    except (OSError, ValueError):
                        return
        finally:
            try:
                stream.close()
                conn.close()
            except OSError:
                pass

    def _dispatch(self, message: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        kind = message["type"]
        if kind == "hello":
            with self._lock:
                self._workers[str(message["worker"])] = {
                    "pid": int(message.get("pid", 0)), "leases": 0,
                }
                record_fleet_workers(len(self._workers))
            return {"type": "welcome", "ttl": self.leases.ttl}
        if kind == "lease":
            return self.grant(str(message["worker"]), message.get("run"))
        if kind == "beat":
            self.beat(str(message["lease"]))
            return None  # fire-and-forget
        if kind == "result":
            self.absorb_result(
                worker_id=str(message.get("worker", "")),
                lease_id=str(message["lease"]),
                run_id=str(message["run"]),
                indices=[int(i) for i in message["indices"]],
                observations=[
                    decode_observation(o) for o in message["observations"]
                ],
                worker_pid=int(message.get("pid", 0)),
            )
            return {"type": "ack"}
        if kind == "submit":
            envelope = CampaignEnvelope.from_dict(message["envelope"])
            chunk_size = message.get("chunk_size")
            run_id = self.submit(
                envelope,
                chunk_size=int(chunk_size) if chunk_size is not None else None,
            )
            return {"type": "accepted", "run": run_id}
        if kind == "status":
            return self.status()
        if kind == "wait":
            run = self.wait(
                str(message["run"]), timeout=message.get("timeout")
            )
            # the complete merged picture, replayed prefix included, so
            # a remote submitter can rebuild the CampaignResult through
            # the same absorb path and land bit-identical to local runs
            observations: Dict[str, Any] = {
                str(i): encode_observation(o)
                for i, o in run.obs_by_index.items()
            }
            quarantines = [
                {"index": r.index, "deaths": r.deaths,
                 "rounds": r.rounds, "note": r.note}
                for r in (run.quarantines[i]
                          for i in sorted(run.quarantines))
            ]
            for i in sorted(run.replayed):
                record = run.replayed[i]
                if record.observation is not None:
                    observations[str(i)] = encode_observation(
                        record.observation
                    )
                else:
                    report = record.to_report(run.spec_list[i])
                    quarantines.append(
                        {"index": report.index, "deaths": report.deaths,
                         "rounds": report.rounds, "note": report.note}
                    )
            return {
                "type": "done",
                "run": run.run_id,
                "state": run.state,
                "summary": run.result.summary(),
                "observations": observations,
                "quarantines": quarantines,
            }
        if kind == "shutdown":
            threading.Thread(target=self.stop, daemon=True).start()
            return {"type": "bye"}
        raise WireError(f"unknown fleet message type {kind!r}")
