"""Campaign fleet service: a sharded multi-worker injection farm.

The fleet promotes :func:`repro.swifi.run_campaign` from a single
process with a fork pool to a coordinator + N long-lived spawned worker
processes connected by a line-delimited JSON socket protocol:

* :mod:`repro.fleet.wire` — the versioned wire schema
  (:class:`ProgramRecipe`, :class:`CampaignEnvelope`, spec/observation
  codecs, framing).
* :mod:`repro.fleet.lease` — heartbeat-backed TTL leases, the fleet's
  unit of work ownership and its only death signal.
* :mod:`repro.fleet.coordinator` — :class:`FleetCoordinator`: sharding,
  scheduling, dedup, blame/quarantine, the durable journal, and the
  deterministic merge.
* :mod:`repro.fleet.worker` — :func:`worker_main`, the lease/execute/
  report loop a spawned worker runs.
* :mod:`repro.fleet.client` — :class:`FleetClient` for ``repro
  submit``/``status`` against a running ``repro serve``.
* :mod:`repro.fleet.service` — the glue: :func:`run_fleet_campaign`
  (what ``run_campaign`` delegates to for ``options.fleet`` /
  ``options.endpoint``) and :func:`serve_forever` (``repro serve``).

The invariant the whole package is built around: coordinator + N
workers is **bit-identical** to ``workers=1`` — every observation lands
through the same ``absorb_trial`` merge in original spec order, and the
same durable journal makes killed workers and killed coordinators
resumable without re-running finished trials.
"""

from repro.fleet.client import FleetClient, rebuild_result
from repro.fleet.coordinator import (
    STATUS_VERSION,
    FleetCoordinator,
    FleetError,
    FleetRun,
)
from repro.fleet.lease import DEFAULT_LEASE_TTL, Lease, LeaseTable
from repro.fleet.service import (
    LocalWorkerFleet,
    run_fleet_campaign,
    serve_forever,
)
from repro.fleet.wire import (
    WIRE_VERSION,
    CampaignEnvelope,
    ProgramRecipe,
    WireError,
    envelope_for,
    parse_endpoint,
)
from repro.fleet.worker import worker_main

__all__ = [
    "CampaignEnvelope",
    "DEFAULT_LEASE_TTL",
    "FleetClient",
    "FleetCoordinator",
    "FleetError",
    "FleetRun",
    "Lease",
    "LeaseTable",
    "LocalWorkerFleet",
    "ProgramRecipe",
    "STATUS_VERSION",
    "WIRE_VERSION",
    "WireError",
    "envelope_for",
    "parse_endpoint",
    "rebuild_result",
    "run_fleet_campaign",
    "serve_forever",
    "worker_main",
]
