"""Fleet worker: a long-lived spawned process that leases and runs chunks.

``worker_main`` is the entry point the service submits into a
single-worker *spawn* executor (:class:`repro.exec.pool.ForkPool` with
``start_method="spawn"``): a fresh interpreter that shares nothing with
the coordinator.  Everything it needs arrives over the wire — the first
lease of a new run carries the :class:`CampaignEnvelope`, from which
the worker deterministically rebuilds the program
(:meth:`ProgramRecipe.build_program`) and the trial runner
(:func:`repro.swifi.parallel.build_trial_runner`, the same constructor
every other execution path uses).  Trials then run through
:func:`repro.swifi.parallel.execute_chunk` — the identical chunk body
the fork pool runs — so a fleet worker's observations are bit-identical
to any other path's.

Liveness: while a chunk executes, a daemon thread sends fire-and-forget
``beat`` messages (each on its own short-lived connection, so beats
never interleave with the lease conversation).  A ``kill -9`` stops the
beats; the coordinator's lease TTL turns that silence into a reissue.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

from repro.fleet.wire import (
    CampaignEnvelope,
    connect,
    decode_spec,
    encode_observation,
    recv_message,
    send_message,
)

#: Seconds a worker naps when the coordinator has no work yet.
IDLE_DELAY = 0.05

#: Fraction of the lease TTL between beats (3 beats per TTL window).
BEAT_FRACTION = 1.0 / 3.0


class _Beater:
    """Fire-and-forget heartbeats for one in-flight lease."""

    def __init__(self, host: str, port: int, worker_id: str, lease_id: str,
                 interval: float):
        self.host = host
        self.port = port
        self.worker_id = worker_id
        self.lease_id = lease_id
        self.interval = max(0.01, interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"beat-{lease_id}", daemon=True
        )

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                sock, stream = connect(self.host, self.port, timeout=5.0)
                send_message(stream, {
                    "type": "beat", "worker": self.worker_id,
                    "lease": self.lease_id,
                })
                stream.close()
                sock.close()
            except OSError:
                return  # coordinator gone; the lease will expire anyway

    def __enter__(self) -> "_Beater":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()


def worker_main(host: str, port: int, worker_id: str,
                idle_delay: float = IDLE_DELAY, detach: bool = True) -> int:
    """Run the lease/execute/report loop until drained or disconnected.

    Returns the number of chunks completed (handy in tests; the
    production caller ignores it).  ``detach=False`` leaves the
    process-global tracer/metrics/profiler alone — for tests that run a
    worker in a thread of the coordinator's own process.
    """
    from repro.swifi.parallel import build_trial_runner, execute_chunk

    if detach:
        # a spawned interpreter starts clean, but make the isolation
        # explicit: no inherited tracer sink, fresh metrics, no profiler
        from repro.obs.events import set_tracer
        from repro.obs.metrics import fresh_registry
        from repro.obs.profile import set_profiler

        set_tracer(None)
        fresh_registry()
        set_profiler(None)

    try:
        sock, stream = connect(host, port)
    except OSError:
        return 0
    completed = 0
    current_run: Optional[str] = None
    runner = None
    ttl = 0.0
    try:
        send_message(stream, {
            "type": "hello", "worker": worker_id, "pid": os.getpid(),
        })
        welcome = recv_message(stream)
        if welcome is None or welcome.get("type") != "welcome":
            return 0
        ttl = float(welcome.get("ttl", 30.0))
        while True:
            send_message(stream, {
                "type": "lease", "worker": worker_id, "run": current_run,
            })
            reply = recv_message(stream)
            if reply is None or reply["type"] == "drain":
                return completed
            if reply["type"] == "idle":
                time.sleep(idle_delay)
                continue
            if reply["type"] != "grant":
                return completed
            if reply["run"] != current_run:
                if "envelope" not in reply:
                    continue  # protocol hiccup: re-request with our run id
                envelope = CampaignEnvelope.from_dict(reply["envelope"])
                program = envelope.recipe.build_program()
                runner = build_trial_runner(
                    program, envelope.mode, envelope.options
                )
                current_run = reply["run"]
            indices = [int(i) for i in reply["indices"]]
            specs = [decode_spec(s) for s in reply["specs"]]
            with _Beater(host, port, worker_id, reply["lease"],
                         interval=ttl * BEAT_FRACTION):
                chunk = execute_chunk(
                    runner, list(zip(indices, specs)),
                    isolate_metrics=detach,
                )
            send_message(stream, {
                "type": "result",
                "worker": worker_id,
                "lease": reply["lease"],
                "run": reply["run"],
                "indices": indices,
                "observations": [
                    encode_observation(o) for o in chunk.observations
                ],
                "pid": os.getpid(),
            })
            ack = recv_message(stream)
            if ack is None:
                return completed
            completed += 1
    except OSError:
        return completed
    finally:
        try:
            stream.close()
            sock.close()
        except OSError:
            pass
