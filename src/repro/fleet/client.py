"""Fleet client: submit campaigns to a running ``repro serve``.

Thin, synchronous JSONL conversation over one connection.  The client
never sees trial execution — it ships a
:class:`~repro.fleet.wire.CampaignEnvelope`, waits, and receives the
complete merged picture (per-index observations + quarantine evidence)
from which :func:`rebuild_result` reconstructs the
:class:`~repro.swifi.campaign.CampaignResult` through the same
``absorb_trial`` path every local mode uses — bit-identical by
construction, and cross-checked against the coordinator's own summary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.fleet.coordinator import FleetError
from repro.fleet.wire import (
    CampaignEnvelope,
    connect,
    decode_observation,
    parse_endpoint,
    send_message,
    recv_message,
)
from repro.obs.events import get_tracer
from repro.obs.instrument import record_campaign
from repro.swifi.campaign import (
    CampaignResult,
    QuarantineReport,
    absorb_quarantined,
    absorb_trial,
)
from repro.swifi.faultmodel import FaultSpec


class FleetClient:
    """One conversation with a coordinator at ``host:port``."""

    def __init__(self, endpoint: str, timeout: Optional[float] = None):
        self.host, self.port = parse_endpoint(endpoint)
        self.timeout = timeout
        self._sock = None
        self._stream = None

    def __enter__(self) -> "FleetClient":
        self._sock, self._stream = connect(
            self.host, self.port, timeout=self.timeout
        )
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            if self._stream is not None:
                self._stream.close()
            if self._sock is not None:
                self._sock.close()
        except OSError:
            pass

    def _call(self, message: Dict[str, Any],
              expect: str) -> Dict[str, Any]:
        send_message(self._stream, message)
        reply = recv_message(self._stream)
        if reply is None:
            raise FleetError("coordinator closed the connection")
        if reply["type"] == "error":
            raise FleetError(f"coordinator refused: {reply.get('error')}")
        if reply["type"] != expect:
            raise FleetError(
                f"expected a {expect!r} reply, got {reply['type']!r}"
            )
        return reply

    def submit(self, envelope: CampaignEnvelope,
               chunk_size: Optional[int] = None) -> str:
        """Submit a campaign; returns the coordinator's run id."""
        message: Dict[str, Any] = {
            "type": "submit", "envelope": envelope.to_dict(),
        }
        if chunk_size is not None:
            message["chunk_size"] = chunk_size
        reply = self._call(message, expect="accepted")
        return str(reply["run"])

    def wait(self, run_id: str,
             timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the run completes; returns the ``done`` document."""
        if self._sock is not None:
            self._sock.settimeout(timeout)
        return self._call(
            {"type": "wait", "run": run_id, "timeout": timeout},
            expect="done",
        )

    def status(self) -> Dict[str, Any]:
        """The coordinator's ``repro status`` document."""
        return self._call({"type": "status"}, expect="status")

    def shutdown(self) -> None:
        """Ask the coordinator to stop serving."""
        self._call({"type": "shutdown"}, expect="bye")


def rebuild_result(spec_list: List[FaultSpec],
                   done: Dict[str, Any]) -> CampaignResult:
    """The submitter-side deterministic merge of a ``done`` document.

    Original spec order, one absorb per spec — exactly the serial
    loop's merge, so the rebuilt result is bit-identical to running the
    campaign locally.  The coordinator's own summary rides along in the
    document; a mismatch means the wire lost information and is an
    error, never a shrug.
    """
    observations = {
        int(i): decode_observation(o)
        for i, o in done.get("observations", {}).items()
    }
    quarantines = {
        int(q["index"]): QuarantineReport(
            spec=spec_list[int(q["index"])], index=int(q["index"]),
            deaths=int(q["deaths"]), rounds=int(q["rounds"]),
            note=str(q.get("note", "")),
        )
        for q in done.get("quarantines", [])
    }
    result = CampaignResult()
    tracer = get_tracer()
    for i, spec in enumerate(spec_list):
        if i in quarantines:
            absorb_quarantined(result, quarantines[i], tracer)
        elif i in observations:
            absorb_trial(result, spec, observations[i], tracer)
        else:
            raise FleetError(f"done document is missing trial {i}")
    record_campaign(result)
    remote_summary = done.get("summary")
    if remote_summary is not None and remote_summary != result.summary():
        raise FleetError(
            "rebuilt campaign summary disagrees with the coordinator's "
            f"(local {result.summary()!r} vs remote {remote_summary!r})"
        )
    return result
