"""``repro.exec`` — process-level execution utilities.

Two small modules shared by the scale-out layers:

* :mod:`repro.exec.pool` — a fork-based worker pool with warm
  per-worker initialisation, deterministic order-preserving chunk
  mapping, and hard-crash surfacing (a dead worker raises instead of
  hanging the campaign).
* :mod:`repro.exec.retry` — the fault-tolerance layer on top of the
  pool: resilient chunk mapping (dead-worker chunks are split and
  retried on fresh pools with exponential backoff, repeat offenders
  quarantined) and :func:`trial_deadline`, a wall-clock budget that
  degrades hung work items to a catchable timeout.
* :mod:`repro.exec.cache` — :class:`EphemeralCache`, a dict that
  resets itself across ``deepcopy`` and pickling so hot-path caches
  can live *on* the objects they describe (kernels) without leaking
  compiled state into clones or child processes.

The SWIFI parallel campaign engine (:mod:`repro.swifi.parallel`) is
the first consumer; the utilities are deliberately generic so future
sharded workloads (multi-device sweeps, batched profiling) can reuse
them.
"""

from repro.exec.cache import EphemeralCache, ephemeral_cache
from repro.exec.pool import (
    ForkPool,
    chunk_slices,
    default_chunk_size,
    fork_available,
    resolve_workers,
    spawn_available,
)
from repro.exec.retry import (
    SYSTEM_CLOCK,
    BlameLedger,
    Clock,
    DeathRecord,
    FakeClock,
    RetryPolicy,
    TrialTimeout,
    map_resilient,
    trial_deadline,
)

__all__ = [
    "EphemeralCache",
    "ephemeral_cache",
    "ForkPool",
    "chunk_slices",
    "default_chunk_size",
    "fork_available",
    "resolve_workers",
    "spawn_available",
    "SYSTEM_CLOCK",
    "BlameLedger",
    "Clock",
    "DeathRecord",
    "FakeClock",
    "RetryPolicy",
    "TrialTimeout",
    "map_resilient",
    "trial_deadline",
]
