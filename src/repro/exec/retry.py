"""Fault-tolerant chunk execution: retry, split, isolate, quarantine.

The fork pool (:mod:`repro.exec.pool`) surfaces a dead worker as an
exception, which turns one bad spec — an OOM-killed trial, a segfault
in a C extension, an ``os._exit`` — into a lost campaign.  This module
adds the recovery layer on top:

* **Retry with splitting** — when a worker process dies, every chunk
  the broken pool had not finished is re-dispatched on a *fresh* pool
  after an exponential backoff; multi-item chunks are split in half
  first, so the blast radius of the killer item shrinks by half each
  round (binary search for the culprit).
* **Isolation for blame** — a ``BrokenProcessPool`` marks *every*
  unfinished future, so a shared pool cannot attribute a death to one
  chunk.  A single-item chunk that has failed once therefore re-runs in
  its own single-worker pool, where a death is attributable beyond
  doubt.
* **Quarantine** — an item implicated in ``RetryPolicy.max_deaths``
  worker deaths (at least one of them in isolation) is dropped from the
  work list and reported as a :class:`DeathRecord` instead of being
  retried forever; the caller decides what a quarantined item means
  (the SWIFI campaign layer turns it into a ``WorkerKilled`` outcome).

Termination is unconditional: each round either completes chunks,
halves a failed chunk, or advances an item's death count toward the
quarantine threshold, so the number of rounds is bounded by
``log2(chunk size) + max_deaths + 1`` even when every item is a killer.

:func:`trial_deadline` is the sibling per-trial guard: a wall-clock
``SIGALRM`` budget that converts a hung trial into a
:class:`TrialTimeout` instead of stalling the worker (or the serial
loop) forever.
"""

from __future__ import annotations

import contextlib
import signal
import time
from concurrent.futures import as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.pool import ForkPool, chunk_slices


@dataclass(frozen=True)
class Clock:
    """Injectable time source for every wall-clock decision in this layer.

    Backoff sleeps, lease TTLs, and expiry checks all read time through
    one of these instead of calling :mod:`time` directly, so tests can
    drive retry rounds and lease expiry in milliseconds with a fake
    clock instead of actually sleeping (see ``tests/test_retry.py`` and
    ``tests/test_fleet.py``).
    """

    now: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep


#: The real wall clock — the default everywhere a :class:`Clock` is taken.
SYSTEM_CLOCK = Clock()


class FakeClock:
    """Deterministic clock for tests: ``sleep`` advances ``now`` instantly."""

    def __init__(self, start: float = 0.0):
        self.time = start
        self.sleeps: List[float] = []

    def now(self) -> float:
        return self.time

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.time += seconds

    def advance(self, seconds: float) -> None:
        self.time += seconds


@dataclass(frozen=True)
class RetryPolicy:
    """How the resilient mapper reacts to worker-process deaths.

    ``max_deaths`` is the quarantine threshold: the number of worker
    deaths an item may be implicated in before it is given up on.  With
    the default of 2, an item that shared a broken pool once (possibly
    as an innocent bystander of another item's kill) always gets one
    isolated retry before quarantine.  ``0`` disables fault tolerance
    entirely — the first dead worker surfaces as an exception, the
    pre-retry behaviour.
    """

    max_deaths: int = 2
    #: Delay before the first retry round, in seconds.
    backoff_base: float = 0.05
    #: Multiplier applied to the delay each further round.
    backoff_factor: float = 2.0
    #: Upper bound on any single backoff delay, in seconds.
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_deaths < 0:
            raise ValueError(f"max_deaths must be >= 0, got {self.max_deaths}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    @property
    def tolerant(self) -> bool:
        """Whether worker deaths are handled instead of raised."""
        return self.max_deaths > 0

    def backoff(self, round_no: int) -> float:
        """Backoff delay before retry round ``round_no`` (1-based)."""
        if round_no <= 0:
            return 0.0
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (round_no - 1),
        )


@dataclass
class DeathRecord:
    """One quarantined work item and the evidence against it."""

    item: Any
    #: Worker deaths the item was implicated in (shared + isolated).
    deaths: int
    #: Isolated (single-worker pool) deaths — attributable beyond doubt.
    isolated_deaths: int
    #: Retry round on which the item was quarantined.
    round_no: int
    note: str = ""


@dataclass
class BlameLedger:
    """Death bookkeeping shared by the retry mapper and the fleet.

    Both failure detectors — a ``BrokenProcessPool`` from a shared fork
    pool and an expired fleet lease — feed the same accounting: each
    implicated item earns a *strike*; a strike is *attributable* when
    the item was alone in the failure domain (a single-worker pool, or
    a fleet lease whose chunk had shrunk to one item).  An item is
    quarantined once its strikes reach ``policy.max_deaths`` with at
    least one attributable strike, exactly the pre-fleet semantics of
    :func:`map_resilient`.
    """

    policy: RetryPolicy
    deaths: Dict[Any, int] = field(default_factory=dict)
    isolated: Dict[Any, int] = field(default_factory=dict)

    def strike(self, key: Any, attributable: bool = False) -> None:
        """Implicate ``key`` in one worker death / lease expiry."""
        self.deaths[key] = self.deaths.get(key, 0) + 1
        if attributable:
            self.isolated[key] = self.isolated.get(key, 0) + 1

    def condemned(self, key: Any) -> bool:
        """Whether ``key`` has exhausted the policy's death budget."""
        return (
            self.deaths.get(key, 0) >= self.policy.max_deaths
            and self.isolated.get(key, 0) >= 1
        )

    def record(self, item: Any, key: Any, round_no: int) -> DeathRecord:
        """The quarantine evidence for a condemned item."""
        return DeathRecord(
            item=item, deaths=self.deaths[key],
            isolated_deaths=self.isolated.get(key, 0), round_no=round_no,
            note=f"worker process died {self.deaths[key]}x "
                 f"({self.isolated.get(key, 0)}x in isolation)",
        )


class TrialTimeout(Exception):
    """A trial exceeded its wall-clock budget (see :func:`trial_deadline`)."""


@contextlib.contextmanager
def trial_deadline(seconds: Optional[float]):
    """Bound a block to ``seconds`` of wall clock via ``SIGALRM``.

    Raises :class:`TrialTimeout` from inside the block when the budget
    expires.  Degrades to a no-op when ``seconds`` is falsy, when the
    platform has no ``setitimer`` (Windows), or when not running on the
    main thread (signals cannot be delivered elsewhere) — callers get
    best-effort hang protection, never a crash.  Only interrupts Python
    bytecode; a single long-running C call is not preempted.
    """
    if not seconds or seconds <= 0 or not hasattr(signal, "setitimer"):
        yield
        return

    def _expire(signum, frame):
        raise TrialTimeout(f"trial exceeded {seconds:g}s wall clock")

    try:
        previous = signal.signal(signal.SIGALRM, _expire)
    except ValueError:  # not on the main thread
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def map_resilient(
    pool: ForkPool,
    fn: Callable,
    items: Sequence,
    chunk_size: int,
    policy: RetryPolicy,
    *,
    clock: Clock = SYSTEM_CLOCK,
    on_event: Optional[Callable[..., None]] = None,
    on_result: Optional[Callable[[Sequence, Any], None]] = None,
) -> Tuple[List[Tuple[Sequence, Any]], List[DeathRecord]]:
    """Run ``fn`` over chunks of ``items``, surviving worker deaths.

    ``fn`` receives a tuple of consecutive items (one chunk) and runs in
    a worker of ``pool``; a chunk whose worker dies is split and retried
    per ``policy``.  Exceptions *raised by* ``fn`` propagate unchanged —
    only hard worker deaths (``BrokenProcessPool``) are retried.

    Returns ``(completed, dead)``: ``completed`` is a list of
    ``(chunk_items, fn_result)`` pairs covering every non-quarantined
    item exactly once (in no particular order — callers reassemble by
    item identity), and ``dead`` holds a :class:`DeathRecord` per
    quarantined item.  With ``policy.max_deaths == 0`` the first worker
    death raises ``pool.crash_error`` instead, preserving the strict
    crash-surfacing behaviour.

    ``clock`` and ``on_event`` exist for tests and observability:
    backoff sleeps go through ``clock.sleep`` so retry rounds run in
    milliseconds under a :class:`FakeClock`; ``on_event(kind, **attrs)``
    fires with ``kind`` in
    ``{"worker_death", "retry", "quarantine"}``.  ``on_result`` fires
    with each ``(chunk_items, fn_result)`` the moment the chunk
    completes, so callers can persist partial progress (the campaign
    journal) before the map — or the process — finishes.
    """

    def emit(kind: str, **attrs: Any) -> None:
        if on_event is not None:
            on_event(kind, **attrs)

    def finish(chunk: Sequence, result: Any) -> None:
        completed.append((chunk, result))
        if on_result is not None:
            on_result(chunk, result)

    chunks: List[Tuple] = [
        tuple(items[a:b]) for a, b in chunk_slices(len(items), chunk_size)
    ]
    completed: List[Tuple[Sequence, Any]] = []
    dead: List[DeathRecord] = []
    ledger = BlameLedger(policy)
    # positional identity: items may not be hashable or unique
    index_of = {id(item): i for i, item in enumerate(items)}

    def run_shared(pending: List[Tuple]) -> List[Tuple]:
        """One shared pool over ``pending``; returns the failed chunks.

        Futures are consumed in *completion* order so ``on_result``
        fires the moment a chunk lands — live progress and journal
        durability must not wait behind a slow earlier chunk.  Callers
        reassemble by item identity, so the order is free to vary.
        """
        failed: List[Tuple] = []
        with pool.executor() as ex:
            future_chunks = {ex.submit(fn, chunk): chunk for chunk in pending}
            for future in as_completed(future_chunks):
                chunk = future_chunks[future]
                try:
                    finish(chunk, future.result())
                except BrokenProcessPool as exc:
                    if not policy.tolerant:
                        raise pool.crash_error(
                            f"worker process died while running a chunk of "
                            f"{len(chunk)} item(s) (retries disabled)"
                        ) from exc
                    failed.append(chunk)
        # completion order is nondeterministic; keep the retry rounds'
        # split/blame sequence deterministic by re-sorting on position
        failed.sort(key=lambda chunk: index_of[id(chunk[0])])
        if failed:
            emit("worker_death", phase="shared",
                 failed_chunks=len(failed),
                 failed_items=sum(len(c) for c in failed))
        return failed

    def run_isolated(chunk: Tuple) -> bool:
        """Run one suspect chunk alone; True when it completed."""
        with pool.executor(max_workers=1) as ex:
            try:
                finish(chunk, ex.submit(fn, chunk).result())
                return True
            except BrokenProcessPool:
                pass
        emit("worker_death", phase="isolated", failed_chunks=1, failed_items=1)
        return False

    suspects: List[Tuple] = []
    pending = chunks
    round_no = 0
    while pending or suspects:
        if round_no > 0:
            delay = policy.backoff(round_no)
            emit("retry", round_no=round_no, delay=delay,
                 chunks=len(pending), suspects=len(suspects))
            if delay > 0:
                clock.sleep(delay)
        failed = run_shared(pending) if pending else []

        next_suspects: List[Tuple] = []
        for chunk in suspects:
            if run_isolated(chunk):
                continue
            key = index_of[id(chunk[0])]
            ledger.strike(key, attributable=True)
            if ledger.condemned(key):
                record = ledger.record(chunk[0], key, round_no)
                dead.append(record)
                emit("quarantine", deaths=record.deaths, round_no=round_no)
            else:
                next_suspects.append(chunk)

        pending = []
        for chunk in failed:
            if len(chunk) == 1:
                # implicated, but unattributable in a shared pool: the
                # item earns a strike and an isolated day in court
                ledger.strike(index_of[id(chunk[0])])
                next_suspects.append(chunk)
            else:
                mid = len(chunk) // 2
                pending.extend((chunk[:mid], chunk[mid:]))
        suspects = next_suspects
        round_no += 1

    return completed, dead
