"""Fork-based worker pool: warm initialisation, ordered chunk mapping.

The pool is built for one pattern: a parent holds a fully-constructed,
*unpicklable* object graph (a :class:`~repro.core.program.HauberkProgram`
with compiled kernels and device memory), and wants N worker processes
that each inherit that graph once, warm their own caches in an
initializer, and then chew through chunks of small picklable work
items.  ``fork`` start method only: the initializer arguments are
inherited through the forked address space, never pickled.  On
platforms without ``fork`` callers should drop to their serial path
(see :func:`fork_available`).

Crash semantics: a worker that dies hard (``os._exit``, OOM kill,
segfault) breaks the pool; :meth:`ForkPool.map_ordered` converts that
into the caller-supplied exception type instead of hanging.  An
exception *raised* inside a work function propagates unchanged, the
same as it would on the serial path.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence, Tuple, Union


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def spawn_available() -> bool:
    """Whether the ``spawn`` start method exists (it does everywhere)."""
    return "spawn" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: Union[int, str, None]) -> int:
    """Normalise a worker-count request to a positive integer.

    ``None``/``0`` mean serial (1); ``"auto"`` means one worker per
    visible CPU.  Anything else must be a positive integer.
    """
    if workers is None:
        return 1
    if isinstance(workers, str):
        if workers == "auto":
            return max(1, os.cpu_count() or 1)
        raise ValueError(f"workers must be an int, None, or 'auto'; got {workers!r}")
    count = int(workers)
    if count == 0:
        return 1
    if count < 0:
        raise ValueError(f"workers must be non-negative, got {count}")
    return count


def default_chunk_size(n_items: int, workers: int, chunks_per_worker: int = 4) -> int:
    """Chunk size giving each worker ~``chunks_per_worker`` chunks.

    Small enough to load-balance uneven trial costs, large enough to
    amortise the per-chunk pickling round trip.
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    if n_items <= 0:
        return 1
    return max(1, -(-n_items // (workers * chunks_per_worker)))


def chunk_slices(n_items: int, chunk_size: int) -> List[Tuple[int, int]]:
    """Deterministic ``[start, stop)`` slices covering ``range(n_items)``."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    if n_items < 0:
        raise ValueError(f"n_items must be non-negative, got {n_items}")
    return [(a, min(a + chunk_size, n_items)) for a in range(0, n_items, chunk_size)]


class ForkPool:
    """Thin wrapper over process pools with a chosen start method.

    Holds the worker count, warm initializer, crash-error type, and
    start method for a family of executors: :meth:`executor` mints a
    fresh ``ProcessPoolExecutor`` each call, which is what lets the
    retry layer (:mod:`repro.exec.retry`) replace a broken pool with a
    new one — same initializer, same inherited address space — instead
    of giving up.

    Two start methods are supported behind the same seam:

    * ``"fork"`` (the default, and the campaign pool's mode): workers
      inherit the parent's warm, *unpicklable* object graph through the
      forked address space; ``initargs`` are never pickled.
    * ``"spawn"``: workers are fresh interpreters — long-lived
      processes that share nothing with the parent.  Everything
      submitted (and ``initargs``) must be picklable.  This is the
      executor the campaign fleet uses to launch its leased workers
      (:mod:`repro.fleet`): one single-worker spawn executor per fleet
      worker, so a ``kill -9`` breaks only that worker's executor.
    """

    def __init__(
        self,
        workers: int,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
        crash_error: Callable[[str], Exception] = RuntimeError,
        start_method: str = "fork",
    ):
        if workers < 1:
            raise ValueError(f"pool needs at least one worker, got {workers}")
        if start_method not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                f"ForkPool requires the {start_method!r} start method, "
                f"which this platform does not provide"
            )
        self.workers = workers
        self.initializer = initializer
        self.initargs = initargs
        self.crash_error = crash_error
        self.start_method = start_method

    def executor(self, max_workers: Optional[int] = None) -> ProcessPoolExecutor:
        """A fresh executor with this pool's initializer and start method."""
        return ProcessPoolExecutor(
            max_workers=max_workers if max_workers is not None else self.workers,
            mp_context=multiprocessing.get_context(self.start_method),
            initializer=self.initializer,
            initargs=self.initargs,
        )

    def map_ordered(
        self,
        fn: Callable,
        payloads: Sequence,
        on_result: Optional[Callable[[int, object], None]] = None,
    ) -> List:
        """Run ``fn`` over ``payloads``; results in submission order.

        Work is dispatched eagerly so idle workers steal ahead, and
        futures are consumed in *completion* order so
        ``on_result(index, result)`` fires the moment a payload lands —
        the live-progress/heartbeat hook — while the returned list
        still matches ``payloads`` element-for-element.  A
        worker-process death surfaces as ``crash_error`` on the first
        affected payload rather than a hang.
        """
        with self.executor() as pool:
            futures = {
                pool.submit(fn, payload): i
                for i, payload in enumerate(payloads)
            }
            results: List = [None] * len(payloads)
            for future in as_completed(futures):
                i = futures[future]
                try:
                    results[i] = future.result()
                except BrokenProcessPool as exc:
                    raise self.crash_error(
                        f"worker process died while running chunk {i} of "
                        f"{len(payloads)} (see stderr for the worker's "
                        f"traceback, if any)"
                    ) from exc
                if on_result is not None:
                    on_result(i, results[i])
            return results
