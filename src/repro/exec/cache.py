"""Object-attached caches that never outlive or escape their owner.

The runtime and the program layer both memoise derived artifacts of a
kernel (compiled interpreters, instrumented builds).  Keeping those in
a registry keyed by ``id(kernel)`` has two classic failure modes: the
registry pins the kernel (and everything the artifact references)
alive forever, and a recycled ``id`` can alias a dead kernel's entry.

:class:`EphemeralCache` solves both by living *on* the kernel object
itself: the cache dies with its owner (the owner→cache→artifact→owner
reference cycle is collected as one unit by the cycle collector), and
an entry can never describe a different object than the one it is
attached to.  The cache also deliberately refuses to travel:
``deepcopy`` (used by ``Kernel.clone`` in every translator pass) and
pickling (used when specs/results cross process boundaries) both
produce an *empty* cache, because compiled closures reference the
original AST nodes and would be stale on a copy.
"""

from __future__ import annotations

from typing import Any


class EphemeralCache(dict):
    """A dict that resets to empty across ``deepcopy`` and pickling."""

    def __deepcopy__(self, memo: dict) -> "EphemeralCache":
        return EphemeralCache()

    def __copy__(self) -> "EphemeralCache":
        return EphemeralCache()

    def __reduce__(self):
        return (EphemeralCache, ())


def ephemeral_cache(owner: Any, attr: str) -> EphemeralCache:
    """The :class:`EphemeralCache` stored at ``owner.<attr>``, creating it.

    The attribute is set with plain ``setattr`` so it works on any
    object with a ``__dict__`` (dataclasses included) without having to
    declare the field — clones made before this feature existed simply
    start cold.
    """
    cache = owner.__dict__.get(attr)
    if cache is None:
        cache = EphemeralCache()
        setattr(owner, attr, cache)
    return cache
