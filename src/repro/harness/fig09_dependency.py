"""Figure 9 — cumulative backward dataflow dependency on the CP loop.

The paper's worked example: in the coulombic-potential kernel's loop,
``energyx2`` (whose ``dx2`` derives from ``dx1``) scores 13 vs 12 for
``energyx1``, so the loop detector protects ``energyx2``.  This driver
reports our metric's scores for every in-loop site of CP and the final
selection — the ordering (energyx2 > energyx1, both above the dx/dy
intermediates) is the reproduced result; absolute scores depend on
temporary-counting conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.harness.config import BENCH, ExperimentScale
from repro.harness.reporting import print_table
from repro.kir.analysis.dependency import (
    build_loop_dependency_graph,
    cumulative_backward_dependency,
    select_loop_targets,
)
from repro.kir.analysis.loops import top_level_loops
from repro.workloads import get_workload


@dataclass
class Fig09Result:
    scores: Dict[str, int] = field(default_factory=dict)
    selected: List[str] = field(default_factory=list)
    self_accumulating: List[str] = field(default_factory=list)


def run_fig09(scale: ExperimentScale = BENCH) -> Fig09Result:
    wl = get_workload("CP", **scale.workload_kwargs.get("CP", {}))
    kernel = wl.kernel
    loop = top_level_loops(kernel)[0]
    graph = build_loop_dependency_graph(kernel, loop)
    result = Fig09Result()
    for site_id, info in sorted(graph.sites.items()):
        result.scores[info.name] = cumulative_backward_dependency(graph, site_id)
        if info.self_accumulating:
            result.self_accumulating.append(info.name)
    selection = select_loop_targets(kernel, loop, maxvar=1)
    result.selected = selection.selected_names
    return result


def print_fig09(result: Fig09Result) -> None:
    print_table(
        "Figure 9 - cumulative backward dataflow dependency (CP loop)",
        ["variable", "CBD score", "self-accumulating", "selected"],
        [
            (name, score, name in result.self_accumulating, name in result.selected)
            for name, score in sorted(result.scores.items(), key=lambda kv: -kv[1])
        ],
    )
