"""Figure 15 — FP value-change magnitude vs original range x error bits.

The paper flips 1/3/6/10/15 random bits in 33 million random FP
samples grouped by original magnitude, and buckets the resulting value
*change*: as the bit count grows, the ">1E+15" bucket dominates
regardless of the original range — the property that makes loose
(alpha-scaled) range detectors still effective.  Fully vectorized with
``repro.bits.flip_f32_array``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.bits import flip_f32_array
from repro.bits.masks import MAGNITUDE_BUCKETS
from repro.harness.config import BENCH, ExperimentScale
from repro.harness.reporting import pct, print_table

#: Original-value magnitude ranges of the paper's x-axis.
ORIGINAL_RANGES: Tuple[Tuple[str, float, float], ...] = (
    ("1E-38~1E-15", 1e-38, 1e-15),
    ("1E-15~1E-3", 1e-15, 1e-3),
    ("1E-3~1E+3", 1e-3, 1e3),
    ("1E+3~1E+15", 1e3, 1e15),
    ("1E+15~1E+45", 1e15, 3.4e38),
)

BIT_COUNTS = (1, 3, 6, 10, 15)


@dataclass
class Fig15Result:
    #: (range label, bits) -> {change bucket label: fraction}
    cells: Dict[Tuple[str, int], Dict[str, float]] = field(default_factory=dict)

    def huge_change_fraction(self, range_label: str, bits: int) -> float:
        return self.cells[(range_label, bits)].get(">1E+15", 0.0)


def _random_masks(rng: np.random.Generator, n: int, bits: int) -> np.ndarray:
    """n random uint32 masks with exactly ``bits`` set bits, vectorized."""
    # sample bit positions without replacement via argsort of random keys
    keys = rng.random((n, 32))
    positions = np.argsort(keys, axis=1)[:, :bits]
    masks = np.zeros(n, dtype=np.uint64)
    for c in range(bits):
        masks |= np.uint64(1) << positions[:, c].astype(np.uint64)
    return masks.astype(np.uint32)


def run_fig15(scale: ExperimentScale = BENCH) -> Fig15Result:
    rng = np.random.default_rng(scale.seed + 15)
    n = scale.fig15_samples
    result = Fig15Result()
    bucket_edges = np.array([b[1] for b in MAGNITUDE_BUCKETS[1:]])
    labels = [b[0] for b in MAGNITUDE_BUCKETS]
    for range_label, lo, hi in ORIGINAL_RANGES:
        exponents = rng.uniform(np.log10(lo), np.log10(hi), n)
        signs = rng.choice([-1.0, 1.0], n)
        originals = (signs * 10.0 ** exponents).astype(np.float32)
        for bits in BIT_COUNTS:
            masks = _random_masks(rng, n, bits)
            corrupted = flip_f32_array(originals, masks)
            delta = np.abs(corrupted.astype(np.float64) - originals.astype(np.float64))
            # NaN/inf excursions land in the top bucket
            delta = np.where(np.isfinite(delta), delta, np.inf)
            idx = np.searchsorted(bucket_edges, delta, side="right")
            fractions = np.bincount(idx, minlength=len(labels)) / n
            result.cells[(range_label, bits)] = {
                labels[i]: float(fractions[i]) for i in range(len(labels))
            }
    return result


def print_fig15(result: Fig15Result) -> None:
    rows: List = []
    for (range_label, bits), dist in result.cells.items():
        rows.append(
            (
                range_label,
                bits,
                pct(dist.get(">1E+15", 0.0)),
                pct(dist.get("1E+9~1E+15", 0.0)),
                pct(dist.get("1E+3~1E+6", 0.0) + dist.get("1E+6~1E+9", 0.0)),
                pct(dist.get("1E-3~1E+3", 0.0)),
                pct(sum(v for k, v in dist.items()
                        if k in ("<1E-15", "1E-15~1E-9", "1E-9~1E-6", "1E-6~1E-3"))),
            )
        )
    print_table(
        "Figure 15 - magnitude of value change after fault",
        ["original range", "bits", ">1E15", "1E9-1E15", "1E3-1E9", "1E-3-1E3", "<1E-3"],
        rows,
    )
