"""Section IX.C — detection coverage vs alpha for MRI-FHD.

Paper: coverage is 95% / 95% / 82.8% / 81.6% at alpha = 1 / 1e3 / 1e4
/ 1e5: small alphas cost nothing (faults usually move values by >1e6x,
Figure 15), large ones let moderate excursions slip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.core.program import HauberkProgram
from repro.harness.config import BENCH, ExperimentScale
from repro.harness.reporting import pct, print_table
from repro.swifi import FaultSpec, enumerate_targets, run_campaign
from repro.workloads import get_workload

ALPHAS = (1.0, 1e3, 1e4, 1e5)


@dataclass
class Sec9cResult:
    coverage: Dict[float, float] = field(default_factory=dict)


def run_sec9c(
    scale: ExperimentScale = BENCH, workload: str = "MRI-FHD",
    alphas: Tuple[float, ...] = ALPHAS,
) -> Sec9cResult:
    wl = get_workload(workload, **scale.workload_kwargs.get(workload, {}))
    prog = HauberkProgram(wl)
    # same-dataset training, as in the coverage runs of Section IX.B/C
    prog.train(seeds=[0])
    inp = wl.generate_input(0)
    rng = np.random.default_rng(scale.seed + 93)
    # Alpha only scales the *range* detectors, so the sweep targets the
    # in-loop FP state they guard; faults on control data would be
    # caught by the alpha-independent checksum/trip detectors and mask
    # the effect ("the value of alpha only affects the detection
    # coverage of the HAUBERK loop error detector", Section IX.C).
    loop_fp = [
        s for s in enumerate_targets(wl.kernel, classes=["fp"]) if s.in_loop
    ]
    sites = loop_fp[: scale.max_targets]
    # Moderate-magnitude masks (mantissa / low exponent bits): high
    # exponent flips move values by >=1e6x and are caught at any alpha
    # (Figure 15), so the alpha trade-off lives in the band of faults
    # that multiply values by 2..2^10 — the band the paper's
    # alpha=10,000 setting starts admitting.
    specs = []
    masks_per_site = max(scale.masks_per_site, 4)
    for info in sites:
        for j in range(masks_per_site):
            position = 17 + int(rng.integers(0, 10))  # bits 17..26
            specs.append(
                FaultSpec(
                    site=info.site,
                    mask=1 << position,
                    thread=int(rng.integers(0, inp.n_threads)),
                    occurrence=int(rng.integers(1, 9)),
                    label=f"{info.name}#{j}",
                )
            )
    result = Sec9cResult()
    for alpha in alphas:
        # set_alpha precedes the campaign, so parallel workers (forked
        # per campaign) inherit the updated control block — and fleet
        # workers rebuild it from the recipe the call keeps current
        prog.set_alpha(alpha)
        cell = run_campaign(prog, specs, mode="fift", options=scale.campaign)
        result.coverage[alpha] = cell.counts.coverage
    return result


def print_sec9c(result: Sec9cResult) -> None:
    print_table(
        "Section IX.C - MRI-FHD coverage vs alpha",
        ["alpha", "coverage"],
        [(f"{a:g}", pct(c)) for a, c in result.coverage.items()],
    )
