"""Experiment scaling presets.

The paper injects ~10,000 faults per application on a GPU cluster;
this reproduction runs on one CPU interpreting every kernel statement,
so campaign sizes are scaled down but structured identically (per-site
masks, per-class sampling, seeded).  ``SMOKE`` keeps the full suite in
seconds for tests; ``BENCH`` is the default for benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.swifi.options import CampaignOptions


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by the campaign-driven figures."""

    #: Error masks drawn per virtual-variable site (paper: 50).
    masks_per_site: int = 4
    #: Error-bit counts evaluated in Figure 14 (paper: 1,3,6,10,15).
    bit_counts: Tuple[int, ...] = (1, 3, 6, 10, 15)
    #: Training inputs for the profiler before coverage runs.
    training_seeds: Tuple[int, ...] = (0, 1, 2, 3, 4)
    #: Max sites sampled per kernel (paper selects 20-50 variables).
    max_targets: int = 24
    #: CPU-simulator trials per segment (Figure 1 bottom rows).
    cpu_trials_per_segment: int = 60
    #: Graphics trials per class for the Figure 1 graphics rows.
    graphics_trials: int = 30
    #: FP samples for the Figure 15 bit-flip magnitude study
    #: (paper: 33 million; vectorized, so this can be generous).
    fig15_samples: int = 200_000
    #: Training-set counts swept in Figure 16 (paper x-axis).
    fig16_training_counts: Tuple[int, ...] = (1, 3, 5, 7, 10, 18, 30, 50)
    #: Held-out evaluations per point in Figure 16 (paper: 2 sets x 10).
    fig16_eval_runs: int = 10
    #: Workload construction overrides per name (bigger = closer to
    #: the paper's loop fractions, slower to simulate).
    workload_kwargs: Dict[str, dict] = field(default_factory=dict)
    #: Campaign execution options — workers, chunking, differential
    #: replay, journaling/resume, retry policy, trial timeout — in one
    #: :class:`~repro.swifi.options.CampaignOptions`.  The CLI's
    #: campaign flags and ``REPRO_BENCH_WORKERS`` override this via
    #: ``dataclasses.replace(scale, campaign=scale.campaign.evolve(...))``.
    campaign: CampaignOptions = field(default_factory=CampaignOptions)
    seed: int = 2011


#: Fast preset for the test suite.
SMOKE = ExperimentScale(
    masks_per_site=2,
    bit_counts=(1, 6),
    training_seeds=(0, 1),
    max_targets=10,
    cpu_trials_per_segment=15,
    graphics_trials=8,
    fig15_samples=20_000,
    fig16_training_counts=(1, 3, 7),
    fig16_eval_runs=4,
)

#: Default benchmark preset (campaign figures run the small default
#: workload instances to keep thousands of injected runs tractable).
BENCH = ExperimentScale(masks_per_site=4, max_targets=16)

#: Timing-figure preset: larger loop trip counts so the Figure 4 loop
#: fractions approach the paper's ">98% in 5 of 7 programs".  Only the
#: single-run figures (4, 13) use it — each workload executes a
#: handful of times, not thousands.
LOOPY = ExperimentScale(
    masks_per_site=4,
    max_targets=16,
    workload_kwargs={
        "CP": {"numatoms": 96},
        "MRI-Q": {"numk": 64},
        "MRI-FHD": {"numk": 64},
        "PNS": {"steps": 192},
        "SAD": {"width": 36, "height": 12, "mbsize": 6},
        "TPACF": {"npoints": 64},
        "RPES": {},
    },
)
