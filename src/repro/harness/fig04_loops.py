"""Figure 4 — percentage of GPU execution time spent in loops.

Observation 4: loops form >98% of GPU time in 5 of 7 programs and 87%
on average; RPES is the outlier whose sequential (non-loop) preamble
dominates — the reason its HAUBERK-NL overhead explodes in Figure 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.program import HauberkProgram
from repro.harness.config import BENCH, ExperimentScale
from repro.harness.reporting import pct, print_table
from repro.workloads import get_workload

NAMES = ("CP", "MRI-FHD", "MRI-Q", "PNS", "RPES", "SAD", "TPACF")


@dataclass
class Fig04Result:
    loop_fraction: Dict[str, float] = field(default_factory=dict)

    @property
    def average(self) -> float:
        vals = list(self.loop_fraction.values())
        return sum(vals) / len(vals) if vals else 0.0


def run_fig04(scale: ExperimentScale = BENCH) -> Fig04Result:
    result = Fig04Result()
    for name in NAMES:
        wl = get_workload(name, **scale.workload_kwargs.get(name, {}))
        prog = HauberkProgram(wl)
        run = prog.run(mode="original", seed=0)
        result.loop_fraction[name] = run.launch.loop_fraction
    return result


def print_fig04(result: Fig04Result) -> None:
    rows: List = [(name, pct(frac)) for name, frac in result.loop_fraction.items()]
    rows.append(("AVG", pct(result.average)))
    print_table(
        "Figure 4 - GPU execution time spent on loops",
        ["benchmark", "loop time"],
        rows,
    )
