"""Figure 2 — memory footprint by data type and program class.

"FP data occupy 3-6 orders of magnitude larger memory space than the
pointer and integer data taken together" in the HPC FP programs.  Both
paper-scale footprints (full Parboil problem sizes, from each
workload's ``paper_scale_bytes``) and the scaled-down simulated
footprints are reported.

The GB-scale row exercises the figure at paper-realistic Parboil
sizes: a kernel addresses a ≥ 2^28-word (1 GB) floating-point state
buffer on a sparse paged device memory, and the row records that the
*resident* backing stays proportional to the pages actually touched —
plus a snapshot / fault-inject / golden-diff / restore cycle at that
footprint, all without ever materializing the full address space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.harness.config import BENCH, ExperimentScale
from repro.harness.reporting import print_table
from repro.workloads import get_workload

FP_PROGRAMS = ("CP", "MRI-FHD", "MRI-Q", "PNS", "RPES", "TPACF")
INT_PROGRAM = "SAD"
GRAPHICS = ("OCEAN", "RAYTRACE")


@dataclass
class Fig02Row:
    group: str
    fp_bytes: float
    int_bytes: float
    ptr_bytes: float

    @property
    def fp_dominance_orders(self) -> float:
        """log10(FP bytes / (int + pointer bytes))."""
        other = self.int_bytes + self.ptr_bytes
        if other <= 0 or self.fp_bytes <= 0:
            return 0.0
        return math.log10(self.fp_bytes / other)


@dataclass
class GBScaleRow:
    """One GB-scale launch on the sparse paged backing."""

    footprint_words: int      #: addressable FP state, in words
    touched_words: int        #: words the kernel actually wrote
    page_words: int           #: page size of the sparse backing
    resident_pages: int       #: pages materialized by the launch
    resident_bytes: int       #: bytes actually backing the footprint
    snapshot_resident_bytes: int   #: COW snapshot cost (page refs)
    injected_faults: int      #: words corrupted across distinct pages
    golden_diff_words: int    #: page-granular diff vs the snapshot
    restore_clean: bool       #: diff == 0 after restoring the snapshot
    output_ok: bool           #: kernel output verified
    digest: str               #: backing-independent content digest

    @property
    def footprint_bytes(self) -> float:
        return 4.0 * self.footprint_words

    @property
    def resident_ratio(self) -> float:
        """Addressable bytes per resident byte (sparseness win)."""
        if self.resident_bytes <= 0:
            return 0.0
        return self.footprint_bytes / self.resident_bytes


@dataclass
class Fig02Result:
    paper_scale: List[Fig02Row] = field(default_factory=list)
    simulated: List[Fig02Row] = field(default_factory=list)
    #: Paper-realistic footprint demonstration on the paged backing.
    gb_scale: Optional[GBScaleRow] = None


def _aggregate(names, group: str, scale: ExperimentScale, use_paper: bool) -> Fig02Row:
    fp = ii = pp = 0.0
    for name in names:
        wl = get_workload(name, **scale.workload_kwargs.get(name, {}))
        if use_paper:
            profile = wl.paper_scale_bytes
        else:
            profile = wl.memory_profile(wl.generate_input(0))
        fp += profile["fp"]
        ii += profile["integer"]
        pp += profile["pointer"]
    n = len(names)
    return Fig02Row(group=group, fp_bytes=fp / n, int_bytes=ii / n, ptr_bytes=pp / n)


#: Strided-touch kernel: each thread reads-modifies-writes one word of
#: a GB-scale FP state buffer, landing every lane on a distinct page.
_GB_KERNEL = """
kernel gb_touch(float* state, float* out, int stride, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < n) {
        int addr = tid * stride;
        state[addr] = state[addr] + 1.0;
        out[tid] = state[addr];
    }
}
"""


def run_gb_scale(
    n_threads: int = 512,
    stride_words: int = 1 << 19,
    page_words: int = 1 << 12,
) -> GBScaleRow:
    """Launch a kernel over a ≥ 2^28-word FP buffer on paged memory.

    Defaults address ``511 * 2^19 + 1`` ≈ 2^28 words (1 GB of binary32
    state) while touching one word per half-MiB stride, so the
    resident backing is ~``n_threads`` 16 KiB pages (≈ 8 MiB).  After
    the launch, a snapshot / bulk fault-injection / golden-diff /
    restore cycle runs at the same footprint — the whole-campaign
    memory lifecycle at paper-realistic Parboil scale.
    """
    import numpy as np

    from repro.gpu.device import Device, DeviceSpec
    from repro.gpu.faults import inject_word_faults
    from repro.gpu.runtime import GPURuntime
    from repro.kir.parser import parse_kernel
    from repro.kir.types import DType

    # at least 2^28 words (1 GB of binary32 state): paper-realistic
    state_words = max((n_threads - 1) * stride_words + 1, 1 << 28)
    capacity = state_words + n_threads + page_words
    device = Device(spec=DeviceSpec(
        global_mem_words=capacity, paged=True, page_words=page_words,
    ))
    mem = device.memory
    state = mem.alloc("state", state_words, DType.FLOAT32)
    out = mem.alloc("out", n_threads, DType.FLOAT32)

    block = 64
    grid = (n_threads + block - 1) // block
    runtime = GPURuntime(device)
    runtime.launch(
        parse_kernel(_GB_KERNEL), (grid, 1), (block, 1),
        {"state": state, "out": out, "stride": stride_words, "n": n_threads},
    )
    output_ok = bool(np.all(mem.memcpy_dtoh(out) == 1.0))
    launch_resident = mem.resident_bytes

    golden = mem.snapshot()
    fault_addrs = [state.base + i * stride_words
                   for i in range(0, n_threads, 7)]
    inject_word_faults(mem, fault_addrs, [1 << 20] * len(fault_addrs))
    diff = mem.golden_diff(golden)
    mem.restore(golden)
    restore_clean = mem.golden_diff(golden) == 0

    return GBScaleRow(
        footprint_words=state_words,
        touched_words=n_threads,
        page_words=page_words,
        resident_pages=mem.resident_pages,
        resident_bytes=launch_resident,
        snapshot_resident_bytes=golden.resident_bytes,
        injected_faults=len(fault_addrs),
        golden_diff_words=diff,
        restore_clean=restore_clean,
        output_ok=output_ok,
        digest=mem.digest(),
    )


def run_fig02(scale: ExperimentScale = BENCH) -> Fig02Result:
    result = Fig02Result()
    for use_paper, store in ((True, result.paper_scale), (False, result.simulated)):
        store.append(_aggregate(FP_PROGRAMS, "HPC FP programs", scale, use_paper))
        store.append(_aggregate((INT_PROGRAM,), "HPC integer program", scale, use_paper))
        store.append(_aggregate(GRAPHICS, "3D graphics programs", scale, use_paper))
    result.gb_scale = run_gb_scale()
    return result


def print_fig02(result: Fig02Result) -> None:
    for label, rows in (("paper-scale", result.paper_scale),
                        ("simulated", result.simulated)):
        print_table(
            f"Figure 2 - memory size by data type ({label})",
            ["program type", "FP bytes", "int bytes", "ptr bytes", "FP dominance (orders)"],
            [
                (r.group, f"{r.fp_bytes:.3g}", f"{r.int_bytes:.3g}",
                 f"{r.ptr_bytes:.3g}", f"{r.fp_dominance_orders:.2f}")
                for r in rows
            ],
        )
    gb = result.gb_scale
    if gb is not None:
        print_table(
            "Figure 2 - GB-scale footprint on sparse paged memory",
            ["metric", "value"],
            [
                ("addressable FP state", f"{gb.footprint_bytes:.3g} bytes"
                                         f" ({gb.footprint_words} words)"),
                ("resident backing", f"{gb.resident_bytes} bytes"
                                     f" ({gb.resident_pages} pages of "
                                     f"{gb.page_words} words)"),
                ("addressable : resident", f"{gb.resident_ratio:.0f}x"),
                ("COW snapshot resident", f"{gb.snapshot_resident_bytes} bytes"),
                ("faults injected / diffed",
                 f"{gb.injected_faults} / {gb.golden_diff_words}"),
                ("restore clean", str(gb.restore_clean)),
                ("kernel output verified", str(gb.output_ok)),
                ("content digest", gb.digest[:16]),
            ],
        )
