"""Figure 2 — memory footprint by data type and program class.

"FP data occupy 3-6 orders of magnitude larger memory space than the
pointer and integer data taken together" in the HPC FP programs.  Both
paper-scale footprints (full Parboil problem sizes, from each
workload's ``paper_scale_bytes``) and the scaled-down simulated
footprints are reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List

from repro.harness.config import BENCH, ExperimentScale
from repro.harness.reporting import print_table
from repro.workloads import get_workload

FP_PROGRAMS = ("CP", "MRI-FHD", "MRI-Q", "PNS", "RPES", "TPACF")
INT_PROGRAM = "SAD"
GRAPHICS = ("OCEAN", "RAYTRACE")


@dataclass
class Fig02Row:
    group: str
    fp_bytes: float
    int_bytes: float
    ptr_bytes: float

    @property
    def fp_dominance_orders(self) -> float:
        """log10(FP bytes / (int + pointer bytes))."""
        other = self.int_bytes + self.ptr_bytes
        if other <= 0 or self.fp_bytes <= 0:
            return 0.0
        return math.log10(self.fp_bytes / other)


@dataclass
class Fig02Result:
    paper_scale: List[Fig02Row] = field(default_factory=list)
    simulated: List[Fig02Row] = field(default_factory=list)


def _aggregate(names, group: str, scale: ExperimentScale, use_paper: bool) -> Fig02Row:
    fp = ii = pp = 0.0
    for name in names:
        wl = get_workload(name, **scale.workload_kwargs.get(name, {}))
        if use_paper:
            profile = wl.paper_scale_bytes
        else:
            profile = wl.memory_profile(wl.generate_input(0))
        fp += profile["fp"]
        ii += profile["integer"]
        pp += profile["pointer"]
    n = len(names)
    return Fig02Row(group=group, fp_bytes=fp / n, int_bytes=ii / n, ptr_bytes=pp / n)


def run_fig02(scale: ExperimentScale = BENCH) -> Fig02Result:
    result = Fig02Result()
    for use_paper, store in ((True, result.paper_scale), (False, result.simulated)):
        store.append(_aggregate(FP_PROGRAMS, "HPC FP programs", scale, use_paper))
        store.append(_aggregate((INT_PROGRAM,), "HPC integer program", scale, use_paper))
        store.append(_aggregate(GRAPHICS, "3D graphics programs", scale, use_paper))
    return result


def print_fig02(result: Fig02Result) -> None:
    for label, rows in (("paper-scale", result.paper_scale),
                        ("simulated", result.simulated)):
        print_table(
            f"Figure 2 - memory size by data type ({label})",
            ["program type", "FP bytes", "int bytes", "ptr bytes", "FP dominance (orders)"],
            [
                (r.group, f"{r.fp_bytes:.3g}", f"{r.int_bytes:.3g}",
                 f"{r.ptr_bytes:.3g}", f"{r.fp_dominance_orders:.2f}")
                for r in rows
            ],
        )
