"""Figure 10 — value-range distributions of MRI-Q variables.

Every kernel variable's defined values are traced (via the FI hooks in
observe-only mode) and bucketed by power-of-ten decade with a sign
split.  The paper's findings to reproduce: most variables have a sharp
peak (>0.5 of probability mass in one decade for integers, strong
clustering for FP), and many FP variables show *three correlation
points* — a negative cluster, a near-zero cluster, and a positive
cluster of similar magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bits import decade_of
from repro.core.program import HauberkProgram
from repro.harness.config import BENCH, ExperimentScale
from repro.harness.reporting import print_table
from repro.swifi.injector import instrument_for_fi
from repro.swifi.tracing import ValueTraceLibrary
from repro.workloads import get_workload


@dataclass
class VariableDistribution:
    name: str
    cls: str  # "integer" | "fp" | "pointer"
    n_samples: int
    #: (sign, decade) -> probability
    histogram: Dict[Tuple[int, float], float] = field(default_factory=dict)

    @property
    def peak(self) -> float:
        """Largest single-bucket probability (the Figure 10 'peak')."""
        return max(self.histogram.values(), default=0.0)

    @property
    def correlation_points(self) -> int:
        """Sign classes carrying at least 5% of the mass (max 3)."""
        mass = {-1: 0.0, 0: 0.0, 1: 0.0}
        for (sign, _dec), p in self.histogram.items():
            mass[sign] += p
        return sum(1 for v in mass.values() if v >= 0.05)


@dataclass
class Fig10Result:
    distributions: List[VariableDistribution] = field(default_factory=list)


def _bucket(value: float) -> Tuple[int, float]:
    if abs(value) <= 1e-5:
        return (0, -math.inf)
    return (1 if value > 0 else -1, decade_of(value))


def run_fig10(scale: ExperimentScale = BENCH, workload: str = "MRI-Q") -> Fig10Result:
    wl = get_workload(workload, **scale.workload_kwargs.get(workload, {}))
    prog = HauberkProgram(wl)
    traced = instrument_for_fi(wl.kernel)
    tracer = ValueTraceLibrary(wl.kernel, sample_every=1)
    inp = wl.generate_input(0)
    args, _handles = wl.setup_memory(prog.device, inp)
    prog.runtime.launch(traced, inp.grid, inp.block, args, lib=tracer,
                        budget=wl.hang_budget)
    result = Fig10Result()
    classes = {s.name: s.sensitivity_class for s in tracer.sites.values()}
    for name, values in sorted(tracer.by_name().items()):
        if not values:
            continue
        hist: Dict[Tuple[int, float], int] = {}
        for v in values:
            if v != v or math.isinf(v):
                continue
            key = _bucket(v)
            hist[key] = hist.get(key, 0) + 1
        total = sum(hist.values())
        if total == 0:
            continue
        result.distributions.append(
            VariableDistribution(
                name=name,
                cls=classes.get(name, "fp"),
                n_samples=total,
                histogram={k: c / total for k, c in hist.items()},
            )
        )
    return result


def print_fig10(result: Fig10Result) -> None:
    print_table(
        "Figure 10 - value distributions of kernel variables",
        ["variable", "class", "samples", "peak bucket prob", "correlation points"],
        [
            (d.name, d.cls, d.n_samples, f"{d.peak:.2f}", d.correlation_points)
            for d in result.distributions
        ],
    )
