"""Figure 16 — false-positive ratio vs number of training sets.

Protocol (Section IX.C): from 52 datasets per program, train the loop
detectors on k randomly chosen sets and evaluate the alarm rate on 2
held-out sets; repeat and average.  Paper anchors: PNS falls to ~0
after 7 training sets; CP and TPACF converge below 10%; MRI-FHD stays
~30% even after 50 sets at alpha=1, and the right panel shows larger
alpha (2/10/100) collapsing MRI-FHD's ratio within a few sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.program import HauberkProgram, RunStatus
from repro.harness.config import BENCH, ExperimentScale
from repro.harness.reporting import pct, print_table
from repro.workloads import get_workload

PROGRAMS = ("CP", "MRI-FHD", "PNS", "TPACF")
DATASETS = 52
MRIFHD_ALPHAS = (1.0, 2.0, 10.0, 100.0)


@dataclass
class Fig16Result:
    #: (program, alpha, training_count) -> false-positive ratio
    ratios: Dict[Tuple[str, float, int], float] = field(default_factory=dict)

    def series(self, program: str, alpha: float = 1.0) -> Dict[int, float]:
        return {
            k: v for (p, a, k), v in self.ratios.items()
            if p == program and a == alpha
        }


def _false_positive_ratio(
    name: str,
    kwargs: dict,
    train_seeds: Sequence[int],
    eval_seeds: Sequence[int],
    alphas: Sequence[float],
) -> Dict[float, float]:
    wl = get_workload(name, **kwargs)
    prog = HauberkProgram(wl)
    prog.train(seeds=list(train_seeds))
    out: Dict[float, float] = {}
    for alpha in alphas:
        prog.set_alpha(alpha)
        alarms = 0
        for seed in eval_seeds:
            result = prog.run(mode="ft", seed=seed)
            if result.status is not RunStatus.OK:
                raise RuntimeError(f"{name} fault-free ft run failed")
            alarms += bool(result.alarm)
        out[alpha] = alarms / len(eval_seeds)
    return out


def run_fig16(
    scale: ExperimentScale = BENCH, programs: Tuple[str, ...] = PROGRAMS
) -> Fig16Result:
    rng = np.random.default_rng(scale.seed + 16)
    result = Fig16Result()
    reps = max(1, scale.fig16_eval_runs // 2)
    for name in programs:
        kwargs = scale.workload_kwargs.get(name, {})
        alphas = MRIFHD_ALPHAS if name == "MRI-FHD" else (1.0,)
        for k in scale.fig16_training_counts:
            tallies = {a: [] for a in alphas}
            for _rep in range(reps):
                picks = rng.permutation(DATASETS)
                train_seeds = [int(s) for s in picks[:k]]
                eval_seeds = [int(s) for s in picks[k : k + 2]]
                ratios = _false_positive_ratio(
                    name, kwargs, train_seeds, eval_seeds, alphas
                )
                for a, r in ratios.items():
                    tallies[a].append(r)
            for a, vals in tallies.items():
                result.ratios[(name, a, k)] = float(np.mean(vals))
    return result


def print_fig16(result: Fig16Result) -> None:
    rows = [
        (p, a, k, pct(v))
        for (p, a, k), v in sorted(result.ratios.items())
    ]
    print_table(
        "Figure 16 - false-positive ratio vs training sets",
        ["program", "alpha", "training sets", "false-positive ratio"],
        rows,
    )
