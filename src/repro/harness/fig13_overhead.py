"""Figure 13 — performance overhead of every technique per benchmark.

Bars per program: R-Naive, R-Scatter, HAUBERK-NL, HAUBERK-L, HAUBERK,
all as percent over the uninstrumented baseline.  Paper anchors:
R-Naive ~100%, R-Scatter ~89% avg with TPACF failing to compile,
HAUBERK 15.3% avg (8.9% excluding RPES, min 1.9%, max 14.3%), PNS the
cheapest loop detector (integer), RPES dominated by HAUBERK-NL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines import RNaiveHarness, rscatter_kernel
from repro.core.program import HauberkProgram
from repro.core.translator import TranslatorOptions
from repro.errors import CompileError
from repro.gpu.runtime import GPURuntime
from repro.harness.config import BENCH, ExperimentScale
from repro.harness.reporting import print_table
from repro.workloads import get_workload

NAMES = ("CP", "MRI-FHD", "MRI-Q", "PNS", "RPES", "SAD", "TPACF")


@dataclass
class OverheadRow:
    name: str
    rnaive: float
    rscatter: Optional[float]  # None = compile failure (TPACF)
    hauberk_nl: float
    hauberk_l: float
    hauberk: float


@dataclass
class Fig13Result:
    rows: List[OverheadRow] = field(default_factory=list)

    def averages(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for key in ("rnaive", "hauberk_nl", "hauberk_l", "hauberk"):
            vals = [getattr(r, key) for r in self.rows]
            out[key] = sum(vals) / len(vals) if vals else 0.0
        rs = [r.rscatter for r in self.rows if r.rscatter is not None]
        out["rscatter"] = sum(rs) / len(rs) if rs else 0.0
        hk = [r.hauberk for r in self.rows if r.name != "RPES"]
        out["hauberk_excl_rpes"] = sum(hk) / len(hk) if hk else 0.0
        return out

    def row(self, name: str) -> OverheadRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)


def _overhead(time: float, baseline: float) -> float:
    return 100.0 * (time / baseline - 1.0)


def run_fig13(scale: ExperimentScale = BENCH) -> Fig13Result:
    result = Fig13Result()
    for name in NAMES:
        kwargs = scale.workload_kwargs.get(name, {})
        inp = None

        def program(options=None):
            wl = get_workload(name, **kwargs)
            return HauberkProgram(wl, options=options)

        prog = program()
        wl = prog.workload
        inp = wl.generate_input(0)
        prog.train(seeds=list(scale.training_seeds))
        baseline = prog.measure_time("original", inp=inp)
        hauberk = prog.measure_time("ft", inp=inp)

        nl_prog = program(TranslatorOptions(enable_loop=False))
        t_nl = nl_prog.measure_time("ft", inp=inp)

        l_prog = program(TranslatorOptions(enable_nonloop=False))
        l_prog.train(seeds=list(scale.training_seeds))
        t_l = l_prog.measure_time("ft", inp=inp)

        rnaive = RNaiveHarness(wl, prog.device).measure_time(inp)

        rscatter: Optional[float] = None
        try:
            rk = rscatter_kernel(wl.kernel, prog.device.spec)
            args, _handles = wl.setup_memory(prog.device, inp)
            launch = GPURuntime(prog.device).launch(
                rk, inp.grid, inp.block, args, budget=wl.hang_budget
            )
            rscatter = _overhead(launch.kernel_time, baseline)
        except CompileError:
            rscatter = None

        result.rows.append(
            OverheadRow(
                name=name,
                rnaive=_overhead(rnaive, baseline),
                rscatter=rscatter,
                hauberk_nl=_overhead(t_nl, baseline),
                hauberk_l=_overhead(t_l, baseline),
                hauberk=_overhead(hauberk, baseline),
            )
        )
    return result


def print_fig13(result: Fig13Result) -> None:
    rows = []
    for r in result.rows:
        rows.append(
            (
                r.name,
                f"{r.rnaive:.1f}%",
                "no-compile" if r.rscatter is None else f"{r.rscatter:.1f}%",
                f"{r.hauberk_nl:.1f}%",
                f"{r.hauberk_l:.1f}%",
                f"{r.hauberk:.1f}%",
            )
        )
    avg = result.averages()
    rows.append(
        (
            "AVG",
            f"{avg['rnaive']:.1f}%",
            f"{avg['rscatter']:.1f}%",
            f"{avg['hauberk_nl']:.1f}%",
            f"{avg['hauberk_l']:.1f}%",
            f"{avg['hauberk']:.1f}%",
        )
    )
    rows.append(("AVG excl RPES", "", "", "", "", f"{avg['hauberk_excl_rpes']:.1f}%"))
    print_table(
        "Figure 13 - performance overhead vs baseline",
        ["benchmark", "R-Naive", "R-Scatter", "HAUBERK-NL", "HAUBERK-L", "HAUBERK"],
        rows,
    )
