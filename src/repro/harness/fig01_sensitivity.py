"""Figure 1 — error sensitivity of GPU HPC vs GPU graphics vs CPU programs.

Rows: GPU HPC programs by corrupted data type (pointer / integer / FP),
GPU graphics programs by the same classes, and CPU programs by segment
(stack / data / code).  Each cell is a bar of crash+hang / SDC /
not-manifested fractions.

Paper anchors (Observations 1-2): pointer/int/FP SDC on HPC GPU = 18% /
45% / 39%; FP faults essentially never crash a GPU kernel; graphics SDC
~0 for single-bit faults; CPU SDC < 2.3%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.program import HauberkProgram
from repro.cpusim import (
    CPUFaultCampaign,
    cpu_checksum_program,
    cpu_matmul_program,
    cpu_sort_program,
)
from repro.harness.config import BENCH, ExperimentScale
from repro.harness.reporting import pct, print_table
from repro.swifi import build_fault_specs, enumerate_targets, run_campaign
from repro.swifi.outcomes import Outcome
from repro.workloads import get_workload

import numpy as np

HPC_NAMES = ("CP", "MRI-FHD", "MRI-Q", "PNS", "RPES", "SAD", "TPACF")
GRAPHICS_NAMES = ("OCEAN", "RAYTRACE")
CLASSES = ("pointer", "integer", "fp")


@dataclass
class SensitivityRow:
    group: str
    category: str
    failure: float = 0.0
    sdc: float = 0.0
    masked: float = 0.0
    trials: int = 0


@dataclass
class Fig01Result:
    rows: List[SensitivityRow] = field(default_factory=list)

    def row(self, group: str, category: str) -> SensitivityRow:
        for r in self.rows:
            if r.group == group and r.category == category:
                return r
        raise KeyError((group, category))


def _gpu_rows(
    names, group: str, scale: ExperimentScale, trials_cap_per_class: int
) -> List[SensitivityRow]:
    tallies: Dict[str, List[int]] = {c: [0, 0, 0, 0] for c in CLASSES}
    rng = np.random.default_rng(scale.seed)
    for name in names:
        wl = get_workload(name, **scale.workload_kwargs.get(name, {}))
        prog = HauberkProgram(wl)
        inp, _golden = prog.campaign_io(0)
        for cls in CLASSES:
            sites = enumerate_targets(wl.kernel, classes=[cls])
            if not sites:
                continue
            if len(sites) > scale.max_targets:
                picks = rng.choice(len(sites), size=scale.max_targets, replace=False)
                sites = [sites[int(i)] for i in sorted(picks)]
            specs = build_fault_specs(
                sites,
                n_threads=inp.n_threads,
                masks_per_site=scale.masks_per_site,
                bit_counts=(1,),
                # a stable per-class index: str hashing is randomized
                # per process and would break run-to-run reproducibility
                seed=scale.seed + 101 * CLASSES.index(cls),
            )[:trials_cap_per_class]
            summary = run_campaign(
                prog, specs, mode="fi", options=scale.campaign,
            ).summary()
            outcomes = summary["outcomes"]
            t = tallies[cls]
            t[0] += outcomes[Outcome.FAILURE.value]
            t[1] += outcomes[Outcome.UNDETECTED.value]
            t[2] += outcomes[Outcome.MASKED.value] + outcomes[Outcome.DETECTED_MASKED.value]
            t[3] += summary["trials"]
    rows = []
    for cls in CLASSES:
        fail, sdc, masked, total = tallies[cls]
        n = max(total, 1)
        rows.append(
            SensitivityRow(
                group=group, category=cls,
                failure=fail / n, sdc=sdc / n, masked=masked / n, trials=total,
            )
        )
    return rows


def _cpu_rows(scale: ExperimentScale) -> List[SensitivityRow]:
    tallies: Dict[str, List[int]] = {s: [0, 0, 0, 0] for s in ("stack", "data", "code")}
    for builder in (cpu_matmul_program, cpu_sort_program, cpu_checksum_program):
        campaign = CPUFaultCampaign(builder)
        result = campaign.run(
            trials_per_segment=scale.cpu_trials_per_segment, seed=scale.seed
        )
        for trial in result.trials:
            t = tallies[trial.segment]
            if trial.outcome == "failure":
                t[0] += 1
            elif trial.outcome == "sdc":
                t[1] += 1
            else:
                t[2] += 1
            t[3] += 1
    rows = []
    for seg, (fail, sdc, masked, total) in tallies.items():
        n = max(total, 1)
        rows.append(
            SensitivityRow(
                group="cpu", category=seg,
                failure=fail / n, sdc=sdc / n, masked=masked / n, trials=total,
            )
        )
    return rows


def run_fig01(scale: ExperimentScale = BENCH) -> Fig01Result:
    result = Fig01Result()
    cap = scale.max_targets * scale.masks_per_site
    result.rows.extend(_gpu_rows(HPC_NAMES, "gpu_hpc", scale, cap))
    result.rows.extend(
        _gpu_rows(GRAPHICS_NAMES, "gpu_graphics", scale, max(scale.graphics_trials, 1))
    )
    result.rows.extend(_cpu_rows(scale))
    return result


def print_fig01(result: Fig01Result) -> None:
    print_table(
        "Figure 1 - error sensitivity (crash+hang / SDC / not manifested)",
        ["program group", "state class", "failure", "SDC", "not manifested", "trials"],
        [
            (r.group, r.category, pct(r.failure), pct(r.sdc), pct(r.masked), r.trials)
            for r in result.rows
        ],
    )
