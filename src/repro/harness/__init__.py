"""Experiment harness: one driver per paper figure/table.

Every module exposes a ``run_*`` function returning a structured
result plus a ``print_*`` helper producing the rows/series the paper
reports.  The pytest-benchmark files under ``benchmarks/`` are thin
wrappers over these drivers; EXPERIMENTS.md records their output
against the paper's numbers.
"""

from repro.harness.config import ExperimentScale, SMOKE, BENCH, LOOPY
from repro.harness import reporting

__all__ = ["ExperimentScale", "SMOKE", "BENCH", "LOOPY", "reporting"]
