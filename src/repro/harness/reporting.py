"""Plain-text tables, JSON report sinks, and series for the figure drivers.

Every figure driver renders through :func:`print_table`.  When a
:class:`ReportSink` is installed (``--json-dir`` on the CLI, or
:func:`set_report_sink` programmatically), each table is additionally
written as a machine-readable JSON document next to the text output,
so downstream tooling can diff experiment runs without scraping tables.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Iterable, List, Optional, Sequence


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Monospace table with a title rule."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    lines = [title, "=" * len(title)]
    lines.append(sep.join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(sep.join("-" * w for w in widths))
    for row in str_rows:
        lines.append(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    rows = [list(r) for r in rows]  # materialize: rendered twice below
    print(format_table(title, headers, rows))
    print()
    sink = _report_sink
    if sink is not None:
        sink.emit(title, headers, rows)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def pct(fraction: float) -> str:
    """Render a [0,1] fraction as a percentage cell."""
    return f"{100.0 * fraction:5.1f}%"


# ---------------------------------------------------------------------------
# machine-readable table output
# ---------------------------------------------------------------------------


def slugify(title: str) -> str:
    """A filesystem-safe slug for a table title."""
    slug = re.sub(r"[^a-z0-9]+", "-", title.lower()).strip("-")
    return slug or "table"


class ReportSink:
    """Writes every emitted table as one JSON document in a directory.

    The document schema is stable::

        {"title": str, "headers": [str, ...], "rows": [[cell, ...], ...]}

    Cells keep their Python types where JSON can represent them
    (numbers, strings, booleans); anything else is stringified.
    """

    def __init__(self, directory):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Paths written by this sink, in emission order.
        self.written: List[pathlib.Path] = []

    def emit(self, title: str, headers: Sequence[str], rows: Iterable[Sequence]):
        payload = {
            "title": title,
            "headers": [str(h) for h in headers],
            "rows": [[self._jsonable(c) for c in row] for row in rows],
        }
        path = self.directory / f"{slugify(title)}.json"
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        self.written.append(path)
        return path

    @staticmethod
    def _jsonable(cell):
        if isinstance(cell, bool) or cell is None:
            return cell
        if isinstance(cell, int):
            return cell
        if isinstance(cell, float):
            # NaN/Inf are not valid JSON; stringify them
            return cell if cell == cell and abs(cell) != float("inf") else str(cell)
        if isinstance(cell, str):
            return cell
        return str(cell)

    @staticmethod
    def load(path) -> dict:
        """Read one emitted table back (round-trip helper)."""
        return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


_report_sink: Optional[ReportSink] = None


def get_report_sink() -> Optional[ReportSink]:
    return _report_sink


def set_report_sink(sink: Optional[ReportSink]) -> Optional[ReportSink]:
    """Install (or with ``None`` remove) the process-wide report sink."""
    global _report_sink
    _report_sink = sink
    return sink
