"""Plain-text tables and series for the figure drivers."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Monospace table with a title rule."""
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "
    lines = [title, "=" * len(title)]
    lines.append(sep.join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(sep.join("-" * w for w in widths))
    for row in str_rows:
        lines.append(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    print(format_table(title, headers, rows))
    print()


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def pct(fraction: float) -> str:
    """Render a [0,1] fraction as a percentage cell."""
    return f"{100.0 * fraction:5.1f}%"
