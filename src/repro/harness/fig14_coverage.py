"""Figure 14 — HAUBERK error detection coverage per benchmark x error bits.

Stacked outcome fractions (failure / masked / detected&masked /
detected / undetected) for error-bit counts {1,3,6,10,15} on each
benchmark running the FI&FT build with trained detectors.  Paper
anchors: ~86.8% average coverage (13.2% escapes); for single-bit
errors 35.6% masked, 11.0% failure, 21.4% detected, 22.2% detected &
masked, 9.8% undetected; multi-bit errors raise failures and lower
masking; CP's coverage can *drop* at high bit counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.program import HauberkProgram
from repro.harness.config import BENCH, ExperimentScale
from repro.harness.reporting import pct, print_table
from repro.swifi import build_fault_specs, run_campaign, select_targets
from repro.swifi.outcomes import Outcome, OutcomeCounts
from repro.workloads import get_workload

import numpy as np

NAMES = ("CP", "MRI-FHD", "MRI-Q", "PNS", "RPES", "SAD", "TPACF")


@dataclass
class Fig14Result:
    #: (benchmark, n_bits) -> outcome tally
    cells: Dict[Tuple[str, int], OutcomeCounts] = field(default_factory=dict)
    #: (benchmark, n_bits) -> the campaign's machine-readable summary()
    summaries: Dict[Tuple[str, int], dict] = field(default_factory=dict)

    def average_coverage(self, n_bits: int = None) -> float:
        cells = [
            c for (name, bits), c in self.cells.items()
            if n_bits is None or bits == n_bits
        ]
        if not cells:
            return 0.0
        return sum(c.coverage for c in cells) / len(cells)

    def fraction(self, outcome: Outcome, n_bits: int) -> float:
        cells = [c for (n, b), c in self.cells.items() if b == n_bits]
        if not cells:
            return 0.0
        return sum(c.fraction(outcome) for c in cells) / len(cells)


def run_fig14(
    scale: ExperimentScale = BENCH, names: Tuple[str, ...] = NAMES
) -> Fig14Result:
    result = Fig14Result()
    rng = np.random.default_rng(scale.seed + 14)
    for name in names:
        wl = get_workload(name, **scale.workload_kwargs.get(name, {}))
        prog = HauberkProgram(wl)
        # the paper evaluates coverage "when the same input data set is
        # used for training and test runs" (Section IX.B)
        prog.train(seeds=[0])
        inp, _golden = prog.campaign_io(0)
        sites = select_targets(wl.kernel, scale.max_targets, rng)
        for bits in scale.bit_counts:
            specs = build_fault_specs(
                sites,
                n_threads=inp.n_threads,
                masks_per_site=scale.masks_per_site,
                bit_counts=(bits,),
                seed=scale.seed + bits,
            )
            cell = run_campaign(prog, specs, mode="fift",
                                options=scale.campaign)
            result.cells[(name, bits)] = cell.counts
            result.summaries[(name, bits)] = cell.summary()
    return result


def print_fig14(result: Fig14Result) -> None:
    rows: List = []
    for (name, bits), counts in sorted(result.cells.items()):
        rows.append(
            (
                name,
                bits,
                pct(counts.fraction(Outcome.FAILURE)),
                pct(counts.fraction(Outcome.MASKED)),
                pct(counts.fraction(Outcome.DETECTED_MASKED)),
                pct(counts.fraction(Outcome.DETECTED)),
                pct(counts.fraction(Outcome.UNDETECTED)),
                pct(counts.coverage),
            )
        )
    rows.append(("AVG (all)", "-", "", "", "", "", "",
                 pct(result.average_coverage())))
    print_table(
        "Figure 14 - HAUBERK outcome fractions by benchmark and error bits",
        ["benchmark", "bits", "failure", "masked", "det&masked", "detected",
         "undetected", "coverage"],
        rows,
    )
