"""Figure 3 — impact of transient vs intermittent faults on graphics.

(a) a transient fault (one corrupted value in one thread's shading
computation) corrupts a localized spike of pixels — below the
user-noticeable threshold; (b) an intermittent fault (a stuck memory
word in the wave-spectrum input, read by every pixel — the paper
emulates 10,000 value errors, an ~80us FPU fault) streaks a prominent
pattern across the frame — a noticeable corruption.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.program import HauberkProgram, RunStatus
from repro.harness.config import BENCH, ExperimentScale
from repro.harness.reporting import print_table
from repro.swifi import FaultSpec, enumerate_targets
from repro.swifi.injector import MemoryFaultInjector
from repro.workloads.graphics import OceanWorkload, frame_corruption_stats
from repro.workloads.graphics.perceptual import FrameStats


@dataclass
class Fig03Result:
    transient: FrameStats
    intermittent: FrameStats
    transient_noticeable: bool
    intermittent_noticeable: bool


def run_fig03(scale: ExperimentScale = BENCH) -> Fig03Result:
    wl = OceanWorkload()
    prog = HauberkProgram(wl)
    inp = wl.generate_input(0)
    golden = wl.golden(inp)

    # (a) transient: one single-bit error in one thread's height value
    sites = [s for s in enumerate_targets(wl.kernel) if s.name == "h" and s.in_loop]
    spec = FaultSpec(site=sites[0].site, mask=1 << 21, thread=inp.n_threads // 3,
                     occurrence=2)
    result = prog.run(mode="fi", inp=inp, fault=spec)
    assert result.status is RunStatus.OK
    transient = frame_corruption_stats(result.output, golden)

    # (b) intermittent: a spectrum amplitude stuck with a flipped
    # exponent bit, read by every pixel of the frame
    args, handles = wl.setup_memory(prog.device, inp)
    amp_addr = handles["spectrum"].base + 2  # wave 0 amplitude
    injector = MemoryFaultInjector(prog.device.memory)
    injector.inject_word(amp_addr, 1 << 25)
    prog.runtime.launch(wl.kernel, inp.grid, inp.block, args,
                        budget=wl.hang_budget)
    corrupted = wl.read_output(prog.device, inp, handles)
    injector.undo()  # clear the stuck word before any later launch
    intermittent = frame_corruption_stats(corrupted, golden)

    return Fig03Result(
        transient=transient,
        intermittent=intermittent,
        transient_noticeable=not wl.spec.check(result.output, golden),
        intermittent_noticeable=not wl.spec.check(corrupted, golden),
    )


def print_fig03(result: Fig03Result) -> None:
    print_table(
        "Figure 3 - fault impact on the ocean-flow frame",
        ["fault", "corrupted pixels", "fraction", "max dev (8-bit levels)", "noticeable"],
        [
            ("transient (1 value)", result.transient.corrupted_pixels,
             f"{result.transient.corrupted_fraction:.4f}",
             f"{result.transient.max_deviation_levels:.1f}",
             result.transient_noticeable),
            ("intermittent (stuck word)", result.intermittent.corrupted_pixels,
             f"{result.intermittent.corrupted_fraction:.4f}",
             f"{result.intermittent.max_deviation_levels:.1f}",
             result.intermittent_noticeable),
        ],
    )
