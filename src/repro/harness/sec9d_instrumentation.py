"""Section IX.D — HAUBERK instrumentation time and Table I audit.

The paper measures instrumentation (translator) time per Parboil
program — 0.7 s average for the transformation proper — and argues the
cost is negligible against compilation.  This driver times our
translator's FT build per workload and audits that every Table I
instrumentation site is present in the built kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.audit import audit_build
from repro.core.translator import HauberkTranslator
from repro.harness.config import BENCH, ExperimentScale
from repro.harness.reporting import print_table
from repro.kir.printer import kernel_to_source
from repro.workloads import get_workload

NAMES = ("CP", "MRI-FHD", "MRI-Q", "PNS", "RPES", "SAD", "TPACF")


@dataclass
class InstrumentationRow:
    name: str
    kernel_lines: int
    ft_lines: int
    ft_seconds: float
    fi_seconds: float
    detectors: int
    duplicated_defs: int
    #: Table I structural audit verdicts for the FT and FI builds.
    audit_ok: bool = True


@dataclass
class Sec9dResult:
    rows: List[InstrumentationRow] = field(default_factory=list)

    @property
    def avg_seconds(self) -> float:
        if not self.rows:
            return 0.0
        return sum(r.ft_seconds for r in self.rows) / len(self.rows)

    @property
    def max_seconds(self) -> float:
        return max((r.ft_seconds for r in self.rows), default=0.0)


def run_sec9d(scale: ExperimentScale = BENCH) -> Sec9dResult:
    translator = HauberkTranslator()
    result = Sec9dResult()
    for name in NAMES:
        wl = get_workload(name, **scale.workload_kwargs.get(name, {}))
        ft = translator.build(wl.kernel, "ft")
        fi = translator.build(wl.kernel, "fi")
        audit_ok = audit_build(wl.kernel, ft).ok and audit_build(wl.kernel, fi).ok
        result.rows.append(
            InstrumentationRow(
                name=name,
                kernel_lines=len(kernel_to_source(wl.kernel).splitlines()),
                ft_lines=len(kernel_to_source(ft.kernel).splitlines()),
                ft_seconds=ft.instrumentation_time,
                fi_seconds=fi.instrumentation_time,
                detectors=len(ft.detector_configs),
                duplicated_defs=(
                    ft.nonloop_info.duplicated_definitions if ft.nonloop_info else 0
                ),
                audit_ok=audit_ok,
            )
        )
    return result


def print_sec9d(result: Sec9dResult) -> None:
    rows = [
        (r.name, r.kernel_lines, r.ft_lines, f"{r.ft_seconds * 1e3:.1f}ms",
         f"{r.fi_seconds * 1e3:.1f}ms", r.detectors, r.duplicated_defs, r.audit_ok)
        for r in result.rows
    ]
    rows.append(("AVG", "", "", f"{result.avg_seconds * 1e3:.1f}ms", "", "", "", ""))
    print_table(
        "Section IX.D - instrumentation time",
        ["benchmark", "kernel lines", "FT lines", "FT build", "FI build",
         "loop detectors", "duplicated defs", "audit"],
        rows,
    )
