"""Checkpoint library (Section VI(i), citing CheCUDA [25]).

"A checkpoint can be made before launching a GPU kernel, and the
guardian process can restore the latest checkpoint upon detection of a
GPU program failure."  Checkpoints snapshot host-visible program state
(input arrays, scalars, the control block) so recovery restarts from
the last kernel boundary instead of from program start.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import RecoveryError


@dataclass
class Checkpoint:
    """One snapshot of host program state."""

    tag: str
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    scalars: Dict[str, object] = field(default_factory=dict)
    #: Opaque extra state (e.g. a ControlBlock) stored by deep copy.
    extra: Dict[str, object] = field(default_factory=dict)
    #: Raw device-memory snapshot (``GlobalMemory.snapshot()``): a
    #: ``uint32`` ndarray from the dense backing or a COW
    #: ``PagedSnapshot`` page set from the sparse one, captured at a
    #: kernel boundary; ``None`` when host-state only.
    device_words: Optional[object] = None

    @classmethod
    def capture(
        cls,
        tag: str,
        arrays: Optional[Dict[str, np.ndarray]] = None,
        scalars: Optional[Dict[str, object]] = None,
        extra: Optional[Dict[str, object]] = None,
        memory=None,
    ) -> "Checkpoint":
        """Snapshot host state, plus device memory when ``memory`` is given.

        ``memory`` is any object with a ``snapshot()`` (the GPU's
        :class:`~repro.gpu.memory.GlobalMemory`): the whole allocated
        device state is captured — one vectorized ``uint32`` copy on
        the dense backing, a copy-on-write page set (O(resident pages),
        never the full address space) on the paged backing.  Either
        way it is raw bit patterns, so NaN payloads and denormals
        written by the kernel survive a restore bit-exactly.
        """
        return cls(
            tag=tag,
            arrays={k: np.array(v, copy=True) for k, v in (arrays or {}).items()},
            scalars=dict(scalars or {}),
            extra={k: copy.deepcopy(v) for k, v in (extra or {}).items()},
            device_words=None if memory is None else memory.snapshot(),
        )

    def restore_arrays(self) -> Dict[str, np.ndarray]:
        """Fresh copies of the checkpointed arrays."""
        return {k: np.array(v, copy=True) for k, v in self.arrays.items()}

    def restore_extra(self, key: str):
        if key not in self.extra:
            raise RecoveryError(f"checkpoint {self.tag!r} has no extra {key!r}")
        return copy.deepcopy(self.extra[key])

    def restore_device(self, memory) -> None:
        """Write the captured device words back into ``memory``.

        The memory's allocation layout must match the capture (the
        guardian restores at the same kernel boundary it checkpointed).
        """
        if self.device_words is None:
            raise RecoveryError(
                f"checkpoint {self.tag!r} holds no device memory"
            )
        memory.restore(self.device_words)


class CheckpointLibrary:
    """Bounded stack of checkpoints, newest first."""

    def __init__(self, capacity: int = 4):
        if capacity <= 0:
            raise RecoveryError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._stack: List[Checkpoint] = []

    def save(self, checkpoint: Checkpoint) -> None:
        self._stack.append(checkpoint)
        if len(self._stack) > self.capacity:
            self._stack.pop(0)

    def latest(self) -> Checkpoint:
        if not self._stack:
            raise RecoveryError("no checkpoint available")
        return self._stack[-1]

    def find(self, tag: str) -> Checkpoint:
        for cp in reversed(self._stack):
            if cp.tag == tag:
                return cp
        raise RecoveryError(f"no checkpoint tagged {tag!r}")

    def __len__(self) -> int:
        return len(self._stack)
