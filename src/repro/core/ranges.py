"""Value ranges for the loop detector, with alpha recalibration.

An FP variable typically clusters around up to *three correlation
points* — one negative, one near zero, one positive (Figure 10) — so a
detector's learned state is a :class:`RangeSet` of at most three
:class:`ValueRange` intervals.  The recovery engine loosens or
tightens bounds with a multiplicative *alpha* (Section VI(iii)): "the
maximum value of each value range is multiplied by alpha, and the
minimum value of each value range is divided by alpha if these maximum
and minimum values are positive numbers".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.errors import ReproError


@dataclass(frozen=True)
class ValueRange:
    """Closed interval [lo, hi]."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if math.isnan(self.lo) or math.isnan(self.hi):
            raise ReproError("NaN range bound")
        if self.lo > self.hi:
            raise ReproError(f"inverted range [{self.lo}, {self.hi}]")

    def contains(self, value: float) -> bool:
        if value != value:  # NaN is never inside any range
            return False
        return self.lo <= value <= self.hi

    def widened(self, value: float) -> "ValueRange":
        """Smallest range containing both this range and ``value``."""
        return ValueRange(min(self.lo, value), max(self.hi, value))

    def scaled(self, alpha: float) -> "ValueRange":
        """Loosen bounds by alpha (paper Section VI(iii)).

        Each bound moves *away* from zero (or toward it, for the inner
        bound) so the interval only grows for alpha >= 1.
        """
        if alpha < 1.0:
            raise ReproError(f"alpha must be >= 1, got {alpha}")
        hi = self.hi * alpha if self.hi > 0 else self.hi / alpha
        lo = self.lo / alpha if self.lo > 0 else self.lo * alpha
        return ValueRange(lo, hi)

    def log_space_size(self) -> float:
        """Decade span of the interval (the profiler's 'value space').

        Measures how much of the FP value space the range admits;
        zero-crossing ranges count both magnitude spans down to the
        smallest normal.
        """
        tiny = 1e-38  # smallest normal binary32 magnitude
        lo, hi = self.lo, self.hi
        if lo == hi:
            return 0.0
        if lo >= 0:
            return math.log10(max(hi, tiny) / max(lo, tiny))
        if hi <= 0:
            return math.log10(max(-lo, tiny) / max(-hi, tiny))
        return math.log10(max(hi, tiny) / tiny) + math.log10(max(-lo, tiny) / tiny)


@dataclass
class RangeSet:
    """Up to three correlation-point ranges plus the alpha multiplier."""

    ranges: List[ValueRange] = field(default_factory=list)
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if len(self.ranges) > 3:
            raise ReproError(f"at most 3 correlation points, got {len(self.ranges)}")

    def contains(self, value: float) -> bool:
        """Membership under the current alpha-scaled bounds.

        An empty range set admits nothing (an unprofiled detector
        always alarms, prompting on-line learning).
        """
        if value != value or math.isinf(value):
            return False
        return any(r.scaled(self.alpha).contains(value) for r in self.ranges)

    def learn(self, value: float) -> "RangeSet":
        """Absorb an observed-legitimate value (on-line learning).

        The nearest range widens; if there are fewer than three ranges
        and the value is far from all of them, a new point range is
        opened instead.
        """
        if value != value or math.isinf(value):
            return self
        if not self.ranges:
            return RangeSet(ranges=[ValueRange(value, value)], alpha=self.alpha)
        distances = [
            0.0 if r.contains(value) else min(abs(value - r.lo), abs(value - r.hi))
            for r in self.ranges
        ]
        nearest = distances.index(min(distances))
        if len(self.ranges) < 3 and min(distances) > 0:
            # open a new correlation point when the value is in a
            # different sign class than every existing range
            sign_classes = {_sign_class(r.lo) for r in self.ranges} | {
                _sign_class(r.hi) for r in self.ranges
            }
            if _sign_class(value) not in sign_classes:
                new = self.ranges + [ValueRange(value, value)]
                new.sort(key=lambda r: r.lo)
                return RangeSet(ranges=new, alpha=self.alpha)
        new = list(self.ranges)
        new[nearest] = new[nearest].widened(value)
        return RangeSet(ranges=new, alpha=self.alpha)

    def with_alpha(self, alpha: float) -> "RangeSet":
        return RangeSet(ranges=list(self.ranges), alpha=alpha)

    def total_log_space(self) -> float:
        return sum(r.log_space_size() for r in self.ranges)

    @property
    def is_trained(self) -> bool:
        return bool(self.ranges)


def _sign_class(value: float, zero_band: float = 1e-5) -> int:
    """-1 / 0 / +1 classification used when opening correlation points."""
    if abs(value) <= zero_band:
        return 0
    return 1 if value > 0 else -1


def merge_range_sets(sets: Iterable[RangeSet]) -> RangeSet:
    """Union of several learned range sets (multi-training-set merge)."""
    merged: Optional[RangeSet] = None
    for rs in sets:
        if merged is None:
            merged = RangeSet(ranges=list(rs.ranges), alpha=rs.alpha)
            continue
        for r in rs.ranges:
            merged = merged.learn(r.lo)
            merged = merged.learn(r.hi)
    return merged if merged is not None else RangeSet()
