"""HAUBERK — customized SDC error detection and recovery for GPU kernels.

The paper's contribution (Sections IV-VI):

* :mod:`repro.core.ranges` / :mod:`repro.core.profiler` — value-range
  learning with up to three FP correlation points, plus alpha scaling;
* :mod:`repro.core.nonloop` — HAUBERK-NL: duplication with an
  immediately-checked duplicate and a single shared XOR checksum;
* :mod:`repro.core.loopdet` — HAUBERK-L: accumulation-based range
  checking of the loop variable with the largest cumulative backward
  dataflow dependency, plus a trip-count invariant;
* :mod:`repro.core.translator` — the source-to-source instrumentation
  engine producing the Table I build matrix (Profiler / FT / FI / FI&FT);
* :mod:`repro.core.controlblock` / :mod:`repro.core.ftlib` — the
  CPU<->GPU control block and the runtime detector library;
* :mod:`repro.core.program` — the CPU-side harness (Figure 7 flow);
* :mod:`repro.core.recovery` / :mod:`repro.core.guardian` /
  :mod:`repro.core.bist` / :mod:`repro.core.checkpoint` — the Figure 11
  diagnosis flowchart, guardian process, BIST, and checkpointing.
"""

from repro.core.ranges import ValueRange, RangeSet
from repro.core.profiler import RangeProfiler, learn_fp_ranges, learn_int_ranges
from repro.core.controlblock import ControlBlock, DetectorConfig, DetectionEvent
from repro.core.ftlib import HauberkFTLibrary
from repro.core.translator import (
    HauberkTranslator,
    InstrumentedKernel,
    TranslatorOptions,
)
from repro.core.program import HauberkProgram, ProgramResult, RunStatus
from repro.core.recovery import RecoveryEngine, AlphaController, DiagnosisResult
from repro.core.guardian import Guardian, GuardianReport
from repro.core.bist import run_bist
from repro.core.checkpoint import Checkpoint, CheckpointLibrary
from repro.core.audit import AuditReport, audit_build

__all__ = [
    "ValueRange",
    "RangeSet",
    "RangeProfiler",
    "learn_fp_ranges",
    "learn_int_ranges",
    "ControlBlock",
    "DetectorConfig",
    "DetectionEvent",
    "HauberkFTLibrary",
    "HauberkTranslator",
    "InstrumentedKernel",
    "TranslatorOptions",
    "HauberkProgram",
    "ProgramResult",
    "RunStatus",
    "RecoveryEngine",
    "AlphaController",
    "DiagnosisResult",
    "Guardian",
    "GuardianReport",
    "run_bist",
    "Checkpoint",
    "CheckpointLibrary",
    "AuditReport",
    "audit_build",
]
