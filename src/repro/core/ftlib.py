"""The HAUBERK FT runtime library (Section V.B step iv).

Device-side halves of the placed detectors.  All reporting is
*deferred*: detectors only mark the control block; nothing aborts the
kernel (Principle 3 — "if a potential SDC error is detected, this
error detector does not terminate the GPU kernel").

``HauberkCheckRange`` checks the averaged accumulator against the
profiled (alpha-scaled) ranges; on a miss it "calculates new ranges
(i.e., assuming it is a false positive) and stores this to [the]
control block together with setting an SDC error bit" — the on-line
learning half of the recovery loop.
"""

from __future__ import annotations

from typing import Optional

from repro.core.controlblock import ControlBlock, DetectionEvent
from repro.errors import ReproError
from repro.kir.interp.evalcore import ExecContext, InstrumentationLibrary


class HauberkFTLibrary(InstrumentationLibrary):
    """Runtime detector library bound to an FT-instrumented kernel."""

    def __init__(self, control_block: Optional[ControlBlock] = None):
        self.cb = control_block if control_block is not None else ControlBlock()

    def bind(self, control_block: ControlBlock) -> None:
        """Point the library at a (device copy of a) control block."""
        self.cb = control_block

    # -- HauberkCheckRange(cb, det, accumulator / iterator) ----------------
    def lib_check_range(
        self, ctx: ExecContext, frame: dict, detector: int, value: float
    ) -> None:
        cfg = self.cb.detectors.get(detector)
        if cfg is None:
            raise ReproError(f"check_range for unconfigured detector {detector}")
        value = float(value)
        if cfg.ranges.contains(value):
            return
        self.cb.sdc_bit = True
        self.cb.events.append(
            DetectionEvent(
                detector=detector,
                kind="range",
                value=value,
                block=ctx.block,
                thread=ctx.thread,
            )
        )
        # on-line learning: propose widened ranges assuming false positive
        proposed = self.cb.updated_ranges.get(detector, cfg.ranges)
        self.cb.updated_ranges[detector] = proposed.learn(value)

    # -- HauberkCheckEqual(cb, det, iterator, expected) ---------------------
    def lib_check_equal(
        self, ctx: ExecContext, frame: dict, detector: int, actual: int, expected: int
    ) -> None:
        if actual == expected:
            return
        self.cb.sdc_bit = True
        self.cb.events.append(
            DetectionEvent(
                detector=detector,
                kind="trip",
                value=float(actual),
                expected=float(expected),
                block=ctx.block,
                thread=ctx.thread,
            )
        )

    # -- checksum + duplication-mismatch validation at kernel exit -----------
    def lib_checksum_validate(
        self, ctx: ExecContext, frame: dict, checksum: int, nl_mismatch: int
    ) -> None:
        if checksum == 0 and nl_mismatch == 0:
            return
        self.cb.sdc_bit = True
        kind = "checksum" if checksum != 0 else "nl_mismatch"
        self.cb.events.append(
            DetectionEvent(
                detector=-1,
                kind=kind,
                value=float(checksum),
                expected=float(nl_mismatch),
                block=ctx.block,
                thread=ctx.thread,
            )
        )
