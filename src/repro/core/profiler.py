"""Value-range profiling (Section V.B step iv and Figure 10).

The profiling algorithm "is specifically designed to detect up to
three correlation points": two symmetric threshold points +/-tau split
samples into negative / near-zero / positive clusters; tau starts at
1e-5 and is multiplied by 10 or 0.1 while the summed value-space size
of the resulting ranges keeps shrinking.  A tight tau keeps the
detector's admitted value space small, which is what makes range
checking effective on FP data despite its enormous encodable space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import math

import numpy as np

from repro.core.ranges import RangeSet, ValueRange
from repro.errors import ReproError
from repro.kir.interp.evalcore import ExecContext, InstrumentationLibrary


def _ranges_for_threshold(samples: np.ndarray, tau: float) -> List[ValueRange]:
    """Partition samples at +/-tau and box each nonempty cluster."""
    ranges: List[ValueRange] = []
    neg = samples[samples <= -tau]
    mid = samples[(samples > -tau) & (samples < tau)]
    pos = samples[samples >= tau]
    for cluster in (neg, mid, pos):
        if cluster.size:
            ranges.append(ValueRange(float(cluster.min()), float(cluster.max())))
    return ranges


def learn_fp_ranges(samples: Sequence[float], tau0: float = 1e-5) -> RangeSet:
    """Three-correlation-point range learning for FP samples."""
    arr = np.asarray([s for s in samples if s == s and not math.isinf(s)], dtype=float)
    if arr.size == 0:
        return RangeSet()
    best_tau = tau0
    best_ranges = _ranges_for_threshold(arr, best_tau)
    best_space = sum(r.log_space_size() for r in best_ranges)
    improved = True
    while improved:
        improved = False
        for factor in (10.0, 0.1):
            tau = best_tau * factor
            if not 1e-30 < tau < 1e30:
                continue
            ranges = _ranges_for_threshold(arr, tau)
            space = sum(r.log_space_size() for r in ranges)
            if space < best_space - 1e-12:
                best_tau, best_ranges, best_space = tau, ranges, space
                improved = True
                break
    return RangeSet(ranges=best_ranges)


def learn_int_ranges(samples: Sequence[int]) -> RangeSet:
    """Integer profiling: negative/zero/positive clusters, boxed.

    Figure 10(a) shows integer values also cluster by decade with a
    sign split, so the same three-way structure applies with a fixed
    threshold of 1 (integers have no subnormal tail to search).
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        return RangeSet()
    return RangeSet(ranges=_ranges_for_threshold(arr, 1.0))


@dataclass
class DetectorProfile:
    """Training samples accumulated for one loop detector."""

    detector: int
    is_float: bool = True
    samples: List[float] = field(default_factory=list)
    exec_count: int = 0

    def finalize(self) -> RangeSet:
        if self.is_float:
            return learn_fp_ranges(self.samples)
        return learn_int_ranges([int(s) for s in self.samples])


class RangeProfiler(InstrumentationLibrary):
    """The HAUBERK Profiler library (Figure 7's second build).

    Bound to a kernel instrumented in ``profiler`` mode: each
    ``__hauberk_profile_range(det, value)`` call records one averaged
    accumulator observation; ``__hauberk_profile_count(site)`` tallies
    per-site execution counts (Table I).  After the training runs,
    :meth:`finalize` produces the per-detector range sets the FT build
    loads into its control block.
    """

    def __init__(self) -> None:
        self.profiles: Dict[int, DetectorProfile] = {}
        self.site_counts: Dict[int, int] = {}

    # -- instrumentation entry points ------------------------------------
    def lib_profile_range(
        self, ctx: ExecContext, frame: dict, detector: int, value: float
    ) -> None:
        prof = self.profiles.get(detector)
        if prof is None:
            prof = DetectorProfile(detector=detector)
            self.profiles[detector] = prof
        if isinstance(value, int):
            prof.is_float = False
        prof.samples.append(float(value))
        prof.exec_count += 1

    def lib_profile_count(self, ctx: ExecContext, frame: dict, site: int) -> None:
        self.site_counts[site] = self.site_counts.get(site, 0) + 1

    # -- results ------------------------------------------------------------
    def finalize(self) -> Dict[int, RangeSet]:
        """Learned range sets per detector index."""
        return {d: p.finalize() for d, p in self.profiles.items()}

    def merge_from(self, other: "RangeProfiler") -> None:
        """Accumulate another training run's samples into this profiler."""
        for d, p in other.profiles.items():
            mine = self.profiles.get(d)
            if mine is None:
                self.profiles[d] = DetectorProfile(
                    detector=d, is_float=p.is_float, samples=list(p.samples),
                    exec_count=p.exec_count,
                )
            else:
                if mine.is_float != p.is_float:
                    raise ReproError(f"detector {d} type changed between runs")
                mine.samples.extend(p.samples)
                mine.exec_count += p.exec_count
        for s, c in other.site_counts.items():
            self.site_counts[s] = self.site_counts.get(s, 0) + c
