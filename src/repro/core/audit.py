"""Structural audit of instrumented kernels (the Table I contract).

The paper argues Hauberk instrumentation can be applied by an engineer
"even if he does not have a good understanding of the semantics of the
target program" — which makes a mechanical verifier valuable: given an
original kernel and a build, ``audit_build`` checks every Table I
instrumentation site is present and well-formed:

* one checksum declaration + mismatch flag, initialized to zero;
* an *even* number of checksum XOR updates (the zero-sum invariant's
  static precondition), with every parameter XORed at least twice;
* the exit ``__hauberk_checksum_validate`` as the last statement;
* per loop detector: counter declaration before the loop, counter
  increment inside it, guarded ``check_range`` after it, and a trip
  check when the detector claims one;
* for FI / FI&FT builds: a hook for every original virtual-variable
  site, carrying the *original* numbering.

Used by the Section IX.D bench and exposed for users instrumenting
their own kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.core.loopdet import CHECK_EQUAL_FUNC, CHECK_RANGE_FUNC
from repro.core.nonloop import CHECKSUM_VAR, MISMATCH_VAR, VALIDATE_FUNC
from repro.core.translator import InstrumentedKernel
from repro.kir.analysis.dataflow import collect_sites
from repro.kir.astnodes import (
    Assign,
    BinOp,
    CallStmt,
    Const,
    Decl,
    Kernel,
    Return,
    Var,
    walk_exprs,
    walk_stmts,
)
from repro.swifi.injector import FI_FUNC


@dataclass
class AuditFinding:
    """One deviation from the Table I contract."""

    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.message}"


@dataclass
class AuditReport:
    findings: List[AuditFinding] = field(default_factory=list)

    def error(self, message: str) -> None:
        self.findings.append(AuditFinding("error", message))

    def warning(self, message: str) -> None:
        self.findings.append(AuditFinding("warning", message))

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    @property
    def errors(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.severity == "error"]


def _checksum_updates(kernel: Kernel) -> List[Assign]:
    return [
        s
        for s, _ in walk_stmts(kernel.body)
        if isinstance(s, Assign)
        and s.name == CHECKSUM_VAR
        and isinstance(s.value, BinOp)
        and s.value.op == "^"
    ]


def _calls(kernel: Kernel, func: str) -> List[CallStmt]:
    return [
        s for s, _ in walk_stmts(kernel.body)
        if isinstance(s, CallStmt) and s.func == func
    ]


def _names_in(expr) -> Set[str]:
    return {n.name for n in walk_exprs(expr) if isinstance(n, Var)}


def audit_build(original: Kernel, build: InstrumentedKernel) -> AuditReport:
    """Verify an FT / FI / FI&FT build against the Table I contract."""
    report = AuditReport()
    kernel = build.kernel

    if any(isinstance(s, Return) for s, _ in walk_stmts(kernel.body)):
        report.error("instrumented kernel contains a return statement")

    if build.mode in ("ft", "fift"):
        _audit_ft(original, build, report)
    if build.mode in ("fi", "fift"):
        _audit_fi(original, build, report)
    if build.mode == "profiler":
        if not _calls(kernel, "__hauberk_profile_range") and build.detector_configs:
            report.error("profiler build places no profile_range calls")
    return report


def _audit_ft(original: Kernel, build: InstrumentedKernel, report: AuditReport) -> None:
    kernel = build.kernel
    nl = build.nonloop_info

    if nl is not None:
        decls = {
            s.name: s for s, _ in walk_stmts(kernel.body) if isinstance(s, Decl)
        }
        for var in (CHECKSUM_VAR, MISMATCH_VAR):
            decl = decls.get(var)
            if decl is None:
                report.error(f"missing declaration of {var}")
            elif not (isinstance(decl.init, Const) and decl.init.value == 0):
                report.error(f"{var} is not initialized to zero")

        updates = _checksum_updates(kernel)
        if len(updates) % 2:
            report.error(
                f"odd number of checksum updates ({len(updates)}): "
                "some XOR-in has no XOR-out"
            )
        for p in kernel.params:
            touching = [u for u in updates if p.name in _names_in(u.value)]
            if len(touching) < 2:
                report.error(f"parameter {p.name!r} is not checksummed in and out")

        validates = _calls(kernel, VALIDATE_FUNC)
        if not validates:
            report.error("missing exit checksum validation")
        elif not (kernel.body and kernel.body[-1] is validates[-1]):
            report.error("checksum validation is not the kernel's last statement")

        if nl.duplicated_definitions:
            dup_decls = [n for n in decls if n.startswith("__dup")]
            if len(dup_decls) != nl.duplicated_definitions:
                report.error(
                    f"duplicate count mismatch: {len(dup_decls)} declarations vs "
                    f"{nl.duplicated_definitions} recorded"
                )

    # loop detectors
    range_checks = _calls(kernel, CHECK_RANGE_FUNC)
    trip_checks = _calls(kernel, CHECK_EQUAL_FUNC)
    configs = build.detector_configs
    if len(range_checks) != len(configs):
        report.error(
            f"{len(configs)} detectors configured but {len(range_checks)} "
            "check_range calls placed"
        )
    claimed_trips = sum(1 for c in configs if c.has_trip_check)
    if len(trip_checks) != claimed_trips:
        report.error(
            f"{claimed_trips} trip checks claimed but {len(trip_checks)} placed"
        )
    decl_names = {s.name for s, _ in walk_stmts(kernel.body) if isinstance(s, Decl)}
    for cfg in configs:
        cnt = f"__cnt{cfg.detector}"
        if cnt not in decl_names:
            report.error(f"detector {cfg.detector}: missing counter {cnt}")
        increments = [
            s for s, _ in walk_stmts(kernel.body)
            if isinstance(s, Assign) and s.name == cnt and s.in_loop
        ]
        if not increments:
            report.error(f"detector {cfg.detector}: counter never incremented in a loop")
        if not cfg.self_accumulating and f"__acc{cfg.detector}" not in decl_names:
            report.error(f"detector {cfg.detector}: missing accumulator")


def _audit_fi(original: Kernel, build: InstrumentedKernel, report: AuditReport) -> None:
    hooks = _calls(build.kernel, FI_FUNC)
    hooked_sites = set()
    for h in hooks:
        if not h.args or not isinstance(h.args[0], Const):
            report.error("FI hook without a constant site id")
            continue
        hooked_sites.add(h.args[0].value)
    original_sites = {s.site for s in collect_sites(original)}
    missing = original_sites - hooked_sites
    if missing:
        report.error(f"{len(missing)} original sites lack FI hooks: {sorted(missing)}")
    bogus = hooked_sites - original_sites
    if bogus:
        report.error(f"FI hooks reference unknown sites: {sorted(bogus)}")
