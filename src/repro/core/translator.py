"""The HAUBERK source-to-source translator (Figure 7, Table I).

One entry point, four build products off a single original kernel:

========== ===============================================================
mode        contents
========== ===============================================================
original    validated pass-through clone (baseline performance)
profiler    loop accumulators emitting ``__hauberk_profile_range`` —
            learns value ranges, derives golden outputs
ft          HAUBERK-L + HAUBERK-NL detectors reporting into the control
            block (the deployed fault-tolerant binary)
fi          per-definition ``__hauberk_fi`` hooks (baseline sensitivity)
fift        ft detectors *plus* fi hooks — coverage evaluation build
========== ===============================================================

Site-id stability: FI hook arguments always carry the *original*
kernel's site numbering, so one fault plan drives both the ``fi`` and
``fift`` builds.  For ``fift`` the detectors are placed first and the
hooks are then attached only to statements that carry an original site
id (detector-added statements have none), landing each hook directly
after its definition — i.e. the fault hits the variable *before* the
detector's checksum/accumulation reads it, as a real in-computation
fault would.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.controlblock import DetectorConfig
from repro.core.loopdet import LoopDetectorInfo, apply_loop_detectors
from repro.core.nonloop import NonLoopInfo, apply_nonloop_detectors
from repro.errors import KIRValidationError
from repro.kir.astnodes import (
    Assign,
    Decl,
    For,
    If,
    Kernel,
    Stmt,
    While,
    walk_stmts,
)
from repro.kir.validate import validate_kernel
from repro.obs.events import get_tracer
from repro.obs.instrument import record_translator_pass
from repro.swifi.injector import _hook

MODES = ("original", "profiler", "ft", "fi", "fift")


@dataclass
class TranslatorOptions:
    """Knobs of the derivation algorithms."""

    #: Max protected variables per loop (the paper evaluates Maxvar=1).
    maxvar: int = 1
    #: Enable HAUBERK-NL (off for the HAUBERK-L-only Figure 13 bar).
    enable_nonloop: bool = True
    #: Enable HAUBERK-L (off for the HAUBERK-NL-only Figure 13 bar).
    enable_loop: bool = True
    #: Ablation: protect non-loop code with the checksum only, without
    #: duplicated computations (cheaper, weaker).
    nl_checksum_only: bool = False
    #: First loop-detector index assigned by this translator; kernels of
    #: a multi-kernel program get disjoint ranges so one control block
    #: serves the whole program.
    detector_base: int = 0


@dataclass
class InstrumentedKernel:
    """One build product plus the metadata the host side needs."""

    kernel: Kernel
    mode: str
    options: TranslatorOptions
    detector_configs: List[DetectorConfig] = field(default_factory=list)
    nonloop_info: Optional[NonLoopInfo] = None
    loop_info: Optional[LoopDetectorInfo] = None
    #: Wall-clock seconds spent instrumenting (Section IX.D).
    instrumentation_time: float = 0.0
    #: Statements each derivation rule added (loop / nonloop / fi_hook).
    statements_added: Dict[str, int] = field(default_factory=dict)


def _count_stmts(body: List[Stmt]) -> int:
    """Total statements in a body, loops/branches included."""
    return sum(1 for _stmt, _depth in walk_stmts(body))


def _attach_fi_hooks(body: List[Stmt]) -> List[Stmt]:
    """FI hooks after every statement still carrying an original site id."""
    out: List[Stmt] = []
    for stmt in body:
        if isinstance(stmt, For):
            new_body = _attach_fi_hooks(stmt.body)
            if stmt.init is not None and stmt.init.site >= 0:
                new_body.insert(0, _hook(stmt.init.site, stmt.init.name))
            if stmt.update is not None and stmt.update.site >= 0:
                new_body.append(_hook(stmt.update.site, stmt.update.name))
            stmt.body = new_body
            out.append(stmt)
        elif isinstance(stmt, While):
            stmt.body = _attach_fi_hooks(stmt.body)
            out.append(stmt)
        elif isinstance(stmt, If):
            stmt.then = _attach_fi_hooks(stmt.then)
            stmt.els = _attach_fi_hooks(stmt.els)
            out.append(stmt)
        elif isinstance(stmt, (Decl, Assign)) and stmt.site >= 0:
            out.append(stmt)
            out.append(_hook(stmt.site, stmt.name))
        else:
            out.append(stmt)
    return out


class HauberkTranslator:
    """Builds the Table I instrumentation matrix for a kernel."""

    def __init__(self, options: Optional[TranslatorOptions] = None):
        self.options = options if options is not None else TranslatorOptions()

    def build(self, kernel: Kernel, mode: str) -> InstrumentedKernel:
        """Produce one instrumented clone of ``kernel``."""
        if mode not in MODES:
            raise KIRValidationError(f"unknown build mode {mode!r}; pick from {MODES}")
        if not kernel.validated:
            raise KIRValidationError("validate the kernel before translation")
        with get_tracer().span("translator.build", kernel=kernel.name, mode=mode):
            start = time.perf_counter()
            clone = kernel.clone()
            result = InstrumentedKernel(kernel=clone, mode=mode, options=self.options)
            added = result.statements_added
            before = _count_stmts(clone.body)

            if mode == "profiler":
                info = apply_loop_detectors(
                    clone, maxvar=self.options.maxvar, mode="profile",
                    detector_base=self.options.detector_base,
                )
                result.loop_info = info
                result.detector_configs = info.configs
                before = self._mark(added, "loop", clone, before)
            elif mode in ("ft", "fift"):
                if self.options.enable_loop:
                    info = apply_loop_detectors(
                        clone, maxvar=self.options.maxvar, mode="ft",
                        detector_base=self.options.detector_base,
                    )
                    result.loop_info = info
                    result.detector_configs = info.configs
                    before = self._mark(added, "loop", clone, before)
                if self.options.enable_nonloop:
                    result.nonloop_info = apply_nonloop_detectors(
                        clone, checksum_only=self.options.nl_checksum_only
                    )
                    before = self._mark(added, "nonloop", clone, before)
                if mode == "fift":
                    clone.body = _attach_fi_hooks(clone.body)
                    # param hooks go after the NL header (entry checksum
                    # XOR-ins) so a parameter fault lands inside the
                    # checksum's protection window
                    at = result.nonloop_info.header_len if result.nonloop_info else 0
                    clone.body[at:at] = [_hook(p.site, p.name) for p in clone.params]
                    before = self._mark(added, "fi_hook", clone, before)
            elif mode == "fi":
                clone.body = _attach_fi_hooks(clone.body)
                clone.body = [_hook(p.site, p.name) for p in clone.params] + clone.body
                before = self._mark(added, "fi_hook", clone, before)
            # mode == "original": pass through

            validate_kernel(clone)
            result.instrumentation_time = time.perf_counter() - start
            record_translator_pass(
                mode, kernel.name, result.instrumentation_time, added
            )
        return result

    @staticmethod
    def _mark(added: Dict[str, int], rule: str, clone: Kernel, before: int) -> int:
        """Record how many statements ``rule`` just added; returns new total."""
        now = _count_stmts(clone.body)
        added[rule] = added.get(rule, 0) + (now - before)
        return now

    def build_all(self, kernel: Kernel) -> Dict[str, InstrumentedKernel]:
        """All five Figure 7 build products."""
        return {mode: self.build(kernel, mode) for mode in MODES}
