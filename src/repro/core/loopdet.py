"""HAUBERK-L: accumulation-based value range checking for loops.

Implements the four-step derivation of Section V.B:

(i)   select up to ``maxvar`` target virtual variables per top-level
      loop — self-accumulators first (free), then the largest
      cumulative backward dataflow dependency (Figure 9), dropping
      candidates whose errors already flow forward into a selection;
(ii)  accumulate the target's value every iteration into a fresh
      accumulator declared before the loop (skipped for
      self-accumulators — their value *is* the accumulation);
(iii) count accumulations with an integer counter (one extra add), so
      the loop body pays exactly two additions per protected variable;
(iv)  after the loop, ``HauberkCheckRange(cb, det, acc/cnt)`` checks
      the *averaged* accumulation against profiled ranges, and
      ``HauberkCheckEqual(cb, det, cnt, trip)`` checks the statically
      derived trip-count invariant (catching loop-control errors such
      as a corrupted iterator).

The same placement runs in ``profile`` mode, emitting
``__hauberk_profile_range`` instead of the check — guaranteeing the
profiler and FT builds observe identical detector indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.controlblock import DetectorConfig
from repro.errors import KIRValidationError
from repro.kir.analysis.dataflow import SiteInfo
from repro.kir.analysis.dependency import select_loop_targets
from repro.kir.analysis.loops import LoopInfo, derive_trip_count, find_loops
from repro.kir.astnodes import (
    Assign,
    BinOp,
    Call,
    CallStmt,
    Const,
    Decl,
    For,
    If,
    Kernel,
    Stmt,
    Var,
    While,
)
from repro.kir.types import DType

CHECK_RANGE_FUNC = "__hauberk_check_range"
CHECK_EQUAL_FUNC = "__hauberk_check_equal"
PROFILE_RANGE_FUNC = "__hauberk_profile_range"


@dataclass
class LoopDetectorInfo:
    """Everything placed for the loop detectors of one kernel."""

    configs: List[DetectorConfig] = field(default_factory=list)
    #: detector id -> protected SiteInfo
    targets: Dict[int, SiteInfo] = field(default_factory=dict)


class LoopTransformer:
    """Applies HAUBERK-L (or its profiling twin) to a cloned kernel."""

    def __init__(self, kernel: Kernel, maxvar: int = 1, mode: str = "ft",
                 detector_base: int = 0):
        if mode not in ("ft", "profile"):
            raise KIRValidationError(f"unknown loop-detector mode {mode!r}")
        if detector_base < 0:
            raise KIRValidationError(f"invalid detector_base {detector_base}")
        self.kernel = kernel
        self.maxvar = maxvar
        self.mode = mode
        self.info = LoopDetectorInfo()
        #: First detector index; multi-kernel programs give each kernel
        #: a disjoint range so one control block serves them all.
        self._next_det = detector_base
        self._loops = find_loops(kernel)

    def apply(self) -> LoopDetectorInfo:
        self.kernel.body = self._process_block(self.kernel.body)
        return self.info

    # -- traversal -----------------------------------------------------------
    def _process_block(self, stmts: List[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, (For, While)):
                pre, post = self._protect_loop(stmt)
                out.extend(pre)
                out.append(stmt)
                out.extend(post)
            elif isinstance(stmt, If):
                stmt.then = self._process_block(stmt.then)
                stmt.els = self._process_block(stmt.els)
                out.append(stmt)
            else:
                out.append(stmt)
        return out

    # -- per-loop instrumentation ----------------------------------------------
    def _protect_loop(self, loop_stmt: Stmt) -> Tuple[List[Stmt], List[Stmt]]:
        loop = self._loops[loop_stmt.loop_id]
        selection = select_loop_targets(self.kernel, loop, maxvar=self.maxvar)
        pre: List[Stmt] = []
        post: List[Stmt] = []
        for target in selection.selected:
            det = self._next_det
            self._next_det += 1
            p, q = self._place_detector(det, loop, target)
            pre.extend(p)
            post.extend(q)
            self.info.targets[det] = target
        return pre, post

    def _place_detector(
        self, det: int, loop: LoopInfo, target: SiteInfo
    ) -> Tuple[List[Stmt], List[Stmt]]:
        acc_name = f"__acc{det}"
        cnt_name = f"__cnt{det}"
        trip_name = f"__trip{det}"
        is_float = target.dtype is DType.FLOAT32
        pre: List[Stmt] = []
        post: List[Stmt] = []

        inline: List[Stmt] = []
        if target.self_accumulating:
            value_var = target.name
        else:
            pre.append(
                Decl(acc_name, target.dtype, Const(0.0) if is_float else Const(0))
            )
            inline.append(Assign(acc_name, BinOp("+", Var(acc_name), Var(target.name))))
            value_var = acc_name
        pre.append(Decl(cnt_name, DType.INT32, Const(0)))
        inline.append(Assign(cnt_name, BinOp("+", Var(cnt_name), Const(1))))
        if not _insert_after_stmt(loop.stmt, target.stmt, inline):
            raise KIRValidationError(
                f"could not locate protected definition {target.name!r} in loop"
            )

        # trip-count invariant (only when the counter counts iterations:
        # the protected definition sits directly in the loop body)
        direct = any(s is target.stmt for s in loop.body)
        trip_expr = derive_trip_count(loop.stmt) if loop.is_for else None
        has_trip = bool(direct and trip_expr is not None and self.mode == "ft")
        if has_trip:
            pre.append(Decl(trip_name, DType.INT32, trip_expr))
            post.append(
                CallStmt(
                    CHECK_EQUAL_FUNC, [Const(det), Var(cnt_name), Var(trip_name)]
                )
            )

        avg = BinOp(
            "/",
            Call("float", [Var(value_var)]),
            Call("float", [Var(cnt_name)]),
        )
        func = CHECK_RANGE_FUNC if self.mode == "ft" else PROFILE_RANGE_FUNC
        post.insert(
            0,
            If(
                cond=BinOp("!=", Var(cnt_name), Const(0)),
                then=[CallStmt(func, [Const(det), avg])],
                els=[],
            ),
        )

        self.info.configs.append(
            DetectorConfig(
                detector=det,
                kernel=self.kernel.name,
                variable=target.name,
                loop_id=loop.loop_id,
                self_accumulating=target.self_accumulating,
                has_trip_check=has_trip,
            )
        )
        return pre, post


def _insert_after_stmt(root: Stmt, needle: Stmt, new_stmts: List[Stmt]) -> bool:
    """Insert ``new_stmts`` right after ``needle`` anywhere under ``root``."""

    def visit(block: List[Stmt]) -> bool:
        for i, s in enumerate(block):
            if s is needle:
                block[i + 1 : i + 1] = new_stmts
                return True
            if isinstance(s, For):
                if s.update is needle or s.init is needle:
                    # loop-header definitions accumulate at body bottom/top
                    if s.update is needle:
                        s.body.extend(new_stmts)
                    else:
                        s.body[0:0] = new_stmts
                    return True
                if visit(s.body):
                    return True
            elif isinstance(s, While):
                if visit(s.body):
                    return True
            elif isinstance(s, If):
                if visit(s.then) or visit(s.els):
                    return True
        return False

    if isinstance(root, For):
        if root.init is needle:
            root.body[0:0] = new_stmts
            return True
        if root.update is needle:
            root.body.extend(new_stmts)
            return True
        return visit(root.body)
    if isinstance(root, While):
        return visit(root.body)
    return False


def apply_loop_detectors(
    kernel: Kernel, maxvar: int = 1, mode: str = "ft", detector_base: int = 0
) -> LoopDetectorInfo:
    """Apply HAUBERK-L (mode='ft') or profiling twin (mode='profile')."""
    return LoopTransformer(
        kernel, maxvar=maxvar, mode=mode, detector_base=detector_base
    ).apply()
