"""Error diagnosis and tolerance (Figure 11) plus alpha recalibration.

The recovery engine consumes one executed run of an FT-instrumented
program and drives the paper's flowchart:

* kernel failure -> guardian restart path (repeat -> BIST -> disable /
  migrate);
* no alarm -> use the output;
* SDC alarm -> reexecute for diagnosis:
    - reexecution clean            -> transient fault; take the retry;
    - alarm again, outputs match   -> false positive; store the updated
      (learned) ranges — the on-line learning step;
    - alarm again, outputs differ  -> BIST; fail -> disable + migrate
      and rerun there; pass -> unsupported software error.

"Identical" outputs mean exact equality for deterministic programs and
agreement within *twice* the output-correctness requirement otherwise
(the paper's conservative rule, Section VI(ii.a)).

:class:`AlphaController` implements Section VI(iii): false-positive
ratio above 10% multiplies alpha by 10; below 5% divides it by 10
down to 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.bist import run_bist
from repro.core.checkpoint import Checkpoint
from repro.core.program import HauberkProgram, ProgramResult, RunStatus
from repro.errors import RecoveryError, UnsupportedSoftwareError
from repro.gpu.cluster import GPUNode
from repro.obs.instrument import record_alpha_adjustment
from repro.swifi.faultmodel import FaultSpec
from repro.workloads.base import WorkloadInput
from repro.workloads.spec import ToleranceSpec


@dataclass
class DiagnosisResult:
    """Terminal state of one pass through the Figure 11 flowchart."""

    verdict: str  # clean | false_alarm | transient_sdc | hardware_fault | ...
    output: Optional[np.ndarray]
    runs: int
    migrated: bool = False
    ranges_updated: bool = False
    restarts: int = 0


class AlphaController:
    """Adaptive multiplication factor for range bounds (Section VI(iii))."""

    def __init__(self, high: float = 0.10, low: float = 0.05, factor: float = 10.0):
        if not 0 <= low <= high <= 1:
            raise RecoveryError(f"invalid thresholds low={low} high={high}")
        self.high = high
        self.low = low
        self.factor = factor

    def adjust(self, alpha: float, false_positive_ratio: float) -> float:
        if false_positive_ratio > self.high:
            return alpha * self.factor
        if false_positive_ratio < self.low and alpha > 1.0:
            return max(1.0, alpha / self.factor)
        return alpha


class FalsePositiveMonitor:
    """Sliding tally of alarm dispositions feeding the alpha controller."""

    def __init__(self, window: int = 50):
        if window <= 0:
            raise RecoveryError(f"window must be positive, got {window}")
        self.window = window
        self._history: List[bool] = []  # True = alarm was a false positive

    def record(self, was_false_positive: bool) -> None:
        self._history.append(was_false_positive)
        if len(self._history) > self.window:
            self._history.pop(0)

    def reset(self) -> None:
        """Forget history (after an alpha change the old statistics
        describe a detector that no longer exists)."""
        self._history.clear()

    @property
    def ratio(self) -> float:
        if not self._history:
            return 0.0
        return sum(self._history) / len(self._history)


class DeviceCheckpointer:
    """CheCUDA-style device checkpointing for :meth:`Guardian.supervise`.

    Bundles the ``checkpoint_fn`` / ``restore_fn`` pair the guardian
    accepts: :meth:`checkpoint` captures the program's whole device
    memory as one raw-bits snapshot (plus any registered host extras,
    e.g. the control block), and :meth:`restore` writes it back before
    a restart, so recovery resumes from the last kernel boundary
    instead of re-running host setup.  On the dense backing snapshot
    and restore are each a single vectorized ``uint32`` copy of the
    allocated words; on the sparse paged backing they are
    copy-on-write page sets, O(resident pages) even for GB-scale
    address spaces — cheap enough to take before every launch either
    way.
    """

    def __init__(self, program: HauberkProgram, extra_fn: Optional[Callable] = None):
        self.program = program
        #: Optional zero-arg callable returning a dict of extra host
        #: state to deep-copy into each checkpoint.
        self.extra_fn = extra_fn
        self._count = 0

    def checkpoint(self) -> Checkpoint:
        self._count += 1
        return Checkpoint.capture(
            tag=f"kernel-boundary-{self._count}",
            extra=self.extra_fn() if self.extra_fn is not None else None,
            memory=self.program.device.memory,
        )

    def restore(self, checkpoint: Checkpoint) -> None:
        checkpoint.restore_device(self.program.device.memory)


class RecoveryEngine:
    """Drives diagnosis re-executions for one Hauberk program."""

    def __init__(
        self,
        program: HauberkProgram,
        node: Optional[GPUNode] = None,
        bist: Callable = run_bist,
        deterministic: bool = True,
        max_failure_restarts: int = 2,
    ):
        self.program = program
        self.node = node
        self.bist = bist
        self.deterministic = deterministic
        self.max_failure_restarts = max_failure_restarts
        self.monitor = FalsePositiveMonitor()
        self.alpha_controller = AlphaController()

    # -- output identity -----------------------------------------------------
    def outputs_identical(self, a: np.ndarray, b: np.ndarray) -> bool:
        if a is None or b is None or a.shape != b.shape:
            return False
        if self.deterministic:
            return bool(np.array_equal(a, b))
        spec = self.program.workload.spec
        doubled = ToleranceSpec(
            abs_const=2 * spec.abs_const,
            rel=2 * spec.rel,
            global_rel=2 * spec.global_rel,
            mode=spec.mode,
        )
        return doubled.check(a, b)

    # -- the flowchart ----------------------------------------------------------
    def execute(
        self,
        inp: WorkloadInput,
        fault_source: Callable[[int], Optional[FaultSpec]] = lambda i: None,
        mode: str = "fift",
    ) -> DiagnosisResult:
        """Run with recovery; ``fault_source(run_index)`` arms each run.

        Transient faults return a spec for run 0 only; intermittent or
        permanent hardware faults keep returning specs — which is how
        the three Figure 11 right-branch verdicts separate.
        """
        runs = 0
        restarts = 0
        migrated = False

        def attempt() -> ProgramResult:
            nonlocal runs
            fault = fault_source(runs)
            use_mode = mode if fault is not None else (
                "ft" if mode == "fift" else mode
            )
            result = self.program.run(mode=use_mode, inp=inp, fault=fault)
            runs += 1
            return result

        first = attempt()
        # ---- failure path ----------------------------------------------
        while first.status is not RunStatus.OK:
            restarts += 1
            if restarts > self.max_failure_restarts:
                if not self.bist(self.program.device):
                    migrated = self._migrate()
                    first = attempt()
                    restarts = 0
                    continue
                raise UnsupportedSoftwareError(
                    "repeated failures on a device that passes BIST"
                )
            first = attempt()

        if not first.alarm:
            # an alarm-free run is evidence the detectors are calibrated;
            # without this, one false positive would pin the monitored
            # ratio at 1.0 and the alpha controller would run away until
            # real faults slip through (the paper's alpha=10,000 regime)
            self.monitor.record(False)
            return DiagnosisResult(
                verdict="clean", output=first.output, runs=runs, restarts=restarts,
                migrated=migrated,
            )

        # ---- SDC alarm: diagnose by reexecution -----------------------------
        second = attempt()
        if second.status is not RunStatus.OK:
            # the retry failed outright: treat as the failure path
            if not self.bist(self.program.device):
                migrated = self._migrate()
                final = attempt()
                return DiagnosisResult(
                    verdict="hardware_fault", output=final.output, runs=runs,
                    migrated=migrated, restarts=restarts,
                )
            raise UnsupportedSoftwareError("diagnosis reexecution failed on healthy GPU")

        if not second.alarm:
            # transient / short intermittent fault: take the retry's output
            self.monitor.record(False)
            return DiagnosisResult(
                verdict="transient_sdc", output=second.output, runs=runs,
                restarts=restarts, migrated=migrated,
            )

        if self.outputs_identical(first.output, second.output):
            # false alarm: keep the output, store the learned ranges
            self.monitor.record(True)
            self._apply_updated_ranges()
            return DiagnosisResult(
                verdict="false_alarm", output=first.output, runs=runs,
                ranges_updated=True, restarts=restarts, migrated=migrated,
            )

        # alarm twice with diverging outputs: suspect the hardware
        self.monitor.record(False)
        if not self.bist(self.program.device):
            migrated = self._migrate()
            final = attempt()
            return DiagnosisResult(
                verdict="hardware_fault", output=final.output, runs=runs,
                migrated=migrated, restarts=restarts,
            )
        raise UnsupportedSoftwareError(
            "outputs diverge under alarms but the device passes BIST "
            "(buggy or nondeterministic software)"
        )

    # -- helpers ---------------------------------------------------------------
    def _migrate(self) -> bool:
        if self.node is None:
            raise RecoveryError("hardware fault diagnosed but no node to migrate in")
        replacement = self.node.migrate_from(self.program.device)
        self.program.device = replacement
        from repro.gpu.runtime import GPURuntime

        self.program.runtime = GPURuntime(replacement)
        return True

    def _apply_updated_ranges(self) -> None:
        """On-line learning: fold detector-proposed ranges into the config."""
        for det, ranges in self.program.cb.updated_ranges.items():
            if det in self.program.cb.detectors:
                self.program.cb.detectors[det].ranges = ranges

    def recalibrate_alpha(self) -> float:
        """Apply the alpha controller to all detectors; returns new alpha."""
        detectors = self.program.cb.detectors
        if not detectors:
            return 1.0
        current = max((d.ranges.alpha for d in detectors.values()), default=1.0)
        new_alpha = self.alpha_controller.adjust(current, self.monitor.ratio)
        record_alpha_adjustment(current, new_alpha)
        if new_alpha != current:
            self.program.cb.set_alpha_all(new_alpha)
            self.monitor.reset()  # measure afresh under the new bounds
        return new_alpha
