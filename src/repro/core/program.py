"""HauberkProgram — the CPU-side host program around one workload.

Owns the Figure 7 artifacts for a workload: the five instrumented
builds, the control block, the profiler state, and the launch plumbing
(memory setup, control-block device copies, output readback, failure
capture).  This is the layer campaigns, the recovery engine, and all
figure benches talk to.
"""

from __future__ import annotations

import enum
from dataclasses import astuple, dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.controlblock import ControlBlock
from repro.exec.cache import ephemeral_cache
from repro.core.ftlib import HauberkFTLibrary
from repro.core.profiler import RangeProfiler
from repro.core.translator import HauberkTranslator, InstrumentedKernel, TranslatorOptions
from repro.errors import GPUError, KernelCrash, KernelHang, ReproError
from repro.gpu.device import Device
from repro.gpu.runtime import GPURuntime, LaunchResult
from repro.kir.interp.evalcore import InstrumentationLibrary
from repro.swifi.campaign import TrialObservation
from repro.swifi.faultmodel import FaultSpec
from repro.swifi.injector import FaultInjectionLibrary
from repro.workloads.base import GoldenRecord, Workload, WorkloadInput

#: Extra kernel-time cycles charged to any detector-carrying build for
#: shipping the control block CPU->GPU->CPU (the "common performance
#: overhead" shared by HAUBERK-NL and HAUBERK-L, Section IX.A).  Small
#: relative to kernel time — the block is "typically <10KB" (Section IX.A).
CONTROL_BLOCK_OVERHEAD_CYCLES = 60.0

#: Attribute on the kernel object caching instrumented builds keyed by
#: (mode, translator options).  Workloads share parsed kernels (see
#: ``Workload.kernel``), so repeated campaigns over the same
#: workload+mode — separate program instances included — skip the
#: translator entirely.  Safe to share because builds are immutable
#: after translation and the control block deep-copies detector
#: configs at ``configure`` time.
BUILD_CACHE_ATTR = "_hauberk_builds"


class RunStatus(enum.Enum):
    OK = "ok"
    CRASH = "crash"
    HANG = "hang"


@dataclass
class ProgramResult:
    """Outcome of one full program execution (one kernel launch)."""

    status: RunStatus
    mode: str
    output: Optional[np.ndarray] = None
    launch: Optional[LaunchResult] = None
    #: Snapshot of alarm state after host copy-back (empty on failure).
    alarm: bool = False
    sdc_bit: bool = False
    events: list = field(default_factory=list)
    failure_reason: str = ""
    #: FI activation record if a fault was armed and fired.
    activation: Optional[object] = None

    @property
    def kernel_time(self) -> float:
        if self.launch is None:
            return 0.0
        extra = 0.0 if self.mode in ("original", "fi") else CONTROL_BLOCK_OVERHEAD_CYCLES
        return self.launch.kernel_time + extra


class CombinedLibrary(InstrumentationLibrary):
    """Routes instrumentation calls to the first member that handles them."""

    def __init__(self, members: Sequence[InstrumentationLibrary]):
        self.members = list(members)

    def invoke(self, func, ctx, frame, args):
        for member in self.members:
            if member.handles(func):
                member.invoke(func, ctx, frame, args)
                return
        super().invoke(func, ctx, frame, args)  # raises helpful error


class HauberkProgram:
    """One workload wired through the Hauberk framework."""

    def __init__(
        self,
        workload: Workload,
        device: Optional[Device] = None,
        options: Optional[TranslatorOptions] = None,
    ):
        self.workload = workload
        self.device = device if device is not None else Device()
        self.runtime = GPURuntime(self.device)
        self.translator = HauberkTranslator(options)
        self.builds: Dict[str, InstrumentedKernel] = {}
        self.cb = ControlBlock()
        self._configured = False
        #: seed -> golden campaign state, fixed across a campaign.
        self._trial_io: Dict[int, GoldenRecord] = {}
        #: How to rebuild this program in another process, when known.
        #: The fleet requires it: spawn workers share no address space,
        #: so the program must be reconstructed — deterministically —
        #: from its recipe on the far side.  Auto-derived for workloads
        #: built through the registry (:func:`get_workload`) and kept
        #: current by :meth:`train` / :meth:`set_alpha`;
        #: :meth:`repro.fleet.wire.ProgramRecipe.build_program` installs
        #: the exact recipe it followed.
        self.recipe = None
        if getattr(workload, "registry_kwargs", None) is not None:
            from repro.fleet.wire import ProgramRecipe

            self.recipe = ProgramRecipe(
                workload=workload.name,
                workload_kwargs=dict(workload.registry_kwargs),
            )

    # -- builds ---------------------------------------------------------
    def build(self, mode: str) -> InstrumentedKernel:
        if mode not in self.builds:
            kernel = self.workload.kernel
            cache = ephemeral_cache(kernel, BUILD_CACHE_ATTR)
            key = (mode, astuple(self.translator.options))
            build = cache.get(key)
            if build is None:
                build = self.translator.build(kernel, mode)
                cache[key] = build
            self.builds[mode] = build
            if mode in ("ft", "fift") and not self._configured:
                self.cb.configure(build.detector_configs)
                self._configured = True
        return self.builds[mode]

    # -- training (profiler runs) -------------------------------------------
    def train(self, seeds: Sequence[int], profiler: Optional[RangeProfiler] = None) -> RangeProfiler:
        """Run the profiler build on each training input; install ranges.

        Returns the profiler so callers can keep training incrementally
        (Figure 16 sweeps training-set counts this way).
        """
        prof = profiler if profiler is not None else RangeProfiler()
        build = self.build("profiler")
        for seed in seeds:
            inp = self.workload.generate_input(seed)
            args, handles = self.workload.setup_memory(self.device, inp)
            self.runtime.launch(
                build.kernel, inp.grid, inp.block, args,
                lib=prof, budget=self.workload.hang_budget,
            )
        self.install_ranges(prof)
        if self.recipe is not None:
            import dataclasses

            # incremental training (a caller-held profiler) accumulates
            # seeds; a fresh profiler replaces them
            base = self.recipe.train_seeds if profiler is not None else ()
            self.recipe = dataclasses.replace(
                self.recipe, train_seeds=tuple(base) + tuple(seeds)
            )
        return prof

    def install_ranges(self, profiler: RangeProfiler) -> None:
        self.build("ft")  # ensure detector configs exist
        ranges = profiler.finalize()
        known = {d: r for d, r in ranges.items() if d in self.cb.detectors}
        self.cb.load_ranges(known)

    def set_alpha(self, alpha: float) -> None:
        """Loosen every trained detector bound by ``alpha`` (Section VI(iii)).

        Equivalent to ``cb.set_alpha_all`` after an ``ft`` build, but
        also records the factor on the program's recipe so fleet workers
        rebuild the program with identical bounds.
        """
        self.build("ft")
        self.cb.set_alpha_all(alpha)
        if self.recipe is not None:
            import dataclasses

            self.recipe = dataclasses.replace(self.recipe, alpha=alpha)

    # -- execution --------------------------------------------------------
    def run(
        self,
        mode: str = "ft",
        inp: Optional[WorkloadInput] = None,
        seed: int = 0,
        fault: Optional[FaultSpec] = None,
        budget: Optional[int] = None,
        device: Optional[Device] = None,
    ) -> ProgramResult:
        """Execute the program once in the given build mode."""
        if inp is None:
            inp = self.workload.generate_input(seed)
        device = device if device is not None else self.device
        runtime = self.runtime if device is self.device else GPURuntime(device)
        build = self.build(mode)
        lib = self._library_for(mode, fault)
        args, handles = self.workload.setup_memory(device, inp)

        result = ProgramResult(status=RunStatus.OK, mode=mode)
        try:
            launch = runtime.launch(
                build.kernel, inp.grid, inp.block, args,
                lib=lib, budget=budget if budget is not None else self.workload.hang_budget,
            )
            result.launch = launch
        except KernelHang as exc:
            result.status = RunStatus.HANG
            result.failure_reason = str(exc)
        except KernelCrash as exc:
            result.status = RunStatus.CRASH
            result.failure_reason = str(exc)

        if result.status is RunStatus.OK:
            result.output = self.workload.read_output(device, inp, handles)
            if mode in ("ft", "fift"):
                # successful completion: copy the control block back
                self.cb.copy_from_device(self._device_cb)
                result.alarm = self.cb.alarm_raised
                result.sdc_bit = self.cb.sdc_bit
                result.events = list(self.cb.events)
        if fault is not None and isinstance(lib, (FaultInjectionLibrary, CombinedLibrary)):
            fi = lib if isinstance(lib, FaultInjectionLibrary) else lib.members[-1]
            result.activation = fi.activation
        return result

    def _library_for(
        self, mode: str, fault: Optional[FaultSpec]
    ) -> Optional[InstrumentationLibrary]:
        if fault is not None and mode not in ("fi", "fift"):
            raise ReproError(f"mode {mode!r} has no FI hooks; cannot arm a fault")
        if mode == "original":
            return None
        if mode == "profiler":
            raise ReproError("use train() for profiler runs")
        if mode == "ft":
            self._device_cb = self.cb.copy_to_device()
            return HauberkFTLibrary(self._device_cb)
        if mode == "fi":
            return FaultInjectionLibrary(self.workload.kernel, fault)
        if mode == "fift":
            self._device_cb = self.cb.copy_to_device()
            ft = HauberkFTLibrary(self._device_cb)
            fi = FaultInjectionLibrary(self.workload.kernel, fault)
            return CombinedLibrary([ft, fi])
        raise ReproError(f"unknown mode {mode!r}")

    # -- campaign integration ------------------------------------------------
    def golden_record(self, seed: int = 0) -> GoldenRecord:
        """The per-seed golden campaign state (input, golden, exec caches).

        Cached per program so repeated campaigns over the same workload
        (figure sweeps re-running per fault class / bit count / alpha)
        pay for input generation and the golden run once.  The record
        also carries the differential engines memoized for this seed
        (see :mod:`repro.swifi.differential`).
        """
        record = self._trial_io.get(seed)
        if record is None:
            inp = self.workload.generate_input(seed)
            record = GoldenRecord(inp=inp, golden=self.workload.golden(inp))
            self._trial_io[seed] = record
        return record

    def campaign_io(self, seed: int = 0) -> Tuple[WorkloadInput, np.ndarray]:
        """The fixed (input, golden output) pair for campaigns on ``seed``."""
        record = self.golden_record(seed)
        return record.inp, record.golden

    def trial_runner(self, mode: str, seed: int = 0):
        """A ``Campaign``-compatible runner for FI experiments.

        The input (and its golden output) is fixed across the campaign;
        each call runs the whole program once with the given fault.
        """
        inp, golden = self.campaign_io(seed)
        run_mode = mode

        def runner(spec: Optional[FaultSpec]) -> TrialObservation:
            if spec is None:
                result = self.run(mode="original", inp=inp)
                detected = False
            else:
                result = self.run(mode=run_mode, inp=inp, fault=spec)
                detected = result.alarm if run_mode == "fift" else False
            failure = result.status is not RunStatus.OK
            ok = (
                not failure
                and result.output is not None
                and self.workload.spec.check(result.output, golden)
            )
            activated = bool(result.activation) or spec is None
            return TrialObservation(
                failure=failure,
                detected=detected,
                output_ok=ok,
                activated=activated,
                note=result.failure_reason,
            )

        return runner

    # -- performance measurement (Figure 13) -----------------------------------
    def measure_time(self, mode: str, inp: Optional[WorkloadInput] = None, seed: int = 0) -> float:
        """Modeled kernel time of one run in the given mode."""
        result = self.run(mode=mode, inp=inp, seed=seed)
        if result.status is not RunStatus.OK:
            raise GPUError(
                f"{self.workload.name} {mode} run failed: {result.failure_reason}"
            )
        return result.kernel_time
