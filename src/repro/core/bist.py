"""Built-in self test (Section VI(ii.c)).

"We execute a GPU program that is specifically designed to produce
multiple sets of output data by examining various parts of GPU
hardware."  Two small kernels exercise the integer ALU and the FPU
(including SFU transcendentals); outputs are compared against NumPy.
A device carrying a simulated persistent ``defect`` fails the test —
that is how the recovery engine distinguishes long-intermittent or
permanent hardware faults from software issues.
"""

from __future__ import annotations

import numpy as np

from repro.bits import flip_float_bits, flip_int_bits
from repro.gpu.device import Device
from repro.gpu.runtime import GPURuntime
from repro.kir.parser import parse_kernel
from repro.kir.types import DType

_ALU_KERNEL = parse_kernel(
    """
kernel bist_alu(int* data, int* out, int n) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    if (t < n) {
        int v = data[t];
        int acc = 0;
        for (int i = 0; i < 8; i++) {
            acc = acc + ((v * 1103515245 + 12345 + i) & 65535);
            v = v ^ (acc << 1);
        }
        out[t] = acc;
    }
}
"""
)

_FPU_KERNEL = parse_kernel(
    """
kernel bist_fpu(float* data, float* out, int n) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    if (t < n) {
        float v = data[t];
        float r = sqrt(v * v + 1.0) + sin(v) * cos(v) + exp(0.0 - fabs(v));
        out[t] = r / (1.0 + fabs(v));
    }
}
"""
)

_N = 32


def _alu_golden(data: np.ndarray) -> np.ndarray:
    wrap = lambda x: ((x + 2**31) % 2**32) - 2**31  # noqa: E731
    out = np.zeros_like(data, dtype=np.int64)
    v = data.astype(np.int64)
    acc = np.zeros_like(v)
    for i in range(8):
        acc = wrap(acc + (wrap(v * 1103515245 + 12345 + i) & 65535))
        v = wrap(v ^ wrap(acc << 1))
    out = acc
    return out


def _fpu_golden(data: np.ndarray) -> np.ndarray:
    v = data.astype(np.float64)
    r = np.sqrt(v * v + 1.0) + np.sin(v) * np.cos(v) + np.exp(0.0 - np.abs(v))
    return (r / (1.0 + np.abs(v))).astype(np.float32)


def run_bist(device: Device, seed: int = 12345) -> bool:
    """Self-test a device; True when all units produce correct data.

    Works on disabled devices (that is the whole point of the back-off
    daemon probing them).
    """
    was_enabled = device.enabled
    device.enabled = True
    try:
        runtime = GPURuntime(device)
        rng = np.random.default_rng(seed)

        # integer ALU leg
        device.memory.reset()
        idata = rng.integers(-1000, 1000, _N).astype(np.int32)
        a_in = device.memory.alloc("bist_i", _N, DType.INT32)
        a_out = device.memory.alloc("bist_io", _N, DType.INT32)
        device.memory.memcpy_htod(a_in, idata)
        runtime.launch(_ALU_KERNEL, 1, _N, {"data": a_in, "out": a_out, "n": _N})
        alu_result = device.memory.memcpy_dtoh(a_out).astype(np.int64)
        if device.defect == "alu":
            alu_result = alu_result.copy()
            alu_result[0] = flip_int_bits(int(alu_result[0]), 1 << 7)
        if not np.array_equal(alu_result, _alu_golden(idata)):
            return False

        # FPU / SFU leg
        device.memory.reset()
        fdata = rng.uniform(-2.0, 2.0, _N).astype(np.float32)
        f_in = device.memory.alloc("bist_f", _N, DType.FLOAT32)
        f_out = device.memory.alloc("bist_fo", _N, DType.FLOAT32)
        device.memory.memcpy_htod(f_in, fdata)
        runtime.launch(_FPU_KERNEL, 1, _N, {"data": f_in, "out": f_out, "n": _N})
        fpu_result = device.memory.memcpy_dtoh(f_out)
        if device.defect in ("fpu", "register"):
            fpu_result = fpu_result.copy()
            fpu_result[0] = flip_float_bits(float(fpu_result[0]), 1 << 23)
        if not np.allclose(fpu_result, _fpu_golden(fdata), rtol=1e-6, atol=1e-7):
            return False
        return True
    finally:
        device.enabled = was_enabled
        device.memory.reset()
