"""HAUBERK-NL: duplication + shared-checksum protection of non-loop code.

Implements the five-step derivation of Section V.A on the KIR AST:

(i)   after each non-loop virtual-variable definition, XOR the defined
      value into the kernel's single shared checksum variable;
(ii)  duplicate the defining computation into a fresh register whose
      live range is two statements;
(iii) compare original and duplicate, setting a deferred mismatch flag;
(iv)  XOR the original value out of the checksum after its last use —
      or *before* a loop that updates it (the "uncovered window"; loop
      updates are the loop detector's responsibility), or before the
      variable's next redefinition;
(v)   validate checksum == 0 and mismatch flag == 0 at kernel exit via
      the FT library (deferred reporting into the control block).

Parameters are checksummed without duplication: XOR-in at entry,
XOR-out at exit (or before their first modification).

The zero-sum invariant — every XOR-in is paired with exactly one
XOR-out on every control path — is preserved by placing each pair in
the same lexical block, and is property-tested in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import KIRValidationError
from repro.kir.astnodes import (
    Assign,
    BinOp,
    Call,
    CallStmt,
    Const,
    Decl,
    Expr,
    For,
    If,
    Kernel,
    Return,
    Stmt,
    Var,
)
from repro.kir.analysis.dataflow import names_read_expr, names_read_stmt, names_written_stmt
from repro.kir.types import DType

CHECKSUM_VAR = "__chk"
MISMATCH_VAR = "__nlflag"
VALIDATE_FUNC = "__hauberk_checksum_validate"

#: Cycle discount for NL-added statements: duplicates and checksum
#: updates are data-independent of the original computation, so a real
#: GPU dual-issues much of them into scheduler slack.  0.5 matches the
#: regime where instruction duplication costs well under 2x (cf. SWIFT's
#: 41% on a CPU with free ILP; GPUs retain *some* slack in the
#: latency-bound non-loop sections Hauberk duplicates).
NL_COST_SCALE = 0.5


def _discounted(stmt: Stmt, scale: float = NL_COST_SCALE) -> Stmt:
    stmt.cost_scale = scale
    return stmt


@dataclass
class NonLoopInfo:
    """What the NL pass protected (for reports and tests)."""

    protected_definitions: int = 0
    duplicated_definitions: int = 0
    protected_params: List[str] = field(default_factory=list)
    #: Number of statements prepended to the kernel body (checksum
    #: declarations + parameter XOR-ins); FI hooks must land after these.
    header_len: int = 0


def _bits_of(name: str, dtype: DType) -> Expr:
    """Expression reinterpreting a variable's value as int bits."""
    if dtype is DType.FLOAT32:
        return Call("__float_as_int", [Var(name)])
    if dtype.is_pointer:
        return Call("int", [Var(name)])
    return Var(name)


def _xor_stmt(name: str, dtype: DType, scale: float = NL_COST_SCALE) -> Assign:
    """``__chk = __chk ^ bits(name)`` (ILP-discounted, see NL_COST_SCALE)."""
    return _discounted(
        Assign(CHECKSUM_VAR, BinOp("^", Var(CHECKSUM_VAR), _bits_of(name, dtype))),
        scale,
    )


def _is_detector_name(name: str) -> bool:
    return name.startswith("__")


def _stmt_writes(stmt: Stmt, name: str) -> bool:
    return name in names_written_stmt(stmt)


def _stmt_reads(stmt: Stmt, name: str) -> bool:
    return name in names_read_stmt(stmt)


class NonLoopTransformer:
    """Applies HAUBERK-NL to a (cloned) kernel in place.

    ``checksum_only`` ablates step (ii)/(iii): variables are protected
    by the shared checksum alone, with no duplicated computation —
    cheaper, but blind to errors *during* the defining computation.
    ``cost_scale`` is the ILP discount applied to added statements.
    """

    def __init__(self, kernel: Kernel, checksum_only: bool = False,
                 cost_scale: float = NL_COST_SCALE):
        self.kernel = kernel
        self.checksum_only = checksum_only
        self.cost_scale = cost_scale
        self.info = NonLoopInfo()
        self._dup_counter = 0

    # -- public entry ------------------------------------------------------
    def apply(self) -> NonLoopInfo:
        for stmt, _ in _walk_all(self.kernel.body):
            if isinstance(stmt, Return):
                raise KIRValidationError(
                    "HAUBERK-NL requires return-free kernels (normalize with "
                    "guard conditionals first, as CETUS would)"
                )
        body = self._process_block(self.kernel.body)
        header: List[Stmt] = [
            Decl(CHECKSUM_VAR, DType.INT32, Const(0)),
            Decl(MISMATCH_VAR, DType.INT32, Const(0)),
        ]
        header.extend(self._param_entry_updates(body))
        footer: List[Stmt] = self._param_exit_updates(body)
        footer.append(
            CallStmt(VALIDATE_FUNC, [Var(CHECKSUM_VAR), Var(MISMATCH_VAR)])
        )
        self.info.header_len = len(header)
        self.kernel.body = header + body + footer
        return self.info

    # -- parameters ---------------------------------------------------------
    def _param_entry_updates(self, body: List[Stmt]) -> List[Stmt]:
        out = []
        for p in self.kernel.params:
            out.append(_xor_stmt(p.name, p.dtype, self.cost_scale))
            self.info.protected_params.append(p.name)
        return out

    def _param_exit_updates(self, body: List[Stmt]) -> List[Stmt]:
        """XOR-out for each parameter.

        Unmodified parameters balance at kernel exit.  A modified
        parameter gets its XOR-out inserted (in place, into ``body``)
        before the first top-level statement that writes it; the
        modifying definition is then an ordinary virtual variable.
        """
        exit_updates: List[Stmt] = []
        for p in self.kernel.params:
            write_idx: Optional[int] = None
            for idx, stmt in enumerate(body):
                if _stmt_writes(stmt, p.name):
                    write_idx = idx
                    break
            if write_idx is None:
                exit_updates.append(_xor_stmt(p.name, p.dtype, self.cost_scale))
            else:
                body.insert(write_idx, _xor_stmt(p.name, p.dtype, self.cost_scale))
        return exit_updates

    # -- block processing ----------------------------------------------------
    def _process_block(self, stmts: List[Stmt]) -> List[Stmt]:
        """Rewrite one non-loop block; returns the new statement list."""
        # For each definition index, the XOR-out must land before/after
        # some later index; collect insertions keyed by position.
        before: Dict[int, List[Stmt]] = {}
        after: Dict[int, List[Stmt]] = {}
        inline_after: Dict[int, List[Stmt]] = {}
        inline_before: Dict[int, List[Stmt]] = {}

        for idx, stmt in enumerate(stmts):
            if isinstance(stmt, (Decl, Assign)):
                name = stmt.name
                if _is_detector_name(name):
                    continue
                dtype = stmt.var_dtype if isinstance(stmt, Decl) else stmt.target_dtype
                rhs = stmt.init if isinstance(stmt, Decl) else stmt.value
                self.info.protected_definitions += 1
                protect_before, protect_after = self._protect_definition(
                    name, dtype, rhs
                )
                inline_before.setdefault(idx, []).extend(protect_before)
                inline_after.setdefault(idx, []).extend(protect_after)
                pos, mode = self._xor_out_position(stmts, idx, name)
                target = before if mode == "before" else after
                target.setdefault(pos, []).append(_xor_stmt(name, dtype, self.cost_scale))

        out: List[Stmt] = []
        for idx, stmt in enumerate(stmts):
            out.extend(before.get(idx, []))
            out.extend(inline_before.get(idx, []))
            if isinstance(stmt, If):
                stmt.then = self._process_block(stmt.then)
                stmt.els = self._process_block(stmt.els)
            # loops are intentionally not entered: HAUBERK-L territory
            out.append(stmt)
            out.extend(inline_after.get(idx, []))
            out.extend(after.get(idx, []))
        # a definition whose XOR-out belongs past the last statement
        out.extend(before.get(len(stmts), []))
        out.extend(after.get(len(stmts), []))
        return out

    def _protect_definition(
        self, name: str, dtype: DType, rhs: Expr
    ) -> Tuple[List[Stmt], List[Stmt]]:
        """Steps (i)-(iii) for one definition.

        Returns (statements before the definition, statements after).
        Self-referencing definitions (``x = x + 1``) compute the
        duplicate *before* the original so both see the same inputs.
        """
        xor_in = _xor_stmt(name, dtype, self.cost_scale)
        if isinstance(rhs, Const) or self.checksum_only:
            # no computation to duplicate (or duplication ablated):
            # checksum-only protection
            return [], [xor_in]
        import copy

        dup_name = f"__dup{self._dup_counter}"
        self._dup_counter += 1
        self.info.duplicated_definitions += 1
        dup_dtype = dtype if dtype.is_numeric or dtype.is_pointer else DType.FLOAT32
        dup_decl = _discounted(
            Decl(dup_name, dup_dtype, copy.deepcopy(rhs)), self.cost_scale
        )
        check = _discounted(
            If(
                cond=BinOp("!=", Var(name), Var(dup_name)),
                then=[Assign(MISMATCH_VAR, Const(1))],
                els=[],
            ),
            self.cost_scale,
        )
        if name in names_read_expr(rhs):
            return [dup_decl], [xor_in, check]
        return [], [xor_in, dup_decl, check]

    @staticmethod
    def _xor_out_position(
        stmts: List[Stmt], def_idx: int, name: str
    ) -> Tuple[int, str]:
        """Step (iv): where this definition's XOR-out belongs.

        Scanning forward from the definition: the first statement that
        *writes* the name ends this virtual variable — XOR-out goes
        before it (for a loop updating the variable this is the paper's
        uncovered window; for a plain redefinition the old value is
        still readable there).  Otherwise XOR-out lands after the last
        statement that reads the name (loops that only read keep the
        XOR-out after them), or immediately after an unused definition.
        """
        last_read = def_idx
        for idx in range(def_idx + 1, len(stmts)):
            stmt = stmts[idx]
            if _stmt_writes(stmt, name):
                return idx, "before"
            if _stmt_reads(stmt, name):
                last_read = idx
        return last_read, "after"


def _walk_all(body: List[Stmt]):
    from repro.kir.astnodes import walk_stmts

    return walk_stmts(body)


def apply_nonloop_detectors(
    kernel: Kernel, checksum_only: bool = False,
    cost_scale: float = NL_COST_SCALE,
) -> NonLoopInfo:
    """Apply HAUBERK-NL to ``kernel`` in place (clone first!)."""
    return NonLoopTransformer(
        kernel, checksum_only=checksum_only, cost_scale=cost_scale
    ).apply()
