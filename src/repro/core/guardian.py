"""The guardian process (Section VI(i)).

A parent process supervising the Hauberk-instrumented program: it
learns of child termination (the simulated SIGCHLD), restarts failed
programs, preemptively kills kernels whose execution time exceeds both
T x the previous execution time *and* a fixed floor (hang detection —
realized here as the per-thread statement budget the watchdog
enforces), and escalates repeated failures on the same kernel + input
to a BIST diagnosis with device disable / migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.bist import run_bist
from repro.core.checkpoint import CheckpointLibrary
from repro.errors import RecoveryError, UnsupportedSoftwareError
from repro.gpu.cluster import GPUNode
from repro.gpu.device import Device
from repro.obs.events import get_tracer
from repro.obs.instrument import record_guardian_budget, record_guardian_report


@dataclass
class GuardianReport:
    """What the guardian observed and did during one supervision."""

    attempts: int = 0
    restarts: int = 0
    hang_kills: int = 0
    crash_restarts: int = 0
    bist_runs: int = 0
    migrations: int = 0
    checkpoint_restores: int = 0
    failures: List[str] = field(default_factory=list)


class Guardian:
    """Supervises program executions the way the paper's parent process does.

    ``launch_fn(device, budget)`` runs the program once on ``device``
    with the given per-thread statement budget and returns an object
    with ``status`` (a :class:`~repro.core.program.RunStatus`),
    ``failure_reason`` and ``launch`` (carrying ``max_thread_steps``).
    """

    def __init__(
        self,
        node: Optional[GPUNode] = None,
        bist: Callable[[Device], bool] = run_bist,
        hang_factor: float = 10.0,
        min_hang_budget: int = 100_000,
        max_attempts: int = 6,
        checkpoints: Optional[CheckpointLibrary] = None,
    ):
        self.node = node if node is not None else GPUNode(num_devices=2)
        self.bist = bist
        self.hang_factor = hang_factor
        self.min_hang_budget = min_hang_budget
        self.max_attempts = max_attempts
        self.checkpoints = checkpoints
        #: Max per-thread steps of the last successful run (hang baseline).
        self.prev_steps: Optional[int] = None

    def next_budget(self) -> int:
        """Watchdog budget: T x previous execution, floored (Section VI(i))."""
        if self.prev_steps is None:
            return max(self.min_hang_budget, 2_000_000)
        return max(int(self.hang_factor * self.prev_steps), self.min_hang_budget)

    def supervise(self, launch_fn, checkpoint_fn=None, restore_fn=None) -> tuple:
        """Run to success with restarts/migration; returns (result, report).

        Optional checkpointing (Section VI(i), CheCUDA-style):
        ``checkpoint_fn()`` is called before every launch to snapshot
        host state; ``restore_fn(checkpoint)`` is called before a
        restart so recovery resumes from the last kernel boundary
        instead of from program start.
        """
        from repro.core.program import RunStatus  # local import breaks a cycle

        report = GuardianReport()
        device = self.node.healthy_device()
        same_device_failures = 0
        latest_checkpoint = None
        tracer = get_tracer()
        with tracer.span("guardian.supervise", device=device.device_id) as span:
            try:
                while report.attempts < self.max_attempts:
                    report.attempts += 1
                    if checkpoint_fn is not None:
                        latest_checkpoint = checkpoint_fn()
                        if self.checkpoints is not None and latest_checkpoint is not None:
                            self.checkpoints.save(latest_checkpoint)
                    budget = self.next_budget()
                    record_guardian_budget(budget)
                    result = launch_fn(device, budget)
                    if result.status is RunStatus.OK:
                        if result.launch is not None:
                            self.prev_steps = result.launch.max_thread_steps
                        span.set(attempts=report.attempts, restarts=report.restarts)
                        return result, report
                    # failure path (simulated SIGCHLD)
                    report.failures.append(
                        f"{result.status.value}: {result.failure_reason}"
                    )
                    tracer.event(
                        "guardian.failure", status=result.status.value,
                        reason=result.failure_reason, attempt=report.attempts,
                    )
                    if result.status is RunStatus.HANG:
                        report.hang_kills += 1
                    else:
                        report.crash_restarts += 1
                    same_device_failures += 1
                    if restore_fn is not None and latest_checkpoint is not None:
                        restore_fn(latest_checkpoint)
                        report.checkpoint_restores += 1
                    if same_device_failures >= 2:
                        # repeated failure of the same kernel with the same input:
                        # diagnose the device (Figure 11 left path)
                        report.bist_runs += 1
                        if not self.bist(device):
                            device = self.node.migrate_from(device)
                            tracer.event(
                                "guardian.migrate", to_device=device.device_id
                            )
                            report.migrations += 1
                            same_device_failures = 0
                        else:
                            raise UnsupportedSoftwareError(
                                "program fails repeatedly on a healthy device "
                                "(software bug or nondeterminism)"
                            )
                    report.restarts += 1
                raise RecoveryError(
                    f"guardian gave up after {report.attempts} attempts: "
                    f"{report.failures}"
                )
            finally:
                record_guardian_report(report)
