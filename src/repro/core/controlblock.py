"""The CPU <-> GPU control block (Section V.A, Table I).

"CPU-side program allocates a control block in its memory, copies the
allocated object to GPU memory, and delivers the pointer ... as a
parameter of [the] GPU kernel.  Placed error detectors use this passed
control block and mark detection results."

Isolation is modeled faithfully: :meth:`copy_to_device` hands the FT
library a deep working copy before launch, and only a *successful*
kernel completion copies results back — a crashed kernel's partial
detection state is lost exactly as it would be on hardware (Figure 6's
isolated execution / deferred checking model).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.ranges import RangeSet
from repro.errors import ReproError


@dataclass
class DetectorConfig:
    """Per-loop-detector configuration shipped to the GPU."""

    detector: int
    kernel: str = ""
    variable: str = ""
    loop_id: int = -1
    self_accumulating: bool = False
    has_trip_check: bool = False
    ranges: RangeSet = field(default_factory=RangeSet)


@dataclass
class DetectionEvent:
    """One deferred alarm recorded by a detector during the kernel."""

    detector: int
    kind: str  # "range" | "trip" | "checksum" | "nl_mismatch"
    value: float = 0.0
    expected: float = 0.0
    block: int = -1
    thread: int = -1


@dataclass
class ControlBlock:
    """Host-side control block; the FT library works on a device copy."""

    detectors: Dict[int, DetectorConfig] = field(default_factory=dict)
    events: List[DetectionEvent] = field(default_factory=list)
    sdc_bit: bool = False
    #: Ranges recomputed on-line by detectors that alarmed ("assuming it
    #: is a false positive"), keyed by detector; applied by recovery.
    updated_ranges: Dict[int, RangeSet] = field(default_factory=dict)

    # -- configuration ----------------------------------------------------
    def configure(self, configs: List[DetectorConfig]) -> None:
        """Install detector configs, taking private copies.

        Configs come from an :class:`InstrumentedKernel` that may be
        shared between programs (the translator build cache); ranges
        and alpha installed on *this* control block must never leak
        into another program's campaign.
        """
        self.detectors = {c.detector: copy.deepcopy(c) for c in configs}

    def load_ranges(self, ranges: Dict[int, RangeSet]) -> None:
        """Install profiled ranges (the FT entry-of-main load)."""
        for det, rs in ranges.items():
            if det not in self.detectors:
                raise ReproError(f"ranges for unknown detector {det}")
            self.detectors[det].ranges = rs

    def set_alpha(self, detector: int, alpha: float) -> None:
        cfg = self.detectors.get(detector)
        if cfg is None:
            raise ReproError(f"unknown detector {detector}")
        cfg.ranges = cfg.ranges.with_alpha(alpha)

    def set_alpha_all(self, alpha: float) -> None:
        for det in self.detectors:
            self.set_alpha(det, alpha)

    # -- launch-boundary copies --------------------------------------------
    def copy_to_device(self) -> "ControlBlock":
        """Fresh working copy for one kernel launch (clears results)."""
        device_cb = copy.deepcopy(self)
        device_cb.events = []
        device_cb.sdc_bit = False
        device_cb.updated_ranges = {}
        return device_cb

    def copy_from_device(self, device_cb: "ControlBlock") -> None:
        """Absorb results after a *successful* kernel completion."""
        self.events = list(device_cb.events)
        self.sdc_bit = device_cb.sdc_bit
        self.updated_ranges = dict(device_cb.updated_ranges)

    # -- results ---------------------------------------------------------
    @property
    def alarm_raised(self) -> bool:
        return self.sdc_bit or bool(self.events)

    def events_of_kind(self, kind: str) -> List[DetectionEvent]:
        return [e for e in self.events if e.kind == kind]

    def clear_results(self) -> None:
        self.events = []
        self.sdc_bit = False
        self.updated_ranges = {}
