"""The MemorySpace protocol: one typed word-addressed access interface.

Every memory model in this repository — the GPU's flat
:class:`~repro.gpu.memory.GlobalMemory`, its recording / guarded
wrappers used by differential trial execution, and the CPU simulator's
:class:`~repro.cpusim.machine.PagedMemory` — speaks the same
four-method interface: typed 32-bit scalar loads and stores over a
word-addressed space.  This module makes that previously implicit
contract explicit:

* :class:`MemorySpace` — the structural protocol interpreters compile
  against (``ctx.load_f32`` and friends are bound from whatever space
  is installed, so recording and replay-guard layers compose by
  construction rather than by duck-typed accident);
* :class:`WordReinterpret` — the shared helper deriving the four typed
  accessors from two *word primitives* (``load_word``/``store_word``).
  Concrete spaces differ only in their bounds policy, which lives
  entirely in the primitives: the GPU space checks the flat device
  range (no per-allocation protection — the paper's SDC path), the CPU
  space checks page mapping and permissions (the protection GPUs
  lack).  Reinterpretation itself — IEEE-754 binary32 bit patterns for
  floats, two's complement for ints — is written once, here.

Bit-pattern fidelity contract: a word is stored and snapshotted as its
exact 32-bit pattern.  Typed *loads* reinterpret on the way out (a
float32 signaling NaN is quieted by the float64 conversion, as on real
hardware reading through an FPU register), but the word itself — NaN
payloads, denormals, -0.0 included — is never canonicalized while at
rest.  See ``docs/fault-model.md``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.bits import bits_to_float, bits_to_int, float_to_bits, int_to_bits


@runtime_checkable
class MemorySpace(Protocol):
    """Typed scalar access over a word-addressed 32-bit memory."""

    def load_f32(self, addr: int) -> float:
        """The binary32 value of the word at ``addr``."""

    def load_i32(self, addr: int) -> int:
        """The signed two's-complement value of the word at ``addr``."""

    def store_f32(self, addr: int, value: float) -> None:
        """Round ``value`` through binary32 and store its bit pattern."""

    def store_i32(self, addr: int, value: int) -> None:
        """Store the two's-complement pattern of ``value``."""


class WordReinterpret:
    """Mixin deriving the :class:`MemorySpace` methods from word primitives.

    Subclasses provide ``load_word(addr) -> int`` and
    ``store_word(addr, bits) -> None`` carrying their bounds policy
    (and its error type); this mixin contributes the single shared
    implementation of typed reinterpretation.  Performance-critical
    spaces may override individual accessors with equivalent fast
    paths (e.g. :class:`~repro.gpu.memory.GlobalMemory` reads through
    zero-copy NumPy dtype views) — overrides must preserve bit-exact
    semantics, which the property suite in ``tests/test_memory_space.py``
    checks.
    """

    __slots__ = ()

    # -- word primitives (bounds policy lives here) ----------------------
    def load_word(self, addr: int) -> int:
        """Raw 32-bit pattern of the word at ``addr``."""
        raise NotImplementedError

    def store_word(self, addr: int, bits: int) -> None:
        """Overwrite the word at ``addr`` with a raw 32-bit pattern."""
        raise NotImplementedError

    # -- derived typed accessors ----------------------------------------
    def load_f32(self, addr: int) -> float:
        return bits_to_float(self.load_word(addr))

    def load_i32(self, addr: int) -> int:
        return bits_to_int(self.load_word(addr))

    def store_f32(self, addr: int, value: float) -> None:
        self.store_word(addr, float_to_bits(value))

    def store_i32(self, addr: int, value: int) -> None:
        self.store_word(addr, int_to_bits(value))
