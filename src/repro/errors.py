"""Exception hierarchy for the Hauberk reproduction.

Every error raised by the library derives from :class:`ReproError`, so
downstream users can catch library failures with a single ``except``.
The GPU-runtime errors deliberately mirror the failure taxonomy of the
paper's Section VIII: a *kernel crash* is detected by the (simulated) GPU
runtime, a *kernel hang* is detected by the guardian watchdog, and a
*compile error* models resource exhaustion at instrumentation time
(e.g. R-Scatter doubling shared memory past the device limit).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class KIRError(ReproError):
    """Base class for kernel-IR construction/analysis errors."""


class KIRTypeError(KIRError):
    """A kernel expression or statement is ill-typed."""


class KIRParseError(KIRError):
    """The mini-CUDA source text could not be parsed."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        super().__init__(f"{message} (line {line}, col {col})")
        self.line = line
        self.col = col


class KIRValidationError(KIRError):
    """A kernel AST violates a structural invariant."""


class GPUError(ReproError):
    """Base class for simulated-GPU runtime errors."""


class KernelCrash(GPUError):
    """The GPU runtime detected a crash (e.g. out-of-bounds access).

    This corresponds to the paper's *failure* outcome detected "by the
    GPU runtime environment".  The crash carries the offending thread
    and a reason string so the guardian can log it.
    """

    def __init__(self, reason: str, thread: int = -1, block: int = -1):
        super().__init__(f"kernel crash: {reason} (block {block}, thread {thread})")
        self.reason = reason
        self.thread = thread
        self.block = block


class KernelHang(GPUError):
    """The watchdog killed a kernel that exceeded its instruction budget.

    Models the guardian's preemptive hang detection (Section VI(i)):
    execution time > T x previous execution AND > a fixed interval.
    """

    def __init__(self, reason: str = "instruction budget exhausted"):
        super().__init__(f"kernel hang: {reason}")
        self.reason = reason


class DeviceMemoryError(KernelCrash):
    """Out-of-bounds or unmapped device memory access."""


class LaunchError(GPUError):
    """Kernel launch parameters are invalid for the device."""


class CompileError(GPUError):
    """The kernel cannot be 'compiled' for the device.

    Raised when a transformed kernel exceeds device resources, e.g. the
    paper's observation that R-Scatter could not compile TPACF because
    it doubles a shared-memory footprint already above 50%.
    """


class InjectionError(ReproError):
    """A fault-injection experiment was misconfigured."""


class RecoveryError(ReproError):
    """The recovery engine cannot make progress (e.g. no healthy GPU)."""


class UnsupportedSoftwareError(RecoveryError):
    """Figure 11 terminal state: reexecution diverges without an SDC alarm.

    The diagnosis concludes the software itself is buggy or
    nondeterministic, which Hauberk does not attempt to repair.
    """


class WorkloadError(ReproError):
    """A benchmark workload was asked for an unsupported configuration."""


class CPUSimError(ReproError):
    """Base class for the CPU-comparison simulator."""


class CPUSegmentationFault(CPUSimError):
    """Page-granularity access check failed on the simulated CPU."""

    def __init__(self, address: int, access: str = "read"):
        super().__init__(f"segmentation fault: {access} at 0x{address & 0xFFFFFFFF:08x}")
        self.address = address
        self.access = access


class CPUIllegalInstruction(CPUSimError):
    """The simulated CPU decoded a corrupted instruction."""
