"""Sparse paged word store: GB-scale address spaces, resident-on-touch.

:class:`PagedWords` keeps a word-addressed space as a dict of
fixed-size NumPy pages that materialize only when written.  Reads of
absent pages return the fill value (zero for device memory) without
allocating anything, so a 1 GB-128 GB address space costs memory
proportional to the pages a kernel actually touches — the same move
the Error-Code-Correction repo's 128 Gb sparse-memory-map simulator
makes (ROADMAP item 5).

Snapshots are copy-on-write: :meth:`PagedWords.snapshot` hands out
references to the current pages and marks them shared; the next write
to a shared page copies it first.  A snapshot is therefore O(resident
pages) pointers, not O(address space) bytes, and diffing two snapshots
skips pages that are still the *same object* — page-granular golden
diffs.

The store is dtype-generic (``fill`` sets the lazy default) so the
vector engine's per-word hazard maps — ``int64`` arrays as large as
the allocated region — can ride the same sparse backing instead of
materializing GB-scale ``np.full`` arrays.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

import numpy as np

from repro.errors import GPUError

#: Default page size in words (256 KiB pages: big enough that fancy
#: indexing amortizes the per-page Python dispatch, small enough that
#: a sparse kernel's resident set stays proportional to its touch set).
DEFAULT_PAGE_WORDS = 1 << 16


def _require_power_of_two(page_words: int) -> None:
    if page_words <= 0 or page_words & (page_words - 1):
        raise GPUError(f"page size must be a positive power of two, "
                       f"got {page_words}")


class PagedWords:
    """A sparse, paged, word-addressed array with COW snapshots."""

    __slots__ = ("capacity", "page_words", "page_bits", "page_mask",
                 "dtype", "fill", "pages", "_shared")

    def __init__(self, capacity: int, page_words: int = DEFAULT_PAGE_WORDS,
                 dtype=np.uint32, fill=0):
        if capacity < 0:
            raise GPUError(f"invalid paged capacity {capacity}")
        _require_power_of_two(page_words)
        self.capacity = capacity
        self.page_words = page_words
        self.page_bits = page_words.bit_length() - 1
        self.page_mask = page_words - 1
        self.dtype = np.dtype(dtype)
        self.fill = fill
        #: page index -> page array (``page_words`` long, ``dtype``).
        self.pages: Dict[int, np.ndarray] = {}
        #: Pages referenced by a live snapshot: copy before writing.
        self._shared: Set[int] = set()

    # -- page lifecycle -------------------------------------------------

    def _writable(self, p: int) -> np.ndarray:
        """The page at index ``p``, materialized and safe to mutate."""
        page = self.pages.get(p)
        if page is None:
            page = np.full(self.page_words, self.fill, self.dtype)
            self.pages[p] = page
        elif p in self._shared:
            page = page.copy()
            self.pages[p] = page
            self._shared.discard(p)
        return page

    @property
    def resident_pages(self) -> int:
        return len(self.pages)

    @property
    def resident_bytes(self) -> int:
        return len(self.pages) * self.page_words * self.dtype.itemsize

    # -- scalar access --------------------------------------------------

    def item(self, addr: int):
        """The word at ``addr`` as a Python scalar (no bounds check)."""
        page = self.pages.get(addr >> self.page_bits)
        if page is None:
            return self.fill
        return page.item(addr & self.page_mask)

    def set_item(self, addr: int, value) -> None:
        self._writable(addr >> self.page_bits)[addr & self.page_mask] = value

    # -- bulk access ----------------------------------------------------

    def gather(self, addrs: np.ndarray) -> np.ndarray:
        """Values at ``addrs`` (any order, duplicates fine); fresh array."""
        addrs = np.asarray(addrs, np.int64)
        out = np.full(addrs.shape, self.fill, self.dtype)
        if addrs.size == 0:
            return out
        pg = addrs >> self.page_bits
        for p in np.unique(pg):
            page = self.pages.get(int(p))
            if page is not None:
                sel = pg == p
                out[sel] = page[addrs[sel] & self.page_mask]
        return out

    def scatter(self, addrs: np.ndarray, values) -> None:
        """Write ``values`` at ``addrs``; duplicate addresses last-wins.

        Per-page fancy assignment preserves the relative order of each
        page's lanes, so duplicate resolution matches a flat ndarray's
        ``arr[addrs] = values`` exactly.
        """
        addrs = np.asarray(addrs, np.int64)
        if addrs.size == 0:
            return
        pg = addrs >> self.page_bits
        vals = np.asarray(values)
        scalar_value = vals.ndim == 0
        for p in np.unique(pg):
            sel = pg == p
            page = self._writable(int(p))
            if scalar_value:
                page[addrs[sel] & self.page_mask] = vals
            else:
                page[addrs[sel] & self.page_mask] = vals[sel]

    # hazard maps index with plain ``map[addrs]`` / ``map[addr]``; keep
    # that spelling working so the vector engine code reads identically
    # over dense ndarrays and paged stores
    def __getitem__(self, idx):
        if isinstance(idx, np.ndarray):
            return self.gather(idx)
        return self.item(int(idx))

    def __setitem__(self, idx, value) -> None:
        if isinstance(idx, np.ndarray):
            self.scatter(idx, value)
        else:
            self.set_item(int(idx), value)

    def __len__(self) -> int:
        return self.capacity

    # -- contiguous ranges ----------------------------------------------

    def _range_pages(self, start: int, n: int) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(page_index, page_lo, page_hi, out_offset)`` spans."""
        end = start + n
        addr = start
        while addr < end:
            p = addr >> self.page_bits
            lo = addr & self.page_mask
            hi = min(self.page_words, lo + (end - addr))
            yield p, lo, hi, addr - start
            addr += hi - lo

    def read_range(self, start: int, n: int) -> np.ndarray:
        """A fresh contiguous array of ``n`` words from ``start``."""
        out = np.full(n, self.fill, self.dtype)
        for p, lo, hi, off in self._range_pages(start, n):
            page = self.pages.get(p)
            if page is not None:
                out[off:off + (hi - lo)] = page[lo:hi]
        return out

    def write_range(self, start: int, values: np.ndarray) -> None:
        """Write a contiguous array at ``start``.

        Spans that are entirely the fill value skip absent pages, so
        restoring a mostly-zero image into a sparse store does not
        materialize untouched space.
        """
        values = np.asarray(values, self.dtype)
        for p, lo, hi, off in self._range_pages(start, values.size):
            chunk = values[off:off + (hi - lo)]
            if p not in self.pages and not chunk.any() and self.fill == 0:
                continue
            self._writable(p)[lo:hi] = chunk

    def zero_range(self, start: int, n: int) -> None:
        """Reset ``[start, start+n)`` to the fill value.

        Pages fully inside the range are dropped (back to lazy);
        partially-covered resident pages are filled in place.  Absent
        pages already read as fill and stay absent.
        """
        for p, lo, hi, _off in self._range_pages(start, n):
            if lo == 0 and hi == self.page_words:
                self.pages.pop(p, None)
                self._shared.discard(p)
            elif p in self.pages:
                self._writable(p)[lo:hi] = self.fill

    # -- snapshots (copy-on-write) ---------------------------------------

    def snapshot_pages(self, length: int) -> "PagedSnapshot":
        """COW snapshot of the first ``length`` words.

        Pages overlapping the range are handed out by reference and
        marked shared: the next write to any of them copies first, so
        the snapshot is immutable from the store's point of view.
        """
        if length == 0:
            return PagedSnapshot({}, 0, self.page_words, self.dtype, self.fill)
        last = (length - 1) >> self.page_bits
        snap: Dict[int, np.ndarray] = {}
        for p, page in self.pages.items():
            if p <= last:
                snap[p] = page
                self._shared.add(p)
        return PagedSnapshot(snap, length, self.page_words, self.dtype,
                             self.fill)

    def restore_range(self, snap: "PagedSnapshot") -> None:
        """Overwrite ``[0, len(snap))`` with a snapshot's content.

        Exactly the words the snapshot covers are written — content
        beyond its length (including the tail of a boundary page) is
        left untouched, matching the dense ``words[:brk] = snapshot``
        semantics.  Full pages are adopted by reference (re-shared);
        resident pages absent from the snapshot are dropped back to
        lazy fill.
        """
        if snap.page_words != self.page_words or snap.dtype != self.dtype:
            raise GPUError(
                f"snapshot page geometry ({snap.page_words} words, "
                f"{snap.dtype}) does not match store "
                f"({self.page_words} words, {self.dtype})"
            )
        length = snap.length
        if length == 0:
            return
        # the last page the snapshot *fully* covers
        full_last = (length >> self.page_bits) - 1
        boundary = length >> self.page_bits if length & self.page_mask else None
        for p in [q for q in self.pages if q <= full_last]:
            if p not in snap.pages:
                self.pages.pop(p)
                self._shared.discard(p)
        for p, page in snap.pages.items():
            if p <= full_last:
                self.pages[p] = page
                self._shared.add(p)
        if boundary is not None:
            lo_words = length & self.page_mask
            src = snap.pages.get(boundary)
            if src is not None:
                self._writable(boundary)[:lo_words] = src[:lo_words]
            elif boundary in self.pages:
                self._writable(boundary)[:lo_words] = self.fill


class PagedSnapshot:
    """An immutable COW snapshot of the first ``length`` words.

    Quacks enough like the dense snapshot ndarray for the layers above:
    ``len()`` is the word count, :meth:`gather` is fancy indexing,
    :meth:`materialize` produces the equivalent contiguous array.
    """

    __slots__ = ("pages", "length", "page_words", "page_bits", "page_mask",
                 "dtype", "fill")

    def __init__(self, pages: Dict[int, np.ndarray], length: int,
                 page_words: int, dtype, fill):
        self.pages = pages
        self.length = length
        self.page_words = page_words
        self.page_bits = page_words.bit_length() - 1
        self.page_mask = page_words - 1
        self.dtype = np.dtype(dtype)
        self.fill = fill

    def __len__(self) -> int:
        return self.length

    @property
    def resident_pages(self) -> int:
        return len(self.pages)

    @property
    def resident_bytes(self) -> int:
        return len(self.pages) * self.page_words * self.dtype.itemsize

    def gather(self, addrs: np.ndarray) -> np.ndarray:
        """Snapshot values at ``addrs`` (no bounds check)."""
        addrs = np.asarray(addrs, np.int64)
        out = np.full(addrs.shape, self.fill, self.dtype)
        if addrs.size == 0:
            return out
        pg = addrs >> self.page_bits
        for p in np.unique(pg):
            page = self.pages.get(int(p))
            if page is not None:
                sel = pg == p
                out[sel] = page[addrs[sel] & self.page_mask]
        return out

    def materialize(self) -> np.ndarray:
        """The snapshot as one contiguous array (small footprints only)."""
        out = np.full(self.length, self.fill, self.dtype)
        for p, page in self.pages.items():
            start = p << self.page_bits
            if start >= self.length:
                continue
            n = min(self.page_words, self.length - start)
            out[start:start + n] = page[:n]
        return out

    def diff_count(self, store: PagedWords, length: Optional[int] = None) -> int:
        """Words in ``[0, length)`` where ``store`` deviates from this.

        Page-granular: a page that is still the *same object* in both
        (COW pages never mutated since the snapshot) is skipped without
        comparing a single word; pages absent from both are trivially
        equal.  Never materializes the full address space.
        """
        n = self.length if length is None else min(length, self.length)
        if n <= 0:
            return 0
        count = 0
        last = (n - 1) >> self.page_bits
        indices = set(self.pages) | set(store.pages)
        zeros: Optional[np.ndarray] = None
        for p in indices:
            if p > last:
                continue
            mine = self.pages.get(p)
            theirs = store.pages.get(p)
            if mine is theirs:
                continue  # unchanged since snapshot (COW identity)
            if mine is None or theirs is None:
                if zeros is None:
                    zeros = np.full(self.page_words, self.fill, self.dtype)
                mine = zeros if mine is None else mine
                theirs = zeros if theirs is None else theirs
            start = p << self.page_bits
            span = min(self.page_words, n - start)
            count += int(np.count_nonzero(mine[:span] != theirs[:span]))
        return count
