"""Cycle cost model for KIR execution on the simulated GPU.

Relative costs follow GT200-era throughput folklore: simple FP/int ALU
ops are cheap, transcendental/SFU ops and division are ~an order of
magnitude dearer, and global-memory operations dominate everything —
the "common characteristic in GPU architecture that memory operations
are more expensive than computation operations" Hauberk's checksum
design leverages (Section V.A).

Absolute numbers are *not* calibrated to silicon; every result that
uses them (Figures 4 and 13) is a ratio of two executions under the
same model, so only the ordering of cost classes matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import KIRError
from repro.kir.astnodes import (
    BinOp,
    Call,
    Const,
    Expr,
    Load,
    SharedLoad,
    SpecialReg,
    UnOp,
    Var,
    walk_exprs,
)
from repro.kir.types import DType

#: Intrinsic -> cycles.
_INTRINSIC_COST = {
    "sqrt": 8.0,
    "rsqrt": 8.0,
    "exp": 16.0,
    "log": 16.0,
    "sin": 16.0,
    "cos": 16.0,
    "acos": 20.0,
    "atan2": 24.0,
    "floor": 2.0,
    "fabs": 1.0,
    "pow": 24.0,
    "fmin": 1.0,
    "fmax": 1.0,
    "abs": 1.0,
    "min": 1.0,
    "max": 1.0,
    "int": 1.0,
    "float": 1.0,
    "__float_as_int": 1.0,
}


@dataclass
class CostModel:
    """Per-operation cycle costs plus derived helpers."""

    int_alu: float = 1.0
    int_mul: float = 2.0
    int_div: float = 16.0
    fp_alu: float = 1.0
    fp_div: float = 8.0
    compare: float = 1.0
    logical: float = 1.0
    bitwise: float = 1.0
    mem_global: float = 40.0
    mem_shared: float = 2.0
    atomic_shared: float = 6.0
    atomic_global: float = 60.0
    branch_cost: float = 1.0
    write_cost: float = 1.0
    sync_cost: float = 4.0
    #: Extra cycles per spilled register per statement-equivalent;
    #: applied as a multiplicative penalty, see :meth:`spill_factor`.
    spill_coefficient: float = 0.25
    #: Cycle cost of instrumentation-library calls by suffix.
    libcall_costs: Dict[str, float] = field(
        default_factory=lambda: {
            "__hauberk_check_range": 24.0,
            "__hauberk_check_equal": 4.0,
            "__hauberk_checksum_validate": 4.0,
            "__hauberk_profile_range": 0.0,
            "__hauberk_profile_count": 0.0,
            "__hauberk_fi": 0.0,
        }
    )

    # -- expression costing ---------------------------------------------
    def expr_cost(self, e: Expr) -> float:
        """Total cycles to evaluate an expression tree once."""
        total = 0.0
        for node in walk_exprs(e):
            total += self._node_cost(node)
        return total

    def _node_cost(self, node: Expr) -> float:
        if isinstance(node, (Const, Var, SpecialReg)):
            return 0.0  # register/immediate operands are free
        if isinstance(node, BinOp):
            is_float = node.dtype is DType.FLOAT32
            op = node.op
            if op in ("+", "-"):
                return self.fp_alu if is_float else self.int_alu
            if op == "*":
                return self.fp_alu if is_float else self.int_mul
            if op == "/":
                return self.fp_div if is_float else self.int_div
            if op == "%":
                return self.int_div
            if op in BinOp.COMPARE:
                return self.compare
            if op in BinOp.LOGICAL:
                return self.logical
            if op in BinOp.BITWISE:
                return self.bitwise
            raise KIRError(f"no cost for operator {op!r}")
        if isinstance(node, UnOp):
            return self.int_alu if node.dtype is DType.INT32 else self.fp_alu
        if isinstance(node, Call):
            try:
                return _INTRINSIC_COST[node.func]
            except KeyError:
                raise KIRError(f"no cost for intrinsic {node.func!r}") from None
        if isinstance(node, Load):
            return self.mem_global
        if isinstance(node, SharedLoad):
            return self.mem_shared
        raise KIRError(f"no cost for node {type(node).__name__}")

    def libcall_cost(self, func: str) -> float:
        return self.libcall_costs.get(func, 0.0)

    # -- register spilling ------------------------------------------------
    def spill_factor(self, pressure: int, budget: int) -> float:
        """Multiplicative slowdown when live values exceed registers.

        Spilled values turn register accesses into local-memory traffic;
        the penalty grows with the overflow fraction.  This is what makes
        naive duplication (which doubles live ranges) expensive and
        Hauberk-NL (2-statement duplicate lifetimes) cheap, and produces
        the paper's note that HAUBERK-NL overhead on MRI-Q/MRI-FHD
        exceeds the non-loop time share (Section IX.A).
        """
        if budget <= 0:
            raise KIRError(f"invalid register budget {budget}")
        overflow = max(0, pressure - budget)
        return 1.0 + self.spill_coefficient * overflow / budget
