"""Simulated GPU substrate.

A deterministic architectural model of the paper's testbed (NVIDIA
Tesla S1070: 4 GT200 GPUs per node).  It exposes exactly the state the
paper's SWIFI tool manipulates — program variables in register frames,
flat unprotected device memory, kernel launches with crash/hang
detection — plus a cycle cost model so performance overheads (Figure
13) are reproducible ratios instead of wall-clock noise.
"""

from repro.gpu.device import Device, DeviceSpec, GT200_SPEC
from repro.gpu.memory import GlobalMemory, Allocation, MemorySpace
from repro.gpu.costmodel import CostModel
from repro.gpu.runtime import GPURuntime, LaunchResult
from repro.gpu.faults import FaultSite, hardware_components_of, inject_word_faults
from repro.gpu.cluster import GPUNode

__all__ = [
    "Device",
    "DeviceSpec",
    "GT200_SPEC",
    "GlobalMemory",
    "Allocation",
    "MemorySpace",
    "CostModel",
    "GPURuntime",
    "LaunchResult",
    "FaultSite",
    "hardware_components_of",
    "inject_word_faults",
    "GPUNode",
]
