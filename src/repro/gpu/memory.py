"""Flat device memory with *no* fine-grained protection.

The paper attributes the GPU/CPU SDC gap partly to "the lack of
fine-grained error protection in GPUs: unlike modern CPUs, GPUs do not
have a page-granularity memory access permission checking" (Section
II.A cause (a)).  This model reproduces that: allocations are packed
into one flat word-addressed space, so a corrupted pointer that stays
inside the mapped range silently reads/writes *another buffer's* data
(an SDC path), and only addresses outside the mapped range crash the
kernel.  Contrast with :mod:`repro.cpusim.machine`, which checks pages.

Memory keeps raw 32-bit words (bit patterns); typed accessors
reinterpret on the way in/out, which is also where float64 interpreter
values round through binary32 — matching data stored in real GDDR.
Keeping words as bit patterns (never Python floats) means NaN
payloads, denormals, and -0.0 survive storage, snapshot, restore, and
fault injection bit-exactly, and whole-state operations
(``snapshot``/``restore``/``memcpy``/golden diffs) are vectorized
NumPy ops instead of per-word Python loops.

Two backings implement the same semantics:

* :class:`GlobalMemory` — one contiguous ``np.uint32`` array with
  zero-copy ``float32``/``int32`` dtype views.  The default for small
  footprints, and the fastest for them.
* :class:`PagedGlobalMemory` — a sparse
  :class:`~repro.gpu.paging.PagedWords` store for GB-scale address
  spaces: pages materialize on first write, snapshots are
  copy-on-write page sets, golden diffs are page-granular.  Selected
  by :meth:`GlobalMemory.create` above a density threshold, by
  ``DeviceSpec(paged=True)``, or by ``REPRO_PAGED_MEMORY=1``.

All device-memory views here implement the
:class:`~repro.memspace.MemorySpace` protocol, so the footprint
recorder and the replay guard compose as layers over
:class:`GlobalMemory` rather than ad-hoc look-alikes.
"""

from __future__ import annotations

import hashlib
import os
import struct
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

import numpy as np

from repro.bits import bits_to_float, bits_to_int, float_to_bits
from repro.errors import DeviceMemoryError, GPUError
from repro.gpu.paging import DEFAULT_PAGE_WORDS, PagedSnapshot, PagedWords
from repro.kir.types import DType
from repro.memspace import MemorySpace, WordReinterpret  # noqa: F401 (re-export)

#: Either snapshot form: the dense ndarray or the COW page set.
Snapshot = Union[np.ndarray, PagedSnapshot]

#: ``GlobalMemory.create`` switches to the paged backing at or above
#: this capacity (2^22 words = 16 MB): big enough that the dense
#: zero-fill and whole-array snapshots start to hurt, small enough
#: that every GB-scale spec gets sparse backing automatically.
PAGED_THRESHOLD_WORDS = 1 << 22

#: Canonical chunk size (words) for content digests.  Fixed regardless
#: of backing or page size so dense and paged memories holding the
#: same content produce the same digest.
_CANON_CHUNK = 1 << 16

#: Largest finite binary32 magnitude: float64 values inside this bound
#: cast to float32 without overflow, so the fast store path can write
#: through the dtype view; anything else (±huge, NaN) takes the exact
#: struct-based slow path.
_F32_MAX = 3.4028234663852886e38


@dataclass
class Allocation:
    """One device buffer: a contiguous range of the flat word space."""

    name: str
    base: int
    nwords: int
    dtype: DType

    @property
    def end(self) -> int:
        return self.base + self.nwords

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class GlobalMemory(WordReinterpret):
    """Word-addressed flat device memory with a bump allocator.

    The backing store is ``words`` (``np.uint32``); ``f32`` and ``i32``
    are zero-copy reinterpreting views of the same buffer.  The four
    :class:`~repro.memspace.MemorySpace` accessors override the
    :class:`~repro.memspace.WordReinterpret` defaults with fast paths
    reading/writing through those views (bit-identical semantics — the
    word primitives remain the reference implementation).
    """

    #: Class flag: layers that need page-awareness (hazard maps, golden
    #: diffs) branch on it instead of isinstance checks.
    is_paged = False

    def __init__(self, capacity_words: int = 1 << 20):
        if capacity_words <= 0:
            raise GPUError(f"invalid memory capacity {capacity_words}")
        self.capacity = capacity_words
        self._init_backing(capacity_words)
        self.allocations: Dict[str, Allocation] = {}
        #: Allocation records ordered by base address (bump allocation
        #: appends in address order), for bisect lookups.
        self._ordered: List[Allocation] = []
        self._bases: List[int] = []
        self._brk = 0
        #: Highest mapped address + 1; accesses past this crash.
        self.mapped_end = 0

    def _init_backing(self, capacity_words: int) -> None:
        #: Raw 32-bit word patterns — the single backing store.
        self.words: np.ndarray = np.zeros(capacity_words, dtype=np.uint32)
        #: Zero-copy binary32 view of :attr:`words`.
        self.f32: np.ndarray = self.words.view(np.float32)
        #: Zero-copy two's-complement view of :attr:`words`.
        self.i32: np.ndarray = self.words.view(np.int32)

    @classmethod
    def create(
        cls,
        capacity_words: int = 1 << 20,
        paged: Optional[bool] = None,
        page_words: Optional[int] = None,
    ) -> "GlobalMemory":
        """Build the right backing for a capacity.

        ``paged=None`` auto-selects: the ``REPRO_PAGED_MEMORY``
        environment variable (any value but ``""``/``"0"``) forces the
        sparse store, otherwise capacities at or above
        :data:`PAGED_THRESHOLD_WORDS` go paged and everything smaller
        stays on the dense array (the PR-5 fast path).
        """
        if paged is None:
            env = os.environ.get("REPRO_PAGED_MEMORY", "")
            if env not in ("", "0"):
                paged = True
            else:
                paged = capacity_words >= PAGED_THRESHOLD_WORDS
        if paged:
            return PagedGlobalMemory(
                capacity_words, page_words=page_words or DEFAULT_PAGE_WORDS
            )
        return GlobalMemory(capacity_words)

    # -- allocation ----------------------------------------------------
    def alloc(self, name: str, nwords: int, dtype: DType = DType.FLOAT32) -> Allocation:
        """Allocate a named buffer; returns its allocation record."""
        if name in self.allocations:
            raise GPUError(f"buffer {name!r} already allocated")
        if nwords <= 0:
            raise GPUError(f"invalid allocation size {nwords} for {name!r}")
        if self._brk + nwords > self.capacity:
            raise GPUError(
                f"device out of memory: need {nwords} words, "
                f"{self.capacity - self._brk} free"
            )
        allocation = Allocation(name=name, base=self._brk, nwords=nwords, dtype=dtype)
        self.allocations[name] = allocation
        self._ordered.append(allocation)
        self._bases.append(allocation.base)
        self._brk += nwords
        self.mapped_end = self._brk
        return allocation

    def reset(self) -> None:
        """Free everything (between program runs)."""
        self._zero_allocated()
        self.allocations.clear()
        self._ordered.clear()
        self._bases.clear()
        self._brk = 0
        self.mapped_end = 0

    def allocation_of(self, addr: int) -> Optional[Allocation]:
        """The allocation containing ``addr``, if any (diagnostics).

        Bisects the base-sorted allocation list: this sits on the
        pointer-fault classification path (one lookup per corrupted
        pointer), where the old linear scan was O(allocations) per
        trial.
        """
        i = bisect_right(self._bases, addr) - 1
        if i >= 0:
            candidate = self._ordered[i]
            if candidate.contains(addr):
                return candidate
        return None

    # -- raw word-range primitives (trusted internal bulk access) -------
    #
    # The differential engine, replay guards, and fault injectors move
    # raw bit patterns in and out by address array or contiguous range.
    # These four primitives are the only seam they need: the dense
    # backing implements them as single ndarray ops, the paged backing
    # as page-resolving equivalents — callers never touch ``.words``.

    def _zero_allocated(self) -> None:
        self.words[: self._brk] = 0

    def gather_words(self, addrs: np.ndarray) -> np.ndarray:
        """Raw bits at ``addrs`` as a fresh ``uint32`` array (no checks)."""
        return self.words[addrs]

    def scatter_words(self, addrs: np.ndarray, bits: np.ndarray) -> None:
        """Write raw bits at ``addrs``; duplicates resolve last-wins."""
        self.words[addrs] = bits

    def read_words(self, start: int, n: int) -> np.ndarray:
        """A fresh contiguous ``uint32`` array of ``n`` words."""
        return self.words[start:start + n].copy()

    def write_words(self, start: int, bits: np.ndarray) -> None:
        """Write a contiguous ``uint32`` array at ``start``."""
        self.words[start:start + bits.size] = bits

    # -- raw word access (bounds policy of the whole device space) ------
    #
    # Access is checked against the *device address space* (capacity),
    # not against allocations: GT200-era GPUs have no per-allocation
    # MMU faulting, so a corrupted pointer that stays on the device
    # reads or clobbers unrelated data silently (the SDC path), and
    # only addresses outside the device crash the kernel.  This is the
    # paper's "lack of fine-grained error protection" made concrete.

    def load_word(self, addr: int) -> int:
        if 0 <= addr < self.capacity:
            return self.words.item(addr)
        raise DeviceMemoryError(f"load outside device memory: {addr}")

    def store_word(self, addr: int, bits: int) -> None:
        if 0 <= addr < self.capacity:
            self.words[addr] = bits & 0xFFFFFFFF
            return
        raise DeviceMemoryError(f"store outside device memory: {addr}")

    # -- typed scalar access (kernel loads/stores, the hot path) ---------

    def load_f32(self, addr: int) -> float:
        if 0 <= addr < self.capacity:
            value = self.f32.item(addr)
            if value != value:
                # NaN: the view's float32→float64 cast quietens a
                # signaling pattern; re-widen bitwise so the payload
                # (quiet bit included) survives a load/store cycle
                return bits_to_float(self.words.item(addr))
            return value
        raise DeviceMemoryError(f"load outside device memory: {addr}")

    def load_i32(self, addr: int) -> int:
        if 0 <= addr < self.capacity:
            return self.i32.item(addr)
        raise DeviceMemoryError(f"load outside device memory: {addr}")

    def store_f32(self, addr: int, value: float) -> None:
        if 0 <= addr < self.capacity:
            if -_F32_MAX <= value <= _F32_MAX:
                self.f32[addr] = value
            else:
                # NaN / out-of-binary32-range: the struct path preserves
                # the exact legacy semantics (saturate to ±inf, quiet
                # NaN payload propagation) without a cast warning
                self.words[addr] = float_to_bits(value)
            return
        raise DeviceMemoryError(f"store outside device memory: {addr}")

    def store_i32(self, addr: int, value: int) -> None:
        if 0 <= addr < self.capacity:
            self.words[addr] = value & 0xFFFFFFFF
            return
        raise DeviceMemoryError(f"store outside device memory: {addr}")

    # -- bulk typed access (vectorized engine gather/scatter) -----------
    #
    # Same bounds policy and error text as the scalar accessors: the
    # whole device space is addressable, the first out-of-range address
    # in array order (= lowest lane, since the engine compresses masks
    # in gtid order) names the crash.  Bit-for-bit equivalent to a
    # Python loop over the scalar accessors, including NaN payload
    # preservation on both directions of the f32 reinterpretation.

    def _check_bulk(self, addrs: np.ndarray, verb: str) -> None:
        bad = (addrs < 0) | (addrs >= self.capacity)
        if bad.any():
            addr = int(addrs[int(np.argmax(bad))])
            raise DeviceMemoryError(f"{verb} outside device memory: {addr}")

    def gather_f32(self, addrs: np.ndarray) -> np.ndarray:
        """Vector ``load_f32``: float64 values for an int address array."""
        self._check_bulk(addrs, "load")
        values = self.f32[addrs].astype(np.float64)
        nan = values != values
        if nan.any():
            # re-widen NaN lanes bitwise (cast quietens sNaN payloads)
            idx = np.flatnonzero(nan)
            values[idx] = [bits_to_float(int(b)) for b in self.words[addrs[idx]]]
        return values

    def gather_i32(self, addrs: np.ndarray) -> np.ndarray:
        """Vector ``load_i32``: int64 values for an int address array."""
        self._check_bulk(addrs, "load")
        return self.i32[addrs].astype(np.int64)

    def scatter_f32(self, addrs: np.ndarray, values: np.ndarray) -> None:
        """Vector ``store_f32``; duplicate addresses resolve last-wins."""
        self._check_bulk(addrs, "store")
        finite = (values >= -_F32_MAX) & (values <= _F32_MAX)
        if finite.all():
            self.f32[addrs] = values
            return
        with np.errstate(over="ignore", invalid="ignore"):
            bits = values.astype(np.float32).view(np.uint32)
        special = np.flatnonzero(~finite)
        # NaN / out-of-binary32-range lanes go through the same
        # payload-preserving slow path as the scalar store
        bits[special] = [float_to_bits(float(v)) for v in values[special]]
        self.words[addrs] = bits

    def scatter_i32(self, addrs: np.ndarray, values: np.ndarray) -> None:
        """Vector ``store_i32``; duplicate addresses resolve last-wins."""
        self._check_bulk(addrs, "store")
        self.words[addrs] = (values & 0xFFFFFFFF).astype(np.uint32)

    # -- bulk transfer (cudaMemcpy equivalents) --------------------------
    def memcpy_htod(self, dst: Allocation, array: np.ndarray) -> None:
        """Copy a host NumPy array into a device buffer (vectorized)."""
        if self.allocations.get(dst.name) is not dst:
            raise GPUError(
                f"htod into stale allocation {dst.name!r}: "
                "not an allocation of this device memory"
            )
        flat = np.ascontiguousarray(array).reshape(-1)
        if flat.size > dst.nwords:
            raise GPUError(
                f"htod overflow: {flat.size} elements into {dst.nwords} words"
            )
        if dst.dtype is DType.FLOAT32 or dst.dtype is DType.PTR_FLOAT32:
            bits = flat.astype(np.float32).view(np.uint32)
        else:
            bits = flat.astype(np.int32).view(np.uint32)
        self.write_words(dst.base, bits)

    def memcpy_dtoh(self, src: Allocation, count: Optional[int] = None) -> np.ndarray:
        """Copy a device buffer back to a host NumPy array."""
        n = src.nwords if count is None else count
        if n > src.nwords:
            raise GPUError(f"dtoh overflow: {n} words from {src.nwords}-word buffer")
        bits = self.read_words(src.base, n)
        if src.dtype is DType.FLOAT32 or src.dtype is DType.PTR_FLOAT32:
            return bits.view(np.float32)
        return bits.view(np.int32)

    # -- fault injection (memory/bus faults) -----------------------------
    def inject_word_fault(self, addr: int, mask: int) -> None:
        """XOR an error mask into one memory word (Section VII).

        Operates on the raw bit pattern, so an XOR into a NaN-holding
        word changes exactly the masked bits of the payload (see
        :func:`repro.gpu.faults.inject_word_faults` for the bulk form).
        """
        if not 0 <= addr < self.mapped_end:
            raise DeviceMemoryError(f"fault injection outside mapped memory: {addr}")
        self.store_word(addr, self.load_word(addr) ^ (mask & 0xFFFFFFFF))

    @property
    def used_words(self) -> int:
        return self._brk

    # -- whole-state snapshots (differential trials, checkpoints) --------
    def snapshot(self) -> Snapshot:
        """Raw bits of every allocated word (golden-state checkpoint).

        One vectorized ``uint32`` copy on the dense backing, a COW page
        set on the paged one; either way the result is independent of
        later stores and feeds :meth:`restore` and the differential
        engine's golden-diff compares.
        """
        return self.words[: self._brk].copy()

    def _check_restore(self, words: Snapshot) -> None:
        if len(words) != self._brk:
            raise GPUError(
                f"cannot restore {type(self).__name__}: "
                f"{type(words).__name__} snapshot of {len(words)} words "
                f"does not match {self._brk} allocated words"
            )

    def restore(self, words: Snapshot) -> None:
        """Overwrite allocated words with a prior :meth:`snapshot`.

        The allocation table must already match the snapshot's layout
        (callers re-run the same deterministic ``setup_memory`` first).
        Either snapshot form restores into either backing; the error on
        a length mismatch names the concrete memory class and both
        lengths so dense-vs-paged mix-ups diagnose themselves.
        """
        self._check_restore(words)
        if isinstance(words, PagedSnapshot):
            # cross-backing restore: dense memories are small, so
            # materializing the page set is cheap
            words = words.materialize()
        self.words[: self._brk] = words

    def golden_diff(self, snap: Snapshot) -> int:
        """Count of allocated words deviating from a snapshot."""
        if isinstance(snap, PagedSnapshot):
            snap = snap.materialize()
        return int(np.count_nonzero(self.words[: len(snap)] != snap))

    # -- canonical content digest ---------------------------------------

    def _content_spans(self) -> Iterator[Tuple[int, int]]:
        """``(start, n)`` chunks of allocated space that may be nonzero."""
        for start in range(0, self._brk, _CANON_CHUNK):
            yield start, min(_CANON_CHUNK, self._brk - start)

    def digest(self) -> str:
        """SHA-256 over the allocated content, backing-independent.

        Hashes the word count plus each fixed-size chunk that holds any
        nonzero word (prefixed by its start address), so a dense and a
        paged memory holding the same bits produce the same digest —
        and the paged side only visits chunks overlapping resident
        pages, never materializing the full address space.  This is
        what campaign journals and parity checks fingerprint device
        state with.
        """
        h = hashlib.sha256()
        h.update(struct.pack("<Q", self._brk))
        for start, n in self._content_spans():
            chunk = self.read_words(start, n)
            if chunk.any():
                h.update(struct.pack("<Q", start))
                h.update(chunk.tobytes())
        return h.hexdigest()


class PagedGlobalMemory(GlobalMemory):
    """Sparse paged device memory: GB-scale capacity, resident-on-touch.

    Same allocator, bounds policy, and bit semantics as the dense
    :class:`GlobalMemory` — the scalar accessors use the
    :mod:`repro.bits` struct codecs (the
    :class:`~repro.memspace.WordReinterpret` reference semantics the
    dense fast paths are verified against), and the bulk accessors
    mirror the dense NaN-payload/saturation handling lane for lane —
    but backed by a :class:`~repro.gpu.paging.PagedWords` store.
    Untouched space costs nothing; snapshots are COW page sets; golden
    diffs skip pages that haven't been written since the snapshot.

    There is deliberately no ``.words`` array: any layer still
    assuming one flat ndarray fails loudly with ``AttributeError``
    instead of silently materializing gigabytes.
    """

    is_paged = True

    def __init__(self, capacity_words: int = 1 << 20,
                 page_words: int = DEFAULT_PAGE_WORDS):
        self.page_words = page_words
        super().__init__(capacity_words)

    def _init_backing(self, capacity_words: int) -> None:
        self._store = PagedWords(capacity_words, self.page_words)

    @property
    def resident_pages(self) -> int:
        return self._store.resident_pages

    @property
    def resident_bytes(self) -> int:
        return self._store.resident_bytes

    # -- raw word-range primitives --------------------------------------

    def _zero_allocated(self) -> None:
        # page-dropping reset: full pages inside the allocated range go
        # back to lazy-zero, the boundary page is zeroed in place, and
        # space beyond ``mapped_end`` is left as-is — exactly the dense
        # ``words[:brk] = 0``
        self._store.zero_range(0, self._brk)

    def gather_words(self, addrs: np.ndarray) -> np.ndarray:
        return self._store.gather(addrs)

    def scatter_words(self, addrs: np.ndarray, bits: np.ndarray) -> None:
        self._store.scatter(addrs, bits)

    def read_words(self, start: int, n: int) -> np.ndarray:
        return self._store.read_range(start, n)

    def write_words(self, start: int, bits: np.ndarray) -> None:
        self._store.write_range(start, np.asarray(bits, np.uint32))

    # -- scalar access ---------------------------------------------------

    def load_word(self, addr: int) -> int:
        if 0 <= addr < self.capacity:
            return self._store.item(addr)
        raise DeviceMemoryError(f"load outside device memory: {addr}")

    def store_word(self, addr: int, bits: int) -> None:
        if 0 <= addr < self.capacity:
            self._store.set_item(addr, bits & 0xFFFFFFFF)
            return
        raise DeviceMemoryError(f"store outside device memory: {addr}")

    def load_f32(self, addr: int) -> float:
        if 0 <= addr < self.capacity:
            return bits_to_float(self._store.item(addr))
        raise DeviceMemoryError(f"load outside device memory: {addr}")

    def load_i32(self, addr: int) -> int:
        if 0 <= addr < self.capacity:
            return bits_to_int(self._store.item(addr))
        raise DeviceMemoryError(f"load outside device memory: {addr}")

    def store_f32(self, addr: int, value: float) -> None:
        if 0 <= addr < self.capacity:
            self._store.set_item(addr, float_to_bits(value))
            return
        raise DeviceMemoryError(f"store outside device memory: {addr}")

    def store_i32(self, addr: int, value: int) -> None:
        if 0 <= addr < self.capacity:
            self._store.set_item(addr, value & 0xFFFFFFFF)
            return
        raise DeviceMemoryError(f"store outside device memory: {addr}")

    # -- bulk typed access (page-resolving gather/scatter) ---------------

    def gather_f32(self, addrs: np.ndarray) -> np.ndarray:
        self._check_bulk(addrs, "load")
        bits = self._store.gather(addrs)
        values = bits.view(np.float32).astype(np.float64)
        nan = values != values
        if nan.any():
            # re-widen NaN lanes bitwise (cast quietens sNaN payloads)
            idx = np.flatnonzero(nan)
            values[idx] = [bits_to_float(int(b)) for b in bits[idx]]
        return values

    def gather_i32(self, addrs: np.ndarray) -> np.ndarray:
        self._check_bulk(addrs, "load")
        return self._store.gather(addrs).view(np.int32).astype(np.int64)

    def scatter_f32(self, addrs: np.ndarray, values: np.ndarray) -> None:
        self._check_bulk(addrs, "store")
        with np.errstate(over="ignore", invalid="ignore"):
            bits = values.astype(np.float32).view(np.uint32)
        finite = (values >= -_F32_MAX) & (values <= _F32_MAX)
        if not finite.all():
            special = np.flatnonzero(~finite)
            # NaN / out-of-binary32-range lanes go through the same
            # payload-preserving slow path as the scalar store
            bits[special] = [float_to_bits(float(v)) for v in values[special]]
        self._store.scatter(addrs, bits)

    def scatter_i32(self, addrs: np.ndarray, values: np.ndarray) -> None:
        self._check_bulk(addrs, "store")
        self._store.scatter(addrs, (values & 0xFFFFFFFF).astype(np.uint32))

    # -- whole-state snapshots -------------------------------------------

    def snapshot(self) -> PagedSnapshot:
        """COW page-set snapshot of the allocated space: O(resident)."""
        return self._store.snapshot_pages(self._brk)

    def restore(self, words: Snapshot) -> None:
        self._check_restore(words)
        if isinstance(words, PagedSnapshot):
            self._store.restore_range(words)
        else:
            # dense snapshot into the sparse store: all-zero spans over
            # absent pages are skipped, so this stays O(content)
            self._store.zero_range(0, self._brk)
            self._store.write_range(0, np.asarray(words, np.uint32))

    def golden_diff(self, snap: Snapshot) -> int:
        if isinstance(snap, PagedSnapshot):
            return snap.diff_count(self._store, self._brk)
        snap = np.asarray(snap, np.uint32)
        return int(np.count_nonzero(self.read_words(0, len(snap)) != snap))

    def _content_spans(self) -> Iterator[Tuple[int, int]]:
        # only chunks overlapping a resident page can hold nonzero
        # content; everything else digests as absent (all-zero chunks
        # are skipped on both backings, keeping digests equal)
        chunks: Set[int] = set()
        for p in self._store.pages:
            lo = p << self._store.page_bits
            if lo >= self._brk:
                continue
            hi = min(lo + self.page_words, self._brk)
            chunks.update(range(lo // _CANON_CHUNK,
                                (hi - 1) // _CANON_CHUNK + 1))
        for c in sorted(chunks):
            start = c * _CANON_CHUNK
            yield start, min(_CANON_CHUNK, self._brk - start)


# ---------------------------------------------------------------------------
# footprint recording + guarded replay (differential trial execution)
# ---------------------------------------------------------------------------


@dataclass
class ThreadFootprint:
    """Global-memory accesses of one thread during a golden run.

    ``stores`` keeps program order and raw bit patterns, so undoing a
    thread (reverse replay of ``(addr, old, new)``) and re-applying it
    (forward replay of ``new``) are both exact.  The *net* effect of
    those replays — first-store ``old`` and last-store ``new`` per
    unique address — is materialized once as NumPy scatter arrays, so
    per-trial undo/reapply are single vectorized writes.
    """

    loads: Set[int] = field(default_factory=set)
    stores: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Lazily-built (addrs, first_old_bits, last_new_bits) arrays.
    _net: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def store_addrs(self) -> Set[int]:
        return {addr for addr, _old, _new in self.stores}

    def net_store_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Scatter arrays ``(addrs, old_bits, new_bits)`` — net effect.

        Reverse replay of the program-ordered store list leaves each
        address holding the ``old`` bits of its *first* store; forward
        replay leaves the ``new`` bits of its *last* store.  Collapsing
        to unique addresses keeps the vectorized scatter well-defined
        (NumPy fancy assignment with duplicate indices is unordered).
        """
        if self._net is None:
            first_old: Dict[int, int] = {}
            last_new: Dict[int, int] = {}
            for addr, old, new in self.stores:
                if addr not in first_old:
                    first_old[addr] = old
                last_new[addr] = new
            n = len(first_old)
            self._net = (
                np.fromiter(first_old.keys(), dtype=np.int64, count=n),
                np.fromiter(first_old.values(), dtype=np.uint32, count=n),
                np.fromiter((last_new[a] for a in first_old), dtype=np.uint32,
                            count=n),
            )
        return self._net


class FootprintRecordingMemory(WordReinterpret):
    """Memory layer that logs every typed access into a footprint.

    Compiled closures bind accessors from ``ctx`` on each launch, so
    swapping this layer in for one launch records footprints with zero
    cost on the normal (unwrapped) path — the same enable/disable
    idiom as the obs layer.  Loads delegate typed (the recorded fact
    is the address); stores reinterpret once via the shared
    :class:`~repro.memspace.WordReinterpret` helper and journal the
    raw before/after bit patterns.
    """

    __slots__ = ("mem", "fp")

    def __init__(self, mem: GlobalMemory):
        self.mem = mem
        self.fp = ThreadFootprint()

    def begin_thread(self) -> ThreadFootprint:
        """Start a fresh footprint; returns the one just finished."""
        done = self.fp
        self.fp = ThreadFootprint()
        return done

    def load_f32(self, addr: int) -> float:
        value = self.mem.load_f32(addr)
        self.fp.loads.add(addr)
        return value

    def load_i32(self, addr: int) -> int:
        value = self.mem.load_i32(addr)
        self.fp.loads.add(addr)
        return value

    def store_word(self, addr: int, bits: int) -> None:
        mem = self.mem
        if not 0 <= addr < mem.capacity:
            mem.store_word(addr, bits)  # raises DeviceMemoryError
        old = mem.load_word(addr)
        mem.store_word(addr, bits)
        self.fp.stores.append((addr, old, bits & 0xFFFFFFFF))


class ReplayConflict(Exception):
    """A replayed thread touched another thread's footprint.

    Raised by :class:`ReplayMemoryGuard` when a faulted thread's access
    pattern diverges into memory owned by a different thread (pointer
    faults redirect loads/stores); the differential engine catches it
    and falls back to full execution for that one trial.  Deliberately
    *not* a :class:`~repro.errors.KernelCrash`: it must not be mistaken
    for a program failure.
    """


class ReplayMemoryGuard(WordReinterpret):
    """Memory layer for single-thread replay with conflict detection.

    The simulated grid executes threads sequentially in gtid order, so
    program order totally orders cross-thread memory effects.  Replay of
    thread ``T`` runs against golden-final memory with ``T``'s own
    stores undone; the guard exploits the ordering to admit accesses a
    naive "never touch a foreign footprint" rule would reject:

    * **Loads** — an address stored by an *earlier* thread holds its
      golden value in both worlds (earlier threads are never faulted in
      ``T``'s trial), so only loads of addresses owned by a *later*
      thread conflict (memory holds that thread's future value here,
      but the pre-launch value in the real trial).
    * **Stores** — a store to an address owned by a later thread
      conflicts (the later thread's read-then-write could observe it);
      a store whose golden readers are all at-or-before ``T`` is
      invisible to everyone else; a store read by a *later* thread is
      admitted provisionally and checked at the end of the replay: if
      the final bits equal the golden bits (masked fault), later
      readers observe nothing and the trial is still exact —
      :meth:`deferred_mismatch` reports the verdict.

    ``store_owner`` maps each golden-stored address to its storing
    thread; ``load_readers`` maps each golden-loaded address to its
    *latest* reading thread.  Every first store to an address is
    journaled (addresses are unique by construction), so
    :meth:`rollback` restores the pre-replay memory in one vectorized
    scatter-write.
    """

    __slots__ = (
        "mem", "thread", "store_owner", "load_readers",
        "_undo_addrs", "_undo_bits", "deferred", "_dirty",
    )

    def __init__(
        self,
        mem: GlobalMemory,
        thread: int,
        store_owner: Dict[int, int],
        load_readers: Dict[int, int],
    ):
        self.mem = mem
        self.thread = thread
        self.store_owner = store_owner
        self.load_readers = load_readers
        self._undo_addrs: List[int] = []
        self._undo_bits: List[int] = []
        #: Stored addresses whose golden readers include a later thread.
        self.deferred: Set[int] = set()
        self._dirty: Set[int] = set()

    def _check_load(self, addr: int) -> None:
        owner = self.store_owner.get(addr)
        if owner is not None and owner > self.thread:
            raise ReplayConflict(f"load of address {addr} stored by thread {owner}")

    def load_f32(self, addr: int) -> float:
        self._check_load(addr)
        return self.mem.load_f32(addr)

    def load_i32(self, addr: int) -> int:
        self._check_load(addr)
        return self.mem.load_i32(addr)

    def _check_store(self, addr: int) -> None:
        owner = self.store_owner.get(addr)
        if owner is not None and owner > self.thread:
            raise ReplayConflict(f"store to address {addr} stored by thread {owner}")
        reader = self.load_readers.get(addr)
        if reader is not None and reader > self.thread:
            self.deferred.add(addr)

    def store_word(self, addr: int, bits: int) -> None:
        self._check_store(addr)
        mem = self.mem
        if addr not in self._dirty and 0 <= addr < mem.capacity:
            self._dirty.add(addr)
            self._undo_addrs.append(addr)
            self._undo_bits.append(mem.load_word(addr))
        mem.store_word(addr, bits)

    def deferred_mismatch(self, golden_words: Snapshot) -> bool:
        """Whether any later-read stored address ended up non-golden.

        Called once after a replay completes; ``True`` means a later
        thread would have observed a changed value and the trial must
        fall back to full execution.  One vectorized gather + compare
        against either snapshot form (dense ndarray or COW page set).
        """
        if not self.deferred:
            return False
        addrs = np.fromiter(self.deferred, dtype=np.int64, count=len(self.deferred))
        if bool((addrs >= len(golden_words)).any()):
            return True
        if isinstance(golden_words, PagedSnapshot):
            golden_bits = golden_words.gather(addrs)
        else:
            golden_bits = np.asarray(golden_words, dtype=np.uint32)[addrs]
        return not np.array_equal(self.mem.gather_words(addrs), golden_bits)

    def rollback(self) -> None:
        """Reverse every store this guard let through (one scatter)."""
        if self._undo_addrs:
            n = len(self._undo_addrs)
            self.mem.scatter_words(
                np.fromiter(self._undo_addrs, np.int64, count=n),
                np.fromiter(self._undo_bits, np.uint32, count=n),
            )
        self._undo_addrs.clear()
        self._undo_bits.clear()
        self._dirty.clear()
