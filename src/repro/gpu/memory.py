"""Flat device memory with *no* fine-grained protection.

The paper attributes the GPU/CPU SDC gap partly to "the lack of
fine-grained error protection in GPUs: unlike modern CPUs, GPUs do not
have a page-granularity memory access permission checking" (Section
II.A cause (a)).  This model reproduces that: allocations are packed
into one flat word-addressed space, so a corrupted pointer that stays
inside the mapped range silently reads/writes *another buffer's* data
(an SDC path), and only addresses outside the mapped range crash the
kernel.  Contrast with :mod:`repro.cpusim.machine`, which checks pages.

Memory holds raw 32-bit words (bit patterns); typed accessors
reinterpret on the way in/out, which is also where float64 interpreter
values round through binary32 — matching data stored in real GDDR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.bits import bits_to_float, bits_to_int, float_to_bits, int_to_bits
from repro.errors import DeviceMemoryError, GPUError
from repro.kir.types import DType


@dataclass
class Allocation:
    """One device buffer: a contiguous range of the flat word space."""

    name: str
    base: int
    nwords: int
    dtype: DType

    @property
    def end(self) -> int:
        return self.base + self.nwords

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class GlobalMemory:
    """Word-addressed flat device memory with a bump allocator."""

    def __init__(self, capacity_words: int = 1 << 20):
        if capacity_words <= 0:
            raise GPUError(f"invalid memory capacity {capacity_words}")
        self.capacity = capacity_words
        self.words: List[int] = [0] * capacity_words
        self.allocations: Dict[str, Allocation] = {}
        self._brk = 0
        #: Highest mapped address + 1; accesses past this crash.
        self.mapped_end = 0

    # -- allocation ----------------------------------------------------
    def alloc(self, name: str, nwords: int, dtype: DType = DType.FLOAT32) -> Allocation:
        """Allocate a named buffer; returns its allocation record."""
        if name in self.allocations:
            raise GPUError(f"buffer {name!r} already allocated")
        if nwords <= 0:
            raise GPUError(f"invalid allocation size {nwords} for {name!r}")
        if self._brk + nwords > self.capacity:
            raise GPUError(
                f"device out of memory: need {nwords} words, "
                f"{self.capacity - self._brk} free"
            )
        allocation = Allocation(name=name, base=self._brk, nwords=nwords, dtype=dtype)
        self.allocations[name] = allocation
        self._brk += nwords
        self.mapped_end = self._brk
        return allocation

    def reset(self) -> None:
        """Free everything (between program runs)."""
        for i in range(self._brk):
            self.words[i] = 0
        self.allocations.clear()
        self._brk = 0
        self.mapped_end = 0

    def allocation_of(self, addr: int) -> Optional[Allocation]:
        """The allocation containing ``addr``, if any (diagnostics)."""
        for a in self.allocations.values():
            if a.contains(addr):
                return a
        return None

    # -- typed scalar access (kernel loads/stores) ----------------------
    #
    # Access is checked against the *device address space* (capacity),
    # not against allocations: GT200-era GPUs have no per-allocation
    # MMU faulting, so a corrupted pointer that stays on the device
    # reads or clobbers unrelated data silently (the SDC path), and
    # only addresses outside the device crash the kernel.  This is the
    # paper's "lack of fine-grained error protection" made concrete.

    def load_f32(self, addr: int) -> float:
        if 0 <= addr < self.capacity:
            return bits_to_float(self.words[addr])
        raise DeviceMemoryError(f"load outside device memory: {addr}")

    def load_i32(self, addr: int) -> int:
        if 0 <= addr < self.capacity:
            return bits_to_int(self.words[addr])
        raise DeviceMemoryError(f"load outside device memory: {addr}")

    def store_f32(self, addr: int, value: float) -> None:
        if 0 <= addr < self.capacity:
            self.words[addr] = float_to_bits(value)
            return
        raise DeviceMemoryError(f"store outside device memory: {addr}")

    def store_i32(self, addr: int, value: int) -> None:
        if 0 <= addr < self.capacity:
            self.words[addr] = int_to_bits(value)
            return
        raise DeviceMemoryError(f"store outside device memory: {addr}")

    # -- bulk transfer (cudaMemcpy equivalents) --------------------------
    def memcpy_htod(self, dst: Allocation, array: np.ndarray) -> None:
        """Copy a host NumPy array into a device buffer."""
        flat = np.ascontiguousarray(array).reshape(-1)
        if flat.size > dst.nwords:
            raise GPUError(
                f"htod overflow: {flat.size} elements into {dst.nwords} words"
            )
        if dst.dtype is DType.FLOAT32 or dst.dtype is DType.PTR_FLOAT32:
            bits = flat.astype(np.float32).view(np.uint32)
        else:
            bits = flat.astype(np.int32).view(np.uint32)
        self.words[dst.base : dst.base + flat.size] = [int(b) for b in bits]

    def memcpy_dtoh(self, src: Allocation, count: Optional[int] = None) -> np.ndarray:
        """Copy a device buffer back to a host NumPy array."""
        n = src.nwords if count is None else count
        if n > src.nwords:
            raise GPUError(f"dtoh overflow: {n} words from {src.nwords}-word buffer")
        bits = np.array(self.words[src.base : src.base + n], dtype=np.uint32)
        if src.dtype is DType.FLOAT32 or src.dtype is DType.PTR_FLOAT32:
            return bits.view(np.float32).copy()
        return bits.view(np.int32).copy()

    # -- fault injection (memory/bus faults) -----------------------------
    def inject_word_fault(self, addr: int, mask: int) -> None:
        """XOR an error mask into one memory word (Section VII)."""
        if not 0 <= addr < self.mapped_end:
            raise DeviceMemoryError(f"fault injection outside mapped memory: {addr}")
        self.words[addr] ^= mask & 0xFFFFFFFF

    @property
    def used_words(self) -> int:
        return self._brk

    # -- whole-state snapshots (differential trial execution) ------------
    def snapshot(self) -> List[int]:
        """Raw bits of every allocated word (golden-state checkpoint)."""
        return self.words[: self._brk]

    def restore(self, words: List[int]) -> None:
        """Overwrite allocated words with a prior :meth:`snapshot`.

        The allocation table must already match the snapshot's layout
        (callers re-run the same deterministic ``setup_memory`` first).
        """
        if len(words) != self._brk:
            raise GPUError(
                f"snapshot of {len(words)} words does not match "
                f"{self._brk} allocated words"
            )
        self.words[: self._brk] = words


# ---------------------------------------------------------------------------
# footprint recording + guarded replay (differential trial execution)
# ---------------------------------------------------------------------------


@dataclass
class ThreadFootprint:
    """Global-memory accesses of one thread during a golden run.

    ``stores`` keeps program order and raw bit patterns, so undoing a
    thread (reverse replay of ``(addr, old, new)``) and re-applying it
    (forward replay of ``new``) are both exact.
    """

    loads: Set[int] = field(default_factory=set)
    stores: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def store_addrs(self) -> Set[int]:
        return {addr for addr, _old, _new in self.stores}


class FootprintRecordingMemory:
    """Memory view that logs every typed access into a footprint.

    Compiled closures fetch ``ctx.memory`` dynamically on each access,
    so swapping this wrapper in for one launch records footprints with
    zero cost on the normal (unwrapped) path — the same enable/disable
    idiom as the obs layer.
    """

    __slots__ = ("mem", "fp")

    def __init__(self, mem: GlobalMemory):
        self.mem = mem
        self.fp = ThreadFootprint()

    def begin_thread(self) -> ThreadFootprint:
        """Start a fresh footprint; returns the one just finished."""
        done = self.fp
        self.fp = ThreadFootprint()
        return done

    def load_f32(self, addr: int) -> float:
        value = self.mem.load_f32(addr)
        self.fp.loads.add(addr)
        return value

    def load_i32(self, addr: int) -> int:
        value = self.mem.load_i32(addr)
        self.fp.loads.add(addr)
        return value

    def store_f32(self, addr: int, value: float) -> None:
        mem = self.mem
        if not 0 <= addr < mem.capacity:
            mem.store_f32(addr, value)  # raises DeviceMemoryError
        old = mem.words[addr]
        mem.store_f32(addr, value)
        self.fp.stores.append((addr, old, mem.words[addr]))

    def store_i32(self, addr: int, value: int) -> None:
        mem = self.mem
        if not 0 <= addr < mem.capacity:
            mem.store_i32(addr, value)  # raises DeviceMemoryError
        old = mem.words[addr]
        mem.store_i32(addr, value)
        self.fp.stores.append((addr, old, mem.words[addr]))


class ReplayConflict(Exception):
    """A replayed thread touched another thread's footprint.

    Raised by :class:`ReplayMemoryGuard` when a faulted thread's access
    pattern diverges into memory owned by a different thread (pointer
    faults redirect loads/stores); the differential engine catches it
    and falls back to full execution for that one trial.  Deliberately
    *not* a :class:`~repro.errors.KernelCrash`: it must not be mistaken
    for a program failure.
    """


class ReplayMemoryGuard:
    """Memory view for single-thread replay with conflict detection.

    The simulated grid executes threads sequentially in gtid order, so
    program order totally orders cross-thread memory effects.  Replay of
    thread ``T`` runs against golden-final memory with ``T``'s own
    stores undone; the guard exploits the ordering to admit accesses a
    naive "never touch a foreign footprint" rule would reject:

    * **Loads** — an address stored by an *earlier* thread holds its
      golden value in both worlds (earlier threads are never faulted in
      ``T``'s trial), so only loads of addresses owned by a *later*
      thread conflict (memory holds that thread's future value here,
      but the pre-launch value in the real trial).
    * **Stores** — a store to an address owned by a later thread
      conflicts (the later thread's read-then-write could observe it);
      a store whose golden readers are all at-or-before ``T`` is
      invisible to everyone else; a store read by a *later* thread is
      admitted provisionally and checked at the end of the replay: if
      the final bits equal the golden bits (masked fault), later
      readers observe nothing and the trial is still exact —
      :meth:`deferred_mismatch` reports the verdict.

    ``store_owner`` maps each golden-stored address to its storing
    thread; ``load_readers`` maps each golden-loaded address to its
    *latest* reading thread.  Every store is journaled so
    :meth:`rollback` restores the pre-replay memory exactly.
    """

    __slots__ = (
        "mem", "thread", "store_owner", "load_readers", "undo", "deferred",
        "_dirty",
    )

    def __init__(
        self,
        mem: GlobalMemory,
        thread: int,
        store_owner: Dict[int, int],
        load_readers: Dict[int, int],
    ):
        self.mem = mem
        self.thread = thread
        self.store_owner = store_owner
        self.load_readers = load_readers
        self.undo: List[Tuple[int, int]] = []
        #: Stored addresses whose golden readers include a later thread.
        self.deferred: Set[int] = set()
        self._dirty: Set[int] = set()

    def load_f32(self, addr: int) -> float:
        owner = self.store_owner.get(addr)
        if owner is not None and owner > self.thread:
            raise ReplayConflict(f"load of address {addr} stored by thread {owner}")
        return self.mem.load_f32(addr)

    def load_i32(self, addr: int) -> int:
        owner = self.store_owner.get(addr)
        if owner is not None and owner > self.thread:
            raise ReplayConflict(f"load of address {addr} stored by thread {owner}")
        return self.mem.load_i32(addr)

    def _check_store(self, addr: int) -> None:
        owner = self.store_owner.get(addr)
        if owner is not None and owner > self.thread:
            raise ReplayConflict(f"store to address {addr} stored by thread {owner}")
        reader = self.load_readers.get(addr)
        if reader is not None and reader > self.thread:
            self.deferred.add(addr)

    def store_f32(self, addr: int, value: float) -> None:
        self._check_store(addr)
        mem = self.mem
        if addr not in self._dirty and 0 <= addr < mem.capacity:
            self._dirty.add(addr)
            self.undo.append((addr, mem.words[addr]))
        mem.store_f32(addr, value)

    def store_i32(self, addr: int, value: int) -> None:
        self._check_store(addr)
        mem = self.mem
        if addr not in self._dirty and 0 <= addr < mem.capacity:
            self._dirty.add(addr)
            self.undo.append((addr, mem.words[addr]))
        mem.store_i32(addr, value)

    def deferred_mismatch(self, golden_words: List[int]) -> bool:
        """Whether any later-read stored address ended up non-golden.

        Called once after a replay completes; ``True`` means a later
        thread would have observed a changed value and the trial must
        fall back to full execution.
        """
        words = self.mem.words
        limit = len(golden_words)
        for addr in self.deferred:
            if addr >= limit or words[addr] != golden_words[addr]:
                return True
        return False

    def rollback(self) -> None:
        """Reverse every store this guard let through."""
        words = self.mem.words
        for addr, old in reversed(self.undo):
            words[addr] = old
        self.undo.clear()
        self._dirty.clear()
