"""Flat device memory with *no* fine-grained protection.

The paper attributes the GPU/CPU SDC gap partly to "the lack of
fine-grained error protection in GPUs: unlike modern CPUs, GPUs do not
have a page-granularity memory access permission checking" (Section
II.A cause (a)).  This model reproduces that: allocations are packed
into one flat word-addressed space, so a corrupted pointer that stays
inside the mapped range silently reads/writes *another buffer's* data
(an SDC path), and only addresses outside the mapped range crash the
kernel.  Contrast with :mod:`repro.cpusim.machine`, which checks pages.

Memory is one contiguous ``np.uint32`` array of raw 32-bit words (bit
patterns) with zero-copy ``float32``/``int32`` dtype views; typed
accessors reinterpret on the way in/out, which is also where float64
interpreter values round through binary32 — matching data stored in
real GDDR.  Keeping words as bit patterns (never Python floats) means
NaN payloads, denormals, and -0.0 survive storage, snapshot, restore,
and fault injection bit-exactly, and whole-state operations
(``snapshot``/``restore``/``memcpy``/golden diffs) are single
vectorized NumPy ops instead of per-word Python loops.

All device-memory views here implement the
:class:`~repro.memspace.MemorySpace` protocol, so the footprint
recorder and the replay guard compose as layers over
:class:`GlobalMemory` rather than ad-hoc look-alikes.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.bits import bits_to_float, float_to_bits
from repro.errors import DeviceMemoryError, GPUError
from repro.kir.types import DType
from repro.memspace import MemorySpace, WordReinterpret  # noqa: F401 (re-export)

#: Largest finite binary32 magnitude: float64 values inside this bound
#: cast to float32 without overflow, so the fast store path can write
#: through the dtype view; anything else (±huge, NaN) takes the exact
#: struct-based slow path.
_F32_MAX = 3.4028234663852886e38


@dataclass
class Allocation:
    """One device buffer: a contiguous range of the flat word space."""

    name: str
    base: int
    nwords: int
    dtype: DType

    @property
    def end(self) -> int:
        return self.base + self.nwords

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class GlobalMemory(WordReinterpret):
    """Word-addressed flat device memory with a bump allocator.

    The backing store is ``words`` (``np.uint32``); ``f32`` and ``i32``
    are zero-copy reinterpreting views of the same buffer.  The four
    :class:`~repro.memspace.MemorySpace` accessors override the
    :class:`~repro.memspace.WordReinterpret` defaults with fast paths
    reading/writing through those views (bit-identical semantics — the
    word primitives remain the reference implementation).
    """

    def __init__(self, capacity_words: int = 1 << 20):
        if capacity_words <= 0:
            raise GPUError(f"invalid memory capacity {capacity_words}")
        self.capacity = capacity_words
        #: Raw 32-bit word patterns — the single backing store.
        self.words: np.ndarray = np.zeros(capacity_words, dtype=np.uint32)
        #: Zero-copy binary32 view of :attr:`words`.
        self.f32: np.ndarray = self.words.view(np.float32)
        #: Zero-copy two's-complement view of :attr:`words`.
        self.i32: np.ndarray = self.words.view(np.int32)
        self.allocations: Dict[str, Allocation] = {}
        #: Allocation records ordered by base address (bump allocation
        #: appends in address order), for bisect lookups.
        self._ordered: List[Allocation] = []
        self._bases: List[int] = []
        self._brk = 0
        #: Highest mapped address + 1; accesses past this crash.
        self.mapped_end = 0

    # -- allocation ----------------------------------------------------
    def alloc(self, name: str, nwords: int, dtype: DType = DType.FLOAT32) -> Allocation:
        """Allocate a named buffer; returns its allocation record."""
        if name in self.allocations:
            raise GPUError(f"buffer {name!r} already allocated")
        if nwords <= 0:
            raise GPUError(f"invalid allocation size {nwords} for {name!r}")
        if self._brk + nwords > self.capacity:
            raise GPUError(
                f"device out of memory: need {nwords} words, "
                f"{self.capacity - self._brk} free"
            )
        allocation = Allocation(name=name, base=self._brk, nwords=nwords, dtype=dtype)
        self.allocations[name] = allocation
        self._ordered.append(allocation)
        self._bases.append(allocation.base)
        self._brk += nwords
        self.mapped_end = self._brk
        return allocation

    def reset(self) -> None:
        """Free everything (between program runs)."""
        self.words[: self._brk] = 0
        self.allocations.clear()
        self._ordered.clear()
        self._bases.clear()
        self._brk = 0
        self.mapped_end = 0

    def allocation_of(self, addr: int) -> Optional[Allocation]:
        """The allocation containing ``addr``, if any (diagnostics).

        Bisects the base-sorted allocation list: this sits on the
        pointer-fault classification path (one lookup per corrupted
        pointer), where the old linear scan was O(allocations) per
        trial.
        """
        i = bisect_right(self._bases, addr) - 1
        if i >= 0:
            candidate = self._ordered[i]
            if candidate.contains(addr):
                return candidate
        return None

    # -- raw word access (bounds policy of the whole device space) ------
    #
    # Access is checked against the *device address space* (capacity),
    # not against allocations: GT200-era GPUs have no per-allocation
    # MMU faulting, so a corrupted pointer that stays on the device
    # reads or clobbers unrelated data silently (the SDC path), and
    # only addresses outside the device crash the kernel.  This is the
    # paper's "lack of fine-grained error protection" made concrete.

    def load_word(self, addr: int) -> int:
        if 0 <= addr < self.capacity:
            return self.words.item(addr)
        raise DeviceMemoryError(f"load outside device memory: {addr}")

    def store_word(self, addr: int, bits: int) -> None:
        if 0 <= addr < self.capacity:
            self.words[addr] = bits & 0xFFFFFFFF
            return
        raise DeviceMemoryError(f"store outside device memory: {addr}")

    # -- typed scalar access (kernel loads/stores, the hot path) ---------

    def load_f32(self, addr: int) -> float:
        if 0 <= addr < self.capacity:
            value = self.f32.item(addr)
            if value != value:
                # NaN: the view's float32→float64 cast quietens a
                # signaling pattern; re-widen bitwise so the payload
                # (quiet bit included) survives a load/store cycle
                return bits_to_float(self.words.item(addr))
            return value
        raise DeviceMemoryError(f"load outside device memory: {addr}")

    def load_i32(self, addr: int) -> int:
        if 0 <= addr < self.capacity:
            return self.i32.item(addr)
        raise DeviceMemoryError(f"load outside device memory: {addr}")

    def store_f32(self, addr: int, value: float) -> None:
        if 0 <= addr < self.capacity:
            if -_F32_MAX <= value <= _F32_MAX:
                self.f32[addr] = value
            else:
                # NaN / out-of-binary32-range: the struct path preserves
                # the exact legacy semantics (saturate to ±inf, quiet
                # NaN payload propagation) without a cast warning
                self.words[addr] = float_to_bits(value)
            return
        raise DeviceMemoryError(f"store outside device memory: {addr}")

    def store_i32(self, addr: int, value: int) -> None:
        if 0 <= addr < self.capacity:
            self.words[addr] = value & 0xFFFFFFFF
            return
        raise DeviceMemoryError(f"store outside device memory: {addr}")

    # -- bulk typed access (vectorized engine gather/scatter) -----------
    #
    # Same bounds policy and error text as the scalar accessors: the
    # whole device space is addressable, the first out-of-range address
    # in array order (= lowest lane, since the engine compresses masks
    # in gtid order) names the crash.  Bit-for-bit equivalent to a
    # Python loop over the scalar accessors, including NaN payload
    # preservation on both directions of the f32 reinterpretation.

    def _check_bulk(self, addrs: np.ndarray, verb: str) -> None:
        bad = (addrs < 0) | (addrs >= self.capacity)
        if bad.any():
            addr = int(addrs[int(np.argmax(bad))])
            raise DeviceMemoryError(f"{verb} outside device memory: {addr}")

    def gather_f32(self, addrs: np.ndarray) -> np.ndarray:
        """Vector ``load_f32``: float64 values for an int address array."""
        self._check_bulk(addrs, "load")
        values = self.f32[addrs].astype(np.float64)
        nan = values != values
        if nan.any():
            # re-widen NaN lanes bitwise (cast quietens sNaN payloads)
            idx = np.flatnonzero(nan)
            values[idx] = [bits_to_float(int(b)) for b in self.words[addrs[idx]]]
        return values

    def gather_i32(self, addrs: np.ndarray) -> np.ndarray:
        """Vector ``load_i32``: int64 values for an int address array."""
        self._check_bulk(addrs, "load")
        return self.i32[addrs].astype(np.int64)

    def scatter_f32(self, addrs: np.ndarray, values: np.ndarray) -> None:
        """Vector ``store_f32``; duplicate addresses resolve last-wins."""
        self._check_bulk(addrs, "store")
        finite = (values >= -_F32_MAX) & (values <= _F32_MAX)
        if finite.all():
            self.f32[addrs] = values
            return
        with np.errstate(over="ignore", invalid="ignore"):
            bits = values.astype(np.float32).view(np.uint32)
        special = np.flatnonzero(~finite)
        # NaN / out-of-binary32-range lanes go through the same
        # payload-preserving slow path as the scalar store
        bits[special] = [float_to_bits(float(v)) for v in values[special]]
        self.words[addrs] = bits

    def scatter_i32(self, addrs: np.ndarray, values: np.ndarray) -> None:
        """Vector ``store_i32``; duplicate addresses resolve last-wins."""
        self._check_bulk(addrs, "store")
        self.words[addrs] = (values & 0xFFFFFFFF).astype(np.uint32)

    # -- bulk transfer (cudaMemcpy equivalents) --------------------------
    def memcpy_htod(self, dst: Allocation, array: np.ndarray) -> None:
        """Copy a host NumPy array into a device buffer (vectorized)."""
        if self.allocations.get(dst.name) is not dst:
            raise GPUError(
                f"htod into stale allocation {dst.name!r}: "
                "not an allocation of this device memory"
            )
        flat = np.ascontiguousarray(array).reshape(-1)
        if flat.size > dst.nwords:
            raise GPUError(
                f"htod overflow: {flat.size} elements into {dst.nwords} words"
            )
        if dst.dtype is DType.FLOAT32 or dst.dtype is DType.PTR_FLOAT32:
            bits = flat.astype(np.float32).view(np.uint32)
        else:
            bits = flat.astype(np.int32).view(np.uint32)
        self.words[dst.base : dst.base + flat.size] = bits

    def memcpy_dtoh(self, src: Allocation, count: Optional[int] = None) -> np.ndarray:
        """Copy a device buffer back to a host NumPy array."""
        n = src.nwords if count is None else count
        if n > src.nwords:
            raise GPUError(f"dtoh overflow: {n} words from {src.nwords}-word buffer")
        bits = self.words[src.base : src.base + n]
        if src.dtype is DType.FLOAT32 or src.dtype is DType.PTR_FLOAT32:
            return bits.view(np.float32).copy()
        return bits.view(np.int32).copy()

    # -- fault injection (memory/bus faults) -----------------------------
    def inject_word_fault(self, addr: int, mask: int) -> None:
        """XOR an error mask into one memory word (Section VII).

        Operates on the raw bit pattern, so an XOR into a NaN-holding
        word changes exactly the masked bits of the payload (see
        :func:`repro.gpu.faults.inject_word_faults` for the bulk form).
        """
        if not 0 <= addr < self.mapped_end:
            raise DeviceMemoryError(f"fault injection outside mapped memory: {addr}")
        self.words[addr] = self.words.item(addr) ^ (mask & 0xFFFFFFFF)

    @property
    def used_words(self) -> int:
        return self._brk

    # -- whole-state snapshots (differential trials, checkpoints) --------
    def snapshot(self) -> np.ndarray:
        """Raw bits of every allocated word (golden-state checkpoint).

        One vectorized ``uint32`` copy; the result is independent of
        later stores and feeds :meth:`restore` and the differential
        engine's golden-diff compares.
        """
        return self.words[: self._brk].copy()

    def restore(self, words: np.ndarray) -> None:
        """Overwrite allocated words with a prior :meth:`snapshot`.

        The allocation table must already match the snapshot's layout
        (callers re-run the same deterministic ``setup_memory`` first).
        """
        if len(words) != self._brk:
            raise GPUError(
                f"snapshot of {len(words)} words does not match "
                f"{self._brk} allocated words"
            )
        self.words[: self._brk] = words


# ---------------------------------------------------------------------------
# footprint recording + guarded replay (differential trial execution)
# ---------------------------------------------------------------------------


@dataclass
class ThreadFootprint:
    """Global-memory accesses of one thread during a golden run.

    ``stores`` keeps program order and raw bit patterns, so undoing a
    thread (reverse replay of ``(addr, old, new)``) and re-applying it
    (forward replay of ``new``) are both exact.  The *net* effect of
    those replays — first-store ``old`` and last-store ``new`` per
    unique address — is materialized once as NumPy scatter arrays, so
    per-trial undo/reapply are single vectorized writes.
    """

    loads: Set[int] = field(default_factory=set)
    stores: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Lazily-built (addrs, first_old_bits, last_new_bits) arrays.
    _net: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def store_addrs(self) -> Set[int]:
        return {addr for addr, _old, _new in self.stores}

    def net_store_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Scatter arrays ``(addrs, old_bits, new_bits)`` — net effect.

        Reverse replay of the program-ordered store list leaves each
        address holding the ``old`` bits of its *first* store; forward
        replay leaves the ``new`` bits of its *last* store.  Collapsing
        to unique addresses keeps the vectorized scatter well-defined
        (NumPy fancy assignment with duplicate indices is unordered).
        """
        if self._net is None:
            first_old: Dict[int, int] = {}
            last_new: Dict[int, int] = {}
            for addr, old, new in self.stores:
                if addr not in first_old:
                    first_old[addr] = old
                last_new[addr] = new
            n = len(first_old)
            self._net = (
                np.fromiter(first_old.keys(), dtype=np.int64, count=n),
                np.fromiter(first_old.values(), dtype=np.uint32, count=n),
                np.fromiter((last_new[a] for a in first_old), dtype=np.uint32,
                            count=n),
            )
        return self._net


class FootprintRecordingMemory(WordReinterpret):
    """Memory layer that logs every typed access into a footprint.

    Compiled closures bind accessors from ``ctx`` on each launch, so
    swapping this layer in for one launch records footprints with zero
    cost on the normal (unwrapped) path — the same enable/disable
    idiom as the obs layer.  Loads delegate typed (the recorded fact
    is the address); stores reinterpret once via the shared
    :class:`~repro.memspace.WordReinterpret` helper and journal the
    raw before/after bit patterns.
    """

    __slots__ = ("mem", "fp")

    def __init__(self, mem: GlobalMemory):
        self.mem = mem
        self.fp = ThreadFootprint()

    def begin_thread(self) -> ThreadFootprint:
        """Start a fresh footprint; returns the one just finished."""
        done = self.fp
        self.fp = ThreadFootprint()
        return done

    def load_f32(self, addr: int) -> float:
        value = self.mem.load_f32(addr)
        self.fp.loads.add(addr)
        return value

    def load_i32(self, addr: int) -> int:
        value = self.mem.load_i32(addr)
        self.fp.loads.add(addr)
        return value

    def store_word(self, addr: int, bits: int) -> None:
        mem = self.mem
        if not 0 <= addr < mem.capacity:
            mem.store_word(addr, bits)  # raises DeviceMemoryError
        old = mem.words.item(addr)
        mem.words[addr] = bits
        self.fp.stores.append((addr, old, bits & 0xFFFFFFFF))


class ReplayConflict(Exception):
    """A replayed thread touched another thread's footprint.

    Raised by :class:`ReplayMemoryGuard` when a faulted thread's access
    pattern diverges into memory owned by a different thread (pointer
    faults redirect loads/stores); the differential engine catches it
    and falls back to full execution for that one trial.  Deliberately
    *not* a :class:`~repro.errors.KernelCrash`: it must not be mistaken
    for a program failure.
    """


class ReplayMemoryGuard(WordReinterpret):
    """Memory layer for single-thread replay with conflict detection.

    The simulated grid executes threads sequentially in gtid order, so
    program order totally orders cross-thread memory effects.  Replay of
    thread ``T`` runs against golden-final memory with ``T``'s own
    stores undone; the guard exploits the ordering to admit accesses a
    naive "never touch a foreign footprint" rule would reject:

    * **Loads** — an address stored by an *earlier* thread holds its
      golden value in both worlds (earlier threads are never faulted in
      ``T``'s trial), so only loads of addresses owned by a *later*
      thread conflict (memory holds that thread's future value here,
      but the pre-launch value in the real trial).
    * **Stores** — a store to an address owned by a later thread
      conflicts (the later thread's read-then-write could observe it);
      a store whose golden readers are all at-or-before ``T`` is
      invisible to everyone else; a store read by a *later* thread is
      admitted provisionally and checked at the end of the replay: if
      the final bits equal the golden bits (masked fault), later
      readers observe nothing and the trial is still exact —
      :meth:`deferred_mismatch` reports the verdict.

    ``store_owner`` maps each golden-stored address to its storing
    thread; ``load_readers`` maps each golden-loaded address to its
    *latest* reading thread.  Every first store to an address is
    journaled (addresses are unique by construction), so
    :meth:`rollback` restores the pre-replay memory in one vectorized
    scatter-write.
    """

    __slots__ = (
        "mem", "thread", "store_owner", "load_readers",
        "_undo_addrs", "_undo_bits", "deferred", "_dirty",
    )

    def __init__(
        self,
        mem: GlobalMemory,
        thread: int,
        store_owner: Dict[int, int],
        load_readers: Dict[int, int],
    ):
        self.mem = mem
        self.thread = thread
        self.store_owner = store_owner
        self.load_readers = load_readers
        self._undo_addrs: List[int] = []
        self._undo_bits: List[int] = []
        #: Stored addresses whose golden readers include a later thread.
        self.deferred: Set[int] = set()
        self._dirty: Set[int] = set()

    def _check_load(self, addr: int) -> None:
        owner = self.store_owner.get(addr)
        if owner is not None and owner > self.thread:
            raise ReplayConflict(f"load of address {addr} stored by thread {owner}")

    def load_f32(self, addr: int) -> float:
        self._check_load(addr)
        return self.mem.load_f32(addr)

    def load_i32(self, addr: int) -> int:
        self._check_load(addr)
        return self.mem.load_i32(addr)

    def _check_store(self, addr: int) -> None:
        owner = self.store_owner.get(addr)
        if owner is not None and owner > self.thread:
            raise ReplayConflict(f"store to address {addr} stored by thread {owner}")
        reader = self.load_readers.get(addr)
        if reader is not None and reader > self.thread:
            self.deferred.add(addr)

    def store_word(self, addr: int, bits: int) -> None:
        self._check_store(addr)
        mem = self.mem
        if addr not in self._dirty and 0 <= addr < mem.capacity:
            self._dirty.add(addr)
            self._undo_addrs.append(addr)
            self._undo_bits.append(mem.words.item(addr))
        mem.store_word(addr, bits)

    def deferred_mismatch(self, golden_words: np.ndarray) -> bool:
        """Whether any later-read stored address ended up non-golden.

        Called once after a replay completes; ``True`` means a later
        thread would have observed a changed value and the trial must
        fall back to full execution.  One vectorized gather + compare.
        """
        if not self.deferred:
            return False
        addrs = np.fromiter(self.deferred, dtype=np.int64, count=len(self.deferred))
        if bool((addrs >= len(golden_words)).any()):
            return True
        golden = np.asarray(golden_words, dtype=np.uint32)
        return not np.array_equal(self.mem.words[addrs], golden[addrs])

    def rollback(self) -> None:
        """Reverse every store this guard let through (one scatter)."""
        if self._undo_addrs:
            n = len(self._undo_addrs)
            self.mem.words[np.fromiter(self._undo_addrs, np.int64, count=n)] = \
                np.fromiter(self._undo_bits, np.uint32, count=n)
        self._undo_addrs.clear()
        self._undo_bits.clear()
        self._dirty.clear()
