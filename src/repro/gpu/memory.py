"""Flat device memory with *no* fine-grained protection.

The paper attributes the GPU/CPU SDC gap partly to "the lack of
fine-grained error protection in GPUs: unlike modern CPUs, GPUs do not
have a page-granularity memory access permission checking" (Section
II.A cause (a)).  This model reproduces that: allocations are packed
into one flat word-addressed space, so a corrupted pointer that stays
inside the mapped range silently reads/writes *another buffer's* data
(an SDC path), and only addresses outside the mapped range crash the
kernel.  Contrast with :mod:`repro.cpusim.machine`, which checks pages.

Memory holds raw 32-bit words (bit patterns); typed accessors
reinterpret on the way in/out, which is also where float64 interpreter
values round through binary32 — matching data stored in real GDDR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.bits import bits_to_float, bits_to_int, float_to_bits, int_to_bits
from repro.errors import DeviceMemoryError, GPUError
from repro.kir.types import DType


@dataclass
class Allocation:
    """One device buffer: a contiguous range of the flat word space."""

    name: str
    base: int
    nwords: int
    dtype: DType

    @property
    def end(self) -> int:
        return self.base + self.nwords

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class GlobalMemory:
    """Word-addressed flat device memory with a bump allocator."""

    def __init__(self, capacity_words: int = 1 << 20):
        if capacity_words <= 0:
            raise GPUError(f"invalid memory capacity {capacity_words}")
        self.capacity = capacity_words
        self.words: List[int] = [0] * capacity_words
        self.allocations: Dict[str, Allocation] = {}
        self._brk = 0
        #: Highest mapped address + 1; accesses past this crash.
        self.mapped_end = 0

    # -- allocation ----------------------------------------------------
    def alloc(self, name: str, nwords: int, dtype: DType = DType.FLOAT32) -> Allocation:
        """Allocate a named buffer; returns its allocation record."""
        if name in self.allocations:
            raise GPUError(f"buffer {name!r} already allocated")
        if nwords <= 0:
            raise GPUError(f"invalid allocation size {nwords} for {name!r}")
        if self._brk + nwords > self.capacity:
            raise GPUError(
                f"device out of memory: need {nwords} words, "
                f"{self.capacity - self._brk} free"
            )
        allocation = Allocation(name=name, base=self._brk, nwords=nwords, dtype=dtype)
        self.allocations[name] = allocation
        self._brk += nwords
        self.mapped_end = self._brk
        return allocation

    def reset(self) -> None:
        """Free everything (between program runs)."""
        for i in range(self._brk):
            self.words[i] = 0
        self.allocations.clear()
        self._brk = 0
        self.mapped_end = 0

    def allocation_of(self, addr: int) -> Optional[Allocation]:
        """The allocation containing ``addr``, if any (diagnostics)."""
        for a in self.allocations.values():
            if a.contains(addr):
                return a
        return None

    # -- typed scalar access (kernel loads/stores) ----------------------
    #
    # Access is checked against the *device address space* (capacity),
    # not against allocations: GT200-era GPUs have no per-allocation
    # MMU faulting, so a corrupted pointer that stays on the device
    # reads or clobbers unrelated data silently (the SDC path), and
    # only addresses outside the device crash the kernel.  This is the
    # paper's "lack of fine-grained error protection" made concrete.

    def load_f32(self, addr: int) -> float:
        if 0 <= addr < self.capacity:
            return bits_to_float(self.words[addr])
        raise DeviceMemoryError(f"load outside device memory: {addr}")

    def load_i32(self, addr: int) -> int:
        if 0 <= addr < self.capacity:
            return bits_to_int(self.words[addr])
        raise DeviceMemoryError(f"load outside device memory: {addr}")

    def store_f32(self, addr: int, value: float) -> None:
        if 0 <= addr < self.capacity:
            self.words[addr] = float_to_bits(value)
            return
        raise DeviceMemoryError(f"store outside device memory: {addr}")

    def store_i32(self, addr: int, value: int) -> None:
        if 0 <= addr < self.capacity:
            self.words[addr] = int_to_bits(value)
            return
        raise DeviceMemoryError(f"store outside device memory: {addr}")

    # -- bulk transfer (cudaMemcpy equivalents) --------------------------
    def memcpy_htod(self, dst: Allocation, array: np.ndarray) -> None:
        """Copy a host NumPy array into a device buffer."""
        flat = np.ascontiguousarray(array).reshape(-1)
        if flat.size > dst.nwords:
            raise GPUError(
                f"htod overflow: {flat.size} elements into {dst.nwords} words"
            )
        if dst.dtype is DType.FLOAT32 or dst.dtype is DType.PTR_FLOAT32:
            bits = flat.astype(np.float32).view(np.uint32)
        else:
            bits = flat.astype(np.int32).view(np.uint32)
        self.words[dst.base : dst.base + flat.size] = [int(b) for b in bits]

    def memcpy_dtoh(self, src: Allocation, count: Optional[int] = None) -> np.ndarray:
        """Copy a device buffer back to a host NumPy array."""
        n = src.nwords if count is None else count
        if n > src.nwords:
            raise GPUError(f"dtoh overflow: {n} words from {src.nwords}-word buffer")
        bits = np.array(self.words[src.base : src.base + n], dtype=np.uint32)
        if src.dtype is DType.FLOAT32 or src.dtype is DType.PTR_FLOAT32:
            return bits.view(np.float32).copy()
        return bits.view(np.int32).copy()

    # -- fault injection (memory/bus faults) -----------------------------
    def inject_word_fault(self, addr: int, mask: int) -> None:
        """XOR an error mask into one memory word (Section VII)."""
        if not 0 <= addr < self.mapped_end:
            raise DeviceMemoryError(f"fault injection outside mapped memory: {addr}")
        self.words[addr] ^= mask & 0xFFFFFFFF

    @property
    def used_words(self) -> int:
        return self._brk
