"""Multi-GPU node with device disabling, migration, and back-off.

Implements the Section VI(i)/(ii.c) recovery substrate: when BIST
diagnoses a hardware fault, "the current GPU device is disabled and
another device in the node or cluster is used", while "a daemon
process is periodically running this [BIST] program on disabled GPU
devices with a time delay T_backoff ... doubled after every
execution"; a passing BIST re-enables the device.

Time here is *simulated*: the daemon is driven by an explicit clock so
tests can exercise the exponential back-off deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import RecoveryError
from repro.gpu.device import Device, DeviceSpec, GT200_SPEC


@dataclass
class BackoffEntry:
    """Back-off state for one disabled device."""

    device_id: int
    next_probe_time: float
    backoff: float


class GPUNode:
    """A node holding several GPUs (the paper's S1070 has four)."""

    def __init__(
        self,
        num_devices: int = 4,
        spec: DeviceSpec = GT200_SPEC,
        initial_backoff: float = 1.0,
    ):
        if num_devices <= 0:
            raise RecoveryError(f"a node needs at least one device, got {num_devices}")
        self.devices: List[Device] = [Device(spec=spec) for _ in range(num_devices)]
        self.initial_backoff = initial_backoff
        self._backoff: Dict[int, BackoffEntry] = {}

    # -- selection -------------------------------------------------------
    def healthy_device(self) -> Device:
        """First enabled device; raises if the node is exhausted."""
        for d in self.devices:
            if d.enabled:
                return d
        raise RecoveryError("no healthy GPU device available in the node")

    def device_by_id(self, device_id: int) -> Device:
        for d in self.devices:
            if d.device_id == device_id:
                return d
        raise RecoveryError(f"unknown device id {device_id}")

    # -- disable / migrate -------------------------------------------------
    def disable(self, device: Device, now: float = 0.0) -> None:
        """Take a device out of rotation and schedule back-off probes."""
        device.enabled = False
        self._backoff[device.device_id] = BackoffEntry(
            device_id=device.device_id,
            next_probe_time=now + self.initial_backoff,
            backoff=self.initial_backoff,
        )

    def migrate_from(self, failed: Device, now: float = 0.0) -> Device:
        """Disable ``failed`` and return a replacement device."""
        self.disable(failed, now=now)
        return self.healthy_device()

    # -- back-off daemon -----------------------------------------------------
    def run_backoff_daemon(
        self, now: float, bist: Callable[[Device], bool]
    ) -> List[int]:
        """Probe disabled devices whose back-off expired.

        ``bist`` returns True when the device passes self-test; passing
        devices are re-enabled.  Failing devices stay disabled with a
        doubled delay.  Returns re-enabled device ids.
        """
        reenabled: List[int] = []
        for entry in list(self._backoff.values()):
            if now < entry.next_probe_time:
                continue
            device = self.device_by_id(entry.device_id)
            if bist(device):
                device.enabled = True
                del self._backoff[entry.device_id]
                reenabled.append(entry.device_id)
            else:
                entry.backoff *= 2.0
                entry.next_probe_time = now + entry.backoff
        return reenabled

    def pending_backoff(self, device_id: int) -> Optional[BackoffEntry]:
        return self._backoff.get(device_id)
