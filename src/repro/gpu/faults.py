"""Hardware fault-site taxonomy (paper Section VII(i)).

Faults are classified by the architecture component whose corruption
the injected error emulates: (a) core ALU, (b) core FPU, (c) SM
register file, (d) SM scheduler — plus memory for completeness (the
paper assumes memory paths are ECC-protected on current devices and so
focuses injections on core state).

``hardware_components_of`` performs the static derivation the paper's
translator does: "the hardware components used are statically derived
by analyzing the operation types, e.g. ALU and FPU for integer and FP
expressions respectively".
"""

from __future__ import annotations

import enum
from typing import FrozenSet

from repro.kir.astnodes import (
    BinOp,
    Call,
    Expr,
    Load,
    SharedLoad,
    UnOp,
    walk_exprs,
)
from repro.kir.types import DType

_FPU_INTRINSICS = {
    "sqrt", "rsqrt", "exp", "log", "sin", "cos", "acos", "atan2",
    "floor", "fabs", "pow", "fmin", "fmax", "float",
}


class FaultSite(enum.Enum):
    """Architecture component a fault emulates corruption of."""

    ALU = "alu"
    FPU = "fpu"
    REGISTER = "register"
    SCHEDULER = "scheduler"
    MEMORY = "memory"


def hardware_components_of(expr: Expr) -> FrozenSet[FaultSite]:
    """Components exercised by evaluating ``expr`` (static derivation)."""
    sites = {FaultSite.REGISTER}  # the result lands in a register
    for node in walk_exprs(expr):
        if isinstance(node, (BinOp, UnOp)):
            if node.dtype is DType.FLOAT32:
                sites.add(FaultSite.FPU)
            else:
                sites.add(FaultSite.ALU)
        elif isinstance(node, Call):
            if node.func in _FPU_INTRINSICS:
                sites.add(FaultSite.FPU)
            else:
                sites.add(FaultSite.ALU)
        elif isinstance(node, (Load, SharedLoad)):
            sites.add(FaultSite.MEMORY)
    return frozenset(sites)
