"""Hardware fault-site taxonomy (paper Section VII(i)).

Faults are classified by the architecture component whose corruption
the injected error emulates: (a) core ALU, (b) core FPU, (c) SM
register file, (d) SM scheduler — plus memory for completeness (the
paper assumes memory paths are ECC-protected on current devices and so
focuses injections on core state).

``hardware_components_of`` performs the static derivation the paper's
translator does: "the hardware components used are statically derived
by analyzing the operation types, e.g. ALU and FPU for integer and FP
expressions respectively".

``inject_word_faults`` is the bulk memory-fault primitive: XOR error
masks into device words as one vectorized operation against the
``uint32`` backing array (multi-word burst faults, scrubbing studies).
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Sequence, Tuple

import numpy as np

from repro.errors import DeviceMemoryError
from repro.kir.astnodes import (
    BinOp,
    Call,
    Expr,
    Load,
    SharedLoad,
    UnOp,
    walk_exprs,
)
from repro.kir.types import DType

_FPU_INTRINSICS = {
    "sqrt", "rsqrt", "exp", "log", "sin", "cos", "acos", "atan2",
    "floor", "fabs", "pow", "fmin", "fmax", "float",
}


class FaultSite(enum.Enum):
    """Architecture component a fault emulates corruption of."""

    ALU = "alu"
    FPU = "fpu"
    REGISTER = "register"
    SCHEDULER = "scheduler"
    MEMORY = "memory"


def hardware_components_of(expr: Expr) -> FrozenSet[FaultSite]:
    """Components exercised by evaluating ``expr`` (static derivation)."""
    sites = {FaultSite.REGISTER}  # the result lands in a register
    for node in walk_exprs(expr):
        if isinstance(node, (BinOp, UnOp)):
            if node.dtype is DType.FLOAT32:
                sites.add(FaultSite.FPU)
            else:
                sites.add(FaultSite.ALU)
        elif isinstance(node, Call):
            if node.func in _FPU_INTRINSICS:
                sites.add(FaultSite.FPU)
            else:
                sites.add(FaultSite.ALU)
        elif isinstance(node, (Load, SharedLoad)):
            sites.add(FaultSite.MEMORY)
    return frozenset(sites)


def inject_word_faults(
    memory, addrs: Sequence[int], masks: Sequence[int]
) -> Tuple[np.ndarray, np.ndarray]:
    """XOR error masks into many device words at once.

    ``memory`` is a :class:`~repro.gpu.memory.GlobalMemory`; ``addrs``
    and ``masks`` are parallel sequences.  Returns ``(old_bits,
    new_bits)`` ``uint32`` arrays so callers can journal and undo the
    corruption exactly.  Works on raw bit patterns: XOR into a
    NaN-holding word perturbs exactly the masked payload bits.  Every
    address is validated against the mapped range first — all-or-
    nothing, matching the single-word
    :meth:`~repro.gpu.memory.GlobalMemory.inject_word_fault`.
    """
    addr_arr = np.asarray(addrs, dtype=np.int64).reshape(-1)
    mask_arr = np.asarray(masks, dtype=np.uint64).reshape(-1).astype(np.uint32)
    if addr_arr.size != mask_arr.size:
        raise DeviceMemoryError(
            f"fault injection with {addr_arr.size} addresses "
            f"but {mask_arr.size} masks"
        )
    if addr_arr.size == 0:
        empty = np.empty(0, dtype=np.uint32)
        return empty, empty
    bad = (addr_arr < 0) | (addr_arr >= memory.mapped_end)
    if bool(bad.any()):
        addr = int(addr_arr[bad][0])
        raise DeviceMemoryError(f"fault injection outside mapped memory: {addr}")
    old_bits = memory.gather_words(addr_arr)
    new_bits = old_bits ^ mask_arr
    memory.scatter_words(addr_arr, new_bits)
    return old_bits, new_bits
