"""Kernel launch machinery: grids, frames, watchdog, timing.

``GPURuntime.launch`` plays the role of ``cudaLaunchKernel`` plus the
surrounding measurement harness: it executes every thread of the grid
(fast closure path, or lockstep for barrier kernels), detects crashes
and hangs the way the GPU runtime + guardian watchdog do in the paper,
and converts accumulated thread-cycles into a kernel time via the
device's parallel width and register-spill factor.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import CompileError, KernelCrash, KernelHang, LaunchError
from repro.exec.cache import ephemeral_cache
from repro.gpu.costmodel import CostModel
from repro.gpu.device import Device
from repro.gpu.memory import Allocation
from repro.kir.analysis.liveness import register_pressure
from repro.kir.astnodes import Kernel
from repro.kir.interp.compiler import CompiledKernel
from repro.kir.interp.evalcore import ExecContext, InstrumentationLibrary
from repro.kir.interp.lockstep import LockstepProgram
from repro.kir.interp.vector import (
    BAIL_REPLAY_FAILURE,
    FALLBACK_LIBRARY,
    FALLBACK_RECORDER,
    VectorBailout,
    VectorizedKernel,
    VectorReplayGuard,
    vectorize_obstacle,
)
from repro.kir.types import DType
from repro.obs.events import get_tracer
from repro.obs.instrument import (
    record_launch,
    record_launch_failure,
    record_vector_fallback,
    record_vectorized_launch,
)
from repro.obs.profile import PHASE_VECTOR_RUN, get_profiler

Dim = Union[int, Tuple[int, int]]

#: GT200 hardware limit.
MAX_THREADS_PER_BLOCK = 512

#: Attribute on the kernel object holding its compiled-program cache.
#: Living on the kernel (instead of a runtime-side ``id()``-keyed dict)
#: means the cache dies with the kernel — no global registry pinning
#: kernels alive, and no recycled-``id`` staleness.  The cache resets
#: across ``Kernel.clone()`` and pickling (see ``repro.exec.cache``).
PREPARED_CACHE_ATTR = "_hauberk_prepared"

#: Sibling caches for the vectorized program and a forced lockstep
#: program (same lifetime rules as ``PREPARED_CACHE_ATTR``).
VECTOR_CACHE_ATTR = "_hauberk_vector"
LOCKSTEP_CACHE_ATTR = "_hauberk_lockstep"

#: Engine-selection seam.  ``auto`` serves eligible launches from the
#: vectorized engine and falls back to the scalar engines (closure, or
#: lockstep for barrier kernels); ``vector`` is ``auto`` in intent but
#: the explicit spelling for tests/benches; ``closure`` forces the
#: legacy scalar selection; ``lockstep`` forces the lockstep
#: interpreter for every kernel.
ENGINE_AUTO = "auto"
ENGINE_VECTOR = "vector"
ENGINE_CLOSURE = "closure"
ENGINE_LOCKSTEP = "lockstep"
ENGINES = (ENGINE_AUTO, ENGINE_VECTOR, ENGINE_CLOSURE, ENGINE_LOCKSTEP)

#: Environment override consulted when a runtime is built without an
#: explicit ``engine`` (the harness/CLI plumb ``--engine`` through it).
ENGINE_ENV_VAR = "REPRO_ENGINE"


def default_engine() -> str:
    """Engine used when neither runtime nor launch names one."""
    return os.environ.get(ENGINE_ENV_VAR, ENGINE_AUTO)


def _normalize_dim(dim: Dim, what: str) -> Tuple[int, int]:
    if isinstance(dim, int):
        dim = (dim, 1)
    x, y = dim
    if x <= 0 or y <= 0:
        raise LaunchError(f"invalid {what} dimensions {dim}")
    return x, y


@dataclass
class LaunchResult:
    """Outcome of one successful kernel launch."""

    kernel_name: str
    n_threads: int
    #: Sum of per-thread cycles over the whole grid.
    total_cycles: float
    #: Portion of total_cycles spent inside loops (Figure 4 numerator).
    loop_cycles: float
    #: Modeled kernel wall time in cycles: total/lanes x spill factor.
    kernel_time: float
    register_pressure: int
    spill_factor: float
    #: Largest per-thread statement count seen (guardian hang baseline).
    max_thread_steps: int = 0

    @property
    def loop_fraction(self) -> float:
        """Fraction of GPU execution time spent in loops (Figure 4)."""
        if self.total_cycles == 0:
            return 0.0
        return self.loop_cycles / self.total_cycles


class GPURuntime:
    """Launches KIR kernels on one simulated device."""

    def __init__(
        self,
        device: Optional[Device] = None,
        costmodel: Optional[CostModel] = None,
        engine: Optional[str] = None,
    ):
        self.device = device if device is not None else Device()
        self.costmodel = costmodel if costmodel is not None else CostModel()
        self.engine = engine if engine is not None else default_engine()
        if self.engine not in ENGINES:
            raise LaunchError(f"unknown execution engine {self.engine!r}")

    # -- preparation -----------------------------------------------------
    def prepare(self, kernel: Kernel):
        """Compile (and resource-check) a kernel; cached on the kernel.

        The compiled program depends only on the kernel and the cost
        model, so the cache lives on the kernel object keyed by cost
        model (the stored strong reference keeps the key's ``id``
        stable) and is shared by every runtime using the same model.
        The device resource check always runs — different runtimes may
        sit on differently-sized devices.
        """
        if kernel.shared_mem_words > self.device.spec.shared_mem_words:
            raise CompileError(
                f"kernel {kernel.name} needs {kernel.shared_mem_words} words of "
                f"shared memory; device has {self.device.spec.shared_mem_words}"
            )
        cache = ephemeral_cache(kernel, PREPARED_CACHE_ATTR)
        key = id(self.costmodel)
        hit = cache.get(key)
        if hit is not None:
            if hit[0] is self.costmodel:
                return hit[1]
            # a dead cost model's id was recycled by this one: drop the
            # stale entry so it cannot shadow the rebuilt one below
            del cache[key]
        if kernel.uses_sync:
            prog = LockstepProgram(kernel, self.costmodel)
        else:
            prog = CompiledKernel(kernel, self.costmodel)
        entry = (prog, register_pressure(kernel))
        cache[id(self.costmodel)] = (self.costmodel, entry)
        return entry

    def prepare_vector(self, kernel: Kernel):
        """Vector-compile a kernel (cached); ``(program, obstacle)``.

        Exactly one of the pair is ``None``: either the compiled
        :class:`~repro.kir.interp.vector.VectorizedKernel`, or the
        static reason (``uses_sync``/``shared_memory``/``atomics``) the
        kernel cannot vectorize.  The obstacle is cached too, so
        ineligible kernels pay the AST walk once.
        """
        cache = ephemeral_cache(kernel, VECTOR_CACHE_ATTR)
        key = id(self.costmodel)
        hit = cache.get(key)
        if hit is not None:
            if hit[0] is self.costmodel:
                return hit[1]
            del cache[key]
        obstacle = vectorize_obstacle(kernel)
        if obstacle is not None:
            entry = (None, obstacle)
        else:
            with get_tracer().span("kir.vector.compile", kernel=kernel.name) as span:
                vprog = VectorizedKernel(kernel, self.costmodel)
                span.set(
                    divergent_branches=vprog.divergent_branches,
                    varying_names=len(vprog.varying),
                )
            entry = (vprog, None)
        cache[key] = (self.costmodel, entry)
        return entry

    def prepare_lockstep(self, kernel: Kernel):
        """Lockstep-compile any kernel (cached); for forced-engine runs."""
        cache = ephemeral_cache(kernel, LOCKSTEP_CACHE_ATTR)
        key = id(self.costmodel)
        hit = cache.get(key)
        if hit is not None:
            if hit[0] is self.costmodel:
                return hit[1]
            del cache[key]
        entry = (LockstepProgram(kernel, self.costmodel), register_pressure(kernel))
        cache[key] = (self.costmodel, entry)
        return entry

    # -- launching ---------------------------------------------------------
    def launch(
        self,
        kernel: Kernel,
        grid: Dim,
        block: Dim,
        args: Dict[str, object],
        lib: Optional[InstrumentationLibrary] = None,
        budget: int = 2_000_000,
        recorder=None,
        engine: Optional[str] = None,
    ) -> LaunchResult:
        """Run the kernel over the whole grid.

        ``args`` maps parameter names to values; :class:`Allocation`
        values are lowered to their base addresses (device pointers).
        Raises :class:`~repro.errors.KernelCrash` /
        :class:`~repro.errors.KernelHang` on failure — the GPU-runtime
        detected failures of the paper's outcome taxonomy.

        ``recorder`` (closure-path kernels only) observes per-thread
        execution: ``attach(memory)`` returns the memory view threads
        run against, and ``begin_thread(ctx)`` / ``end_thread(ctx)``
        bracket each thread.  The normal path pays nothing — the hooks
        are per-thread branches, and memory stays unwrapped.  A
        recorder exposing ``absorb_vector_records(vres)`` can instead
        be fed one vectorized sweep's per-lane records.

        ``engine`` overrides the runtime's engine for this launch (see
        :data:`ENGINES`).  The vectorized engine is bit-exact with the
        scalar interpreters: any launch it cannot serve exactly
        (library side effects, cross-lane data flow, lane failures)
        falls back transparently, counted in
        ``repro_kir_vector_fallbacks_total``.
        """
        if not self.device.enabled:
            raise LaunchError(f"device {self.device.device_id} is disabled")
        eng = engine if engine is not None else self.engine
        if eng not in ENGINES:
            raise LaunchError(f"unknown execution engine {eng!r}")
        gx, gy = _normalize_dim(grid, "grid")
        bx, by = _normalize_dim(block, "block")
        if bx * by > MAX_THREADS_PER_BLOCK:
            raise LaunchError(
                f"block of {bx * by} threads exceeds limit {MAX_THREADS_PER_BLOCK}"
            )
        if recorder is not None and kernel.uses_sync:
            raise LaunchError(
                f"kernel {kernel.name} uses __syncthreads; per-thread "
                "recording needs the closure path"
            )
        if recorder is not None and eng == ENGINE_LOCKSTEP:
            raise LaunchError("per-thread recording needs the closure path")
        if eng == ENGINE_LOCKSTEP:
            prog, pressure = self.prepare_lockstep(kernel)
        else:
            prog, pressure = self.prepare(kernel)
        base_frame = self._lower_args(kernel, args)
        base_frame["gridDim.x"] = gx
        base_frame["gridDim.y"] = gy
        base_frame["blockDim.x"] = bx
        base_frame["blockDim.y"] = by

        n_threads = gx * gy * bx * by
        shared_decls = kernel.shared
        with get_tracer().span(
            "gpu.launch", kernel=kernel.name, device=self.device.device_id,
            grid=[gx, gy], block=[bx, by], n_threads=n_threads,
        ) as span:
            if eng in (ENGINE_AUTO, ENGINE_VECTOR):
                result = self._attempt_vector(
                    kernel, pressure, base_frame, gx, gy, bx, by,
                    n_threads, lib, budget, recorder,
                )
                if result is not None:
                    span.set(
                        engine=ENGINE_VECTOR,
                        total_cycles=result.total_cycles,
                        kernel_time=result.kernel_time,
                        loop_fraction=result.loop_fraction,
                        spill_factor=result.spill_factor,
                        register_pressure=pressure,
                    )
                    return result

            ctx = ExecContext(self.device.memory, lib=lib, budget=budget)
            if recorder is not None:
                ctx.swap_memory(recorder.attach(self.device.memory))
            try:
                self._run_grid(kernel, prog, ctx, base_frame, gx, gy, bx, by,
                               shared_decls, recorder)
            except KernelHang as exc:
                record_launch_failure(kernel.name, "hang")
                span.set(failure="hang", reason=str(exc))
                raise
            except KernelCrash as exc:
                record_launch_failure(kernel.name, "crash")
                span.set(failure="crash", reason=str(exc))
                raise

            ctx.reset_thread(-1, -1)  # fold the final thread into max_steps
            lanes = min(n_threads, self.device.spec.parallel_lanes)
            spill = self.costmodel.spill_factor(
                pressure, self.device.spec.registers_per_thread
            )
            result = LaunchResult(
                kernel_name=kernel.name,
                n_threads=n_threads,
                total_cycles=ctx.cycles,
                loop_cycles=ctx.loop_cycles,
                kernel_time=ctx.cycles / lanes * spill,
                register_pressure=pressure,
                spill_factor=spill,
                max_thread_steps=ctx.max_steps,
            )
            record_launch(result)
            span.set(
                total_cycles=result.total_cycles,
                kernel_time=result.kernel_time,
                loop_fraction=result.loop_fraction,
                spill_factor=spill,
                register_pressure=pressure,
            )
        return result

    def _attempt_vector(
        self, kernel, pressure, base_frame, gx, gy, bx, by,
        n_threads, lib, budget, recorder,
    ) -> Optional[LaunchResult]:
        """Serve the launch from the vectorized engine, or ``None``.

        Gating happens first (static obstacle, incompatible library,
        recorder without vector support); a gated launch costs one
        counter bump.  An eligible launch runs all lanes as one array
        program — with an FI-targeted lane excluded and replayed
        scalar afterwards behind :class:`VectorReplayGuard`.  Any
        :class:`VectorBailout` restores the pre-launch memory snapshot
        and returns ``None`` so the scalar engines rerun the launch
        from scratch, reproducing failures (and their post-crash
        memory) exactly as the sequential semantics dictate.
        """
        vprog, reason = self.prepare_vector(kernel)
        excluded = None
        if reason is None and lib is not None:
            if not getattr(lib, "vector_compatible", False):
                reason = FALLBACK_LIBRARY
            else:
                excluded = lib.vector_excluded_gtid(n_threads)
        if reason is None and recorder is not None:
            if not hasattr(recorder, "absorb_vector_records"):
                reason = FALLBACK_RECORDER
            elif excluded is not None:
                # golden recording is fault-free by construction; a
                # recorder plus an armed injector is a scalar-path job
                reason = FALLBACK_RECORDER
        if reason is not None:
            record_vector_fallback(kernel.name, reason)
            return None

        memory = self.device.memory
        snapshot = memory.snapshot()
        lanes = np.arange(n_threads, dtype=np.int64)
        if excluded is not None:
            lanes = np.delete(lanes, excluded)
        guard = None
        try:
            with get_profiler().phase(PHASE_VECTOR_RUN):
                vres = vprog.run_lanes(
                    memory, base_frame, gx, gy, bx, by, lanes, budget,
                    record_footprints=recorder is not None,
                )
                extra_cycles = 0.0
                extra_loop = 0.0
                extra_steps = 0
                if excluded is not None:
                    guard = VectorReplayGuard(memory, excluded, vres)
                    ctx = ExecContext(guard, lib=lib, budget=budget)
                    blk, tib = divmod(excluded, bx * by)
                    fr = dict(base_frame)
                    fr["blockIdx.x"] = blk % gx
                    fr["blockIdx.y"] = blk // gx
                    fr["threadIdx.x"] = tib % bx
                    fr["threadIdx.y"] = tib // bx
                    compiled, _ = self.prepare(kernel)
                    try:
                        compiled.run_thread_at(fr, ctx, blk, tib)
                    except (KernelCrash, KernelHang):
                        # rerun sequentially so the failure surfaces
                        # with its exact scalar-path memory state
                        raise VectorBailout(BAIL_REPLAY_FAILURE)
                    extra_cycles = ctx.cycles
                    extra_loop = ctx.loop_cycles
                    extra_steps = ctx.steps
        except VectorBailout as exc:
            if guard is not None:
                guard.rollback()
            memory.restore(snapshot)
            if lib is not None:
                lib.vector_reset()
            record_vector_fallback(kernel.name, exc.reason)
            return None

        if recorder is not None:
            recorder.absorb_vector_records(vres)
        lanes_hw = min(n_threads, self.device.spec.parallel_lanes)
        spill = self.costmodel.spill_factor(
            pressure, self.device.spec.registers_per_thread
        )
        total = vres.total_cycles + extra_cycles
        result = LaunchResult(
            kernel_name=kernel.name,
            n_threads=n_threads,
            total_cycles=total,
            loop_cycles=vres.total_loop_cycles + extra_loop,
            kernel_time=total / lanes_hw * spill,
            register_pressure=pressure,
            spill_factor=spill,
            max_thread_steps=max(vres.max_steps, extra_steps),
        )
        record_vectorized_launch(kernel.name)
        record_launch(result)
        return result

    def _run_grid(self, kernel, prog, ctx, base_frame, gx, gy, bx, by,
                  shared_decls, recorder=None) -> None:
        """Execute every thread of the grid (the measured inner loop).

        The per-thread frame is built from a per-block template so only
        the two ``threadIdx`` keys are written in the inner loop; a
        kernel with no shared declarations reuses one empty dict for
        every block (nothing can write it — ``SharedStore`` compiles
        only against declared arrays).
        """
        no_shared = {} if not shared_decls else None
        lockstep = isinstance(prog, LockstepProgram)
        run_thread = None if lockstep else prog.run_thread
        for block_y in range(gy):
            for block_x in range(gx):
                block = block_y * gx + block_x
                ctx.block = block
                ctx.shared = no_shared if no_shared is not None else {
                    s.name: ([0.0] * s.size if s.dtype is DType.FLOAT32 else [0] * s.size)
                    for s in shared_decls
                }
                block_frame = dict(base_frame)
                block_frame["blockIdx.x"] = block_x
                block_frame["blockIdx.y"] = block_y
                if lockstep:
                    frames = []
                    for ty in range(by):
                        for tx in range(bx):
                            fr = dict(block_frame)
                            fr["threadIdx.x"] = tx
                            fr["threadIdx.y"] = ty
                            frames.append(fr)
                    prog.run_block(frames, ctx)
                elif recorder is None:
                    for ty in range(by):
                        row = ty * bx
                        for tx in range(bx):
                            fr = dict(block_frame)
                            fr["threadIdx.x"] = tx
                            fr["threadIdx.y"] = ty
                            ctx.reset_thread(block, row + tx)
                            run_thread(fr, ctx)
                else:
                    for ty in range(by):
                        row = ty * bx
                        for tx in range(bx):
                            fr = dict(block_frame)
                            fr["threadIdx.x"] = tx
                            fr["threadIdx.y"] = ty
                            ctx.reset_thread(block, row + tx)
                            recorder.begin_thread(ctx)
                            run_thread(fr, ctx)
                            recorder.end_thread(ctx)

    @staticmethod
    def _lower_args(kernel: Kernel, args: Dict[str, object]) -> Dict[str, object]:
        frame: Dict[str, object] = {}
        for p in kernel.params:
            if p.name not in args:
                raise LaunchError(f"missing kernel argument {p.name!r}")
            value = args[p.name]
            if isinstance(value, Allocation):
                if not p.dtype.is_pointer:
                    raise LaunchError(f"buffer passed for scalar parameter {p.name!r}")
                frame[p.name] = value.base
            elif p.dtype.is_pointer:
                frame[p.name] = int(value)
            elif p.dtype is DType.FLOAT32:
                frame[p.name] = float(value)
            else:
                frame[p.name] = int(value)
        extra = set(args) - {p.name for p in kernel.params}
        if extra:
            raise LaunchError(f"unknown kernel arguments {sorted(extra)}")
        return frame
