"""Device model: an S1070-class GPU with GT200-like parameters.

Only the parameters the paper's arguments depend on are modeled:

* parallelism (lanes) — converts total thread-cycles into kernel time;
* per-thread register budget — live-range pressure above it pays a
  spill penalty (the Section V.A register-pressure argument);
* shared-memory size — 16 KB in the paper's GPU; R-Scatter fails to
  compile TPACF because doubling its shared usage exceeds this;
* clock — converts cycles into simulated seconds for the guardian's
  hang thresholds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.gpu.memory import GlobalMemory


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware parameters of a simulated GPU."""

    name: str = "GT200"
    num_sms: int = 30
    cores_per_sm: int = 8
    #: Registers available per thread before spilling begins.
    registers_per_thread: int = 20
    #: Shared memory per SM, in 4-byte words (16 KB on GT200).
    shared_mem_words: int = 4096
    #: Device global memory, in 4-byte words (scaled down from 4 GB).
    global_mem_words: int = 1 << 20
    #: Core clock in Hz (used to convert cycles to simulated seconds).
    clock_hz: float = 1.3e9
    #: Memory backing: ``True`` forces the sparse paged store, ``False``
    #: the dense ndarray, ``None`` auto-selects by capacity (see
    #: :meth:`repro.gpu.memory.GlobalMemory.create`).
    paged: Optional[bool] = None
    #: Page size in words for the paged backing (``None`` = default).
    page_words: Optional[int] = None

    @property
    def parallel_lanes(self) -> int:
        """Concurrent scalar lanes: SMs x cores."""
        return self.num_sms * self.cores_per_sm


#: The paper's testbed GPU (Tesla S1070 node = 4 of these).
GT200_SPEC = DeviceSpec()

_device_ids = itertools.count(0)


@dataclass
class Device:
    """One simulated GPU: spec + memory + health state."""

    spec: DeviceSpec = GT200_SPEC
    device_id: int = field(default_factory=lambda: next(_device_ids))
    #: Set False by the recovery engine after a failed BIST.
    enabled: bool = True
    #: Simulated persistent hardware defect ("fpu" / "alu" / "register");
    #: None means healthy.  BIST detects it; clearing it models an
    #: intermittent fault that went away (re-enabling via back-off).
    defect: object = None
    memory: GlobalMemory = None

    def __post_init__(self) -> None:
        if self.memory is None:
            self.memory = GlobalMemory.create(
                self.spec.global_mem_words,
                paged=self.spec.paged,
                page_words=self.spec.page_words,
            )

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.spec.clock_hz

    def reset(self) -> None:
        self.memory.reset()
