"""32-bit pattern manipulation for fault injection and checksums.

The paper's SWIFI tool emulates hardware faults by XORing error masks
into the 32-bit architecture state holding a program variable
(Section VII).  All conversions here follow IEEE-754 binary32 for
floats and two's-complement for integers so injected fault magnitudes
match what real GPU register corruption would produce (Figure 15).
"""

from repro.bits.float_bits import (
    bits_to_float,
    bits_to_int,
    float_to_bits,
    flip_float_bits,
    flip_int_bits,
    int_to_bits,
    wrap_i32,
    value_to_bits,
    bits_to_value,
)
from repro.bits.masks import (
    MaskGenerator,
    bit_count,
    decade_of,
    magnitude_change_bucket,
    random_mask,
    single_bit_mask,
    flip_f32_array,
)

__all__ = [
    "bits_to_float",
    "bits_to_int",
    "float_to_bits",
    "flip_float_bits",
    "flip_int_bits",
    "int_to_bits",
    "wrap_i32",
    "value_to_bits",
    "bits_to_value",
    "MaskGenerator",
    "bit_count",
    "decade_of",
    "magnitude_change_bucket",
    "random_mask",
    "single_bit_mask",
    "flip_f32_array",
]
