"""Scalar 32-bit reinterpretation helpers.

Kernel values live in Python native types for interpreter speed (see
DESIGN.md section 4); these helpers are the single place where values
cross into bit-pattern space.  Floats round-trip through IEEE-754
binary32, so a flipped exponent bit produces exactly the magnitude
excursion a real float32 register corruption would.
"""

from __future__ import annotations

import math
import struct

_PACK_F = struct.Struct("<f")
_PACK_I = struct.Struct("<i")
_PACK_U = struct.Struct("<I")
_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<Q")

_U32 = 0xFFFFFFFF
_I32_MIN = -(2**31)
_I32_MAX = 2**31 - 1

_F32_SIGN = 0x80000000
_F32_EXP = 0x7F800000
_F32_MANT = 0x007FFFFF
_F32_QUIET = 0x00400000


def wrap_i32(value: int) -> int:
    """Wrap an arbitrary Python int to signed 32-bit two's complement."""
    value &= _U32
    if value > _I32_MAX:
        value -= 1 << 32
    return value


def float_to_bits(value: float) -> int:
    """Reinterpret a float as its binary32 bit pattern (unsigned 32-bit).

    Values outside float32 range become +/-inf exactly as a float32
    register would hold them.  NaNs keep their binary32 payload — the
    top 23 mantissa bits of the float64 NaN, including a clear quiet
    bit — because the struct conversion path would silently set the
    quiet bit and break ``flip_float_bits`` involution for masks whose
    flip lands on a signaling-NaN pattern.
    """
    if value != value:
        dbits = _PACK_Q.unpack(_PACK_D.pack(value))[0]
        mant = (dbits >> 29) & _F32_MANT
        if mant == 0:
            # payload lives only in the low float64 bits: not
            # representable in binary32, collapse to the default qNaN
            mant = _F32_QUIET
        return ((dbits >> 32) & _F32_SIGN) | _F32_EXP | mant
    try:
        return _PACK_U.unpack(_PACK_F.pack(value))[0]
    except OverflowError:
        # float64 magnitude beyond binary32: saturates to signed infinity
        inf = math.inf if value > 0 else -math.inf
        return _PACK_U.unpack(_PACK_F.pack(inf))[0]


def bits_to_float(bits: int) -> float:
    """Reinterpret an unsigned 32-bit pattern as a binary32 float.

    NaN patterns are widened bitwise (payload shifted into the float64
    mantissa) instead of through a C float cast, which would quieten
    signaling NaNs and lose the distinction ``float_to_bits`` preserves.
    """
    bits &= _U32
    if bits & _F32_EXP == _F32_EXP and bits & _F32_MANT:
        dbits = ((bits & _F32_SIGN) << 32) | (0x7FF << 52) | ((bits & _F32_MANT) << 29)
        return _PACK_D.unpack(_PACK_Q.pack(dbits))[0]
    return _PACK_F.unpack(_PACK_U.pack(bits))[0]


def int_to_bits(value: int) -> int:
    """Two's-complement bit pattern of a (possibly negative) int."""
    return value & _U32


def bits_to_int(bits: int) -> int:
    """Signed 32-bit value of a bit pattern."""
    return wrap_i32(bits)


def flip_float_bits(value: float, mask: int) -> float:
    """XOR ``mask`` into the binary32 representation of ``value``."""
    return bits_to_float(float_to_bits(value) ^ (mask & _U32))


def flip_int_bits(value: int, mask: int) -> int:
    """XOR ``mask`` into the two's-complement representation of ``value``."""
    return wrap_i32(int_to_bits(value) ^ (mask & _U32))


def value_to_bits(value, is_float: bool) -> int:
    """Bit pattern of a kernel value given its static type.

    This is the operation behind the HAUBERK-NL checksum: the 4-byte
    aligned XOR of a variable's representation (Section V.A).
    """
    if is_float:
        return float_to_bits(float(value))
    return int_to_bits(int(value))


def bits_to_value(bits: int, is_float: bool):
    """Inverse of :func:`value_to_bits`."""
    if is_float:
        return bits_to_float(bits)
    return bits_to_int(bits)
