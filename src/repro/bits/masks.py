"""Error-mask generation and value-magnitude bucketing.

The paper's campaigns use *fifty randomly generated error masks per
variable* to emulate single- and multi-bit errors (Section VIII), and
Figure 15 buckets the post-fault change in FP magnitude by decade.
Everything here is seeded and deterministic.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.errors import InjectionError

_U32 = 0xFFFFFFFF


def bit_count(mask: int) -> int:
    """Number of set bits in a 32-bit mask."""
    return bin(mask & _U32).count("1")


def single_bit_mask(position: int) -> int:
    """Mask with exactly one bit set at ``position`` (0 = LSB)."""
    if not 0 <= position < 32:
        raise InjectionError(f"bit position {position} out of range [0, 32)")
    return 1 << position


def random_mask(rng: np.random.Generator, nbits: int) -> int:
    """Random 32-bit mask with exactly ``nbits`` distinct bits set."""
    if not 1 <= nbits <= 32:
        raise InjectionError(f"nbits {nbits} out of range [1, 32]")
    positions = rng.choice(32, size=nbits, replace=False)
    mask = 0
    for p in positions:
        mask |= 1 << int(p)
    return mask


class MaskGenerator:
    """Reproducible stream of error masks for a fault campaign.

    Mirrors Section VIII: "Fifty different error masks (randomly
    generated) are used for each variable in order to emulate single
    and multi-bit errors."
    """

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def masks(self, count: int, nbits: int) -> List[int]:
        """``count`` distinct-bit masks, each with ``nbits`` set bits."""
        return [random_mask(self._rng, nbits) for _ in range(count)]

    def mixed_masks(self, count: int, bit_choices: Sequence[int]) -> List[int]:
        """Masks whose bit counts are sampled uniformly from ``bit_choices``."""
        choices = list(bit_choices)
        if not choices:
            raise InjectionError("bit_choices must be non-empty")
        picks = self._rng.choice(len(choices), size=count)
        return [random_mask(self._rng, choices[int(i)]) for i in picks]


def decade_of(value: float) -> float:
    """Power-of-ten decade of ``|value|``; -inf for zero, inf for inf/nan.

    Used by the value-range profiler (values "in a single unit of power
    of 10s", Figure 10) and by the Figure 15 bucketing.
    """
    a = abs(value)
    if a == 0.0:
        return -math.inf
    if math.isinf(a) or math.isnan(a):
        return math.inf
    return math.floor(math.log10(a))


#: Figure 15 bucket edges for the magnitude of the value *change*.
MAGNITUDE_BUCKETS = (
    ("<1E-15", 0.0, 1e-15),
    ("1E-15~1E-9", 1e-15, 1e-9),
    ("1E-9~1E-6", 1e-9, 1e-6),
    ("1E-6~1E-3", 1e-6, 1e-3),
    ("1E-3~1E+3", 1e-3, 1e3),
    ("1E+3~1E+6", 1e3, 1e6),
    ("1E+6~1E+9", 1e6, 1e9),
    ("1E+9~1E+15", 1e9, 1e15),
    (">1E+15", 1e15, math.inf),
)


def magnitude_change_bucket(original: float, corrupted: float) -> str:
    """Figure 15 bucket label for the change in value after a fault.

    The change is measured as ``|corrupted - original|``; NaN/inf
    corruptions land in the top bucket (they are maximal excursions).
    """
    if math.isnan(corrupted) or math.isinf(corrupted):
        return MAGNITUDE_BUCKETS[-1][0]
    delta = abs(float(corrupted) - float(original))
    for label, lo, hi in MAGNITUDE_BUCKETS:
        if lo <= delta < hi:
            return label
    return MAGNITUDE_BUCKETS[-1][0]


def flip_f32_array(values: np.ndarray, masks: np.ndarray) -> np.ndarray:
    """Vectorized binary32 bit flip: ``values ^ masks`` element-wise.

    This is the fast path for the Figure 15 study, which the paper runs
    on 33 million randomly generated FP samples; a view-based XOR keeps
    it allocation-light per the scientific-Python guidance (in-place
    ops, views not copies).
    """
    vals = np.ascontiguousarray(values, dtype=np.float32)
    bits = vals.view(np.uint32) ^ np.asarray(masks, dtype=np.uint32)
    return bits.view(np.float32)
