"""Phase profiler: where campaign wall-clock actually goes.

``BENCH_campaign.json`` says *that* a PNS full campaign takes 12.5s and
a CP differential one 0.09s, but not *where* those seconds go — parse
and build?  golden recording?  replay?  journal I/O?  The
:class:`PhaseProfiler` answers that with a fixed phase taxonomy
(:data:`PHASES`), attributing wall-clock to each phase of the campaign
stack:

``parse_build``
    Kernel parse, translator build, and runtime prepare (warm-up).
``golden_record``
    The differential engine's fault-free recording launch.
``diff_replay``
    Single-thread differential replay of a trial.
``full_run``
    Full grid execution of a trial; labelled with the fallback
    ``reason`` (``differential_off``, ``replay_conflict``, kernel
    ineligibility reasons, ...).
``vector_run``
    Whole-grid array-program execution inside a launch (the
    vectorized engine), including any FI-targeted scalar replay.
``merge``
    The parent's deterministic result merge (absorb in spec order).
``journal_append``
    Durable journal writes.
``retry_backoff``
    Sleeps between resilient-map retry rounds.
``quarantine``
    Specs given up on (counted; no meaningful duration).

Observations land in three places:

* a campaign-local ``totals`` table (``{phase_key: [count, seconds]}``)
  that workers ship back with each chunk and the parent absorbs, so a
  campaign's ``profile.json`` is exact for any worker count;
* the process-wide metrics registry, as the
  ``repro_campaign_phase_seconds`` histogram labelled by ``phase`` /
  ``reason``;
* per-trial cost records on the existing trace-sink path
  (``profile.trial`` events), when a tracer is installed.

The module mirrors the tracer's process-global pattern: a zero-overhead
:class:`NullPhaseProfiler` is installed by default, call-sites resolve
the profiler at call time, and :class:`use_profiler` scopes a real one.
Overhead with profiling *on* is two ``perf_counter`` calls plus a few
dict updates per phase — measured at well under 5% on the CP w1-diff
configuration (the ``overhead`` entry of ``BENCH_campaign.json``).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs.events import get_tracer
from repro.obs.metrics import get_registry

PHASE_PARSE_BUILD = "parse_build"
PHASE_GOLDEN_RECORD = "golden_record"
PHASE_DIFF_REPLAY = "diff_replay"
PHASE_FULL_RUN = "full_run"
PHASE_VECTOR_RUN = "vector_run"
PHASE_MERGE = "merge"
PHASE_JOURNAL_APPEND = "journal_append"
PHASE_RETRY_BACKOFF = "retry_backoff"
PHASE_QUARANTINE = "quarantine"

#: The fixed phase taxonomy (docs/observability.md).
PHASES = (
    PHASE_PARSE_BUILD,
    PHASE_GOLDEN_RECORD,
    PHASE_DIFF_REPLAY,
    PHASE_FULL_RUN,
    PHASE_VECTOR_RUN,
    PHASE_MERGE,
    PHASE_JOURNAL_APPEND,
    PHASE_RETRY_BACKOFF,
    PHASE_QUARANTINE,
)

#: Buckets for ``repro_campaign_phase_seconds``: phases range from
#: sub-millisecond journal appends to multi-second golden recordings.
PHASE_SECONDS_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
)


def phase_key(phase: str, reason: str = "") -> str:
    """Flat totals key: ``"full_run:replay_conflict"`` / ``"merge"``."""
    return f"{phase}:{reason}" if reason else phase


def split_phase_key(key: str) -> tuple:
    """Inverse of :func:`phase_key`: ``(phase, reason)``."""
    phase, _, reason = key.partition(":")
    return phase, reason


class _PhaseHandle:
    """Context manager timing one phase occurrence."""

    __slots__ = ("profiler", "phase", "reason", "_t0")

    def __init__(self, profiler: "PhaseProfiler", phase: str, reason: str):
        self.profiler = profiler
        self.phase = phase
        self.reason = reason

    def __enter__(self) -> "_PhaseHandle":
        self._t0 = self.profiler._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.profiler.add(
            self.phase, self.profiler._clock() - self._t0, reason=self.reason
        )


class _NullPhase:
    """Shared no-op phase handle used by :class:`NullPhaseProfiler`."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_PHASE = _NullPhase()


class PhaseProfiler:
    """Attributes wall-clock to campaign phases; cheap enough to leave on.

    One instance is campaign-local: the parent owns one for the whole
    run, each fork worker owns one per process and ships per-chunk
    deltas back through :meth:`take_totals` / :meth:`absorb_totals`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 registry_histograms: bool = True):
        self._clock = clock
        self._registry_histograms = registry_histograms
        #: ``{phase_key: [count, seconds]}`` since the last take_totals().
        self.totals: Dict[str, List[float]] = {}
        self._trial: Optional[Dict[str, Any]] = None

    # -- phase accounting -------------------------------------------------
    def phase(self, phase: str, reason: str = "") -> _PhaseHandle:
        """Time a phase occurrence; use as a context manager."""
        return _PhaseHandle(self, phase, reason)

    def add(self, phase: str, seconds: float, reason: str = "",
            count: int = 1) -> None:
        """Record ``seconds`` of ``phase`` directly (known-duration work)."""
        key = phase_key(phase, reason)
        slot = self.totals.get(key)
        if slot is None:
            self.totals[key] = [count, seconds]
        else:
            slot[0] += count
            slot[1] += seconds
        trial = self._trial
        if trial is not None:
            phases = trial["phases"]
            phases[key] = phases.get(key, 0.0) + seconds
        if self._registry_histograms:
            get_registry().histogram(
                "repro_campaign_phase_seconds",
                "Wall-clock seconds attributed to campaign phases",
                buckets=PHASE_SECONDS_BUCKETS,
            ).observe(seconds, phase=phase, reason=reason)

    # -- per-trial cost records -------------------------------------------
    def begin_trial(self, index: int) -> None:
        """Start accumulating one trial's cost record."""
        self._trial = {
            "index": index, "phases": {}, "served": "", "reason": "",
            "t0": self._clock(),
        }

    def note_served(self, served: str, reason: str = "") -> None:
        """Tag the current trial with how it was served (diff/full)."""
        if self._trial is not None:
            self._trial["served"] = served
            self._trial["reason"] = reason

    def end_trial(self) -> Optional[Dict[str, Any]]:
        """Close the trial record; emit it on the trace-sink path.

        Returns the compact cost record (``index``, ``dur``, ``served``,
        ``reason``, per-phase seconds) shipped back in ``ChunkResult``
        and summarised by ``repro report``.
        """
        trial = self._trial
        if trial is None:
            return None
        self._trial = None
        record = {
            "index": trial["index"],
            "dur": self._clock() - trial["t0"],
            "served": trial["served"],
            "reason": trial["reason"],
            "phases": trial["phases"],
        }
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("profile.trial", **record)
        return record

    # -- cross-process aggregation ----------------------------------------
    def take_totals(self) -> Dict[str, List[float]]:
        """Return and reset the accumulated totals (per-chunk shipping)."""
        totals = self.totals
        self.totals = {}
        return totals

    def absorb_totals(self, totals: Dict[str, List[float]]) -> None:
        """Fold a shipped totals table into this profiler."""
        for key, (count, seconds) in totals.items():
            slot = self.totals.get(key)
            if slot is None:
                self.totals[key] = [count, seconds]
            else:
                slot[0] += count
                slot[1] += seconds

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready view of the totals (``profile.json`` payload)."""
        return {
            key: {"count": int(count), "seconds": seconds}
            for key, (count, seconds) in sorted(self.totals.items())
        }


class NullPhaseProfiler(PhaseProfiler):
    """Zero-overhead profiler: every operation is a no-op."""

    enabled = False

    def __init__(self):
        super().__init__(registry_histograms=False)

    def phase(self, phase: str, reason: str = "") -> _NullPhase:  # type: ignore[override]
        return _NULL_PHASE

    def add(self, phase: str, seconds: float, reason: str = "",
            count: int = 1) -> None:
        pass

    def begin_trial(self, index: int) -> None:
        pass

    def note_served(self, served: str, reason: str = "") -> None:
        pass

    def end_trial(self) -> None:  # type: ignore[override]
        return None


_default_profiler: PhaseProfiler = NullPhaseProfiler()


def get_profiler() -> PhaseProfiler:
    """The process-wide profiler (a no-op unless one is installed)."""
    return _default_profiler


def set_profiler(profiler: Optional[PhaseProfiler]) -> PhaseProfiler:
    """Install ``profiler`` globally (``None`` restores the no-op)."""
    global _default_profiler
    _default_profiler = profiler if profiler is not None else NullPhaseProfiler()
    return _default_profiler


class use_profiler:
    """Scoped profiler installation (mirrors ``use_tracer``)::

        with use_profiler(PhaseProfiler()) as prof:
            run_campaign(...)
        prof.snapshot()
    """

    def __init__(self, profiler: Optional[PhaseProfiler]):
        self.profiler = profiler
        self._previous: Optional[PhaseProfiler] = None

    def __enter__(self) -> PhaseProfiler:
        self._previous = get_profiler()
        if self.profiler is not None:
            set_profiler(self.profiler)
        return get_profiler()

    def __exit__(self, exc_type, exc, tb) -> None:
        set_profiler(self._previous)


def served_tag(cost: Optional[Dict[str, Any]]) -> Optional[str]:
    """Compact journal tag for a trial cost record.

    ``"diff"`` for a differential replay hit, ``"full:<reason>"`` for a
    full execution (reason may be empty), ``None`` when the trial was
    not profiled.
    """
    if not cost or not cost.get("served"):
        return None
    served = cost["served"]
    reason = cost.get("reason", "")
    return f"{served}:{reason}" if reason else served
