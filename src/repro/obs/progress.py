"""Live campaign progress: heartbeat records and a TTY progress line.

A fleet (ROADMAP item 3) cannot be operated blind: the parent needs to
know, while a campaign runs, how many trials have landed, at what rate,
and from which worker pids.  This module supplies the two halves:

:class:`Heartbeat`
    One liveness record.  Workers already ship per-chunk results over
    the fork-pool result channel; the parent's ``on_result`` hook turns
    each landed chunk into a heartbeat — monotonically increasing
    ``seq``, trials ``done`` / ``total``, per-outcome tallies, smoothed
    ``rate`` (trials/sec), ``elapsed`` seconds, and the worker ``pid``
    that produced the chunk.  Heartbeats are appended to
    ``heartbeats.jsonl`` next to the campaign journal (the lease /
    liveness primitive a fleet scheduler polls) and emitted as
    ``swifi.heartbeat`` tracer events.

:class:`ProgressRenderer`
    A ``--progress`` TTY line over a stream: bar, done/total,
    percentage, rate, ETA, and non-zero outcome tallies, redrawn in
    place with ``\\r`` and throttled to at most ~10 redraws/sec.

Neither half touches trial execution or result merging: campaigns with
progress enabled are bit-identical to campaigns without (covered by
``tests/test_flight_recorder.py``).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Optional

from repro.obs.events import get_tracer

#: Schema version stamped on every heartbeat record.
HEARTBEAT_VERSION = 1

#: File the monitor appends heartbeats to, next to ``journal.jsonl``.
HEARTBEAT_FILENAME = "heartbeats.jsonl"


@dataclass
class Heartbeat:
    """One liveness record (see docs/observability.md for the schema)."""

    #: Monotonically increasing per-campaign sequence number.
    seq: int
    #: Pid of the worker that produced the progress (parent pid for
    #: serial campaigns and replayed-journal credit).
    pid: int
    #: Trials finished so far, including journal-replayed ones.
    done: int
    #: Total trials the campaign will run.
    total: int
    #: Per-outcome tallies so far (outcome value -> count; zero counts
    #: omitted).
    outcomes: Dict[str, int]
    #: Smoothed throughput in trials/sec since the campaign started.
    rate: float
    #: Seconds since the monitor was opened.
    elapsed: float
    #: What produced this heartbeat: ``chunk``, ``serial``, ``replay``,
    #: ``lease``, or ``final``.
    source: str = "chunk"
    #: Fleet lease id the progress was produced under (``None`` outside
    #: fleet campaigns; see :mod:`repro.fleet`).  Lets an operator join
    #: ``heartbeats.jsonl`` against the coordinator's lease lifecycle.
    lease: Optional[str] = None

    def to_record(self) -> Dict[str, Any]:
        """JSON-ready form, stable key order."""
        record = {
            "v": HEARTBEAT_VERSION,
            "seq": self.seq,
            "pid": self.pid,
            "done": self.done,
            "total": self.total,
            "outcomes": dict(sorted(self.outcomes.items())),
            "rate": round(self.rate, 3),
            "elapsed": round(self.elapsed, 6),
            "source": self.source,
        }
        if self.lease is not None:
            record["lease"] = self.lease
        return record


class ProgressRenderer:
    """Renders heartbeats as a single redrawn progress line.

    Writes to ``stream`` (default ``sys.stderr``); the line is redrawn
    with ``\\r`` and cleared with a trailing newline on :meth:`close`.
    """

    def __init__(self, stream: Optional[IO[str]] = None, *, label: str = "",
                 width: int = 24, min_interval: float = 0.1,
                 clock=time.monotonic):
        if stream is None:
            import sys

            stream = sys.stderr
        self.stream = stream
        self.label = label
        self.width = width
        self.min_interval = min_interval
        self._clock = clock
        self._last_draw = 0.0
        self._last_len = 0
        self._drew = False

    def update(self, beat: Heartbeat) -> None:
        now = self._clock()
        final = beat.source == "final" or beat.done >= beat.total
        if not final and self._drew and now - self._last_draw < self.min_interval:
            return
        self._last_draw = now
        self._drew = True
        self._draw(beat)

    def _draw(self, beat: Heartbeat) -> None:
        total = max(beat.total, 1)
        frac = min(beat.done / total, 1.0)
        filled = int(frac * self.width)
        bar = "=" * filled + (">" if 0 < filled < self.width else "")
        bar = bar.ljust(self.width)
        if beat.rate > 0 and beat.done < beat.total:
            eta = f"eta {((beat.total - beat.done) / beat.rate):.1f}s"
        elif beat.done >= beat.total:
            eta = "done"
        else:
            eta = "eta ?"
        tallies = " ".join(
            f"{name}={count}"
            for name, count in sorted(beat.outcomes.items())
            if count
        )
        prefix = f"{self.label} " if self.label else ""
        line = (
            f"{prefix}[{bar}] {beat.done}/{beat.total} {frac * 100:3.0f}% "
            f"{beat.rate:.1f} trials/s {eta}"
        )
        if tallies:
            line = f"{line} {tallies}"
        pad = " " * max(self._last_len - len(line), 0)
        self._last_len = len(line)
        try:
            self.stream.write(f"\r{line}{pad}")
            self.stream.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        if self._drew:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass


@dataclass
class HeartbeatMonitor:
    """Parent-side progress accountant for one campaign.

    ``advance`` is called as results land — per chunk on the pooled
    path, per trial on the serial path (time-throttled so serial
    campaigns do not write one heartbeat per trial), and once for the
    journal-replayed prefix on resume.  Each emitted heartbeat fans out
    to the heartbeat file, the tracer, and the renderer.
    """

    total: int
    path: Optional[str] = None
    renderer: Optional[ProgressRenderer] = None
    #: Minimum seconds between *throttled* (serial-path) emissions.
    min_interval: float = 0.2
    clock: Any = time.monotonic

    seq: int = field(default=0, init=False)
    done: int = field(default=0, init=False)
    outcomes: Dict[str, int] = field(default_factory=dict, init=False)
    _t0: float = field(default=0.0, init=False)
    _last_emit: float = field(default=0.0, init=False)
    _pending: int = field(default=0, init=False)
    _file: Optional[IO[str]] = field(default=None, init=False)
    _closed: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        self._t0 = self.clock()
        if self.path is not None:
            self._file = open(self.path, "a", encoding="utf-8")

    def advance(self, count: int, outcomes: Optional[Dict[str, int]] = None,
                *, pid: Optional[int] = None, source: str = "chunk",
                lease: Optional[str] = None,
                force: bool = True) -> Optional[Heartbeat]:
        """Account ``count`` finished trials and maybe emit a heartbeat.

        ``force=False`` (serial path) batches updates until
        ``min_interval`` has passed; counts are never lost — only the
        emission is deferred.
        """
        if self._closed:
            return None
        self.done += count
        self._pending += count
        if outcomes:
            for name, tally in outcomes.items():
                if tally:
                    self.outcomes[name] = self.outcomes.get(name, 0) + tally
        now = self.clock()
        if not force and now - self._last_emit < self.min_interval:
            return None
        return self._emit(pid=pid, source=source, lease=lease, now=now)

    def close(self) -> None:
        """Emit the final heartbeat and release the heartbeat file."""
        if self._closed:
            return
        self._emit(pid=None, source="final", now=self.clock())
        self._closed = True
        if self._file is not None:
            self._file.close()
            self._file = None
        if self.renderer is not None:
            self.renderer.close()

    def _emit(self, *, pid: Optional[int], source: str,
              now: float, lease: Optional[str] = None) -> Heartbeat:
        self.seq += 1
        self._last_emit = now
        self._pending = 0
        elapsed = now - self._t0
        beat = Heartbeat(
            seq=self.seq,
            pid=pid if pid is not None else os.getpid(),
            done=self.done,
            total=self.total,
            outcomes=dict(self.outcomes),
            rate=self.done / elapsed if elapsed > 0 else 0.0,
            elapsed=elapsed,
            source=source,
            lease=lease,
        )
        record = beat.to_record()
        if self._file is not None:
            self._file.write(json.dumps(record, sort_keys=True) + "\n")
            self._file.flush()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("swifi.heartbeat", **record)
        if self.renderer is not None:
            self.renderer.update(beat)
        return beat
