"""Counters, gauges, and fixed-bucket histograms with text exposition.

A :class:`MetricsRegistry` is a named collection of metrics; every
metric supports labels supplied at observation time::

    reg = MetricsRegistry()
    launches = reg.counter("repro_launch_total", "Kernel launches")
    launches.inc(kernel="cp_kernel")
    reg.render_prometheus()   # -> Prometheus text format
    reg.as_dict()             # -> JSON-ready nested dict

Dependency-free by design (the paper's detectors live *inside* the
measured system; so does this layer).  The module keeps one
process-wide registry so instrumented call-sites share a namespace;
tests swap it with :func:`set_registry` / :func:`fresh_registry`.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets: latency-ish spread covering both seconds
#: (translator passes) and unit fractions (loop time shares).
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _labelkey(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _labelstr(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Metric:
    """Base metric: a name, a help string, and per-labelset samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._samples: Dict[LabelKey, Any] = {}

    def labelsets(self) -> List[Dict[str, str]]:
        return [dict(key) for key in self._samples]

    # subclasses implement value access / rendering
    def _render_samples(self) -> Iterable[str]:
        raise NotImplementedError

    def _json_samples(self) -> List[Dict[str, Any]]:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count (floats allowed: cycle totals)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = _labelkey(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._samples.get(_labelkey(labels), 0.0)

    def _render_samples(self) -> Iterable[str]:
        for key in sorted(self._samples):
            yield f"{self.name}{_labelstr(key)} {_fmt(self._samples[key])}"

    def _json_samples(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": self._samples[key]}
            for key in sorted(self._samples)
        ]


class Gauge(Metric):
    """Point-in-time value that can move both ways."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._samples[_labelkey(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _labelkey(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._samples.get(_labelkey(labels), 0.0)

    def _render_samples(self) -> Iterable[str]:
        for key in sorted(self._samples):
            yield f"{self.name}{_labelstr(key)} {_fmt(self._samples[key])}"

    def _json_samples(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": self._samples[key]}
            for key in sorted(self._samples)
        ]


class Histogram(Metric):
    """Fixed-bucket histogram: cumulative bucket counts + sum + count."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {self.name} needs at least one bucket")
        self.buckets = tuple(bounds)

    def observe(self, value: float, **labels: Any) -> None:
        key = _labelkey(labels)
        state = self._samples.get(key)
        if state is None:
            state = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
            self._samples[key] = state
        idx = bisect_left(self.buckets, value)
        if idx < len(self.buckets):
            state["counts"][idx] += 1
        state["sum"] += value
        state["count"] += 1

    def _absorb(self, labels: Dict[str, Any], counts: Sequence[int],
                sum_: float, count: int) -> None:
        """Add pre-bucketed counts from a snapshot (registry merging)."""
        if len(counts) != len(self.buckets):
            raise ValueError(
                f"histogram {self.name}: snapshot has {len(counts)} buckets, "
                f"expected {len(self.buckets)}"
            )
        key = _labelkey(labels)
        state = self._samples.get(key)
        if state is None:
            state = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
            self._samples[key] = state
        for i, n in enumerate(counts):
            state["counts"][i] += n
        state["sum"] += sum_
        state["count"] += count

    def count(self, **labels: Any) -> int:
        state = self._samples.get(_labelkey(labels))
        return state["count"] if state else 0

    def sum(self, **labels: Any) -> float:
        state = self._samples.get(_labelkey(labels))
        return state["sum"] if state else 0.0

    def _render_samples(self) -> Iterable[str]:
        for key in sorted(self._samples):
            state = self._samples[key]
            cumulative = 0
            for bound, n in zip(self.buckets, state["counts"]):
                cumulative += n
                le = dict(key)
                le["le"] = _fmt(float(bound))
                yield f"{self.name}_bucket{_labelstr(_labelkey(le))} {cumulative}"
            inf = dict(key)
            inf["le"] = "+Inf"
            yield f"{self.name}_bucket{_labelstr(_labelkey(inf))} {state['count']}"
            yield f"{self.name}_sum{_labelstr(key)} {_fmt(state['sum'])}"
            yield f"{self.name}_count{_labelstr(key)} {state['count']}"

    def _json_samples(self) -> List[Dict[str, Any]]:
        out = []
        for key in sorted(self._samples):
            state = self._samples[key]
            out.append({
                "labels": dict(key),
                "buckets": {
                    _fmt(float(b)): n
                    for b, n in zip(self.buckets, state["counts"])
                },
                "sum": state["sum"],
                "count": state["count"],
            })
        return out


class MetricsRegistry:
    """Named collection of metrics with idempotent constructors."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def _register(self, cls, name: str, help: str, **kwargs) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -- export ----------------------------------------------------------
    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric._render_samples())
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> Dict[str, Any]:
        return {
            name: {
                "type": metric.kind,
                "help": metric.help,
                "samples": metric._json_samples(),
            }
            for name, metric in sorted(self._metrics.items())
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    # -- merging -----------------------------------------------------------
    def merge_dict(self, snapshot: Dict[str, Any]) -> None:
        """Fold a JSON snapshot (:meth:`as_dict` output) into this registry.

        The primitive behind per-worker metrics aggregation: campaign
        workers record into fresh registries, ship ``as_dict()``
        snapshots back, and the parent merges them in chunk order.
        Counters and histograms *add*; gauges take the incoming value
        (last merge wins — deterministic given a deterministic merge
        order); histogram bucket bounds must match exactly.
        """
        for name, data in snapshot.items():
            kind = data.get("type")
            help_text = data.get("help", "")
            samples = data.get("samples", [])
            if kind == "counter":
                counter = self.counter(name, help_text)
                for sample in samples:
                    counter.inc(sample["value"], **sample["labels"])
            elif kind == "gauge":
                gauge = self.gauge(name, help_text)
                for sample in samples:
                    gauge.set(sample["value"], **sample["labels"])
            elif kind == "histogram":
                for sample in samples:
                    # A JSON round trip may reorder the bucket keys
                    # (e.g. ``sort_keys=True`` orders "10.0" before
                    # "2.5"), so counts must be re-paired with their
                    # numeric bounds before comparing or absorbing —
                    # trusting dict order here used to misalign counts.
                    pairs = sorted(
                        (float(bound), count)
                        for bound, count in sample["buckets"].items()
                    )
                    bounds = tuple(bound for bound, _ in pairs)
                    histogram = self.histogram(name, help_text, buckets=bounds)
                    if histogram.buckets != bounds:
                        raise ValueError(
                            f"cannot merge histogram {name!r}: bucket "
                            f"mismatch (registry has {histogram.buckets}, "
                            f"snapshot has {bounds})"
                        )
                    histogram._absorb(
                        sample["labels"],
                        [count for _, count in pairs],
                        sample["sum"],
                        sample["count"],
                    )
            else:
                raise ValueError(f"cannot merge metric {name!r} of kind {kind!r}")


_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry shared by all instrumented call-sites."""
    return _default_registry


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` globally (``None`` installs a fresh one)."""
    global _default_registry
    _default_registry = registry if registry is not None else MetricsRegistry()
    return _default_registry


def fresh_registry() -> MetricsRegistry:
    """Replace the global registry with an empty one (test isolation)."""
    return set_registry(MetricsRegistry())
