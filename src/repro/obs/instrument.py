"""Instrumentation helpers binding the framework's hot paths to obs.

Call-sites in ``gpu/runtime.py``, ``swifi/campaign.py``,
``core/guardian.py``, ``core/translator.py``, and ``core/recovery.py``
invoke these one-liners; each resolves the process-wide tracer and
registry at call time, so everything stays a no-op-speed path under the
default :class:`~repro.obs.events.NullTracer` and costs one dict update
per observation when enabled.

Metric namespace (all Prometheus-style, prefix ``repro_``):

==========================================  =========  =======================
name                                        kind       labels
==========================================  =========  =======================
repro_launch_total                          counter    kernel
repro_launch_cycles_total                   counter    kernel
repro_launch_failures_total                 counter    kernel, kind
repro_launch_loop_fraction                  histogram  kernel
repro_launch_spill_factor                   gauge      kernel
repro_kir_vectorized_launches_total         counter    kernel
repro_kir_vector_fallbacks_total            counter    kernel, reason
repro_trial_outcomes_total                  counter    outcome
repro_trial_activation_ratio                gauge      --
repro_trial_site_faults                     histogram  --
repro_campaigns_total                       counter    --
repro_swifi_parallel_workers                gauge      --
repro_swifi_chunks_total                    counter    --
repro_swifi_diff_hits_total                 counter    --
repro_swifi_diff_fallbacks_total            counter    reason
repro_swifi_journal_replayed_total          counter    --
repro_swifi_journal_appends_total           counter    --
repro_swifi_plan_strata_total               counter    --
repro_swifi_plan_trials_saved_total         counter    --
repro_swifi_sections_stale_total            counter    --
repro_swifi_worker_deaths_total             counter    phase
repro_swifi_retry_rounds_total              counter    --
repro_swifi_quarantined_total               counter    --
repro_swifi_trial_timeouts_total            counter    --
repro_fleet_leases_total                    counter    event
repro_fleet_queue_depth                     gauge      --
repro_fleet_workers                         gauge      --
repro_guardian_attempts_total               counter    --
repro_guardian_restarts_total               counter    --
repro_guardian_hang_kills_total             counter    --
repro_guardian_bist_runs_total              counter    --
repro_guardian_migrations_total             counter    --
repro_guardian_checkpoint_restores_total    counter    --
repro_guardian_watchdog_budget              gauge      --
repro_alpha_adjustments_total               counter    direction
repro_alpha_value                           gauge      --
repro_translator_passes_total               counter    mode
repro_translator_statements_added_total     rule       (loop|nonloop|fi_hook)
repro_translator_seconds                    histogram  mode
repro_campaign_phase_seconds                histogram  phase, reason
repro_obs_trace_dropped_total               counter    --
==========================================  =========  =======================

The last two are recorded outside this module:
``repro_campaign_phase_seconds`` by :mod:`repro.obs.profile` (one
observation per profiled campaign phase occurrence) and
``repro_obs_trace_dropped_total`` by
:class:`repro.obs.events.RingBufferSink` (one increment per record
evicted from a full ring buffer).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional

from repro.obs.events import get_tracer
from repro.obs.metrics import get_registry

#: Unit-interval buckets for fraction-valued histograms (loop share).
FRACTION_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0)

#: Site-id buckets for the per-site fault histogram; kernels here have
#: tens of virtual-variable sites, so narrow low buckets resolve them.
SITE_BUCKETS = (4, 8, 12, 16, 24, 32, 48, 64, 96, 128)

#: Sub-second buckets for translator pass timing.
SECONDS_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1.0)


def traced(name: Optional[str] = None, **static_attrs: Any) -> Callable:
    """Decorator wrapping a callable in a tracer span.

    The span name defaults to the function's qualified name; extra
    keyword attributes are attached to every span.
    """

    def deco(fn: Callable) -> Callable:
        span_name = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with get_tracer().span(span_name, **static_attrs):
                return fn(*args, **kwargs)

        return wrapper

    return deco


# -- kernel launches (gpu/runtime.py) -----------------------------------

def record_launch(result) -> None:
    """One successful :class:`~repro.gpu.runtime.LaunchResult`."""
    reg = get_registry()
    kernel = result.kernel_name
    reg.counter("repro_launch_total", "Kernel launches").inc(kernel=kernel)
    reg.counter(
        "repro_launch_cycles_total", "Simulated thread-cycles across launches"
    ).inc(result.total_cycles, kernel=kernel)
    reg.histogram(
        "repro_launch_loop_fraction", "Fraction of launch cycles inside loops",
        buckets=FRACTION_BUCKETS,
    ).observe(result.loop_fraction, kernel=kernel)
    reg.gauge(
        "repro_launch_spill_factor", "Register-spill slowdown of the last launch"
    ).set(result.spill_factor, kernel=kernel)


def record_launch_failure(kernel_name: str, kind: str) -> None:
    """A crash/hang the GPU runtime or watchdog detected."""
    get_registry().counter(
        "repro_launch_failures_total", "Kernel launches ending in crash or hang"
    ).inc(kernel=kernel_name, kind=kind)


def record_vectorized_launch(kernel_name: str) -> None:
    """One launch served end-to-end by the vectorized engine."""
    get_registry().counter(
        "repro_kir_vectorized_launches_total",
        "Kernel launches served by the vectorized array-program engine",
    ).inc(kernel=kernel_name)


def record_vector_fallback(kernel_name: str, reason: str) -> None:
    """One launch the vectorized engine declined or abandoned.

    ``reason`` is the fallback taxonomy of
    :mod:`repro.kir.interp.vector`: static obstacles (``uses_sync``,
    ``shared_memory``, ``atomics``), gating (``library``,
    ``recorder``), or runtime bailouts (``lane_failure``,
    ``cross_lane_hazard``, ``replay_hazard``, ``replay_failure``,
    ``untracked_address``, ``divergence_analysis``).
    """
    get_registry().counter(
        "repro_kir_vector_fallbacks_total",
        "Kernel launches that fell back from the vectorized engine",
    ).inc(kernel=kernel_name, reason=reason)


# -- fault-injection campaigns (swifi/campaign.py) ----------------------

def record_trial(outcome, spec) -> None:
    """One classified campaign trial."""
    reg = get_registry()
    reg.counter(
        "repro_trial_outcomes_total", "Campaign trials by outcome class"
    ).inc(outcome=outcome.value)
    if spec is not None:
        reg.histogram(
            "repro_trial_site_faults", "Injected faults by virtual-variable site",
            buckets=SITE_BUCKETS,
        ).observe(spec.site)


def record_campaign(result) -> None:
    """Campaign-level aggregates from a finished CampaignResult."""
    reg = get_registry()
    summary = result.summary()
    reg.counter("repro_campaigns_total", "Completed FI campaigns").inc()
    reg.gauge(
        "repro_trial_activation_ratio",
        "Activated-fault fraction of the last campaign",
    ).set(summary["activation_ratio"])


def record_parallel_campaign(workers: int, chunks: int) -> None:
    """A campaign dispatched to a worker pool (swifi/parallel.py)."""
    reg = get_registry()
    reg.gauge(
        "repro_swifi_parallel_workers",
        "Worker processes of the last parallel campaign",
    ).set(workers)
    reg.counter(
        "repro_swifi_chunks_total", "Campaign spec chunks dispatched to workers"
    ).inc(chunks)


def record_differential_trial(hit: bool, reason: str = "") -> None:
    """One trial routed by the differential engine (swifi/differential.py).

    ``hit`` means the trial was served by single-thread replay; a miss
    fell back to full execution for ``reason`` (kernel ineligibility,
    footprint conflicts, or a per-trial ``replay_conflict``).
    """
    reg = get_registry()
    if hit:
        reg.counter(
            "repro_swifi_diff_hits_total",
            "Campaign trials served by differential single-thread replay",
        ).inc()
    else:
        reg.counter(
            "repro_swifi_diff_fallbacks_total",
            "Campaign trials that fell back to full execution",
        ).inc(reason=reason or "ineligible")


def record_journal_activity(replayed: int = 0, appended: int = 0) -> None:
    """Journal traffic of one campaign (swifi/journal.py).

    ``replayed`` counts trials served from a resumed journal instead of
    re-executed; ``appended`` counts fresh records flushed to disk.
    """
    reg = get_registry()
    if replayed:
        reg.counter(
            "repro_swifi_journal_replayed_total",
            "Campaign trials replayed from a resumed journal",
        ).inc(replayed)
    if appended:
        reg.counter(
            "repro_swifi_journal_appends_total",
            "Trial records appended to campaign journals",
        ).inc(appended)


def record_plan(strata: int, trials_saved: int) -> None:
    """One stratified campaign plan built (swifi/planner.py).

    ``strata`` is the number of equivalence classes the spec population
    partitioned into; ``trials_saved`` the population minus the sampled
    budget — the enumeration the planner avoided executing.
    """
    reg = get_registry()
    reg.counter(
        "repro_swifi_plan_strata_total",
        "Strata across stratified campaign plans",
    ).inc(strata)
    if trials_saved:
        reg.counter(
            "repro_swifi_plan_trials_saved_total",
            "Enumerated trials skipped by stratified campaign plans",
        ).inc(trials_saved)


def record_stale_sections(count: int) -> None:
    """Sections invalidated during an incremental journal adoption."""
    if count:
        get_registry().counter(
            "repro_swifi_sections_stale_total",
            "Kernel sections found stale during incremental resume",
        ).inc(count)


def record_worker_death(phase: str, count: int = 1) -> None:
    """Worker-pool deaths observed by the resilient mapper.

    ``phase`` is ``shared`` (death in the common pool, blame unknown) or
    ``isolated`` (death in a single-worker blame pool, spec convicted).
    """
    get_registry().counter(
        "repro_swifi_worker_deaths_total",
        "Worker process deaths during resilient campaign mapping",
    ).inc(count, phase=phase)


def record_retry_round() -> None:
    """One backoff-and-retry round of the resilient mapper."""
    get_registry().counter(
        "repro_swifi_retry_rounds_total",
        "Retry rounds of the resilient campaign mapper",
    ).inc()


def record_quarantine() -> None:
    """One spec quarantined after repeatedly killing workers."""
    get_registry().counter(
        "repro_swifi_quarantined_total",
        "Fault specs quarantined for killing worker processes",
    ).inc()


def record_trial_timeout() -> None:
    """One trial degraded to the hang class by the wall-clock deadline."""
    get_registry().counter(
        "repro_swifi_trial_timeouts_total",
        "Campaign trials that exceeded the per-trial wall-clock budget",
    ).inc()


# -- campaign fleet service (repro/fleet) --------------------------------

def record_lease(event: str, count: int = 1) -> None:
    """One fleet lease lifecycle event.

    ``event`` is ``granted`` (a chunk handed to a worker), ``completed``
    (its result landed), ``expired`` (the TTL lapsed without a result —
    the fleet's worker-death signal), or ``reissued`` (an expired
    chunk requeued for another worker).
    """
    get_registry().counter(
        "repro_fleet_leases_total",
        "Fleet chunk-lease lifecycle events",
    ).inc(count, event=event)


def record_fleet_queue_depth(depth: int) -> None:
    """Chunks waiting for a worker lease on the fleet coordinator."""
    get_registry().gauge(
        "repro_fleet_queue_depth",
        "Unleased campaign chunks queued on the fleet coordinator",
    ).set(depth)


def record_fleet_workers(count: int) -> None:
    """Distinct workers the coordinator has seen for the current run."""
    get_registry().gauge(
        "repro_fleet_workers",
        "Distinct fleet workers that have requested leases",
    ).set(count)


# -- guardian supervision (core/guardian.py) ----------------------------

def record_guardian_budget(budget: int) -> None:
    get_registry().gauge(
        "repro_guardian_watchdog_budget",
        "Per-thread statement budget of the current watchdog window",
    ).set(budget)


def record_guardian_report(report) -> None:
    """Counters from one finished :class:`GuardianReport`."""
    reg = get_registry()
    pairs = (
        ("repro_guardian_attempts_total", "Supervised launch attempts",
         report.attempts),
        ("repro_guardian_restarts_total", "Guardian-driven restarts",
         report.restarts),
        ("repro_guardian_hang_kills_total", "Watchdog hang kills",
         report.hang_kills),
        ("repro_guardian_bist_runs_total", "BIST diagnoses triggered",
         report.bist_runs),
        ("repro_guardian_migrations_total", "Device migrations",
         report.migrations),
        ("repro_guardian_checkpoint_restores_total", "Checkpoint restores",
         report.checkpoint_restores),
    )
    for name, help_text, amount in pairs:
        if amount:
            reg.counter(name, help_text).inc(amount)


# -- alpha recalibration (core/recovery.py) -----------------------------

def record_alpha_adjustment(old: float, new: float) -> None:
    reg = get_registry()
    reg.gauge("repro_alpha_value", "Current range-scaling alpha").set(new)
    if new != old:
        direction = "up" if new > old else "down"
        reg.counter(
            "repro_alpha_adjustments_total",
            "Alpha recalibrations by the false-positive controller",
        ).inc(direction=direction)
        get_tracer().event("alpha.adjust", old=old, new=new, direction=direction)


# -- translator passes (core/translator.py) -----------------------------

def record_translator_pass(mode: str, kernel_name: str, seconds: float,
                           statements_added) -> None:
    """One translator build: mode, wall time, per-rule statement deltas."""
    reg = get_registry()
    reg.counter(
        "repro_translator_passes_total", "Translator builds by mode"
    ).inc(mode=mode)
    reg.histogram(
        "repro_translator_seconds", "Wall-clock seconds per translator build",
        buckets=SECONDS_BUCKETS,
    ).observe(seconds, mode=mode)
    added = reg.counter(
        "repro_translator_statements_added_total",
        "Statements added to kernels by instrumentation rule",
    )
    for rule, count in statements_added.items():
        if count:
            added.inc(count, rule=rule)
    get_tracer().event(
        "translator.build", mode=mode, kernel=kernel_name,
        seconds=seconds, **{f"added_{r}": c for r, c in statements_added.items()},
    )
