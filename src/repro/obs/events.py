"""Structured tracing: spans, events, and pluggable sinks.

A :class:`Tracer` emits flat JSON-serializable records describing what
the framework did and when.  Two record types exist:

``span``
    A named, timed region with ``span_id`` / ``parent_id`` links and a
    monotonic ``t_start`` / ``t_end`` pair (seconds since the tracer's
    epoch).  Spans nest: a child span opened inside a parent's ``with``
    block carries the parent's id.  The record is emitted when the span
    closes, so ``dur`` is always present.

``event``
    A point-in-time observation attached to the currently open span
    (``span_id`` is ``None`` at top level).

Sinks decide where records go: :class:`JsonlSink` appends one JSON
object per line to a file, :class:`RingBufferSink` keeps the last *N*
records in memory (cheap always-on flight recorder), and
:class:`NullSink` drops everything.

The module keeps one process-wide tracer (default: :class:`NullTracer`,
whose ``span``/``event`` are no-ops) so instrumented call-sites never
need a tracer argument; swap it with :func:`set_tracer` or scoped
:func:`use_tracer`.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional


class TraceSink:
    """Destination for trace records; subclasses override :meth:`emit`."""

    def emit(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any held resources (files); idempotent."""


class NullSink(TraceSink):
    """Swallows every record."""

    def emit(self, record: Dict[str, Any]) -> None:
        pass


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` records in memory.

    Overflow is not silent: each record evicted to make room is counted
    on :attr:`dropped` and on the ``repro_obs_trace_dropped_total``
    counter, so a truncated worker trace is visible in the metrics
    export instead of just being mysteriously short.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._records: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    def emit(self, record: Dict[str, Any]) -> None:
        if len(self._records) == self.capacity:
            self.dropped += 1
            from repro.obs.metrics import get_registry

            get_registry().counter(
                "repro_obs_trace_dropped_total",
                "Trace records evicted from ring buffer sinks",
            ).inc()
        self._records.append(record)

    @property
    def records(self) -> List[Dict[str, Any]]:
        return list(self._records)

    def clear(self) -> None:
        """Discard buffered records (the drop counter is *not* reset)."""
        self._records.clear()


class JsonlSink(TraceSink):
    """Appends one JSON object per line to ``path``."""

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")

    def emit(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, default=str))
        self._fh.write("\n")

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


class _SpanHandle:
    """Context manager for one open span; attributes may be added late."""

    __slots__ = ("tracer", "name", "span_id", "parent_id", "t_start", "attrs")

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: Optional[int], t_start: float, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t_start = t_start
        self.attrs = attrs

    def set(self, **attrs: Any) -> "_SpanHandle":
        """Attach more attributes to the span before it closes."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._close_span(self)


class _NullSpan:
    """Shared no-op span handle used by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Emits span/event records to one sink with monotonic timing."""

    enabled = True

    def __init__(self, sink: Optional[TraceSink] = None,
                 clock: Callable[[], float] = time.perf_counter):
        self.sink = sink if sink is not None else RingBufferSink()
        self._clock = clock
        self._epoch = clock()
        self._next_id = 1
        self._stack: List[_SpanHandle] = []

    # -- time ------------------------------------------------------------
    def now(self) -> float:
        """Seconds since this tracer was created (monotonic)."""
        return self._clock() - self._epoch

    # -- spans -----------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a nested span; use as a context manager."""
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1].span_id if self._stack else None
        handle = _SpanHandle(self, name, span_id, parent_id, self.now(), attrs)
        self._stack.append(handle)
        return handle

    def _close_span(self, handle: _SpanHandle) -> None:
        # tolerate out-of-order exits (generators, leaked handles): pop
        # everything above the closing span so nesting stays consistent
        while self._stack and self._stack[-1] is not handle:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        t_end = self.now()
        self.sink.emit({
            "type": "span",
            "name": handle.name,
            "span_id": handle.span_id,
            "parent_id": handle.parent_id,
            "t_start": handle.t_start,
            "t_end": t_end,
            "dur": t_end - handle.t_start,
            "attrs": handle.attrs,
        })

    # -- events ----------------------------------------------------------
    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event attached to the innermost open span."""
        self.sink.emit({
            "type": "event",
            "name": name,
            "span_id": self._stack[-1].span_id if self._stack else None,
            "t": self.now(),
            "attrs": attrs,
        })

    def close(self) -> None:
        self.sink.close()


class NullTracer(Tracer):
    """Zero-overhead tracer: every operation is a no-op.

    Instrumented call-sites hold ``get_tracer()`` results only for the
    duration of one call, so installing a real tracer takes effect on
    the very next launch/trial/build.
    """

    enabled = False

    def __init__(self):
        super().__init__(NullSink())

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass


_default_tracer: Tracer = NullTracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (a :class:`NullTracer` unless installed)."""
    return _default_tracer


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` globally (``None`` restores the NullTracer)."""
    global _default_tracer
    _default_tracer = tracer if tracer is not None else NullTracer()
    return _default_tracer


class use_tracer:
    """Scoped tracer installation::

        with use_tracer(Tracer(JsonlSink("run.jsonl"))) as t:
            prog.run(...)
    """

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = get_tracer()
        set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> None:
        set_tracer(self._previous)


def validate_trace(records: List[Dict[str, Any]]) -> None:
    """Check span records for well-formed nesting; raises ValueError.

    Every span's ``parent_id`` must reference an emitted span whose
    interval contains the child's interval.  Used by tests and by
    ``python -m repro`` when ``--trace`` verification is requested.
    """
    spans = {r["span_id"]: r for r in records if r.get("type") == "span"}
    for rec in spans.values():
        if rec["t_end"] < rec["t_start"]:
            raise ValueError(f"span {rec['span_id']} ends before it starts")
        parent = rec.get("parent_id")
        if parent is None:
            continue
        if parent not in spans:
            raise ValueError(f"span {rec['span_id']} has unknown parent {parent}")
        prec = spans[parent]
        if rec["t_start"] < prec["t_start"] or rec["t_end"] > prec["t_end"]:
            raise ValueError(
                f"span {rec['span_id']} [{rec['t_start']}, {rec['t_end']}] "
                f"escapes parent {parent} [{prec['t_start']}, {prec['t_end']}]"
            )
