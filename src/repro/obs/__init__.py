"""``repro.obs`` — dependency-free observability for the whole stack.

Six small modules:

* :mod:`repro.obs.events` — structured tracing: a process-wide
  :class:`Tracer` emitting span/event records into pluggable sinks
  (JSON-lines file, in-memory ring buffer, null).
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms with Prometheus text exposition
  and JSON export.
* :mod:`repro.obs.instrument` — the helpers the instrumented layers
  (GPU runtime, SWIFI campaigns, guardian, translator, recovery) call.
* :mod:`repro.obs.profile` — the campaign :class:`PhaseProfiler`
  attributing wall-clock to a fixed phase taxonomy (parse/build, golden
  recording, replay, fallback, merge, journal, retry, quarantine).
* :mod:`repro.obs.progress` — heartbeat records and the ``--progress``
  TTY renderer.
* :mod:`repro.obs.report` — the ``repro report`` post-mortem generator
  joining journal, heartbeats, profile, and trace into one document.

The default tracer is a :class:`NullTracer` whose operations are
no-ops, so instrumented code paths run at full speed until someone
installs a real tracer with :func:`set_tracer` / :func:`use_tracer`;
the profiler mirrors the same pattern with :class:`NullPhaseProfiler`.
See ``docs/observability.md`` for the record schema and metric names.
"""

from repro.obs.events import (
    JsonlSink,
    NullSink,
    NullTracer,
    RingBufferSink,
    TraceSink,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
    validate_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    fresh_registry,
    get_registry,
    set_registry,
)
from repro.obs.instrument import traced
from repro.obs.profile import (
    PHASES,
    NullPhaseProfiler,
    PhaseProfiler,
    get_profiler,
    set_profiler,
    use_profiler,
)
from repro.obs.progress import Heartbeat, HeartbeatMonitor, ProgressRenderer

__all__ = [
    "Tracer",
    "NullTracer",
    "TraceSink",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "validate_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "fresh_registry",
    "traced",
    "PHASES",
    "PhaseProfiler",
    "NullPhaseProfiler",
    "get_profiler",
    "set_profiler",
    "use_profiler",
    "Heartbeat",
    "HeartbeatMonitor",
    "ProgressRenderer",
]
