"""``repro report`` — deterministic post-mortem of a journaled run.

A campaign run directory accumulates flight-recorder artifacts — the
trial journal (:mod:`repro.swifi.journal`), heartbeats and phase totals
(:mod:`repro.obs.progress` / :mod:`repro.obs.profile`), and optionally
a trace JSONL — but each answers only one question.  This module joins
them into one report an operator can read after the fact:

* **Outcome summary** per campaign, reconstructed from the journal in
  original spec order and matching ``CampaignResult.summary()``
  bit-for-bit (same tallies, same ratio arithmetic, same zero-trial
  guard).
* **Differential attribution**: how many trials were served by replay
  vs. the full path, broken down by fallback reason (from the
  journal's served-by tags, so a killed-and-resumed run reports the
  same attribution as an uninterrupted one).
* **Quarantine blame timeline**: every quarantined spec with its death
  count, retry round, and note.
* **Time-where-it-went**: per-phase wall-clock from ``profile.json``,
  heartbeat-derived wall time and throughput, and (with ``--trace``)
  span aggregates from a trace file.

Everything is deterministic: campaigns are ordered by fingerprint
directory, all maps are sorted, and no wall-clock timestamps are
stamped into the output — rerunning ``repro report`` on the same run
directory yields byte-identical bytes.  The timing section reflects
the *recorded* run (static files), so it is rerun-stable too; pass
``include_timing=False`` to compare runs that executed at different
speeds (e.g. resumed vs. uninterrupted).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import InjectionError
from repro.obs.profile import split_phase_key
from repro.swifi.journal import CampaignJournal, JournalRecord
from repro.swifi.outcomes import Outcome

REPORT_VERSION = 1


def _summarize_records(records: List[JournalRecord]) -> Dict[str, Any]:
    """``CampaignResult.summary()`` reconstructed from journal records.

    Mirrors the arithmetic exactly: integer tallies per outcome class,
    ``activation_ratio`` as mean of the activated flags over *executed*
    trials (quarantined ``WORKER_KILLED`` placeholders never observed
    activation and are excluded from the denominator, exactly as
    ``CampaignResult.activation_ratio`` excludes them), and every
    ratio 0.0 on a zero-trial campaign.
    """
    counts = {o.value: 0 for o in Outcome}
    activated = 0
    quarantined = 0
    for record in records:
        counts[record.outcome] = counts.get(record.outcome, 0) + 1
        if record.observation is None:
            quarantined += 1
        elif record.observation.activated:
            activated += 1
    total = len(records)
    executed = total - counts[Outcome.WORKER_KILLED.value]
    empty = not total
    undetected = counts[Outcome.UNDETECTED.value]
    sdc_ratio = undetected / total if total else 0.0
    return {
        "trials": total,
        "outcomes": counts,
        "activation_ratio": activated / executed if executed else 0.0,
        "coverage": 0.0 if empty else 1.0 - sdc_ratio,
        "sdc_ratio": sdc_ratio,
        "failure_ratio": counts[Outcome.FAILURE.value] / total if total else 0.0,
        "quarantined": quarantined,
    }


def _section_table(
    records: List[JournalRecord], confidence: float = 0.95
) -> Dict[str, Any]:
    """Per-section outcome rates with Wilson CIs, from section tags.

    Records without a section tag (pre-section journals, program-less
    campaigns) are grouped under ``"?"``; sections are reported in
    name order for determinism.  Quarantined placeholders are excluded
    from the rate denominators (operational, not fault-model).
    """
    from repro.swifi.planner import wilson_interval

    killed = Outcome.WORKER_KILLED.value
    by_section: Dict[str, List[JournalRecord]] = {}
    for record in records:
        by_section.setdefault(record.section or "?", []).append(record)
    table: Dict[str, Any] = {}
    for section in sorted(by_section):
        group = [r for r in by_section[section] if r.outcome != killed]
        n = len(group)
        sdc = sum(1 for r in group if r.outcome == Outcome.UNDETECTED.value)
        failures = sum(1 for r in group if r.outcome == Outcome.FAILURE.value)
        detected = sum(
            1 for r in group
            if r.outcome in (Outcome.DETECTED.value,
                             Outcome.DETECTED_MASKED.value)
        )
        lo, hi = wilson_interval(sdc, n, confidence)
        table[section] = {
            "trials": n,
            "sdc_ratio": sdc / n if n else 0.0,
            "sdc_ci": [round(lo, 6), round(hi, 6)],
            "failure_ratio": failures / n if n else 0.0,
            "detected_ratio": detected / n if n else 0.0,
        }
    return table


def _differential_attribution(records: List[JournalRecord]) -> Dict[str, Any]:
    """Replay-hit vs. fallback tallies from the journal's served tags."""
    hits = 0
    fallbacks: Dict[str, int] = {}
    untagged = 0
    for record in records:
        tag = record.served
        if tag is None:
            untagged += 1
        elif tag == "diff":
            hits += 1
        else:
            served, _, reason = tag.partition(":")
            reason = reason or served
            fallbacks[reason] = fallbacks.get(reason, 0) + 1
    return {
        "replay_hits": hits,
        "fallbacks": dict(sorted(fallbacks.items())),
        "untagged": untagged,
    }


def _quarantine_timeline(records: List[JournalRecord]) -> List[Dict[str, Any]]:
    """Quarantined specs in index order, with the evidence against them."""
    timeline = []
    for record in sorted(
        (r for r in records if r.observation is None), key=lambda r: r.index
    ):
        q = record.quarantine or {}
        timeline.append({
            "index": record.index,
            "spec": record.spec_fp,
            "deaths": int(q.get("deaths", 0)),
            "rounds": int(q.get("rounds", 0)),
            "note": str(q.get("note", "")),
        })
    return timeline


def _load_heartbeats(directory: Path) -> List[Dict[str, Any]]:
    path = directory / "heartbeats.jsonl"
    beats: List[Dict[str, Any]] = []
    if not path.exists():
        return beats
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                beats.append(json.loads(line))
            except ValueError:
                continue  # torn tail line, same tolerance as the journal
    return beats


def _campaign_timing(directory: Path) -> Dict[str, Any]:
    """Timing facts recorded next to one campaign's journal."""
    timing: Dict[str, Any] = {}
    profile_path = directory / "profile.json"
    if profile_path.exists():
        try:
            profile = json.loads(profile_path.read_text(encoding="utf-8"))
        except ValueError:
            profile = None
        if isinstance(profile, dict) and isinstance(profile.get("phases"), dict):
            phases = {
                key: {
                    "count": int(value.get("count", 0)),
                    "seconds": round(float(value.get("seconds", 0.0)), 6),
                }
                for key, value in sorted(profile["phases"].items())
                if isinstance(value, dict)
            }
            timing["phases"] = phases
            timing["profiled_seconds"] = round(
                sum(p["seconds"] for p in phases.values()), 6
            )
    beats = _load_heartbeats(directory)
    if beats:
        last = beats[-1]
        timing["heartbeats"] = {
            "count": len(beats),
            "wall_seconds": last.get("elapsed", 0.0),
            "rate": last.get("rate", 0.0),
            "done": last.get("done", 0),
            "pids": sorted({b.get("pid", 0) for b in beats}),
        }
    return timing


def _trace_aggregates(trace_path: str) -> Dict[str, Any]:
    """Per-name span durations and event counts from a trace JSONL."""
    spans: Dict[str, List[float]] = {}
    events: Dict[str, int] = {}
    with open(trace_path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            name = record.get("name", "")
            if record.get("type") == "span":
                slot = spans.setdefault(name, [0.0, 0.0])
                slot[0] += 1
                slot[1] += float(record.get("dur", 0.0))
            elif record.get("type") == "event":
                events[name] = events.get(name, 0) + 1
    return {
        "spans": {
            name: {"count": int(count), "seconds": round(seconds, 6)}
            for name, (count, seconds) in sorted(spans.items())
        },
        "events": dict(sorted(events.items())),
    }


def build_report(
    run_dir: str,
    *,
    include_timing: bool = True,
    trace: Optional[str] = None,
) -> Dict[str, Any]:
    """The joined post-mortem for every campaign journaled under ``run_dir``.

    Deterministic: same run directory (and same ``trace`` file) in,
    byte-identical JSON out.  With ``include_timing=False`` the report
    contains only execution-speed-independent facts, so a
    killed-and-resumed run reports identically to an uninterrupted one.
    """
    root = Path(run_dir)
    if not root.is_dir():
        raise InjectionError(f"run directory not found: {run_dir}")
    campaigns: List[Dict[str, Any]] = []
    for directory in sorted(p for p in root.iterdir() if p.is_dir()):
        meta_path = directory / "meta.json"
        journal_path = directory / "journal.jsonl"
        if not meta_path.exists() or not journal_path.exists():
            continue
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except ValueError:
            continue
        components = meta.get("components", {})
        records = sorted(
            CampaignJournal._load_records(journal_path).values(),
            key=lambda r: r.index,
        )
        planned = int(components.get("n_specs", 0))
        entry: Dict[str, Any] = {
            "id": directory.name,
            "fingerprint": meta.get("fingerprint", ""),
            "workload": components.get("workload", ""),
            "mode": components.get("mode", ""),
            "seed": components.get("seed", 0),
            "planned_trials": planned,
            "journaled_trials": len(records),
            "complete": len(records) == planned,
            "summary": _summarize_records(records),
            "differential": _differential_attribution(records),
            "quarantine": _quarantine_timeline(records),
        }
        plan = meta.get("plan")
        if isinstance(plan, dict):
            entry["plan"] = plan
        if any(r.section is not None for r in records):
            confidence = 0.95
            if isinstance(plan, dict):
                confidence = float(plan.get("confidence", 0.95))
            entry["sections"] = _section_table(records, confidence)
        if include_timing:
            entry["timing"] = _campaign_timing(directory)
        campaigns.append(entry)
    if not campaigns:
        raise InjectionError(
            f"no campaign journals found under {run_dir} (expected "
            f"<fingerprint>/meta.json + journal.jsonl subdirectories)"
        )
    report: Dict[str, Any] = {
        "version": REPORT_VERSION,
        "run_dir": str(run_dir),
        "campaigns": campaigns,
    }
    if include_timing and trace is not None:
        report["trace"] = _trace_aggregates(trace)
    return report


# -- rendering -------------------------------------------------------------


def render_json(report: Dict[str, Any]) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def _md_table(headers: List[str], rows: List[List[Any]]) -> List[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def render_markdown(report: Dict[str, Any]) -> str:
    """Human-readable rendering; same data, same determinism."""
    out: List[str] = [f"# Campaign report — `{report['run_dir']}`", ""]
    for campaign in report["campaigns"]:
        summary = campaign["summary"]
        out.append(
            f"## {campaign['workload']} · mode `{campaign['mode']}` · "
            f"seed {campaign['seed']} (`{campaign['id']}`)"
        )
        out.append("")
        completeness = "complete" if campaign["complete"] else "INCOMPLETE"
        out.append(
            f"{campaign['journaled_trials']}/{campaign['planned_trials']} "
            f"trials journaled ({completeness})."
        )
        out.append("")
        out.append("### Outcomes")
        out.append("")
        out.extend(_md_table(
            ["outcome", "count"],
            [[name, count]
             for name, count in summary["outcomes"].items() if count],
        ))
        out.append("")
        out.extend([
            f"- activation ratio: {summary['activation_ratio']:.4f}",
            f"- coverage: {summary['coverage']:.4f}",
            f"- SDC ratio: {summary['sdc_ratio']:.4f}",
            f"- failure ratio: {summary['failure_ratio']:.4f}",
            f"- quarantined: {summary['quarantined']}",
            "",
        ])
        plan = campaign.get("plan")
        if plan:
            out.append("### Plan")
            out.append("")
            out.append(
                f"{plan.get('method', '?')} sampling: "
                f"{plan.get('budget', 0)}/{plan.get('population', 0)} trials "
                f"across {plan.get('strata', 0)} strata "
                f"({int(plan.get('confidence', 0.95) * 100)}% confidence, "
                f"seed {plan.get('seed', 0)})."
            )
            out.append("")
        sections = campaign.get("sections")
        if sections:
            out.append("### Sections")
            out.append("")
            out.extend(_md_table(
                ["section", "trials", "SDC ratio", "CI",
                 "failure ratio", "detected ratio"],
                [[name, s["trials"], f"{s['sdc_ratio']:.4f}",
                  f"[{s['sdc_ci'][0]:.4f}, {s['sdc_ci'][1]:.4f}]",
                  f"{s['failure_ratio']:.4f}", f"{s['detected_ratio']:.4f}"]
                 for name, s in sections.items()],
            ))
            out.append("")
        diff = campaign["differential"]
        out.append("### Differential attribution")
        out.append("")
        rows: List[List[Any]] = [["replay hit", diff["replay_hits"]]]
        rows += [[f"full ({reason})", count]
                 for reason, count in diff["fallbacks"].items()]
        if diff["untagged"]:
            rows.append(["untagged", diff["untagged"]])
        out.extend(_md_table(["served by", "trials"], rows))
        out.append("")
        if campaign["quarantine"]:
            out.append("### Quarantine timeline")
            out.append("")
            out.extend(_md_table(
                ["index", "spec", "deaths", "round", "note"],
                [[q["index"], q["spec"], q["deaths"], q["rounds"], q["note"]]
                 for q in campaign["quarantine"]],
            ))
            out.append("")
        timing = campaign.get("timing") or {}
        if timing.get("phases"):
            out.append("### Time where it went")
            out.append("")
            out.extend(_md_table(
                ["phase", "reason", "count", "seconds"],
                [[*split_phase_key(key), value["count"],
                  f"{value['seconds']:.4f}"]
                 for key, value in timing["phases"].items()],
            ))
            out.append(
                f"\nprofiled total: {timing.get('profiled_seconds', 0.0):.4f}s"
            )
            out.append("")
        if timing.get("heartbeats"):
            hb = timing["heartbeats"]
            out.append(
                f"heartbeats: {hb['count']} beats, {hb['wall_seconds']:.2f}s "
                f"wall, {hb['rate']:.1f} trials/s, pids {hb['pids']}"
            )
            out.append("")
    trace = report.get("trace")
    if trace:
        out.append("## Trace aggregates")
        out.append("")
        out.extend(_md_table(
            ["span", "count", "seconds"],
            [[name, value["count"], f"{value['seconds']:.4f}"]
             for name, value in trace["spans"].items()],
        ))
        out.append("")
        out.extend(_md_table(
            ["event", "count"],
            [[name, count] for name, count in trace["events"].items()],
        ))
        out.append("")
    return "\n".join(out).rstrip("\n") + "\n"
