"""R-Naive: full temporal duplication by re-executing the kernel.

"R-Naive executes [the] same GPU kernel twice by using two different
copies of memory data.  R-Naive has a good SDC error detection ratio
(~100%) but it also almost doubles the GPU execution time and CPU
memory space used to keep input and output data" (Section III).

The harness runs the workload's kernel twice with independent device
layouts and compares outputs bit-exactly.  A fault armed for the first
execution therefore diverges the copies and is detected — unless it
crashes or hangs the kernel, the very cases Section IX.B notes R-Naive
cannot handle (the guardian can).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import KernelCrash, KernelHang
from repro.gpu.device import Device
from repro.gpu.runtime import GPURuntime
from repro.swifi.faultmodel import FaultSpec
from repro.swifi.injector import FaultInjectionLibrary, instrument_for_fi
from repro.workloads.base import Workload, WorkloadInput


@dataclass
class RNaiveResult:
    """Outcome of one duplicated execution pair."""

    status: str  # "ok" | "crash" | "hang"
    detected: bool
    output: Optional[np.ndarray]
    #: Sum of both kernel times (the ~100% overhead of Figure 13).
    kernel_time: float
    #: Extra CPU memory (bytes) to hold the second copy of the outputs.
    extra_host_bytes: int
    failure_reason: str = ""


class RNaiveHarness:
    """Runs a workload under R-Naive duplication."""

    def __init__(self, workload: Workload, device: Optional[Device] = None):
        self.workload = workload
        self.device = device if device is not None else Device()
        self.runtime = GPURuntime(self.device)
        self._fi_kernel = None

    def _kernel_with_hooks(self):
        if self._fi_kernel is None:
            self._fi_kernel = instrument_for_fi(self.workload.kernel)
        return self._fi_kernel

    def run(
        self,
        inp: WorkloadInput,
        fault: Optional[FaultSpec] = None,
        budget: int = 2_000_000,
    ) -> RNaiveResult:
        outputs = []
        total_time = 0.0
        for execution in range(2):
            args, handles = self.workload.setup_memory(self.device, inp)
            if fault is not None and execution == 0:
                kernel = self._kernel_with_hooks()
                lib = FaultInjectionLibrary(self.workload.kernel, fault)
            else:
                kernel = self.workload.kernel
                lib = None
            try:
                launch = self.runtime.launch(
                    kernel, inp.grid, inp.block, args, lib=lib, budget=budget
                )
            except (KernelCrash, KernelHang) as exc:
                status = "hang" if isinstance(exc, KernelHang) else "crash"
                return RNaiveResult(
                    status=status,
                    detected=False,
                    output=None,
                    kernel_time=total_time,
                    extra_host_bytes=self._output_bytes(inp),
                    failure_reason=str(exc),
                )
            total_time += launch.kernel_time
            outputs.append(self.workload.read_output(self.device, inp, handles))
        detected = not np.array_equal(outputs[0], outputs[1])
        # on mismatch the second (fault-free here) output is the safe pick
        return RNaiveResult(
            status="ok",
            detected=detected,
            output=outputs[1] if detected else outputs[0],
            kernel_time=total_time,
            extra_host_bytes=self._output_bytes(inp),
        )

    def _output_bytes(self, inp: WorkloadInput) -> int:
        return sum(4 * inp.buffer(name).nwords for name in inp.outputs)

    def measure_time(self, inp: WorkloadInput) -> float:
        """Fault-free duplicated execution time (Figure 13 bar)."""
        result = self.run(inp)
        if result.status != "ok":
            raise KernelCrash(f"R-Naive baseline failed: {result.failure_reason}")
        return result.kernel_time
