"""Comparison techniques from Section III / Figure 13.

* :mod:`repro.baselines.rnaive` — R-Naive [11]: execute the kernel
  twice on separate copies of the data and compare the outputs
  (~100% detection, ~100% time overhead, 2x CPU memory).
* :mod:`repro.baselines.rscatter` — R-Scatter [11]: optimized inline
  duplication exploiting data-level parallelism.  On GPUs the
  duplicated computation contends for the same saturated resources, so
  the overhead stays near 90%; doubling shared memory makes kernels
  that already use more than half of it (TPACF) uncompilable.
"""

from repro.baselines.rnaive import RNaiveHarness, RNaiveResult
from repro.baselines.rscatter import apply_rscatter, RScatterInfo, rscatter_kernel

__all__ = [
    "RNaiveHarness",
    "RNaiveResult",
    "apply_rscatter",
    "RScatterInfo",
    "rscatter_kernel",
]
