"""R-Scatter: optimized inline duplication (EDDI-style, per [11]).

Every defining statement is duplicated into a shadow register chain
(shadow definitions read shadow operands, so an error in either chain
diverges them), with an equality check feeding a deferred flag that is
validated at kernel exit.  Duplicated statements are charged at
``RS_COST_SCALE`` of their cost: GPU programs "already use most of the
usable hardware resources", so unlike VLIW CPUs there is little slack
— which is why the paper measures >84% overhead for this technique on
GPUs (Section III, Figure 13).

Resource doubling is enforced: R-Scatter "doubles used GPU memory
space and resources (e.g. global/shared memory and partly registers)",
so a kernel using more than half the device's shared memory — TPACF —
raises :class:`~repro.errors.CompileError`, exactly the paper's
"we could not compile this program using the R-Scatter error
detectors".
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import CompileError, KIRValidationError
from repro.gpu.device import DeviceSpec, GT200_SPEC
from repro.kir.astnodes import (
    Assign,
    BinOp,
    CallStmt,
    Const,
    Decl,
    Expr,
    For,
    If,
    Kernel,
    Return,
    Stmt,
    Var,
    While,
    walk_exprs,
)
from repro.kir.types import DType
from repro.kir.validate import validate_kernel

#: Cost multiplier for duplicated statements: near 1 because the
#: original kernel already saturates the GPU's resources.
RS_COST_SCALE = 0.8

FLAG_VAR = "__rsflag"
VALIDATE_FUNC = "__hauberk_checksum_validate"


@dataclass
class RScatterInfo:
    duplicated_definitions: int = 0
    checks: int = 0
    shadows: Dict[str, str] = field(default_factory=dict)


def _shadow_name(name: str) -> str:
    return f"__rs_{name}"


def _shadow_expr(e: Expr, shadows: Dict[str, str]) -> Expr:
    """Copy of an expression reading shadow registers where they exist."""
    clone = copy.deepcopy(e)
    for node in walk_exprs(clone):
        if isinstance(node, Var) and node.name in shadows:
            node.name = shadows[node.name]
    return clone


def _scaled(stmt: Stmt) -> Stmt:
    stmt.cost_scale = RS_COST_SCALE
    return stmt


class _RScatterTransformer:
    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.info = RScatterInfo()

    def apply(self) -> RScatterInfo:
        for_return = any(
            isinstance(s, Return) for s, _ in _walk(self.kernel.body)
        )
        if for_return:
            raise KIRValidationError("R-Scatter requires return-free kernels")
        body = self._process_block(self.kernel.body)
        header = [Decl(FLAG_VAR, DType.INT32, Const(0))]
        footer = [CallStmt(VALIDATE_FUNC, [Const(0), Var(FLAG_VAR)])]
        self.kernel.body = header + body + footer
        return self.info

    def _process_block(self, stmts: List[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, Decl) and not stmt.name.startswith("__"):
                out.append(stmt)
                out.extend(self._duplicate(stmt.name, stmt.var_dtype, stmt.init, declare=True))
            elif isinstance(stmt, Assign) and not stmt.name.startswith("__"):
                out.append(stmt)
                declare = stmt.name not in self.info.shadows
                out.extend(
                    self._duplicate(stmt.name, stmt.target_dtype, stmt.value, declare=declare)
                )
            elif isinstance(stmt, For):
                if stmt.init is not None and stmt.init.name not in self.info.shadows:
                    # the iterator is control state checked via the trip
                    # structure; R-Scatter leaves loop control alone
                    pass
                stmt.body = self._process_block(stmt.body)
                out.append(stmt)
            elif isinstance(stmt, While):
                stmt.body = self._process_block(stmt.body)
                out.append(stmt)
            elif isinstance(stmt, If):
                stmt.then = self._process_block(stmt.then)
                stmt.els = self._process_block(stmt.els)
                out.append(stmt)
            else:
                out.append(stmt)
        return out

    def _duplicate(
        self, name: str, dtype: DType, rhs: Expr, declare: bool
    ) -> List[Stmt]:
        """Shadow definition + divergence check for one definition."""
        shadow = _shadow_name(name)
        reads_self = any(
            isinstance(n, Var) and n.name == name for n in walk_exprs(rhs)
        )
        if declare and reads_self:
            # x = f(x) with no shadow yet: seed the shadow from x itself
            self.info.shadows[name] = shadow
            seed = _scaled(Decl(shadow, dtype, Var(name)))
            self.info.duplicated_definitions += 1
            return [seed, self._check(name, shadow)]
        shadow_rhs = _shadow_expr(rhs, self.info.shadows)
        self.info.shadows[name] = shadow
        if declare:
            dup: Stmt = _scaled(Decl(shadow, dtype, shadow_rhs))
        else:
            dup = _scaled(Assign(shadow, shadow_rhs))
        self.info.duplicated_definitions += 1
        return [dup, self._check(name, shadow)]

    def _check(self, name: str, shadow: str) -> Stmt:
        self.info.checks += 1
        return _scaled(
            If(
                cond=BinOp("!=", Var(name), Var(shadow)),
                then=[Assign(FLAG_VAR, Const(1))],
                els=[],
            )
        )


def _walk(body):
    from repro.kir.astnodes import walk_stmts

    return walk_stmts(body)


def apply_rscatter(kernel: Kernel, spec: DeviceSpec = GT200_SPEC) -> RScatterInfo:
    """Apply R-Scatter in place (clone first); checks resource doubling."""
    if kernel.shared_mem_words * 2 > spec.shared_mem_words:
        raise CompileError(
            f"R-Scatter doubles shared memory: kernel {kernel.name} needs "
            f"{2 * kernel.shared_mem_words} words, device has "
            f"{spec.shared_mem_words} (the paper's TPACF case)"
        )
    return _RScatterTransformer(kernel).apply()


def rscatter_kernel(kernel: Kernel, spec: DeviceSpec = GT200_SPEC) -> Kernel:
    """Cloned, validated R-Scatter build of a kernel."""
    clone = kernel.clone()
    apply_rscatter(clone, spec)
    validate_kernel(clone)
    return clone
