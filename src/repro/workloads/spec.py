"""Output-correctness requirements (paper Section IX.B).

Each program declares a per-element tolerance against the golden run;
an output violating it is an SDC if undetected.  The paper quotes:

* SAD — an integer program, "does not allow value errors";
* PNS — ``Max{0.01, 1% |GR_i|}``;
* RPES — ``2% |GR_i| + 1e-9``;
* MRI-Q — ``Max{1e-4 Max{|GR|}, 0.2% |GR_i|}``;

and the Section I example treats ">1% of value error in any output
element" as SDC, which the remaining FP programs use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ToleranceSpec:
    """Per-element tolerance: combine abs / rel / global-rel terms.

    ``mode='max'`` takes the maximum of the three terms (PNS, MRI-Q
    style); ``mode='sum'`` adds them (RPES style).  All terms zero
    means bit-exact comparison (SAD).
    """

    abs_const: float = 0.0
    rel: float = 0.0
    #: Fraction of max(|golden|) admitted everywhere (MRI-Q's 1e-4 term).
    global_rel: float = 0.0
    mode: str = "max"

    def __post_init__(self) -> None:
        if self.mode not in ("max", "sum"):
            raise WorkloadError(f"unknown tolerance mode {self.mode!r}")
        if min(self.abs_const, self.rel, self.global_rel) < 0:
            raise WorkloadError("tolerance terms must be non-negative")

    def tolerance(self, golden: np.ndarray) -> np.ndarray:
        g = np.abs(np.asarray(golden, dtype=np.float64))
        global_term = self.global_rel * (g.max() if g.size else 0.0)
        if self.mode == "max":
            return np.maximum(np.maximum(self.abs_const, self.rel * g), global_term)
        return self.abs_const + self.rel * g + global_term

    def check(self, output: np.ndarray, golden: np.ndarray) -> bool:
        """True when the output meets the correctness requirement."""
        out = np.asarray(output, dtype=np.float64)
        gold = np.asarray(golden, dtype=np.float64)
        if out.shape != gold.shape:
            return False
        if not np.isfinite(out).all():
            return False
        if self.abs_const == self.rel == self.global_rel == 0.0:
            return bool(np.array_equal(out, gold))
        return bool((np.abs(out - gold) <= self.tolerance(gold)).all())

    def violations(self, output: np.ndarray, golden: np.ndarray) -> int:
        """Number of out-of-tolerance elements (diagnostics)."""
        out = np.asarray(output, dtype=np.float64)
        gold = np.asarray(golden, dtype=np.float64)
        if out.shape != gold.shape:
            return max(out.size, gold.size)
        bad = ~np.isfinite(out) | (np.abs(out - gold) > self.tolerance(gold))
        return int(bad.sum())


def exact_spec() -> ToleranceSpec:
    """Bit-exact requirement (SAD)."""
    return ToleranceSpec()


def percent_spec(rel: float = 0.01) -> ToleranceSpec:
    """The Section I default: rel% per element."""
    return ToleranceSpec(rel=rel, abs_const=1e-9, mode="sum")


PNS_SPEC = ToleranceSpec(abs_const=0.01, rel=0.01, mode="max")
RPES_SPEC = ToleranceSpec(abs_const=1e-9, rel=0.02, mode="sum")
MRIQ_SPEC = ToleranceSpec(rel=0.002, global_rel=1e-4, mode="max")
