"""RPES — Rys Polynomial Equation Solver (Parboil).

The paper's outlier: "a large portion of GPU codes is sequential
(i.e., non-loop)" — about 75% of RPES's execution time is a long
scalar preamble (root/weight preparation with many transcendental
operations) feeding a short quadrature loop.  That makes HAUBERK-NL's
duplication exceptionally expensive here (Figure 13), and the paper
notes RPES was later dropped from Parboil for exactly this shape.

Correctness requirement: ``2% |GR_i| + 1e-9`` (Section IX.B).
"""

from __future__ import annotations

import numpy as np

from repro.kir.types import DType
from repro.workloads.base import (
    BufferSpec,
    Workload,
    WorkloadInput,
    register_workload,
)
from repro.workloads.spec import RPES_SPEC


@register_workload
class RPESWorkload(Workload):
    name = "RPES"
    spec = RPES_SPEC
    paper_scale_bytes = {
        "fp": 1_200_000 * 4.0,
        "integer": 64.0,
        "pointer": 16.0,
    }

    source = """
kernel rpes(float* shells, float* weights, float* out, int nroots, int npairs) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    if (t < npairs) {
        float a = shells[t * 4];
        float b = shells[t * 4 + 1];
        float cx = shells[t * 4 + 2];
        float cy = shells[t * 4 + 3];
        float zeta = a + b;
        float xi = a * b / zeta;
        float rho = xi / (xi + 1.0);
        float dist = cx * cx + cy * cy;
        float tpar = rho * dist;
        float e0 = exp(0.0 - tpar);
        float f0 = sqrt(3.1415926 / (4.0 * tpar + 0.1));
        float f1 = (f0 - e0) / (2.0 * tpar + 0.1);
        float f2 = (3.0 * f1 - e0) / (2.0 * tpar + 0.1);
        float g0 = log(zeta + 1.0);
        float g1 = exp(0.0 - g0 * 0.5);
        float g2 = sqrt(g0 + 0.25);
        float u0 = f0 * g1;
        float u1 = f1 * g2;
        float u2 = f2 * g1 * g2;
        float p0 = u0 + u1 * 0.6666667;
        float p1 = u1 + u2 * 0.4;
        float p2 = u2 + u0 * 0.2857143;
        float q0 = sqrt(p0 * p0 + 0.01);
        float q1 = sqrt(p1 * p1 + 0.01);
        float q2 = sqrt(p2 * p2 + 0.01);
        float w0 = q0 / (q0 + q1 + q2);
        float w1 = q1 / (q0 + q1 + q2);
        float w2 = q2 / (q0 + q1 + q2);
        float root0 = tpar / (tpar + 1.0);
        float root1 = root0 * 0.5 + 0.1;
        float root2 = root0 * 0.25 + 0.05;
        float scale = exp(0.0 - rho) * sqrt(zeta) * (1.0 + root1 * root2);
        float norm = scale * (w0 * root0 + w1 * root1 + w2 * root2);
        float acc = 0.0;
        for (int i = 0; i < nroots; i++) {
            float wq = weights[i];
            acc = acc + wq * (root0 + float(i) * 0.125) * norm;
        }
        out[t] = acc + u0 * w0;
    }
}
"""

    def __init__(self, nroots: int = 6, npairs: int = 96):
        super().__init__()
        self.nroots = nroots
        self.npairs = npairs

    def generate_input(self, seed: int = 0) -> WorkloadInput:
        rng = np.random.default_rng(seed + 5000)
        shells = np.empty((self.npairs, 4), dtype=np.float32)
        shells[:, 0] = rng.uniform(0.5, 4.0, self.npairs)  # exponent a
        shells[:, 1] = rng.uniform(0.5, 4.0, self.npairs)  # exponent b
        shells[:, 2] = rng.uniform(-1.5, 1.5, self.npairs)  # center dx
        shells[:, 3] = rng.uniform(-1.5, 1.5, self.npairs)  # center dy
        weights = rng.uniform(0.1, 1.0, self.nroots).astype(np.float32)
        bx = 32
        gx = (self.npairs + bx - 1) // bx
        return WorkloadInput(
            buffers=[
                BufferSpec("shells", DType.FLOAT32, 4 * self.npairs,
                           shells.reshape(-1)),
                BufferSpec("weights", DType.FLOAT32, self.nroots, weights),
                BufferSpec("out", DType.FLOAT32, self.npairs,
                           np.zeros(self.npairs, dtype=np.float32)),
            ],
            scalars={"nroots": self.nroots, "npairs": self.npairs},
            buffer_params={"shells": "shells", "weights": "weights", "out": "out"},
            outputs=["out"],
            grid=(gx, 1),
            block=(bx, 1),
            meta={"shells": shells, "weights": weights},
        )

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        sh = inp.meta["shells"].astype(np.float64)
        weights = inp.meta["weights"].astype(np.float64)
        a, b, cx, cy = sh[:, 0], sh[:, 1], sh[:, 2], sh[:, 3]
        zeta = a + b
        xi = a * b / zeta
        rho = xi / (xi + 1.0)
        dist = cx * cx + cy * cy
        tpar = rho * dist
        e0 = np.exp(0.0 - tpar)
        f0 = np.sqrt(3.1415926 / (4.0 * tpar + 0.1))
        f1 = (f0 - e0) / (2.0 * tpar + 0.1)
        f2 = (3.0 * f1 - e0) / (2.0 * tpar + 0.1)
        g0 = np.log(zeta + 1.0)
        g1 = np.exp(0.0 - g0 * 0.5)
        g2 = np.sqrt(g0 + 0.25)
        u0 = f0 * g1
        u1 = f1 * g2
        u2 = f2 * g1 * g2
        p0 = u0 + u1 * 0.6666667
        p1 = u1 + u2 * 0.4
        p2 = u2 + u0 * 0.2857143
        q0 = np.sqrt(p0 * p0 + 0.01)
        q1 = np.sqrt(p1 * p1 + 0.01)
        q2 = np.sqrt(p2 * p2 + 0.01)
        denom = q0 + q1 + q2
        w0, w1, w2 = q0 / denom, q1 / denom, q2 / denom
        root0 = tpar / (tpar + 1.0)
        root1 = root0 * 0.5 + 0.1
        root2 = root0 * 0.25 + 0.05
        scale = np.exp(0.0 - rho) * np.sqrt(zeta) * (1.0 + root1 * root2)
        norm = scale * (w0 * root0 + w1 * root1 + w2 * root2)
        acc = np.zeros_like(norm)
        for i in range(self.nroots):
            acc = acc + weights[i] * (root0 + float(i) * 0.125) * norm
        out = acc + u0 * w0
        return out.astype(np.float32).astype(np.float64)
