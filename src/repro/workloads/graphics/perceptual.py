"""Perceptual SDC metric for graphics outputs (Section II.A).

Graphics programs tolerate value errors HPC programs cannot: "graphics
program has a high frame rate (e.g. 30fps) and a transient fault
typically makes a small change in just one frame".  A corruption is
*user-noticeable* when enough pixels deviate visibly after 8-bit
quantization — a handful of corrupted pixels in one frame is not an
SDC, a 10,000-value stripe is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class FrameStats:
    """Deviation statistics of a rendered frame vs. the golden frame."""

    n_pixels: int
    corrupted_pixels: int
    max_deviation_levels: float
    corrupted_fraction: float


def frame_corruption_stats(
    frame: np.ndarray, golden: np.ndarray, min_levels: float = 2.0
) -> FrameStats:
    """Count pixels deviating by at least ``min_levels`` 8-bit levels.

    Frames are intensity arrays in [0, 1]; non-finite pixels count as
    maximally corrupted.
    """
    f = np.asarray(frame, dtype=np.float64).reshape(-1)
    g = np.asarray(golden, dtype=np.float64).reshape(-1)
    if f.shape != g.shape:
        return FrameStats(
            n_pixels=g.size, corrupted_pixels=g.size,
            max_deviation_levels=255.0, corrupted_fraction=1.0,
        )
    q = lambda x: np.clip(np.nan_to_num(x, nan=2.0, posinf=2.0, neginf=-2.0), -1.0, 2.0) * 255.0  # noqa: E731
    dev = np.abs(q(f) - q(g))
    dev[~np.isfinite(f)] = 255.0
    bad = int((dev >= min_levels).sum())
    return FrameStats(
        n_pixels=g.size,
        corrupted_pixels=bad,
        max_deviation_levels=float(dev.max()) if dev.size else 0.0,
        corrupted_fraction=bad / g.size if g.size else 0.0,
    )


@dataclass(frozen=True)
class PerceptualSpec:
    """Output-correctness requirement of graphics programs.

    A frame passes unless the corrupted-pixel fraction reaches
    ``noticeable_fraction`` — single-pixel transients pass (no SDC),
    stripe patterns from intermittent faults fail.
    """

    noticeable_fraction: float = 0.005
    min_levels: float = 2.0

    def check(self, output: np.ndarray, golden: np.ndarray) -> bool:
        stats = frame_corruption_stats(output, golden, self.min_levels)
        return stats.corrupted_fraction < self.noticeable_fraction

    def violations(self, output: np.ndarray, golden: np.ndarray) -> int:
        return frame_corruption_stats(output, golden, self.min_levels).corrupted_pixels
