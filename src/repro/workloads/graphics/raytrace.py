"""Ray tracer (the second GPU SDK graphics program of Section II).

One thread per pixel: a primary ray from an orthographic camera is
intersected with a small set of spheres; hits get Lambertian shading
from a directional light, misses get a vertical background gradient.
Heavy on FP compare/sqrt — the classic shape whose FP faults shift a
pixel's shade without crashing anything (Observation 2).
"""

from __future__ import annotations

import numpy as np

from repro.kir.types import DType
from repro.workloads.base import BufferSpec, Workload, WorkloadInput, register_workload
from repro.workloads.graphics.perceptual import PerceptualSpec


@register_workload
class RayTraceWorkload(Workload):
    name = "RAYTRACE"
    spec = PerceptualSpec()
    paper_scale_bytes = {
        "fp": 1024 * 768 * 4.0 + 64 * 7 * 4.0,
        "integer": 32.0,
        "pointer": 8.0,
    }

    source = """
kernel raytrace(float* spheres, float* frame, int width, int height,
                int nspheres) {
    int px = blockIdx.x * blockDim.x + threadIdx.x;
    int py = blockIdx.y * blockDim.y + threadIdx.y;
    if ((px < width) && (py < height)) {
        float ox = (float(px) + 0.5) / float(width) * 2.0 - 1.0;
        float oy = (float(py) + 0.5) / float(height) * 2.0 - 1.0;
        float shade = 0.15 + 0.2 * (oy * 0.5 + 0.5);
        float best = 1000000.0;
        for (int s = 0; s < nspheres; s++) {
            float cx = spheres[s * 5];
            float cy = spheres[s * 5 + 1];
            float cz = spheres[s * 5 + 2];
            float rad = spheres[s * 5 + 3];
            float albedo = spheres[s * 5 + 4];
            float dx = ox - cx;
            float dy = oy - cy;
            float disc = rad * rad - (dx * dx + dy * dy);
            if (disc > 0.0) {
                float thit = cz - sqrt(disc);
                if (thit < best) {
                    best = thit;
                    float nz = sqrt(disc) / rad;
                    float nxl = dx / rad;
                    float nyl = dy / rad;
                    float lambert = nz * 0.8 + nxl * 0.4 - nyl * 0.45;
                    shade = albedo * fmax(lambert, 0.05);
                }
            }
        }
        frame[py * width + px] = fmin(fmax(shade, 0.0), 1.0);
    }
}
"""

    def __init__(self, width: int = 24, height: int = 16, nspheres: int = 4):
        super().__init__()
        self.width = width
        self.height = height
        self.nspheres = nspheres

    def generate_input(self, seed: int = 0) -> WorkloadInput:
        rng = np.random.default_rng(seed + 9000)
        spheres = np.empty((self.nspheres, 5), dtype=np.float32)
        spheres[:, 0] = rng.uniform(-0.7, 0.7, self.nspheres)  # cx
        spheres[:, 1] = rng.uniform(-0.7, 0.7, self.nspheres)  # cy
        spheres[:, 2] = rng.uniform(2.0, 5.0, self.nspheres)  # cz (depth)
        spheres[:, 3] = rng.uniform(0.25, 0.6, self.nspheres)  # radius
        spheres[:, 4] = rng.uniform(0.4, 1.0, self.nspheres)  # albedo
        bx, by = 8, 4
        gx = (self.width + bx - 1) // bx
        gy = (self.height + by - 1) // by
        return WorkloadInput(
            buffers=[
                BufferSpec("spheres", DType.FLOAT32, 5 * self.nspheres,
                           spheres.reshape(-1)),
                BufferSpec("frame", DType.FLOAT32, self.width * self.height,
                           np.zeros(self.width * self.height, dtype=np.float32)),
            ],
            scalars={"width": self.width, "height": self.height,
                     "nspheres": self.nspheres},
            buffer_params={"spheres": "spheres", "frame": "frame"},
            outputs=["frame"],
            grid=(gx, gy),
            block=(bx, by),
            meta={"spheres": spheres},
        )

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        spheres = inp.meta["spheres"].astype(np.float64)
        w, h = self.width, self.height
        px = np.arange(w, dtype=np.float64)
        py = np.arange(h, dtype=np.float64)
        ox = (px[None, :] + 0.5) / w * 2.0 - 1.0
        oy = (py[:, None] + 0.5) / h * 2.0 - 1.0
        ox = np.broadcast_to(ox, (h, w)).copy()
        oy = np.broadcast_to(oy, (h, w)).copy()
        shade = 0.15 + 0.2 * (oy * 0.5 + 0.5)
        best = np.full((h, w), 1000000.0)
        for cx, cy, cz, rad, albedo in spheres:
            dx = ox - cx
            dy = oy - cy
            disc = rad * rad - (dx * dx + dy * dy)
            hit = disc > 0.0
            sq = np.sqrt(np.where(hit, disc, 0.0))
            thit = cz - sq
            closer = hit & (thit < best)
            best = np.where(closer, thit, best)
            nz = sq / rad
            nxl = dx / rad
            nyl = dy / rad
            lambert = nz * 0.8 + nxl * 0.4 - nyl * 0.45
            shade = np.where(closer, albedo * np.maximum(lambert, 0.05), shade)
        out = np.clip(shade, 0.0, 1.0)
        return out.reshape(-1).astype(np.float32).astype(np.float64)

    def render_frame(self, output: np.ndarray) -> np.ndarray:
        return np.asarray(output).reshape(self.height, self.width)
