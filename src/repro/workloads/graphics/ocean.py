"""Ocean-flow simulation renderer (the GPU SDK demo of Figure 3).

Each thread shades one pixel of a height-field frame as a sum of
directional gravity waves over an input spectrum.  A corrupted
spectrum value streaks across the frame exactly like the paper's
Figure 3: one corrupted value -> a local spike; ~10,000 corrupted
values -> a prominent stripe pattern.
"""

from __future__ import annotations

import numpy as np

from repro.kir.types import DType
from repro.workloads.base import BufferSpec, Workload, WorkloadInput, register_workload
from repro.workloads.graphics.perceptual import PerceptualSpec


@register_workload
class OceanWorkload(Workload):
    name = "OCEAN"
    spec = PerceptualSpec()
    paper_scale_bytes = {
        "fp": 512 * 512 * 4.0 * 2,
        "integer": 64.0,
        "pointer": 8.0,
    }

    source = """
kernel ocean(float* spectrum, float* frame, int width, int height,
             int nwaves, float t) {
    int px = blockIdx.x * blockDim.x + threadIdx.x;
    int py = blockIdx.y * blockDim.y + threadIdx.y;
    if ((px < width) && (py < height)) {
        float x = float(px) / float(width);
        float y = float(py) / float(height);
        float h = 0.0;
        for (int w = 0; w < nwaves; w++) {
            float kx = spectrum[w * 4];
            float ky = spectrum[w * 4 + 1];
            float amp = spectrum[w * 4 + 2];
            float phase = spectrum[w * 4 + 3];
            h = h + amp * sin(kx * x + ky * y + phase + t * sqrt(kx * kx + ky * ky));
        }
        frame[py * width + px] = h * 0.5 + 0.5;
    }
}
"""

    def __init__(self, width: int = 24, height: int = 16, nwaves: int = 8):
        super().__init__()
        self.width = width
        self.height = height
        self.nwaves = nwaves

    def generate_input(self, seed: int = 0) -> WorkloadInput:
        rng = np.random.default_rng(seed + 8000)
        spectrum = np.empty((self.nwaves, 4), dtype=np.float32)
        spectrum[:, 0] = rng.uniform(2.0, 24.0, self.nwaves)  # kx
        spectrum[:, 1] = rng.uniform(2.0, 24.0, self.nwaves)  # ky
        spectrum[:, 2] = rng.uniform(0.02, 0.2, self.nwaves)  # amplitude
        spectrum[:, 3] = rng.uniform(0.0, 6.28, self.nwaves)  # phase
        t = 0.35
        bx, by = 8, 4
        gx = (self.width + bx - 1) // bx
        gy = (self.height + by - 1) // by
        return WorkloadInput(
            buffers=[
                BufferSpec("spectrum", DType.FLOAT32, 4 * self.nwaves,
                           spectrum.reshape(-1)),
                BufferSpec("frame", DType.FLOAT32, self.width * self.height,
                           np.zeros(self.width * self.height, dtype=np.float32)),
            ],
            scalars={"width": self.width, "height": self.height,
                     "nwaves": self.nwaves, "t": t},
            buffer_params={"spectrum": "spectrum", "frame": "frame"},
            outputs=["frame"],
            grid=(gx, gy),
            block=(bx, by),
            meta={"spectrum": spectrum, "t": t},
        )

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        spec = inp.meta["spectrum"].astype(np.float64)
        t = float(inp.meta["t"])  # scalar args stay float64 end-to-end
        xs = np.arange(self.width, dtype=np.float64) / float(self.width)
        ys = np.arange(self.height, dtype=np.float64) / float(self.height)
        frame = np.zeros((self.height, self.width))
        for kx, ky, amp, phase in spec:
            k = np.sqrt(kx * kx + ky * ky)
            frame += amp * np.sin(kx * xs[None, :] + ky * ys[:, None] + phase + t * k)
        out = frame * 0.5 + 0.5
        return out.reshape(-1).astype(np.float32).astype(np.float64)

    def render_frame(self, output: np.ndarray) -> np.ndarray:
        """Reshape a flat output into a (height, width) frame."""
        return np.asarray(output).reshape(self.height, self.width)
