"""3D graphics GPU programs (Section II, Figure 3).

Two GPU-SDK-style demos — an ocean-flow height-field renderer and a
sphere ray tracer — with the paper's graphics notion of SDC: "a
user-noticeable corruption in video output data".  A transient fault
corrupting a single value makes an unnoticeable one-frame spike
(Figure 3a); an intermittent fault corrupting ~10,000 values forms a
prominent stripe (Figure 3b).
"""

from repro.workloads.graphics.perceptual import PerceptualSpec, frame_corruption_stats
from repro.workloads.graphics.ocean import OceanWorkload
from repro.workloads.graphics.raytrace import RayTraceWorkload

__all__ = [
    "PerceptualSpec",
    "frame_corruption_stats",
    "OceanWorkload",
    "RayTraceWorkload",
]
