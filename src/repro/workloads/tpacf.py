"""TPACF — Two-Point Angular Correlation Function (Parboil).

Threads bin the angular separations of sky-point pairs into a
block-shared histogram (``__syncthreads`` + shared/global atomics),
then flush it to global memory.  Two paper-relevant properties are
reproduced:

* the kernel declares **more than half the device's shared memory**
  (10 KB of 16 KB), so R-Scatter's shared-memory doubling fails to
  compile it (Section IX.A);
* its flush loop walks memory until an index condition is met — the
  shape whose corrupted address "never returns the write requested
  value" and hangs, detectable only by the guardian (Section IX.B).
"""

from __future__ import annotations

import numpy as np

from repro.kir.types import DType
from repro.workloads.base import (
    BufferSpec,
    Workload,
    WorkloadInput,
    register_workload,
)
from repro.workloads.spec import percent_spec

PI = 3.141592653589793

#: Shared histogram size in words: > half of the 4096-word (16 KB)
#: device shared memory, matching the paper's TPACF observation.
SHARED_HIST_WORDS = 2560


@register_workload
class TPACFWorkload(Workload):
    name = "TPACF"
    spec = percent_spec(0.01)
    paper_scale_bytes = {
        "fp": 97178 * 3 * 4.0 * 101,  # point sets x (data + 100 randoms)
        "integer": 256 * 4.0,
        "pointer": 16.0,
    }

    source = f"""
kernel tpacf(float* xs, float* ys, float* zs, int* hist, int npoints, int nbins) {{
    shared int shist[{SHARED_HIST_WORDS}];
    int tid = threadIdx.x;
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    int z = tid;
    while (z < nbins) {{
        shist[z] = 0;
        z = z + blockDim.x;
    }}
    __syncthreads();
    if (t < npoints) {{
        float x1 = xs[t];
        float y1 = ys[t];
        float z1 = zs[t];
        for (int j = 0; j < npoints; j++) {{
            float dot = x1 * xs[j] + y1 * ys[j] + z1 * zs[j];
            float cl = fmin(fmax(dot, -1.0), 1.0);
            float angle = acos(cl);
            int bin = int(angle * float(nbins) / 3.141592653589793);
            if (bin >= nbins) {{
                bin = nbins - 1;
            }}
            atomicAdd(&shist[bin], 1);
        }}
    }}
    __syncthreads();
    int c = tid;
    while (c < nbins) {{
        atomicAdd(&hist[c], shist[c]);
        c = c + blockDim.x;
    }}
}}
"""

    def __init__(self, npoints: int = 48, nbins: int = 16):
        super().__init__()
        if nbins > SHARED_HIST_WORDS:
            raise ValueError(f"nbins must fit in {SHARED_HIST_WORDS} shared words")
        self.npoints = npoints
        self.nbins = nbins

    def generate_input(self, seed: int = 0) -> WorkloadInput:
        rng = np.random.default_rng(seed + 7000)
        # unit vectors on the sphere
        v = rng.normal(size=(self.npoints, 3))
        v /= np.linalg.norm(v, axis=1, keepdims=True)
        xs = v[:, 0].astype(np.float32)
        ys = v[:, 1].astype(np.float32)
        zs = v[:, 2].astype(np.float32)
        bx = 16
        gx = (self.npoints + bx - 1) // bx
        return WorkloadInput(
            buffers=[
                BufferSpec("xs", DType.FLOAT32, self.npoints, xs),
                BufferSpec("ys", DType.FLOAT32, self.npoints, ys),
                BufferSpec("zs", DType.FLOAT32, self.npoints, zs),
                BufferSpec("hist", DType.INT32, self.nbins,
                           np.zeros(self.nbins, dtype=np.int32)),
            ],
            scalars={"npoints": self.npoints, "nbins": self.nbins},
            buffer_params={"xs": "xs", "ys": "ys", "zs": "zs", "hist": "hist"},
            outputs=["hist"],
            grid=(gx, 1),
            block=(bx, 1),
            meta={"xs": xs, "ys": ys, "zs": zs},
        )

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        xs = inp.meta["xs"].astype(np.float64)
        ys = inp.meta["ys"].astype(np.float64)
        zs = inp.meta["zs"].astype(np.float64)
        dots = xs[:, None] * xs[None, :] + ys[:, None] * ys[None, :] + zs[:, None] * zs[None, :]
        cl = np.clip(dots, -1.0, 1.0)
        angles = np.arccos(cl)
        bins = (angles * float(self.nbins) / PI).astype(np.int64)
        bins = np.minimum(bins, self.nbins - 1)
        hist = np.bincount(bins.reshape(-1), minlength=self.nbins)
        return hist.astype(np.float64)
