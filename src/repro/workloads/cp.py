"""CP — Coulombic Potential (Parboil).

Each thread computes the electrostatic potential at two neighbouring
x-positions of a 2-D grid slice (the x-unrolled-by-2 form whose loop
dataflow graph is the paper's Figure 9: ``energyx2`` depends on
``dx2 = dx1 + gridspacing_u`` and therefore has the larger cumulative
backward dataflow dependency, 13 vs 12, and is selected for loop
protection).  Both energies are self-accumulating FP variables, which
is why CP's HAUBERK-L overhead is among the smallest (Section IX.A).
"""

from __future__ import annotations

import numpy as np

from repro.kir.types import DType
from repro.workloads.base import (
    BufferSpec,
    Workload,
    WorkloadInput,
    register_workload,
)
from repro.workloads.spec import percent_spec


@register_workload
class CPWorkload(Workload):
    name = "CP"
    spec = percent_spec(0.01)
    # Parboil CP: 512x512 grid slice of floats + 40k atoms x 4 floats
    paper_scale_bytes = {
        "fp": 512 * 512 * 4 + 40000 * 16,
        "integer": 16.0,
        "pointer": 12.0,
    }

    source = """
kernel cp(float* atominfo, int numatoms, float* energygrid,
          float gridspacing, int volx) {
    int xindex = (blockIdx.x * blockDim.x + threadIdx.x) * 2;
    int yindex = blockIdx.y * blockDim.y + threadIdx.y;
    float coorx = gridspacing * float(xindex);
    float coory = gridspacing * float(yindex);
    float gridspacing_u = gridspacing * 1.0;
    float energyx1 = 0.0;
    float energyx2 = 0.0;
    for (int atomid = 0; atomid < numatoms; atomid++) {
        float dy = coory - atominfo[atomid * 4 + 1];
        float dyz2 = dy * dy + atominfo[atomid * 4 + 2];
        float dx1 = coorx - atominfo[atomid * 4];
        float dx2 = dx1 + gridspacing_u;
        float charge = atominfo[atomid * 4 + 3];
        energyx1 = energyx1 + charge * (1.0 / sqrt(dx1 * dx1 + dyz2));
        energyx2 = energyx2 + charge * (1.0 / sqrt(dx2 * dx2 + dyz2));
    }
    int outidx = yindex * volx + xindex;
    energygrid[outidx] = energygrid[outidx] + energyx1;
    energygrid[outidx + 1] = energygrid[outidx + 1] + energyx2;
}
"""

    def __init__(self, numatoms: int = 24, volx: int = 16, voly: int = 8):
        super().__init__()
        if volx % 2:
            raise ValueError("volx must be even (x is unrolled by 2)")
        self.numatoms = numatoms
        self.volx = volx
        self.voly = voly

    def generate_input(self, seed: int = 0) -> WorkloadInput:
        rng = np.random.default_rng(seed + 1000)
        atominfo = np.empty((self.numatoms, 4), dtype=np.float32)
        atominfo[:, 0] = rng.uniform(0, self.volx * 0.5, self.numatoms)  # x
        atominfo[:, 1] = rng.uniform(0, self.voly * 0.5, self.numatoms)  # y
        # the z^2 offset keeps grid points away from 1/r singularities,
        # so per-thread energy averages have light tails and the range
        # detector converges with training (Figure 16: CP < 10%)
        atominfo[:, 2] = rng.uniform(1.0, 4.0, self.numatoms)
        # predominantly positive charges: per-thread potentials stay in
        # one tight positive cluster, so CP's detector trains quickly
        atominfo[:, 3] = rng.uniform(0.25, 2.0, self.numatoms)
        gridspacing = 0.5
        bx, by = 4, 4
        gx = (self.volx // 2) // bx
        gy = self.voly // by
        return WorkloadInput(
            buffers=[
                BufferSpec("atominfo", DType.FLOAT32, 4 * self.numatoms,
                           atominfo.reshape(-1)),
                BufferSpec("energygrid", DType.FLOAT32, self.volx * self.voly,
                           np.zeros(self.volx * self.voly, dtype=np.float32)),
            ],
            scalars={"numatoms": self.numatoms, "gridspacing": gridspacing,
                     "volx": self.volx},
            buffer_params={"atominfo": "atominfo", "energygrid": "energygrid"},
            outputs=["energygrid"],
            grid=(gx, gy),
            block=(bx, by),
            meta={"atominfo": atominfo, "gridspacing": gridspacing},
        )

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        atoms = inp.meta["atominfo"].astype(np.float64)
        spacing = float(inp.meta["gridspacing"])
        xs = spacing * np.arange(self.volx, dtype=np.float64)
        ys = spacing * np.arange(self.voly, dtype=np.float64)
        # distances: grid point (x, y) to atom (ax, ay) with z^2 offset
        dx = xs[None, :, None] - atoms[None, None, :, 0]
        dy = ys[:, None, None] - atoms[None, None, :, 1]
        r2 = dx * dx + dy * dy + atoms[None, None, :, 2]
        grid = (atoms[None, None, :, 3] * (1.0 / np.sqrt(r2))).sum(axis=2)
        return grid.reshape(-1).astype(np.float32).astype(np.float64)
