"""Benchmark programs: the paper's seven Parboil HPC workloads plus
two 3D-graphics programs, re-implemented as KIR kernels with NumPy
golden references and the paper's per-program output-correctness
requirements (Section IX.B).
"""

from repro.workloads.base import Workload, WorkloadInput, get_workload, all_workloads
from repro.workloads.spec import ToleranceSpec, exact_spec
from repro.workloads.cp import CPWorkload
from repro.workloads.mri_q import MRIQWorkload
from repro.workloads.mri_fhd import MRIFHDWorkload
from repro.workloads.pns import PNSWorkload
from repro.workloads.rpes import RPESWorkload
from repro.workloads.sad import SADWorkload
from repro.workloads.tpacf import TPACFWorkload
from repro.workloads.graphics import OceanWorkload, RayTraceWorkload

__all__ = [
    "Workload",
    "WorkloadInput",
    "get_workload",
    "all_workloads",
    "ToleranceSpec",
    "exact_spec",
    "CPWorkload",
    "MRIQWorkload",
    "MRIFHDWorkload",
    "PNSWorkload",
    "RPESWorkload",
    "SADWorkload",
    "TPACFWorkload",
    "OceanWorkload",
    "RayTraceWorkload",
]
