"""Workload framework: inputs, device layout, golden runs, registry.

A :class:`Workload` packages everything one benchmark needs:

* the kernel source (mini-CUDA, parsed once and cached);
* a seeded input generator producing a :class:`WorkloadInput` — buffer
  contents, scalar arguments, launch geometry;
* a vectorized NumPy golden implementation;
* the paper's output-correctness requirement
  (:class:`~repro.workloads.spec.ToleranceSpec`);
* a memory profile by data-type class (Figure 2).

``setup_memory``/``read_output`` are generic: buffers declared by the
input are allocated in device memory and copied in; outputs are read
back and concatenated in declaration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type, Union

import numpy as np

from repro.errors import WorkloadError
from repro.gpu.device import Device
from repro.gpu.memory import Allocation
from repro.kir.astnodes import Kernel
from repro.kir.parser import parse_kernel
from repro.kir.types import DType
from repro.workloads.spec import ToleranceSpec


@dataclass
class BufferSpec:
    """One device buffer of a workload run."""

    name: str
    dtype: DType
    nwords: int
    #: Host contents to copy in (None for output buffers).
    data: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.data is not None and self.data.size > self.nwords:
            raise WorkloadError(
                f"buffer {self.name}: data of {self.data.size} exceeds {self.nwords}"
            )


@dataclass
class WorkloadInput:
    """One concrete problem instance, ready to lay out on a device."""

    buffers: List[BufferSpec]
    scalars: Dict[str, Union[int, float]]
    #: kernel pointer-parameter name -> buffer name
    buffer_params: Dict[str, str]
    #: buffer names read back (in order) as the program output
    outputs: List[str]
    grid: Tuple[int, int]
    block: Tuple[int, int]
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def n_threads(self) -> int:
        return self.grid[0] * self.grid[1] * self.block[0] * self.block[1]

    def buffer(self, name: str) -> BufferSpec:
        for b in self.buffers:
            if b.name == name:
                return b
        raise WorkloadError(f"no buffer named {name!r}")


@dataclass
class GoldenRecord:
    """Per-seed golden cache entry of one program's campaign state.

    Holds the fixed campaign input and its golden output (what
    ``campaign_io`` always cached) plus the differential engine's
    golden *execution* state — per-thread cycle/footprint records keyed
    by ``(mode, control-block fingerprint)`` so an alpha sweep between
    campaigns never reuses stale detector state (see
    :mod:`repro.swifi.differential`).
    """

    inp: WorkloadInput
    golden: np.ndarray
    #: (mode, cb_token) -> DifferentialEngine | _Ineligible
    exec_states: Dict[tuple, object] = field(default_factory=dict)


#: Process-wide parse cache: kernel source text -> validated Kernel.
#: Bounded by the number of distinct workload sources in the process.
_PARSE_CACHE: Dict[str, Kernel] = {}


class Workload:
    """Base class for benchmark programs."""

    #: Short name used in figures (e.g. "CP").
    name: str = "base"
    #: Kernel source text in the mini-CUDA dialect.
    source: str = ""
    #: Output-correctness requirement.
    spec: ToleranceSpec = ToleranceSpec(rel=0.01, abs_const=1e-9, mode="sum")
    #: Per-thread statement budget generous enough for fault-free runs.
    hang_budget: int = 2_000_000
    #: Paper-scale memory footprint in bytes by class (Figure 2); these
    #: reflect the full Parboil problem sizes, not the scaled-down sim.
    paper_scale_bytes: Dict[str, float] = {"fp": 0.0, "integer": 0.0, "pointer": 0.0}

    def __init__(self) -> None:
        self._kernel: Optional[Kernel] = None

    # -- kernel -----------------------------------------------------------
    @property
    def kernel(self) -> Kernel:
        """The parsed (and validated) kernel, shared across instances.

        Kernel sources are class attributes, so every instance of a
        workload gets the *same* parsed kernel object from a process
        cache keyed by source text.  Sharing is what makes the
        translation and compiled-program caches (which live on the
        kernel object) hit across program instances; every pass that
        transforms a kernel clones it first, so the shared original
        stays pristine.
        """
        if self._kernel is None:
            if not self.source:
                raise WorkloadError(f"workload {self.name} has no kernel source")
            cached = _PARSE_CACHE.get(self.source)
            if cached is None:
                cached = parse_kernel(self.source)
                _PARSE_CACHE[self.source] = cached
            self._kernel = cached
        return self._kernel

    # -- to be provided by subclasses ----------------------------------------
    def generate_input(self, seed: int = 0) -> WorkloadInput:
        raise NotImplementedError

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        """Vectorized NumPy reference producing the expected output."""
        raise NotImplementedError

    # -- generic device plumbing -----------------------------------------------
    def setup_memory(
        self, device: Device, inp: WorkloadInput
    ) -> Tuple[Dict[str, object], Dict[str, Allocation]]:
        """Allocate and fill device buffers; returns (launch args, handles)."""
        device.memory.reset()
        handles: Dict[str, Allocation] = {}
        for b in inp.buffers:
            alloc = device.memory.alloc(b.name, b.nwords, b.dtype)
            if b.data is not None:
                device.memory.memcpy_htod(alloc, b.data)
            handles[b.name] = alloc
        args: Dict[str, object] = dict(inp.scalars)
        for param, bname in inp.buffer_params.items():
            args[param] = handles[bname]
        return args, handles

    def read_output(
        self, device: Device, inp: WorkloadInput, handles: Dict[str, Allocation]
    ) -> np.ndarray:
        outputs = inp.outputs
        if len(outputs) == 1:
            # the common case (one output buffer): skip the concatenate
            return device.memory.memcpy_dtoh(handles[outputs[0]]).astype(np.float64)
        parts = [
            device.memory.memcpy_dtoh(handles[name]).astype(np.float64)
            for name in outputs
        ]
        return np.concatenate(parts) if parts else np.empty(0)

    # -- memory accounting (Figure 2) ---------------------------------------------
    def memory_profile(self, inp: WorkloadInput) -> Dict[str, float]:
        """Bytes of program state by sensitivity class, simulated sizes."""
        profile = {"fp": 0.0, "integer": 0.0, "pointer": 0.0}
        for b in inp.buffers:
            cls = "fp" if b.dtype is DType.FLOAT32 else "integer"
            profile[cls] += 4.0 * b.nwords
        for value in inp.scalars.values():
            profile["fp" if isinstance(value, float) else "integer"] += 4.0
        profile["pointer"] += 4.0 * len(inp.buffer_params)
        return profile


_REGISTRY: Dict[str, Type[Workload]] = {}


def register_workload(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the registry."""
    if not cls.name or cls.name == "base":
        raise WorkloadError(f"workload class {cls.__name__} needs a name")
    _REGISTRY[cls.name.upper()] = cls
    return cls


def get_workload(name: str, **kwargs) -> Workload:
    """Instantiate a registered workload by its figure name (e.g. 'CP')."""
    try:
        cls = _REGISTRY[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise WorkloadError(f"unknown workload {name!r}; known: {known}") from None
    workload = cls(**kwargs)
    # remember how this instance was made: programs wrapping a
    # registry-built workload are rebuildable in other processes, which
    # is what lets the fleet auto-derive a ProgramRecipe for them
    workload.registry_kwargs = dict(kwargs)
    return workload


def all_workloads() -> List[str]:
    """Registered workload names in figure order."""
    order = ["CP", "MRI-FHD", "MRI-Q", "PNS", "RPES", "SAD", "TPACF"]
    extra = sorted(set(_REGISTRY) - set(order))
    return [n for n in order if n in _REGISTRY] + extra
