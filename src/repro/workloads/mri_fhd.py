"""MRI-FHD — MRI reconstruction, F^H d computation (Parboil).

Structurally like MRI-Q but the per-sample weight is the complex
product ``Mu = Rho* x D`` of two *input vectors*, so the magnitude of
the accumulated output depends multiplicatively on both vectors'
scales.  Section IX.C singles this out: "the inputs are vectors and
the output computation involves multiplication of the different
vectors; thus, range-based detectors are not that precise" — MRI-FHD's
false-positive ratio stays ~30% even after 50 training sets at
alpha=1 (Figure 16).  The input generator reproduces that by drawing a
per-dataset lognormal amplitude for the Rho and D vectors.
"""

from __future__ import annotations

import numpy as np

from repro.kir.types import DType
from repro.workloads.base import (
    BufferSpec,
    Workload,
    WorkloadInput,
    register_workload,
)
from repro.workloads.spec import percent_spec

TWO_PI = 6.283185307179586


@register_workload
class MRIFHDWorkload(Workload):
    name = "MRI-FHD"
    spec = percent_spec(0.01)
    paper_scale_bytes = {
        "fp": (2048 * 2048 * 7 + 5 * 32768) * 4.0,
        "integer": 8.0,
        "pointer": 48.0,
    }

    source = """
kernel mrifhd(float* kx, float* ky, float* kz, float* x, float* y, float* z,
              float* rRho, float* iRho, float* rD, float* iD,
              float* rFhD, float* iFhD, int numk, int numx) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    if (t < numx) {
        float xl = x[t];
        float yl = y[t];
        float zl = z[t];
        float rfh = 0.0;
        float ifh = 0.0;
        for (int k = 0; k < numk; k++) {
            float rmu = rRho[k] * rD[k] + iRho[k] * iD[k];
            float imu = rRho[k] * iD[k] - iRho[k] * rD[k];
            float arg = 6.283185307179586 * (kx[k] * xl + ky[k] * yl + kz[k] * zl);
            float c = cos(arg);
            float s = sin(arg);
            rfh = rfh + rmu * c - imu * s;
            ifh = ifh + imu * c + rmu * s;
        }
        rFhD[t] = rfh;
        iFhD[t] = ifh;
    }
}
"""

    def __init__(self, numk: int = 24, numx: int = 96):
        super().__init__()
        self.numk = numk
        self.numx = numx

    def generate_input(self, seed: int = 0) -> WorkloadInput:
        rng = np.random.default_rng(seed + 3000)
        # Per-dataset variation along several independent axes: the Rho
        # and D vector amplitudes (their *product* scales the output)
        # and the k-space extent (controls phase cancellation).  This
        # multi-dimensional spread is what keeps range detectors
        # imprecise across datasets even after many training sets
        # (Figure 16's "output computation involves multiplication of
        # the different vectors").
        rho_amp = 10.0 ** rng.uniform(-2.0, 2.0)
        d_amp = 10.0 ** rng.uniform(-2.0, 2.0)
        k_extent = 0.5 * 10.0 ** rng.uniform(-0.8, 0.8)
        kx = rng.uniform(-k_extent, k_extent, self.numk).astype(np.float32)
        ky = rng.uniform(-k_extent, k_extent, self.numk).astype(np.float32)
        kz = rng.uniform(-k_extent, k_extent, self.numk).astype(np.float32)
        x = rng.uniform(-1.0, 1.0, self.numx).astype(np.float32)
        y = rng.uniform(-1.0, 1.0, self.numx).astype(np.float32)
        z = rng.uniform(-1.0, 1.0, self.numx).astype(np.float32)
        r_rho = (rho_amp * rng.normal(0.0, 1.0, self.numk)).astype(np.float32)
        i_rho = (rho_amp * rng.normal(0.0, 1.0, self.numk)).astype(np.float32)
        r_d = (d_amp * rng.normal(0.0, 1.0, self.numk)).astype(np.float32)
        i_d = (d_amp * rng.normal(0.0, 1.0, self.numk)).astype(np.float32)
        bx = 32
        gx = (self.numx + bx - 1) // bx
        buffers = [
            BufferSpec("kx", DType.FLOAT32, self.numk, kx),
            BufferSpec("ky", DType.FLOAT32, self.numk, ky),
            BufferSpec("kz", DType.FLOAT32, self.numk, kz),
            BufferSpec("x", DType.FLOAT32, self.numx, x),
            BufferSpec("y", DType.FLOAT32, self.numx, y),
            BufferSpec("z", DType.FLOAT32, self.numx, z),
            BufferSpec("rRho", DType.FLOAT32, self.numk, r_rho),
            BufferSpec("iRho", DType.FLOAT32, self.numk, i_rho),
            BufferSpec("rD", DType.FLOAT32, self.numk, r_d),
            BufferSpec("iD", DType.FLOAT32, self.numk, i_d),
            BufferSpec("rFhD", DType.FLOAT32, self.numx,
                       np.zeros(self.numx, dtype=np.float32)),
            BufferSpec("iFhD", DType.FLOAT32, self.numx,
                       np.zeros(self.numx, dtype=np.float32)),
        ]
        return WorkloadInput(
            buffers=buffers,
            scalars={"numk": self.numk, "numx": self.numx},
            buffer_params={b.name: b.name for b in buffers},
            outputs=["rFhD", "iFhD"],
            grid=(gx, 1),
            block=(bx, 1),
            meta={
                "k": np.stack([kx, ky, kz]).astype(np.float64),
                "r": np.stack([x, y, z]).astype(np.float64),
                "rho": (r_rho.astype(np.float64), i_rho.astype(np.float64)),
                "d": (r_d.astype(np.float64), i_d.astype(np.float64)),
            },
        )

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        k = inp.meta["k"]
        r = inp.meta["r"]
        r_rho, i_rho = inp.meta["rho"]
        r_d, i_d = inp.meta["d"]
        rmu = r_rho * r_d + i_rho * i_d
        imu = r_rho * i_d - i_rho * r_d
        arg = TWO_PI * (k.T @ r)  # (numk, numx)
        c = np.cos(arg)
        s = np.sin(arg)
        rfh = (rmu[:, None] * c - imu[:, None] * s).sum(axis=0)
        ifh = (imu[:, None] * c + rmu[:, None] * s).sum(axis=0)
        return np.concatenate([rfh, ifh]).astype(np.float32).astype(np.float64)
