"""PNS — Petri Net Simulation (Parboil).

Each thread runs an independent stochastic token game on a small
place/transition net using an LCG random stream, reporting the final
token count and the number of transition firings.  The protected loop
variable is an *integer* self-accumulator, which is why PNS has the
smallest HAUBERK-L overhead ("thanks to the fast integer arithmetic
speed", Section IX.A).  Its inputs "represent parameters of a fixed
simulation model", so profiled ranges converge after a handful of
training sets (Figure 16: PNS reaches ~0 false positives after 7).

Correctness requirement: ``Max{0.01, 1% |GR_i|}`` (Section IX.B).
"""

from __future__ import annotations

import numpy as np

from repro.kir.types import DType
from repro.workloads.base import (
    BufferSpec,
    Workload,
    WorkloadInput,
    register_workload,
)
from repro.workloads.spec import PNS_SPEC

_WRAP = np.int64(1) << 32
_HALF = np.int64(1) << 31


def _wrap_i32_np(x: np.ndarray) -> np.ndarray:
    """Two's-complement wrap matching the interpreter's wrap_i32."""
    return ((x + _HALF) % _WRAP) - _HALF


@register_workload
class PNSWorkload(Workload):
    name = "PNS"
    spec = PNS_SPEC
    paper_scale_bytes = {
        "fp": 1024 * 4.0,
        "integer": 5_000_000 * 4.0,  # PNS is marking/count dominated
        "pointer": 8.0,
    }

    source = """
kernel pns(int* placeinit, int* results, int nplaces, int steps,
           int seedbase, int firethresh) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    int rng = seedbase + t * 747796405;
    int tokens = placeinit[t % nplaces];
    int fired = 0;
    for (int s = 0; s < steps; s++) {
        rng = rng * 1103515245 + 12345;
        int r = (rng >> 16) & 32767;
        int place = r % nplaces;
        int capacity = placeinit[place];
        int weight = (r >> 5) & 7;
        int demand = (weight * 3 + place) % 11;
        int enabled = (tokens + capacity) - demand;
        if (((r % 100) < firethresh) && (enabled > 0)) {
            tokens = tokens + 1;
            fired = fired + 1;
        } else {
            if (tokens > 0) {
                tokens = tokens - 1;
            }
        }
    }
    results[t * 2] = tokens;
    results[t * 2 + 1] = fired;
}
"""

    def __init__(self, steps: int = 64, nplaces: int = 8, n_threads: int = 96):
        super().__init__()
        self.steps = steps
        self.nplaces = nplaces
        self.n_threads = n_threads

    def generate_input(self, seed: int = 0) -> WorkloadInput:
        rng = np.random.default_rng(seed + 4000)
        placeinit = rng.integers(0, 16, self.nplaces).astype(np.int32)
        seedbase = int(rng.integers(1, 2**30))
        firethresh = 60  # fixed model parameter
        bx = 32
        gx = (self.n_threads + bx - 1) // bx
        return WorkloadInput(
            buffers=[
                BufferSpec("placeinit", DType.INT32, self.nplaces, placeinit),
                BufferSpec("results", DType.INT32, 2 * self.n_threads,
                           np.zeros(2 * self.n_threads, dtype=np.int32)),
            ],
            scalars={
                "nplaces": self.nplaces,
                "steps": self.steps,
                "seedbase": seedbase,
                "firethresh": firethresh,
            },
            buffer_params={"placeinit": "placeinit", "results": "results"},
            outputs=["results"],
            grid=(gx, 1),
            block=(bx, 1),
            meta={"placeinit": placeinit, "seedbase": seedbase,
                  "firethresh": firethresh},
        )

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        placeinit = inp.meta["placeinit"].astype(np.int64)
        seedbase = np.int64(inp.meta["seedbase"])
        firethresh = int(inp.meta["firethresh"])
        n = inp.n_threads
        t = np.arange(n, dtype=np.int64)
        rng = _wrap_i32_np(seedbase + t * 747796405)
        tokens = placeinit[t % self.nplaces].copy()
        fired = np.zeros(n, dtype=np.int64)
        for _ in range(self.steps):
            rng = _wrap_i32_np(rng * 1103515245 + 12345)
            r = (rng >> 16) & 32767  # arithmetic shift matches wrap_i32
            place = r % self.nplaces
            capacity = placeinit[place]
            weight = (r >> 5) & 7
            demand = (weight * 3 + place) % 11
            enabled = (tokens + capacity) - demand
            fire = ((r % 100) < firethresh) & (enabled > 0)
            tokens = np.where(fire, tokens + 1, np.maximum(tokens - 1, np.minimum(tokens, 0)))
            fired += fire
        out = np.empty(2 * n, dtype=np.int64)
        out[0::2] = tokens
        out[1::2] = fired
        return out.astype(np.float64)
