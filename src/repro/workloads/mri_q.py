"""MRI-Q — magnetic resonance image reconstruction, Q matrix (Parboil).

For every voxel the kernel sums, over all k-space samples,
``|phi_k|^2 * exp(2*pi*i * k.x)`` split into real/imaginary parts.
Two self-accumulating FP variables per thread; value distributions of
the kernel's variables exhibit the three correlation points of
Figure 10 (negative / near-zero / positive clusters).

The paper quotes MRI-Q's correctness requirement as
``Max{1e-4 Max{|GR|}, 0.2% |GR_i|}`` (Section IX.B).
"""

from __future__ import annotations

import numpy as np

from repro.kir.types import DType
from repro.workloads.base import (
    BufferSpec,
    Workload,
    WorkloadInput,
    register_workload,
)
from repro.workloads.spec import MRIQ_SPEC

TWO_PI = 6.283185307179586


@register_workload
class MRIQWorkload(Workload):
    name = "MRI-Q"
    spec = MRIQ_SPEC
    # Parboil mri-q large: 2048^2 k-space samples x 5 floats, 32^3 voxels
    paper_scale_bytes = {
        "fp": (2048 * 2048 * 5 + 3 * 32768 + 2 * 32768) * 4.0,
        "integer": 8.0,
        "pointer": 40.0,
    }

    source = """
kernel mriq(float* kx, float* ky, float* kz, float* x, float* y, float* z,
            float* phiR, float* phiI, float* Qr, float* Qi,
            int numk, int numx) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    if (t < numx) {
        float xl = x[t];
        float yl = y[t];
        float zl = z[t];
        float qr = 0.0;
        float qi = 0.0;
        for (int k = 0; k < numk; k++) {
            float phimag = phiR[k] * phiR[k] + phiI[k] * phiI[k];
            float arg = 6.283185307179586 * (kx[k] * xl + ky[k] * yl + kz[k] * zl);
            qr = qr + phimag * cos(arg);
            qi = qi + phimag * sin(arg);
        }
        Qr[t] = qr;
        Qi[t] = qi;
    }
}
"""

    def __init__(self, numk: int = 24, numx: int = 96):
        super().__init__()
        self.numk = numk
        self.numx = numx

    def generate_input(self, seed: int = 0) -> WorkloadInput:
        rng = np.random.default_rng(seed + 2000)
        kx = rng.uniform(-0.5, 0.5, self.numk).astype(np.float32)
        ky = rng.uniform(-0.5, 0.5, self.numk).astype(np.float32)
        kz = rng.uniform(-0.5, 0.5, self.numk).astype(np.float32)
        x = rng.uniform(-1.0, 1.0, self.numx).astype(np.float32)
        y = rng.uniform(-1.0, 1.0, self.numx).astype(np.float32)
        z = rng.uniform(-1.0, 1.0, self.numx).astype(np.float32)
        phi_r = rng.normal(0.0, 1.0, self.numk).astype(np.float32)
        phi_i = rng.normal(0.0, 1.0, self.numk).astype(np.float32)
        bx = 32
        gx = (self.numx + bx - 1) // bx
        buffers = [
            BufferSpec("kx", DType.FLOAT32, self.numk, kx),
            BufferSpec("ky", DType.FLOAT32, self.numk, ky),
            BufferSpec("kz", DType.FLOAT32, self.numk, kz),
            BufferSpec("x", DType.FLOAT32, self.numx, x),
            BufferSpec("y", DType.FLOAT32, self.numx, y),
            BufferSpec("z", DType.FLOAT32, self.numx, z),
            BufferSpec("phiR", DType.FLOAT32, self.numk, phi_r),
            BufferSpec("phiI", DType.FLOAT32, self.numk, phi_i),
            BufferSpec("Qr", DType.FLOAT32, self.numx,
                       np.zeros(self.numx, dtype=np.float32)),
            BufferSpec("Qi", DType.FLOAT32, self.numx,
                       np.zeros(self.numx, dtype=np.float32)),
        ]
        return WorkloadInput(
            buffers=buffers,
            scalars={"numk": self.numk, "numx": self.numx},
            buffer_params={b.name: b.name for b in buffers},
            outputs=["Qr", "Qi"],
            grid=(gx, 1),
            block=(bx, 1),
            meta={
                "k": np.stack([kx, ky, kz]).astype(np.float64),
                "r": np.stack([x, y, z]).astype(np.float64),
                "phi": (phi_r.astype(np.float64), phi_i.astype(np.float64)),
            },
        )

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        k = inp.meta["k"]  # (3, numk)
        r = inp.meta["r"]  # (3, numx)
        phi_r, phi_i = inp.meta["phi"]
        phimag = phi_r * phi_r + phi_i * phi_i  # (numk,)
        arg = TWO_PI * (k.T @ r)  # (numk, numx)
        qr = (phimag[:, None] * np.cos(arg)).sum(axis=0)
        qi = (phimag[:, None] * np.sin(arg)).sum(axis=0)
        out = np.concatenate([qr, qi]).astype(np.float32).astype(np.float64)
        return out
