"""SAD — Sum of Absolute Differences (Parboil, H.264 motion estimation).

The suite's one *integer* program: each thread scores one macroblock
against one search offset by accumulating ``|cur - ref|`` over the
block.  Output correctness is exact — "it does not allow value errors
in the output" — which is why SAD's detected-&-masked ratio is low
(Section IX.B): any undetected value change *is* an SDC.
"""

from __future__ import annotations

import numpy as np

from repro.kir.types import DType
from repro.workloads.base import (
    BufferSpec,
    Workload,
    WorkloadInput,
    register_workload,
)
from repro.workloads.spec import exact_spec


@register_workload
class SADWorkload(Workload):
    name = "SAD"
    spec = exact_spec()
    paper_scale_bytes = {
        "fp": 128.0,
        "integer": (704 * 576 * 2 + 2_000_000) * 4.0,  # CIF frames + SAD array
        "pointer": 12.0,
    }

    source = """
kernel sad(int* cur, int* ref, int* sads, int width, int mbsize,
           int searchdim, int nmbx, int nmb) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    int nsearch = searchdim * searchdim;
    int mb = t / nsearch;
    int so = t % nsearch;
    if (mb < nmb) {
        int mbx = (mb % nmbx) * mbsize;
        int mby = (mb / nmbx) * mbsize;
        int sox = so % searchdim;
        int soy = so / searchdim;
        int sum = 0;
        for (int i = 0; i < mbsize; i++) {
            for (int j = 0; j < mbsize; j++) {
                int a = cur[(mby + i) * width + mbx + j];
                int b = ref[(mby + soy + i) * width + mbx + sox + j];
                int d = a - b;
                if (d < 0) {
                    d = 0 - d;
                }
                sum = sum + d;
            }
        }
        sads[t] = sum;
    }
}
"""

    def __init__(self, width: int = 24, height: int = 12, mbsize: int = 6,
                 searchdim: int = 2):
        super().__init__()
        if width % mbsize or height % mbsize:
            raise ValueError("frame dimensions must be multiples of mbsize")
        self.width = width
        self.height = height
        self.mbsize = mbsize
        self.searchdim = searchdim

    @property
    def n_macroblocks(self) -> int:
        # keep a one-macroblock margin so search offsets stay in frame
        return ((self.width // self.mbsize) - 1) * ((self.height // self.mbsize) - 1)

    def generate_input(self, seed: int = 0) -> WorkloadInput:
        rng = np.random.default_rng(seed + 6000)
        cur = rng.integers(0, 256, (self.height, self.width)).astype(np.int32)
        ref = rng.integers(0, 256, (self.height, self.width)).astype(np.int32)
        nmbx = (self.width // self.mbsize) - 1
        nsearch = self.searchdim * self.searchdim
        n_threads = self.n_macroblocks * nsearch
        bx = 32
        gx = (n_threads + bx - 1) // bx
        # pad the grid: extra threads score redundant (mb, so) pairs that
        # stay in range because we sized the macroblock area with margin
        return WorkloadInput(
            buffers=[
                BufferSpec("cur", DType.INT32, cur.size, cur.reshape(-1)),
                BufferSpec("ref", DType.INT32, ref.size, ref.reshape(-1)),
                BufferSpec("sads", DType.INT32, gx * bx,
                           np.zeros(gx * bx, dtype=np.int32)),
            ],
            scalars={
                "width": self.width,
                "mbsize": self.mbsize,
                "searchdim": self.searchdim,
                "nmbx": nmbx,
                "nmb": self.n_macroblocks,
            },
            buffer_params={"cur": "cur", "ref": "ref", "sads": "sads"},
            outputs=["sads"],
            grid=(gx, 1),
            block=(bx, 1),
            meta={"cur": cur, "ref": ref, "nmbx": nmbx, "n_threads": gx * bx},
        )

    def golden(self, inp: WorkloadInput) -> np.ndarray:
        cur = inp.meta["cur"].astype(np.int64)
        ref = inp.meta["ref"].astype(np.int64)
        nmbx = int(inp.meta["nmbx"])
        n = int(inp.meta["n_threads"])
        nsearch = self.searchdim * self.searchdim
        out = np.zeros(n, dtype=np.int64)
        for t in range(n):
            mb = t // nsearch
            so = t % nsearch
            if mb >= self.n_macroblocks:
                continue
            mbx = (mb % nmbx) * self.mbsize
            mby = (mb // nmbx) * self.mbsize
            sox = so % self.searchdim
            soy = so // self.searchdim
            c = cur[mby : mby + self.mbsize, mbx : mbx + self.mbsize]
            r = ref[mby + soy : mby + soy + self.mbsize,
                    mbx + sox : mbx + sox + self.mbsize]
            out[t] = np.abs(c - r).sum()
        return out.astype(np.float64)
