"""`CampaignOptions` — the single parameter object for campaign runs.

Campaign execution grew knob by knob — worker counts, chunk sizes,
differential replay, and now journaling, retries, and trial timeouts —
and each knob was threaded separately through ``run_campaign``,
``ExperimentScale``, and the CLI.  This module collapses them into one
frozen, picklable dataclass: harnesses carry a ``CampaignOptions``,
``ExperimentScale.campaign`` holds one, the CLI parses straight into
one, and fork workers inherit the same object their parent planned
with.

``options=CampaignOptions(...)`` is the *only* way to configure a
campaign — the pre-v1 per-knob keywords (``run_campaign(...,
workers=4)``) are gone.  This object is also half of the fleet wire
protocol: :mod:`repro.fleet.wire` serializes the execution-relevant
fields into every submitted campaign envelope, so a remote worker runs
with exactly the options the submitter planned with.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.exec.retry import RetryPolicy


@dataclass(frozen=True)
class CampaignOptions:
    """Every execution knob of one SWIFI campaign.

    Frozen so a preset can be shared between harnesses and forked
    workers without defensive copying; derive variants with
    :meth:`evolve`.
    """

    #: Worker processes (``1`` = in-process, ``"auto"`` = one per CPU;
    #: see :func:`repro.exec.pool.resolve_workers`).
    workers: Union[int, str, None] = 1
    #: Campaign input seed (``HauberkProgram.campaign_io``).
    seed: int = 0
    #: Specs per worker chunk; ``None`` picks
    #: :func:`repro.exec.pool.default_chunk_size`.
    chunk_size: Optional[int] = None
    #: Serve eligible trials via golden-run memoization + single-thread
    #: replay (:mod:`repro.swifi.differential`).
    differential: bool = True
    #: Journal every classified trial under this directory (one
    #: subdirectory per campaign fingerprint); existing records are
    #: *not* reused — the campaign journal starts fresh.
    run_dir: Optional[str] = None
    #: Resume from (and keep journaling to) this directory: trials
    #: already journaled for this campaign's fingerprint are replayed
    #: instead of re-executed.  Takes precedence over ``run_dir``.
    resume: Optional[str] = None
    #: Worker-death handling (:class:`repro.exec.retry.RetryPolicy`);
    #: ``RetryPolicy(max_deaths=0)`` restores strict crash surfacing.
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-trial wall-clock budget in seconds; a trial exceeding it is
    #: classified as a hang (the existing failure class).  ``None``
    #: disables the deadline.
    trial_timeout: Optional[float] = None
    #: Attribute wall-clock to campaign phases with a
    #: :class:`repro.obs.profile.PhaseProfiler`; journaled campaigns
    #: additionally persist ``profile.json`` next to the journal.
    profile: bool = False
    #: Render a live TTY progress line (bar, rate, ETA, outcome
    #: tallies) on stderr while the campaign runs.  Never affects
    #: results: progress-on campaigns are bit-identical to progress-off.
    progress: bool = False
    #: Stratified trial budget: run at most this many trials, sampled
    #: across fault strata by :mod:`repro.swifi.planner`, and report
    #: population-extrapolated estimates with confidence intervals.
    #: ``None`` (the default) runs the full enumerated plan.
    budget: Optional[int] = None
    #: Budget allocation method: ``"stratified"`` (proportional, the
    #: default when ``budget`` is set) or ``"neyman"`` (variance-based,
    #: runs a small pilot campaign first).
    plan: Optional[str] = None
    #: Confidence level for the planner's reported intervals.
    confidence: float = 0.95
    #: Run this campaign on a fleet of N *spawned* worker processes
    #: behind an in-process coordinator (:mod:`repro.fleet`): chunks
    #: are leased to long-lived workers over the wire protocol and the
    #: result is bit-identical to ``workers=1``.  Requires a program
    #: built from a :class:`~repro.fleet.wire.ProgramRecipe`.  ``None``
    #: (the default) keeps the fork-pool / serial paths.
    fleet: Optional[int] = None
    #: Submit the campaign to an already-running fleet coordinator at
    #: ``"host:port"`` (``repro serve``) instead of executing locally.
    #: Takes precedence over ``fleet``.
    endpoint: Optional[str] = None

    def __post_init__(self) -> None:
        if self.trial_timeout is not None and self.trial_timeout <= 0:
            raise ValueError(
                f"trial_timeout must be positive, got {self.trial_timeout}"
            )
        if not isinstance(self.retry, RetryPolicy):
            raise TypeError(
                f"retry must be a RetryPolicy, got {type(self.retry).__name__}"
            )
        if self.budget is not None and self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")
        if self.plan is not None and self.plan not in ("stratified", "neyman"):
            raise ValueError(
                f"plan must be 'stratified' or 'neyman', got {self.plan!r}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.fleet is not None and self.fleet < 1:
            raise ValueError(
                f"fleet needs at least one worker, got {self.fleet}"
            )
        if self.endpoint is not None and ":" not in self.endpoint:
            raise ValueError(
                f"endpoint must be 'host:port', got {self.endpoint!r}"
            )

    @property
    def journal_root(self) -> Optional[str]:
        """Directory the campaign journals under, if any."""
        return self.resume if self.resume is not None else self.run_dir

    @property
    def resuming(self) -> bool:
        """Whether existing journal records should be replayed."""
        return self.resume is not None

    def evolve(self, **changes) -> "CampaignOptions":
        """A copy with the given fields replaced (frozen-friendly)."""
        return dataclasses.replace(self, **changes)
