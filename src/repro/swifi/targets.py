"""Fault-injection target enumeration and sampling.

"20-50 virtual variables are selected in each benchmark program and
faults are injected into each of the selected virtual variables"
(Section VIII).  Targets are the kernel's virtual-variable sites —
parameters (where pointer corruption typically lands) and every
Decl/Assign definition.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import InjectionError
from repro.kir.analysis.dataflow import SiteInfo, collect_sites
from repro.kir.astnodes import Kernel


def enumerate_targets(
    kernel: Kernel, classes: Optional[Sequence[str]] = None
) -> List[SiteInfo]:
    """All injectable sites, optionally filtered by sensitivity class.

    ``classes`` may contain any of ``"pointer"``, ``"integer"``,
    ``"fp"`` (the Figure 1 categories).
    """
    sites = collect_sites(kernel)
    if classes is None:
        return sites
    wanted = set(classes)
    unknown = wanted - {"pointer", "integer", "fp"}
    if unknown:
        raise InjectionError(f"unknown sensitivity classes {sorted(unknown)}")
    return [s for s in sites if s.sensitivity_class in wanted]


def select_targets(
    kernel: Kernel,
    max_targets: int,
    rng: np.random.Generator,
    classes: Optional[Sequence[str]] = None,
) -> List[SiteInfo]:
    """Sample up to ``max_targets`` sites without replacement."""
    if max_targets <= 0:
        raise InjectionError(f"max_targets must be positive, got {max_targets}")
    sites = enumerate_targets(kernel, classes)
    if len(sites) <= max_targets:
        return sites
    picks = rng.choice(len(sites), size=max_targets, replace=False)
    return [sites[int(i)] for i in sorted(picks)]
