"""Fault-injection target enumeration and sampling.

"20-50 virtual variables are selected in each benchmark program and
faults are injected into each of the selected virtual variables"
(Section VIII).  Targets are the kernel's virtual-variable sites —
parameters (where pointer corruption typically lands) and every
Decl/Assign definition.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import InjectionError
from repro.kir.analysis.dataflow import SiteInfo, collect_sites
from repro.kir.astnodes import Kernel


def enumerate_targets(
    kernel: Kernel, classes: Optional[Sequence[str]] = None
) -> List[SiteInfo]:
    """All injectable sites, optionally filtered by sensitivity class.

    ``classes`` may contain any of ``"pointer"``, ``"integer"``,
    ``"fp"`` (the Figure 1 categories).
    """
    sites = collect_sites(kernel)
    if classes is None:
        return sites
    wanted = set(classes)
    unknown = wanted - {"pointer", "integer", "fp"}
    if unknown:
        raise InjectionError(f"unknown sensitivity classes {sorted(unknown)}")
    return [s for s in sites if s.sensitivity_class in wanted]


def select_targets(
    kernel: Kernel,
    max_targets: int,
    rng: np.random.Generator,
    classes: Optional[Sequence[str]] = None,
) -> List[SiteInfo]:
    """Sample up to ``max_targets`` sites without replacement.

    **Ordering contract**: the returned sites are always in ascending
    *site-id* order, not draw order — the sampled indices are re-sorted
    before lookup.  One call is one sample: the same ``(kernel,
    max_targets, classes)`` with an identically-seeded generator always
    returns the same sites.  What the sort deliberately gives up is
    draw-order semantics *across* calls: two successive calls on the
    same generator are **not** "the first batch then the next disjoint
    batch" of one longer draw — each call samples independently from
    the full population (minus nothing), so overlap between the two
    returns is expected.  Callers wanting disjoint batches must sample
    once with the combined budget and split the result themselves.

    ``classes`` filters the population *before* sampling, so the same
    seed with different ``classes`` draws from different index spaces
    and the picks are unrelated — only identical ``classes`` values
    reproduce each other.
    """
    if max_targets <= 0:
        raise InjectionError(f"max_targets must be positive, got {max_targets}")
    sites = enumerate_targets(kernel, classes)
    if len(sites) <= max_targets:
        return sites
    picks = rng.choice(len(sites), size=max_targets, replace=False)
    return [sites[int(i)] for i in sorted(picks)]
