"""Fault specifications: what to corrupt, where, and when.

A fault is fully described by (Section VII): the *location* — which
virtual variable (site) of which thread — the *type* — the 32-bit
error mask (1 bit = SEU; several bits = multi-bit error) — and the
*time* — which dynamic occurrence of the definition to hit.  One
program execution activates at most one fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bits import bit_count
from repro.errors import InjectionError
from repro.gpu.faults import FaultSite


@dataclass
class FaultSpec:
    """One planned fault injection."""

    #: Virtual-variable site id to corrupt.
    site: int
    #: 32-bit XOR error mask.
    mask: int
    #: Global thread index whose copy of the variable is corrupted.
    thread: int = 0
    #: Which dynamic execution of the definition to corrupt (1-based).
    occurrence: int = 1
    #: Number of consecutive occurrences corrupted.  1 models a
    #: transient SEU; larger values emulate an intermittent fault that
    #: stays active for a window of executions (the paper's ~80us FPU
    #: fault corrupting ~10,000 values, Section II.A / Figure 3b).
    burst: int = 1
    #: When the fault strikes. ``"definition"`` corrupts the value as
    #: it is produced (the occurrence counts executions of *this*
    #: site); ``"delayed"`` corrupts the live variable at an arbitrary
    #: later point of the thread's execution (the occurrence counts the
    #: thread's instrumentation events) — the Figure 12 "injection
    #: time" knob, essential for parameters, whose single definition
    #: precedes every use.
    timing: str = "definition"
    #: The hardware component this emulates (bookkeeping only).
    hw_site: FaultSite = FaultSite.REGISTER
    #: Free-form label for reports.
    label: str = ""

    def __post_init__(self) -> None:
        if self.mask == 0 or self.mask != self.mask & 0xFFFFFFFF:
            raise InjectionError(f"invalid error mask 0x{self.mask:x}")
        if self.occurrence < 1:
            raise InjectionError(f"occurrence must be >= 1, got {self.occurrence}")
        if self.burst < 1:
            raise InjectionError(f"burst must be >= 1, got {self.burst}")
        if self.thread < 0:
            raise InjectionError(f"invalid thread index {self.thread}")
        if self.timing not in ("definition", "delayed"):
            raise InjectionError(f"unknown timing {self.timing!r}")

    @property
    def is_intermittent(self) -> bool:
        return self.burst > 1

    @property
    def n_bits(self) -> int:
        return bit_count(self.mask)


@dataclass
class ActivationRecord:
    """Evidence that a planned fault actually fired during a run."""

    spec: FaultSpec
    variable: str
    original: object
    corrupted: object
    block: int = -1
    thread_in_block: int = -1
    #: Dynamic statement index at activation (ctx.steps of the thread).
    at_step: int = 0
    #: How many occurrences were corrupted (1 transient, >1 intermittent).
    n_injections: int = 1


@dataclass
class InjectionState:
    """Mutable per-run state carried by the FI library."""

    spec: Optional[FaultSpec] = None
    activation: Optional[ActivationRecord] = None
    #: Dynamic occurrence counters keyed by (site, global thread id).
    counters: dict = field(default_factory=dict)

    @property
    def activated(self) -> bool:
        return self.activation is not None

    def reset(self, spec: Optional[FaultSpec]) -> None:
        self.spec = spec
        self.activation = None
        self.counters.clear()
