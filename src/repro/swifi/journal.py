"""Durable trial journal: crash-tolerant, resumable SWIFI campaigns.

Campaigns are the expensive half of the reproduction — thousands of
single-fault executions per workload (Section VIII) — and before this
module a killed process discarded every completed trial.  The journal
makes campaign progress durable and *resumable*:

* Each campaign owns a run directory keyed by its **campaign
  fingerprint** — a digest over the program identity (workload name +
  kernel source), the campaign input and golden output, the build mode,
  the control-block detector configuration, the trial seed, and the
  full fault-spec plan.  Two campaigns share journal state only when
  every one of those ingredients is bit-identical, which is exactly the
  precondition for replayed records being valid.
* Every classified trial appends one JSON line —
  ``(spec index, spec fingerprint, outcome, observation, digest)`` —
  flushed immediately, so a SIGKILL loses at most the trial in flight.
  Quarantined specs journal their structured report the same way.
* On resume (``CampaignOptions(resume=dir)``) records whose
  ``(index, spec fingerprint)`` match the current plan are replayed
  through the same ``absorb_trial`` merge the live path uses, so a
  killed-and-resumed campaign produces a **bit-identical**
  ``CampaignResult`` to an uninterrupted one.

Layout under the journal root::

    <root>/<fingerprint16>/meta.json      # human-readable fingerprint
    <root>/<fingerprint16>/journal.jsonl  # one record per trial

Torn or corrupt lines (the tail a kill can leave behind) are skipped on
load — every record carries its own digest, so a partial line can never
replay as a wrong observation.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import InjectionError
from repro.obs.profile import PHASE_JOURNAL_APPEND, get_profiler
from repro.swifi.campaign import QuarantineReport, TrialObservation
from repro.swifi.faultmodel import FaultSpec

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.core.program
    from repro.core.program import HauberkProgram

#: Journal schema version; bumped on any incompatible record change.
JOURNAL_VERSION = 1

#: Hex digits of the campaign fingerprint used for the directory name.
FINGERPRINT_DIR_CHARS = 16


def _digest(payload: object) -> str:
    """Stable short hex digest of any JSON-serialisable payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def spec_fingerprint(spec: FaultSpec) -> str:
    """Content fingerprint of one fault spec (12 hex chars).

    Everything that determines the trial's behaviour participates;
    ``label`` is included too so a relabelled plan reads as a new one
    rather than silently reusing records.
    """
    return _digest([
        spec.site, spec.mask, spec.thread, spec.occurrence, spec.burst,
        spec.timing, spec.hw_site.value, spec.label,
    ])[:12]


def _input_digest(program: "HauberkProgram", seed: int) -> str:
    """Digest of the fixed campaign input and its golden output."""
    inp, golden = program.campaign_io(seed)
    parts: List[object] = [
        sorted(inp.scalars.items()), list(inp.grid), list(inp.block),
    ]
    for buf in inp.buffers:
        data = buf.data
        parts.append([
            buf.name, str(buf.dtype),
            hashlib.sha256(data.tobytes()).hexdigest() if data is not None
            else None,
        ])
    parts.append(hashlib.sha256(golden.tobytes()).hexdigest())
    return _digest(parts)


def campaign_fingerprint(
    program: Optional["HauberkProgram"],
    specs: List[FaultSpec],
    mode: str,
    seed: int,
) -> Tuple[str, Dict[str, object]]:
    """``(fingerprint, meta)`` identifying one campaign's journal.

    ``meta`` is the human-readable decomposition written to
    ``meta.json`` so an operator can see *why* two runs did or did not
    share a journal.  Campaigns driven by a bare ``runner_factory``
    (no program) fingerprint the plan alone under a ``"<runner>"``
    program identity.
    """
    if program is not None:
        from repro.swifi.differential import control_block_token

        program.build(mode)  # fift/ft: configure the control block first
        cb_token = repr(control_block_token(program.cb)) \
            if mode in ("ft", "fift") else ""
        components: Dict[str, object] = {
            "workload": program.workload.name,
            "kernel": _digest(program.workload.source),
            "input": _input_digest(program, seed),
            "control_block": _digest(cb_token),
        }
    else:
        components = {"workload": "<runner>", "kernel": "", "input": "",
                      "control_block": ""}
    components["mode"] = mode
    components["seed"] = seed
    components["specs"] = _digest([spec_fingerprint(s) for s in specs])
    components["n_specs"] = len(specs)
    fingerprint = _digest(components)
    meta = {"version": JOURNAL_VERSION, "fingerprint": fingerprint,
            "components": components}
    return fingerprint, meta


@dataclass
class JournalRecord:
    """One decoded journal line."""

    index: int
    spec_fp: str
    outcome: str
    observation: Optional[TrialObservation]
    quarantine: Optional[Dict[str, object]] = None
    #: How the trial was served when profiling was on: ``"diff"`` or
    #: ``"full:<reason>"`` (``None`` on unprofiled records).
    served: Optional[str] = None

    def to_report(self, spec: FaultSpec) -> QuarantineReport:
        q = self.quarantine or {}
        return QuarantineReport(
            spec=spec, index=self.index,
            deaths=int(q.get("deaths", 0)), rounds=int(q.get("rounds", 0)),
            note=str(q.get("note", "")),
        )


def _encode_observation(obs: TrialObservation) -> Dict[str, object]:
    return {
        "failure": obs.failure, "detected": obs.detected,
        "output_ok": obs.output_ok, "activated": obs.activated,
        "note": obs.note,
    }


def _decode_observation(data: Dict[str, object]) -> TrialObservation:
    return TrialObservation(
        failure=bool(data["failure"]), detected=bool(data["detected"]),
        output_ok=bool(data["output_ok"]), activated=bool(data["activated"]),
        note=str(data.get("note", "")),
    )


class CampaignJournal:
    """Append-only JSONL journal for one campaign fingerprint.

    Opened by :func:`repro.swifi.parallel.run_campaign` when the
    options carry a ``run_dir``/``resume`` path; every append is
    flushed so the records survive the writing process being killed
    (``fsync`` happens on :meth:`close` — page-cache durability is
    enough for process death, the failure mode campaigns actually
    face).
    """

    def __init__(self, directory: Path, records: Dict[Tuple[int, str], JournalRecord]):
        self.directory = directory
        self.path = directory / "journal.jsonl"
        self._records = records
        self._fh = open(self.path, "a", encoding="utf-8")
        self.appended = 0

    # -- construction -----------------------------------------------------
    @classmethod
    def open(
        cls, root: str, fingerprint: str, meta: Dict[str, object],
        resume: bool,
    ) -> "CampaignJournal":
        """Open (and on ``resume`` load) the journal for ``fingerprint``.

        Without ``resume`` an existing journal for the same fingerprint
        is truncated: the caller asked for a fresh measurement, and
        appending duplicate records would corrupt a later resume.
        """
        directory = Path(root) / fingerprint[:FINGERPRINT_DIR_CHARS]
        directory.mkdir(parents=True, exist_ok=True)
        meta_path = directory / "meta.json"
        journal_path = directory / "journal.jsonl"

        records: Dict[Tuple[int, str], JournalRecord] = {}
        if resume:
            if meta_path.exists():
                try:
                    stored = json.loads(meta_path.read_text(encoding="utf-8"))
                except (OSError, ValueError) as exc:
                    raise InjectionError(
                        f"unreadable journal metadata at {meta_path}: {exc}"
                    ) from None
                if stored.get("fingerprint") != fingerprint:
                    raise InjectionError(
                        f"journal at {directory} belongs to a different "
                        f"campaign (fingerprint mismatch)"
                    )
                records = cls._load_records(journal_path)
        elif journal_path.exists():
            journal_path.unlink()

        meta_path.write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return cls(directory, records)

    @staticmethod
    def _load_records(path: Path) -> Dict[Tuple[int, str], JournalRecord]:
        """Decode every intact record; torn/corrupt lines are dropped."""
        records: Dict[Tuple[int, str], JournalRecord] = {}
        if not path.exists():
            return records
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                    body = {k: raw[k] for k in
                            ("i", "spec", "outcome", "obs", "q", "sv")
                            if k in raw}
                    if raw.get("dg") != _digest(body)[:12]:
                        continue
                    obs = _decode_observation(raw["obs"]) \
                        if raw.get("obs") is not None else None
                    record = JournalRecord(
                        index=int(raw["i"]), spec_fp=str(raw["spec"]),
                        outcome=str(raw["outcome"]), observation=obs,
                        quarantine=raw.get("q"),
                        served=raw.get("sv"),
                    )
                except (KeyError, TypeError, ValueError):
                    continue
                records[(record.index, record.spec_fp)] = record
        return records

    # -- lookup -----------------------------------------------------------
    def match(self, index: int, spec_fp: str) -> Optional[JournalRecord]:
        """The replayable record for plan position ``index``, if any."""
        return self._records.get((index, spec_fp))

    def __len__(self) -> int:
        return len(self._records)

    # -- appends ----------------------------------------------------------
    def _append(self, payload: Dict[str, object]) -> None:
        with get_profiler().phase(PHASE_JOURNAL_APPEND):
            payload["dg"] = _digest(payload)[:12]
            self._fh.write(json.dumps(payload, sort_keys=True,
                                      separators=(",", ":")) + "\n")
            self._fh.flush()
        self.appended += 1

    def append_trial(
        self, index: int, spec: FaultSpec, outcome: str, obs: TrialObservation,
        served: Optional[str] = None,
    ) -> None:
        """Journal one classified trial (flushed before returning).

        ``served`` is the optional differential attribution tag
        (``"diff"`` / ``"full:<reason>"``); the digest covers only the
        keys present, so tagged and untagged records interoperate.
        """
        payload: Dict[str, object] = {
            "i": index, "spec": spec_fingerprint(spec), "outcome": outcome,
            "obs": _encode_observation(obs),
        }
        if served is not None:
            payload["sv"] = served
        self._append(payload)

    def append_quarantine(self, report: QuarantineReport) -> None:
        """Journal one quarantined spec with its structured report."""
        self._append({
            "i": report.index, "spec": spec_fingerprint(report.spec),
            "outcome": "worker_killed", "obs": None,
            "q": {"deaths": report.deaths, "rounds": report.rounds,
                  "note": report.note},
        })

    def close(self) -> None:
        if self._fh.closed:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
