"""Durable trial journal: crash-tolerant, resumable SWIFI campaigns.

Campaigns are the expensive half of the reproduction — thousands of
single-fault executions per workload (Section VIII) — and before this
module a killed process discarded every completed trial.  The journal
makes campaign progress durable and *resumable*:

* Each campaign owns a run directory keyed by its **campaign
  fingerprint** — a digest over the program identity (workload name +
  kernel source), the campaign input and golden output, the build mode,
  the control-block detector configuration, the trial seed, and the
  full fault-spec plan.  Two campaigns share journal state only when
  every one of those ingredients is bit-identical, which is exactly the
  precondition for replayed records being valid.
* Every classified trial appends one JSON line —
  ``(spec index, spec fingerprint, outcome, observation, digest)`` —
  flushed immediately, so a SIGKILL loses at most the trial in flight.
  Quarantined specs journal their structured report the same way.
* On resume (``CampaignOptions(resume=dir)``) records whose
  ``(index, spec fingerprint)`` match the current plan are replayed
  through the same ``absorb_trial`` merge the live path uses, so a
  killed-and-resumed campaign produces a **bit-identical**
  ``CampaignResult`` to an uninterrupted one.

Layout under the journal root::

    <root>/<fingerprint16>/meta.json      # human-readable fingerprint
    <root>/<fingerprint16>/journal.jsonl  # one record per trial

Torn or corrupt lines (the tail a kill can leave behind) are skipped on
load — every record carries its own digest, so a partial line can never
replay as a wrong observation.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import InjectionError
from repro.obs.profile import PHASE_JOURNAL_APPEND, get_profiler
from repro.swifi.campaign import QuarantineReport, TrialObservation
from repro.swifi.faultmodel import FaultSpec

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.core.program
    from repro.core.program import HauberkProgram

#: Journal schema version; bumped on any incompatible record change.
JOURNAL_VERSION = 1

#: Hex digits of the campaign fingerprint used for the directory name.
FINGERPRINT_DIR_CHARS = 16


def _digest(payload: object) -> str:
    """Stable short hex digest of any JSON-serialisable payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def spec_fingerprint(spec: FaultSpec) -> str:
    """Content fingerprint of one fault spec (12 hex chars).

    Everything that determines the trial's behaviour participates;
    ``label`` is included too so a relabelled plan reads as a new one
    rather than silently reusing records.
    """
    return _digest([
        spec.site, spec.mask, spec.thread, spec.occurrence, spec.burst,
        spec.timing, spec.hw_site.value, spec.label,
    ])[:12]


def _input_digest(
    program: "HauberkProgram", seed: int, include_golden: bool = True
) -> str:
    """Digest of the fixed campaign input (and usually its golden output).

    ``include_golden=False`` digests the *problem* alone: the incremental
    donor check uses it, because a kernel edit legitimately changes the
    golden output while leaving the input — and the unaffected sections'
    trial outcomes — untouched.
    """
    inp, golden = program.campaign_io(seed)
    parts: List[object] = [
        sorted(inp.scalars.items()), list(inp.grid), list(inp.block),
    ]
    for buf in inp.buffers:
        data = buf.data
        parts.append([
            buf.name, str(buf.dtype),
            hashlib.sha256(data.tobytes()).hexdigest() if data is not None
            else None,
        ])
    if include_golden:
        parts.append(hashlib.sha256(golden.tobytes()).hexdigest())
    return _digest(parts)


def campaign_fingerprint(
    program: Optional["HauberkProgram"],
    specs: List[FaultSpec],
    mode: str,
    seed: int,
) -> Tuple[str, Dict[str, object]]:
    """``(fingerprint, meta)`` identifying one campaign's journal.

    ``meta`` is the human-readable decomposition written to
    ``meta.json`` so an operator can see *why* two runs did or did not
    share a journal.  Campaigns driven by a bare ``runner_factory``
    (no program) fingerprint the plan alone under a ``"<runner>"``
    program identity.
    """
    sections: Optional[Dict[str, str]] = None
    if program is not None:
        from repro.kir.analysis.sections import section_fingerprints
        from repro.swifi.differential import control_block_token

        program.build(mode)  # fift/ft: configure the control block first
        cb_token = repr(control_block_token(program.cb)) \
            if mode in ("ft", "fift") else ""
        components: Dict[str, object] = {
            "workload": program.workload.name,
            "kernel": _digest(program.workload.source),
            "input": _input_digest(program, seed),
            "control_block": _digest(cb_token),
        }
        sections = section_fingerprints(
            program.workload.kernel,
            program.cb if mode in ("ft", "fift") else None,
        )
    else:
        components = {"workload": "<runner>", "kernel": "", "input": "",
                      "control_block": ""}
    components["mode"] = mode
    components["seed"] = seed
    components["specs"] = _digest([spec_fingerprint(s) for s in specs])
    components["n_specs"] = len(specs)
    fingerprint = _digest(components)
    meta = {"version": JOURNAL_VERSION, "fingerprint": fingerprint,
            "components": components}
    if program is not None:
        # backing descriptor is meta-only (never digested): dense and
        # sparse-paged device memories produce bit-identical trials, so
        # campaigns on either deliberately share a fingerprint — the
        # journal of a dense run resumes a paged one and vice versa.
        # Device *state* digests (``GlobalMemory.digest()``) are
        # likewise backing-independent and only visit resident pages.
        mem = program.device.memory
        backing: Dict[str, object] = {
            "memory": type(mem).__name__,
            "capacity_words": mem.capacity,
        }
        if mem.is_paged:
            backing["page_words"] = mem.page_words
        meta["backing"] = backing
    if sections is not None:
        # per-section content fingerprints plus a golden-free input
        # digest: the incremental-resume compatibility check (meta-only
        # — not part of the campaign fingerprint, so pre-existing
        # journals stay addressable)
        meta["sections"] = sections
        meta["input_data"] = _input_digest(program, seed,
                                           include_golden=False)
    return fingerprint, meta


@dataclass
class JournalRecord:
    """One decoded journal line."""

    index: int
    spec_fp: str
    outcome: str
    observation: Optional[TrialObservation]
    quarantine: Optional[Dict[str, object]] = None
    #: How the trial was served when profiling was on: ``"diff"`` or
    #: ``"full:<reason>"`` (``None`` on unprofiled records).
    served: Optional[str] = None
    #: Dataflow section of the injected site (``None`` on pre-section
    #: records and program-less campaigns); the incremental-resume key.
    section: Optional[str] = None

    def to_report(self, spec: FaultSpec) -> QuarantineReport:
        q = self.quarantine or {}
        return QuarantineReport(
            spec=spec, index=self.index,
            deaths=int(q.get("deaths", 0)), rounds=int(q.get("rounds", 0)),
            note=str(q.get("note", "")),
        )


def _encode_observation(obs: TrialObservation) -> Dict[str, object]:
    return {
        "failure": obs.failure, "detected": obs.detected,
        "output_ok": obs.output_ok, "activated": obs.activated,
        "note": obs.note,
    }


def _decode_observation(data: Dict[str, object]) -> TrialObservation:
    return TrialObservation(
        failure=bool(data["failure"]), detected=bool(data["detected"]),
        output_ok=bool(data["output_ok"]), activated=bool(data["activated"]),
        note=str(data.get("note", "")),
    )


class CampaignJournal:
    """Append-only JSONL journal for one campaign fingerprint.

    Opened by :func:`repro.swifi.parallel.run_campaign` when the
    options carry a ``run_dir``/``resume`` path; every append is
    flushed so the records survive the writing process being killed
    (``fsync`` happens on :meth:`close` — page-cache durability is
    enough for process death, the failure mode campaigns actually
    face).
    """

    def __init__(self, directory: Path, records: Dict[Tuple[int, str], JournalRecord]):
        self.directory = directory
        self.path = directory / "journal.jsonl"
        self._records = records
        self._fh = open(self.path, "a", encoding="utf-8")
        self.appended = 0

    # -- construction -----------------------------------------------------
    @classmethod
    def open(
        cls, root: str, fingerprint: str, meta: Dict[str, object],
        resume: bool,
    ) -> "CampaignJournal":
        """Open (and on ``resume`` load) the journal for ``fingerprint``.

        Without ``resume`` an existing journal for the same fingerprint
        is truncated: the caller asked for a fresh measurement, and
        appending duplicate records would corrupt a later resume.
        """
        directory = Path(root) / fingerprint[:FINGERPRINT_DIR_CHARS]
        directory.mkdir(parents=True, exist_ok=True)
        meta_path = directory / "meta.json"
        journal_path = directory / "journal.jsonl"

        records: Dict[Tuple[int, str], JournalRecord] = {}
        if resume:
            if meta_path.exists():
                try:
                    stored = json.loads(meta_path.read_text(encoding="utf-8"))
                except (OSError, ValueError) as exc:
                    raise InjectionError(
                        f"unreadable journal metadata at {meta_path}: {exc}"
                    ) from None
                if stored.get("fingerprint") != fingerprint:
                    raise InjectionError(
                        f"journal at {directory} belongs to a different "
                        f"campaign (fingerprint mismatch)"
                    )
                records = cls._load_records(journal_path)
        elif journal_path.exists():
            journal_path.unlink()

        meta_path.write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return cls(directory, records)

    @staticmethod
    def _load_records(path: Path) -> Dict[Tuple[int, str], JournalRecord]:
        """Decode every intact record; torn/corrupt lines are dropped."""
        records: Dict[Tuple[int, str], JournalRecord] = {}
        if not path.exists():
            return records
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                    body = {k: raw[k] for k in
                            ("i", "spec", "outcome", "obs", "q", "sv", "sec")
                            if k in raw}
                    if raw.get("dg") != _digest(body)[:12]:
                        continue
                    obs = _decode_observation(raw["obs"]) \
                        if raw.get("obs") is not None else None
                    record = JournalRecord(
                        index=int(raw["i"]), spec_fp=str(raw["spec"]),
                        outcome=str(raw["outcome"]), observation=obs,
                        quarantine=raw.get("q"),
                        served=raw.get("sv"),
                        section=raw.get("sec"),
                    )
                except (KeyError, TypeError, ValueError):
                    continue
                records[(record.index, record.spec_fp)] = record
        return records

    # -- lookup -----------------------------------------------------------
    def match(self, index: int, spec_fp: str) -> Optional[JournalRecord]:
        """The replayable record for plan position ``index``, if any."""
        return self._records.get((index, spec_fp))

    def __len__(self) -> int:
        return len(self._records)

    # -- appends ----------------------------------------------------------
    def _append(self, payload: Dict[str, object]) -> None:
        with get_profiler().phase(PHASE_JOURNAL_APPEND):
            payload["dg"] = _digest(payload)[:12]
            self._fh.write(json.dumps(payload, sort_keys=True,
                                      separators=(",", ":")) + "\n")
            self._fh.flush()
        self.appended += 1

    def append_trial(
        self, index: int, spec: FaultSpec, outcome: str, obs: TrialObservation,
        served: Optional[str] = None, section: Optional[str] = None,
    ) -> None:
        """Journal one classified trial (flushed before returning).

        ``served`` is the optional differential attribution tag
        (``"diff"`` / ``"full:<reason>"``); ``section`` is the injected
        site's dataflow section (the incremental-resume key).  The
        digest covers only the keys present, so tagged and untagged
        records interoperate.
        """
        payload: Dict[str, object] = {
            "i": index, "spec": spec_fingerprint(spec), "outcome": outcome,
            "obs": _encode_observation(obs),
        }
        if served is not None:
            payload["sv"] = served
        if section is not None:
            payload["sec"] = section
        self._append(payload)

    def append_quarantine(self, report: QuarantineReport,
                          section: Optional[str] = None) -> None:
        """Journal one quarantined spec with its structured report."""
        payload: Dict[str, object] = {
            "i": report.index, "spec": spec_fingerprint(report.spec),
            "outcome": "worker_killed", "obs": None,
            "q": {"deaths": report.deaths, "rounds": report.rounds,
                  "note": report.note},
        }
        if section is not None:
            payload["sec"] = section
        self._append(payload)

    # -- incremental adoption ----------------------------------------------
    def adopt_compatible(
        self,
        root: str,
        meta: Dict[str, object],
        wanted: List[Tuple[int, str, Optional[str]]],
        affected_fn,
    ) -> Tuple[Dict[int, JournalRecord], set]:
        """Adopt replayable records from sibling journals after an edit.

        ``wanted`` lists this campaign's unserved plan positions as
        ``(index, spec fingerprint, section)``; ``affected_fn`` maps a
        set of changed section names to the set of sections whose
        dependency closure they touch (see
        :func:`repro.kir.analysis.sections.affected_sections`).

        A sibling journal under ``root`` is a donor when its meta
        records the same workload, mode, and seed.  For each donor the
        changed set is the symmetric fingerprint difference between its
        ``sections`` map and ours; a wanted record is adopted only when
        its spec fingerprint matches, its section tag matches, and its
        section lies *outside* the donor's affected closure — i.e. no
        edited code feeds the injection site or sits on the fault's
        propagation path.  Quarantine records are never adopted (the
        spec deserves a fresh chance under the new build).

        Adopted records are re-appended to *this* journal at their new
        plan positions, so a later plain resume replays them directly.
        Returns ``(adopted by index, union of stale section names)``.
        """
        ours = meta.get("sections")
        components = meta.get("components", {})
        if not isinstance(ours, dict) or not wanted:
            return {}, set()
        adopted: Dict[int, JournalRecord] = {}
        stale_union: set = set()
        for directory in sorted(Path(root).iterdir()):
            if directory == self.directory or not directory.is_dir():
                continue
            meta_path = directory / "meta.json"
            try:
                sibling = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            theirs = sibling.get("sections")
            sib_components = sibling.get("components", {})
            if not isinstance(theirs, dict):
                continue
            if any(sib_components.get(k) != components.get(k)
                   for k in ("workload", "mode", "seed")):
                continue
            # the golden-free digest: an edit moves the golden output
            # (and the full "input" component with it) without touching
            # the problem the recorded trials actually ran on
            if sibling.get("input_data") != meta.get("input_data") or \
                    meta.get("input_data") is None:
                continue
            changed = {name for name in set(ours) | set(theirs)
                       if ours.get(name) != theirs.get(name)}
            stale = affected_fn(changed)
            stale_union |= stale
            by_fp: Dict[str, List[JournalRecord]] = {}
            for record in sorted(
                self._load_records(directory / "journal.jsonl").values(),
                key=lambda r: r.index,
            ):
                by_fp.setdefault(record.spec_fp, []).append(record)
            for index, spec_fp, section in wanted:
                if index in adopted or section is None or section in stale:
                    continue
                candidates = by_fp.get(spec_fp, [])
                for pos, record in enumerate(candidates):
                    if record.section == section and \
                            record.observation is not None:
                        candidates.pop(pos)
                        payload: Dict[str, object] = {
                            "i": index, "spec": spec_fp,
                            "outcome": record.outcome,
                            "obs": _encode_observation(record.observation),
                            "sec": section,
                        }
                        if record.served is not None:
                            payload["sv"] = record.served
                        self._append(payload)
                        new_record = JournalRecord(
                            index=index, spec_fp=spec_fp,
                            outcome=record.outcome,
                            observation=record.observation,
                            served=record.served, section=section,
                        )
                        self._records[(index, spec_fp)] = new_record
                        adopted[index] = new_record
                        break
            if len(adopted) == len(wanted):
                break
        return adopted, stale_union

    def close(self) -> None:
        if self._fh.closed:
            return
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
