"""SWIFI — the mutation-based software-implemented fault injector.

Reproduces Section VII: the translator plants a hook after every
defining statement of a GPU kernel; the bound FI library flips bits in
the just-defined variable of one chosen thread at one chosen dynamic
occurrence, emulating ALU/FPU/register/scheduler faults that reached
the software-visible architecture state.  Campaigns run one fault per
program execution and classify outcomes into the paper's five classes.
"""

from repro.swifi.faultmodel import FaultSpec, ActivationRecord
from repro.swifi.targets import enumerate_targets, select_targets
from repro.swifi.injector import FaultInjectionLibrary, instrument_for_fi
from repro.swifi.outcomes import Outcome, classify_outcome, OutcomeCounts
from repro.swifi.campaign import (
    Campaign,
    CampaignResult,
    QuarantineReport,
    TrialObservation,
    TrialResult,
    build_fault_specs,
)
from repro.swifi.options import CampaignOptions
from repro.swifi.journal import (
    CampaignJournal,
    campaign_fingerprint,
    spec_fingerprint,
)
from repro.swifi.parallel import run_campaign
from repro.swifi.planner import (
    CampaignPlan,
    StratumKey,
    Stratum,
    build_plan,
    compose_rates,
    estimate_plan,
    wilson_interval,
)
from repro.swifi.differential import (
    DifferentialEngine,
    differential_runner,
    kernel_replay_obstacle,
)

__all__ = [
    "CampaignJournal",
    "CampaignOptions",
    "DifferentialEngine",
    "campaign_fingerprint",
    "differential_runner",
    "kernel_replay_obstacle",
    "spec_fingerprint",
    "FaultSpec",
    "ActivationRecord",
    "enumerate_targets",
    "select_targets",
    "FaultInjectionLibrary",
    "instrument_for_fi",
    "Outcome",
    "classify_outcome",
    "OutcomeCounts",
    "Campaign",
    "CampaignResult",
    "QuarantineReport",
    "TrialObservation",
    "TrialResult",
    "build_fault_specs",
    "run_campaign",
    "CampaignPlan",
    "StratumKey",
    "Stratum",
    "build_plan",
    "compose_rates",
    "estimate_plan",
    "wilson_interval",
]
