"""The FI instrumentation pass and runtime library (Figure 12).

``instrument_for_fi`` clones a kernel and plants a
``__hauberk_fi(site, "name")`` call after every virtual-variable
definition (and at kernel entry for each parameter).  The site ids
embedded as constants are the *original* kernel's numbering, so fault
targets remain comparable across baseline / FT / FI&FT builds even
though re-validation renumbers statement sites.

Loop-header definitions get hooks at the loop-body boundary:

* the iterator *init* site fires at the top of every iteration (its
  occurrence n observes the iterator at the start of iteration n);
* the *update* site fires at the bottom of the body, corrupting the
  iterator between iterations — the paper's "loop iterator corrupted
  to a large negative number" failure case (Section IX.B).

The bound :class:`FaultInjectionLibrary` mutates the one targeted
variable of the one targeted thread at the one targeted occurrence —
one fault per run, as in Section VIII.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bits import flip_float_bits, flip_int_bits
from repro.errors import InjectionError
from repro.gpu.faults import inject_word_faults
from repro.kir.analysis.dataflow import SiteInfo, collect_sites
from repro.kir.astnodes import (
    Assign,
    CallStmt,
    Const,
    Decl,
    For,
    If,
    Kernel,
    Stmt,
    While,
)
from repro.kir.interp.evalcore import ExecContext, InstrumentationLibrary
from repro.kir.validate import validate_kernel
from repro.swifi.faultmodel import ActivationRecord, FaultSpec, InjectionState

FI_FUNC = "__hauberk_fi"


def _hook(site: int, name: str) -> CallStmt:
    return CallStmt(func=FI_FUNC, args=[Const(site), Const(name)])


def _instrument_block(body: List[Stmt]) -> List[Stmt]:
    out: List[Stmt] = []
    for stmt in body:
        if isinstance(stmt, For):
            new_body = _instrument_block(stmt.body)
            if stmt.init is not None:
                new_body.insert(0, _hook(stmt.init.site, stmt.init.name))
            if stmt.update is not None:
                new_body.append(_hook(stmt.update.site, stmt.update.name))
            stmt.body = new_body
            out.append(stmt)
        elif isinstance(stmt, While):
            stmt.body = _instrument_block(stmt.body)
            out.append(stmt)
        elif isinstance(stmt, If):
            stmt.then = _instrument_block(stmt.then)
            stmt.els = _instrument_block(stmt.els)
            out.append(stmt)
        elif isinstance(stmt, (Decl, Assign)):
            out.append(stmt)
            out.append(_hook(stmt.site, stmt.name))
        else:
            out.append(stmt)
    return out


def instrument_for_fi(kernel: Kernel) -> Kernel:
    """Clone ``kernel`` with FI hooks after every definition site.

    The input must be validated; the clone is re-validated before
    return (renumbering its statement sites, but the hook arguments
    keep the original numbering used by :class:`FaultSpec`).
    """
    if not kernel.validated:
        raise InjectionError("validate the kernel before FI instrumentation")
    clone = kernel.clone()
    body = _instrument_block(clone.body)
    param_hooks = [_hook(p.site, p.name) for p in clone.params]
    clone.body = param_hooks + body
    validate_kernel(clone)
    return clone


class MemoryFaultInjector:
    """Undoable device-memory corruption (the memory column of Section VII).

    Wraps :func:`~repro.gpu.faults.inject_word_faults`: each
    :meth:`inject` XORs masks into device words as one vectorized
    operation and journals the prior bit patterns, and :meth:`undo`
    restores every corrupted word in reverse injection order — so a
    harness can corrupt, launch, measure, and hand back pristine golden
    state without a full memory restore.  Because both directions act
    on raw bit patterns, corrupting and undoing a NaN-holding word
    round-trips its payload exactly.
    """

    def __init__(self, memory):
        self.memory = memory
        self._journal: List[Tuple[np.ndarray, np.ndarray]] = []

    def inject(self, addrs: Sequence[int], masks: Sequence[int]) -> np.ndarray:
        """Corrupt ``addrs`` with ``masks``; returns the new bit patterns."""
        old_bits, new_bits = inject_word_faults(self.memory, addrs, masks)
        if old_bits.size:
            addr_arr = np.asarray(addrs, dtype=np.int64).reshape(-1)
            self._journal.append((addr_arr, old_bits))
        return new_bits

    def inject_word(self, addr: int, mask: int) -> int:
        """Single-word convenience form; returns the new bit pattern."""
        return int(self.inject([addr], [mask])[0])

    @property
    def injected_words(self) -> int:
        return sum(addrs.size for addrs, _old in self._journal)

    def undo(self) -> None:
        """Restore every journaled word, most recent injection first."""
        while self._journal:
            addr_arr, old_bits = self._journal.pop()
            self.memory.scatter_words(addr_arr, old_bits)


class FaultInjectionLibrary(InstrumentationLibrary):
    """Runtime half of SWIFI: flips bits in live register frames."""

    def __init__(self, kernel: Kernel, spec: Optional[FaultSpec] = None):
        #: Site table of the *original* kernel (pre-instrumentation).
        self.sites: Dict[int, SiteInfo] = {s.site: s for s in collect_sites(kernel)}
        self.state = InjectionState()
        if spec is not None:
            self.arm(spec)

    def arm(self, spec: Optional[FaultSpec]) -> None:
        """Set (or clear) the fault for the next run."""
        if spec is not None and spec.site not in self.sites:
            raise InjectionError(f"fault targets unknown site {spec.site}")
        self.state.reset(spec)

    @property
    def activation(self) -> Optional[ActivationRecord]:
        return self.state.activation

    # -- vectorized-engine protocol --------------------------------------
    #: ``lib_fi``/``_delayed`` are pure no-ops on every gtid except
    #: ``spec.thread`` (counters only mutate after the gtid check), so
    #: the vectorized engine may run all other lanes without invoking
    #: hooks and replay the targeted lane scalar.
    vector_compatible = True

    def vector_excluded_gtid(self, n_threads: int) -> Optional[int]:
        spec = self.state.spec
        if spec is not None and 0 <= spec.thread < n_threads:
            return spec.thread
        return None

    def vector_reset(self) -> None:
        """Re-arm for the sequential rerun after a vector bailout."""
        self.state.reset(self.state.spec)

    # -- instrumentation entry point ------------------------------------
    def lib_fi(self, ctx: ExecContext, frame: dict, site: int, name: str) -> None:
        spec = self.state.spec
        if spec is None:
            return
        if spec.timing == "delayed":
            self._delayed(ctx, frame, spec)
            return
        if site != spec.site:
            return
        block_size = frame["blockDim.x"] * frame["blockDim.y"]
        gtid = ctx.block * block_size + ctx.thread
        if gtid != spec.thread:
            return
        key = (site, gtid)
        count = self.state.counters.get(key, 0) + 1
        self.state.counters[key] = count
        # a transient fault hits one occurrence; an intermittent fault
        # stays active for `burst` consecutive occurrences (Section II.A)
        if not spec.occurrence <= count < spec.occurrence + spec.burst:
            return
        self._corrupt(ctx, frame, spec, name)

    def _delayed(self, ctx: ExecContext, frame: dict, spec: FaultSpec) -> None:
        """Delayed timing: strike at the thread's k-th hook event.

        The target variable is corrupted wherever the thread happens to
        be, provided the variable is live; an already-consumed pointer
        or value therefore escapes — the masking path that keeps real
        pointer-fault failure ratios moderate (Figure 1).
        """
        if self.state.activation is not None:
            return
        block_size = frame["blockDim.x"] * frame["blockDim.y"]
        gtid = ctx.block * block_size + ctx.thread
        if gtid != spec.thread:
            return
        key = ("__events__", gtid)
        count = self.state.counters.get(key, 0) + 1
        self.state.counters[key] = count
        if count < spec.occurrence:
            return
        target = self.sites[spec.site].name
        if target not in frame:
            return  # not yet live; strike at the next event
        self._corrupt(ctx, frame, spec, target)

    def _corrupt(self, ctx: ExecContext, frame: dict, spec: FaultSpec, name: str) -> None:
        info = self.sites[spec.site]
        original = frame[name]
        if info.dtype.is_float:
            corrupted = flip_float_bits(float(original), spec.mask)
        else:
            # integers and pointers share two's-complement bit flips;
            # a high-bit flip on a pointer lands outside mapped memory
            corrupted = flip_int_bits(int(original), spec.mask)
        frame[name] = corrupted
        if self.state.activation is None:
            self.state.activation = ActivationRecord(
                spec=spec,
                variable=name,
                original=original,
                corrupted=corrupted,
                block=ctx.block,
                thread_in_block=ctx.thread,
                at_step=ctx.steps,
            )
        else:
            self.state.activation.n_injections += 1
