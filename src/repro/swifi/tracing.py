"""Value tracing through FI hooks (used by the Figure 10 study).

The same per-definition hooks the injector uses can *observe* instead
of corrupt: :class:`ValueTraceLibrary` records every value defined at
every site (optionally subsampled), giving the per-variable value
distributions of Figure 10 without touching the kernel further.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.kir.analysis.dataflow import SiteInfo, collect_sites
from repro.kir.astnodes import Kernel
from repro.kir.interp.evalcore import ExecContext, InstrumentationLibrary


class ValueTraceLibrary(InstrumentationLibrary):
    """Records defined values per virtual-variable site."""

    def __init__(self, kernel: Kernel, sample_every: int = 1, max_per_site: int = 100_000):
        self.sites: Dict[int, SiteInfo] = {s.site: s for s in collect_sites(kernel)}
        self.sample_every = max(1, sample_every)
        self.max_per_site = max_per_site
        self.values: Dict[int, List[float]] = defaultdict(list)
        self._counter: Dict[int, int] = defaultdict(int)

    def lib_fi(self, ctx: ExecContext, frame: dict, site: int, name: str) -> None:
        self._counter[site] += 1
        # record the 1st occurrence and every N-th thereafter (1, N+1,
        # 2N+1, ...); the previous `count % N` test silently dropped the
        # first N-1 definitions at every site
        if (self._counter[site] - 1) % self.sample_every:
            return
        bucket = self.values[site]
        if len(bucket) < self.max_per_site:
            value = frame[name]
            bucket.append(float(value))

    def by_name(self) -> Dict[str, List[float]]:
        """Traced values grouped by variable name (multiple sites merge)."""
        out: Dict[str, List[float]] = defaultdict(list)
        for site, values in self.values.items():
            out[self.sites[site].name].extend(values)
        return dict(out)

    def site_class(self, site: int) -> str:
        return self.sites[site].sensitivity_class
