"""Differential trial execution: golden-run memoization + single-thread replay.

Campaigns run thousands of single-fault trials (Section VIII), and each
fault strikes exactly one thread — yet the straightforward runner
re-executes the *whole grid* per trial.  This engine runs the fault-free
launch once per (program, input, mode), recording per-thread cycle /
loop-cycle / step totals plus a global-memory footprint (addresses read;
``(addr, old, new)`` bit patterns for stores), then serves each trial by

1. undoing the target thread's golden stores (reverse replay),
2. re-executing *only* that thread under the armed
   :class:`~repro.swifi.injector.FaultInjectionLibrary`, against a
   :class:`~repro.gpu.memory.ReplayMemoryGuard`,
3. splicing the replayed cycles/steps/events into the cached grid
   totals to synthesize a bit-identical
   :class:`~repro.gpu.runtime.LaunchResult` and
   :class:`~repro.swifi.campaign.TrialObservation`.

Soundness gates (anything else falls back to full execution):

* **Kernel eligibility** — closure-path kernels only: no
  ``__syncthreads``, no atomics, no shared-memory declarations (in the
  sequential grid model those are cross-thread channels).
* **Campaign eligibility** — every golden-stored address has exactly
  one storing thread (undoing a thread's stores must be exact).
* **Per-trial guard** — :class:`~repro.gpu.memory.ReplayMemoryGuard`
  exploits the sequential gtid execution order: accesses ordered
  before the target thread are safe, anything a *later* thread could
  observe (or that observes a later thread's value) aborts with
  :class:`~repro.gpu.memory.ReplayConflict` — or is admitted
  provisionally and value-checked against golden bits at replay end;
  a conflicting trial re-runs through the full path.

Exactness of the cycle splice: every cost-model constant is a dyadic
rational (multiples of 1/8), so the sequential golden accumulation, the
subtraction of the target thread's contribution, and the addition of
its replayed contribution are all exact float arithmetic — the
synthesized totals equal the full run's bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.core.controlblock import ControlBlock, DetectionEvent
from repro.core.ftlib import HauberkFTLibrary
from repro.errors import KernelCrash, KernelHang
from repro.gpu.memory import (
    FootprintRecordingMemory,
    ReplayConflict,
    ReplayMemoryGuard,
    ThreadFootprint,
)
from repro.gpu.runtime import GPURuntime, LaunchResult
from repro.kir.astnodes import AtomicAdd, Kernel, walk_stmts
from repro.kir.interp.evalcore import ExecContext
from repro.obs.instrument import (
    record_differential_trial,
    record_launch,
    record_launch_failure,
)
from repro.obs.profile import (
    PHASE_DIFF_REPLAY,
    PHASE_FULL_RUN,
    PHASE_GOLDEN_RECORD,
    get_profiler,
)
from repro.swifi.campaign import TrialObservation
from repro.swifi.faultmodel import FaultSpec
from repro.swifi.injector import FaultInjectionLibrary

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.core.program
    from repro.core.program import HauberkProgram


@dataclass
class _Ineligible:
    """Cached marker: this (program, mode, cb) cannot replay; reason why."""

    reason: str


@dataclass
class ThreadRecord:
    """One thread's golden execution: cost totals plus memory footprint."""

    cycles: float
    loop_cycles: float
    steps: int
    footprint: ThreadFootprint


def kernel_replay_obstacle(kernel: Kernel) -> Optional[str]:
    """Why this kernel cannot be replayed thread-at-a-time (None if it can).

    Only global memory is footprinted, so any cross-thread channel
    besides global memory — barriers, atomics, shared arrays — makes
    isolated re-execution unsound.
    """
    if kernel.uses_sync:
        return "uses_sync"
    if kernel.shared:
        return "shared_memory"
    for stmt, _depth in walk_stmts(kernel.body):
        if isinstance(stmt, AtomicAdd):
            return "atomics"
    return None


def control_block_token(cb: ControlBlock) -> tuple:
    """Value fingerprint of a control block's detector configuration.

    Engines are cached under ``(mode, token)``: re-training or an alpha
    sweep (``set_alpha_all`` between campaigns, Section IX.C) changes
    the token, so stale golden detection events are never reused.
    """
    return tuple(
        (det, cfg.variable, cfg.loop_id, cfg.self_accumulating,
         cfg.has_trip_check, cfg.ranges.alpha,
         tuple((r.lo, r.hi) for r in cfg.ranges.ranges))
        for det, cfg in sorted(cb.detectors.items())
    )


class _GoldenRecorder:
    """Launch recorder collecting one :class:`ThreadRecord` per thread."""

    def __init__(self) -> None:
        self.threads: List[ThreadRecord] = []
        self.memory: Optional[FootprintRecordingMemory] = None
        self._cycles0 = 0.0
        self._loop0 = 0.0

    def attach(self, memory) -> FootprintRecordingMemory:
        self.memory = FootprintRecordingMemory(memory)
        return self.memory

    def begin_thread(self, ctx: ExecContext) -> None:
        self._cycles0 = ctx.cycles
        self._loop0 = ctx.loop_cycles
        self.memory.begin_thread()

    def end_thread(self, ctx: ExecContext) -> None:
        self.threads.append(ThreadRecord(
            cycles=ctx.cycles - self._cycles0,
            loop_cycles=ctx.loop_cycles - self._loop0,
            steps=ctx.steps,
            footprint=self.memory.fp,
        ))

    def absorb_vector_records(self, vres) -> None:
        """Fill ``threads`` from one vectorized sweep's per-lane records.

        The vectorized engine produces the whole grid's cost columns
        and footprints in one pass (lanes are gtid-ordered), replacing
        the per-thread ``begin_thread``/``end_thread`` bracketing.
        """
        self.threads = [
            ThreadRecord(
                cycles=float(c),
                loop_cycles=float(lc),
                steps=int(s),
                footprint=fp,
            )
            for c, lc, s, fp in zip(
                vres.cycles, vres.loop_cycles, vres.steps, vres.footprints
            )
        ]


class DifferentialEngine:
    """Replays single faulted threads against a memoized golden launch."""

    def __init__(self, program: "HauberkProgram", mode: str, seed: int):
        self.program = program
        self.mode = mode
        self.seed = seed
        self.workload = program.workload
        self.device = program.device
        self.memory = program.device.memory
        build = program.build(mode)
        self.kernel = build.kernel
        self.compiled, self.pressure = program.runtime.prepare(self.kernel)
        self.fi = FaultInjectionLibrary(self.workload.kernel)
        self.inp, self.golden = program.campaign_io(seed)
        self.handles: Dict[str, object] = {}
        self.records: List[ThreadRecord] = []
        self.store_owner: Dict[int, int] = {}
        self.load_readers: Dict[int, int] = {}
        self.golden_events: Dict[int, List[DetectionEvent]] = {}
        self.launch: Optional[LaunchResult] = None
        self._golden_words: np.ndarray = np.empty(0, dtype=np.uint32)

    # -- golden recording -------------------------------------------------
    def record_golden(self) -> Optional[str]:
        """Run and record the fault-free launch; returns a reason on failure."""
        inp = self.inp
        if not inp.buffers:
            return "no device buffers"
        gx, gy = inp.grid
        bx, by = inp.block
        self.gx, self.gy, self.bx, self.by = gx, gy, bx, by
        self.block_size = bx * by
        self.n_threads = inp.n_threads

        args, handles = self.workload.setup_memory(self.device, inp)
        lib, device_cb = self._fresh_library(None)
        recorder = _GoldenRecorder()
        try:
            self.launch = self.program.runtime.launch(
                self.kernel, inp.grid, inp.block, args,
                lib=lib, budget=self.workload.hang_budget, recorder=recorder,
            )
        except (KernelHang, KernelCrash) as exc:
            return f"golden run failed: {exc}"

        self.handles = handles
        self._probe_name = inp.buffers[0].name
        self._probe_alloc = handles[self._probe_name]
        self.records = recorder.threads
        if len(self.records) != self.n_threads:
            return "recorder thread-count mismatch"

        # per-thread frame template (the launch's own lowering)
        base = GPURuntime._lower_args(self.kernel, args)
        base["gridDim.x"] = gx
        base["gridDim.y"] = gy
        base["blockDim.x"] = bx
        base["blockDim.y"] = by
        self.base_frame = base

        self.lanes = min(self.n_threads, self.device.spec.parallel_lanes)
        self.spill = self.launch.spill_factor

        # top-2 step counts: max_thread_steps when the target is / is not
        # the grid's longest-running thread
        steps = [r.steps for r in self.records]
        self._argmax_steps = max(range(len(steps)), key=steps.__getitem__)
        self._max_steps = steps[self._argmax_steps]
        rest = steps[: self._argmax_steps] + steps[self._argmax_steps + 1:]
        self._second_steps = max(rest) if rest else 0

        reason = self._build_conflict_maps()
        if reason is not None:
            return reason

        if device_cb is not None:
            block_size = self.block_size
            for event in device_cb.events:
                gtid = event.block * block_size + event.thread
                self.golden_events.setdefault(gtid, []).append(event)

        self._golden_words = self.memory.snapshot()
        return None

    def _build_conflict_maps(self) -> Optional[str]:
        """Index the golden footprints for the per-trial replay guard.

        Each address may have at most one storing thread: undoing a
        thread's stores replays ``(addr, old, new)`` in reverse, which
        is only exact when no other store interleaved.  Cross-thread
        *reads* of stored addresses are fine — execution order resolves
        them — so they index into ``load_readers`` (latest reader per
        address) for the guard's ordering checks instead of
        disqualifying the campaign.
        """
        store_owner = self.store_owner
        for tid, rec in enumerate(self.records):
            for addr, _old, _new in rec.footprint.stores:
                owner = store_owner.get(addr)
                if owner is None:
                    store_owner[addr] = tid
                elif owner != tid:
                    return "golden footprints conflict: shared store address"
        load_readers = self.load_readers
        for tid, rec in enumerate(self.records):
            for addr in rec.footprint.loads:
                if load_readers.get(addr, -1) < tid:
                    load_readers[addr] = tid
        return None

    # -- per-trial machinery ----------------------------------------------
    def _fresh_library(self, spec: Optional[FaultSpec]):
        """(library, device control block) exactly as the full path builds them."""
        self.fi.arm(spec)
        if self.mode != "fift":
            return self.fi, None
        from repro.core.program import CombinedLibrary  # lazy: import cycle

        device_cb = self.program.cb.copy_to_device()
        return CombinedLibrary([HauberkFTLibrary(device_cb), self.fi]), device_cb

    def restore_memory(self) -> None:
        """Re-establish the golden-final device state after a foreign run."""
        _args, handles = self.workload.setup_memory(self.device, self.inp)
        self.memory.restore(self._golden_words)
        self.handles = handles
        self._probe_alloc = handles[self._probe_name]

    def _undo(self, footprint: ThreadFootprint) -> None:
        """Back out the thread's golden stores (one scatter-write).

        Equivalent to replaying ``(addr, old, new)`` in reverse: each
        address ends at the ``old`` bits of its first store.
        """
        addrs, old_bits, _new_bits = footprint.net_store_arrays()
        if addrs.size:
            self.memory.scatter_words(addrs, old_bits)

    def _reapply(self, footprint: ThreadFootprint) -> None:
        """Re-establish the thread's golden stores (one scatter-write)."""
        addrs, _old_bits, new_bits = footprint.net_store_arrays()
        if addrs.size:
            self.memory.scatter_words(addrs, new_bits)

    def run_trial(self, spec: FaultSpec) -> Optional[TrialObservation]:
        """Serve one trial by replaying the faulted thread, or None to fall back.

        Returns the same :class:`TrialObservation` full execution would
        produce; ``None`` means the replay aborted (foreign-footprint
        touch, unknown thread) and the caller must run the full trial.
        """
        target = spec.thread
        if not 0 <= target < self.n_threads:
            return None
        # a full run (fallback trial, golden check) may have re-set up
        # device memory since our snapshot: detect and self-heal
        if self.memory.allocations.get(self._probe_name) is not self._probe_alloc:
            self.restore_memory()

        rec = self.records[target]
        self._undo(rec.footprint)
        guard = ReplayMemoryGuard(
            self.memory, target, self.store_owner, self.load_readers
        )
        lib, device_cb = self._fresh_library(spec)
        ctx = ExecContext(guard, lib=lib, budget=self.workload.hang_budget)

        block, tib = divmod(target, self.block_size)
        frame = dict(self.base_frame)
        frame["blockIdx.x"] = block % self.gx
        frame["blockIdx.y"] = block // self.gx
        frame["threadIdx.x"] = tib % self.bx
        frame["threadIdx.y"] = tib // self.bx

        failure: Optional[Tuple[str, str]] = None
        try:
            self.compiled.run_thread_at(frame, ctx, block, tib)
        except ReplayConflict:
            guard.rollback()
            self._reapply(rec.footprint)
            return None
        except KernelHang as exc:
            failure = ("hang", str(exc))
        except KernelCrash as exc:
            failure = ("crash", str(exc))

        activated = bool(self.fi.activation)
        if failure is not None:
            # the grid launch would have died inside this thread; threads
            # before it ran exactly as in the golden run (no conflicts),
            # threads after it never ran — same observation either way
            guard.rollback()
            self._reapply(rec.footprint)
            record_launch_failure(self.kernel.name, failure[0])
            return TrialObservation(
                failure=True, detected=False, output_ok=False,
                activated=activated, note=failure[1],
            )

        if guard.deferred and guard.deferred_mismatch(self._golden_words):
            # a later thread would read a changed value: not replayable
            guard.rollback()
            self._reapply(rec.footprint)
            return None

        # splice the replayed thread into the cached grid totals
        golden = self.launch
        total = golden.total_cycles - rec.cycles + ctx.cycles
        loop = golden.loop_cycles - rec.loop_cycles + ctx.loop_cycles
        others_max = (
            self._second_steps if target == self._argmax_steps else self._max_steps
        )
        result = LaunchResult(
            kernel_name=golden.kernel_name,
            n_threads=golden.n_threads,
            total_cycles=total,
            loop_cycles=loop,
            kernel_time=total / self.lanes * self.spill,
            register_pressure=self.pressure,
            spill_factor=self.spill,
            max_thread_steps=max(ctx.steps, others_max),
        )
        record_launch(result)

        output = self.workload.read_output(self.device, self.inp, self.handles)
        guard.rollback()
        self._reapply(rec.footprint)

        detected = False
        if self.mode == "fift":
            self.program.cb.copy_from_device(
                self._splice_control_block(target, device_cb.events)
            )
            detected = self.program.cb.alarm_raised
        ok = self.workload.spec.check(output, self.golden)
        return TrialObservation(
            failure=False, detected=detected, output_ok=ok,
            activated=activated, note="",
        )

    def _splice_control_block(
        self, target: int, replay_events: List[DetectionEvent]
    ) -> ControlBlock:
        """Golden event stream with the target thread's events replaced.

        Event firing is thread-local (detectors check against the static
        configured ranges), so non-target threads contribute exactly
        their golden events; ``sdc_bit`` and the on-line ``updated_ranges``
        learning are order-respecting folds over the spliced stream,
        reproducing what the device copy would have held.
        """
        events: List[DetectionEvent] = []
        golden_events = self.golden_events
        for tid in range(self.n_threads):
            if tid == target:
                events.extend(replay_events)
            else:
                events.extend(golden_events.get(tid, ()))
        updated: Dict[int, object] = {}
        detectors = self.program.cb.detectors
        for event in events:
            if event.kind != "range":
                continue
            base = updated.get(event.detector)
            if base is None:
                base = detectors[event.detector].ranges
            updated[event.detector] = base.learn(event.value)
        return ControlBlock(
            events=events, sdc_bit=bool(events), updated_ranges=updated
        )


def get_engine(program: "HauberkProgram", mode: str, seed: int = 0):
    """The cached engine (or :class:`_Ineligible`) for this campaign setup."""
    program.build(mode)  # fift: configures the control block before tokenizing
    token = (mode, control_block_token(program.cb) if mode == "fift" else None)
    record = program.golden_record(seed)
    entry = record.exec_states.get(token)
    if entry is None:
        entry = _build_engine(program, mode, seed)
        record.exec_states[token] = entry
    return entry


def _build_engine(program: "HauberkProgram", mode: str, seed: int):
    if mode not in ("fi", "fift"):
        return _Ineligible(f"mode {mode!r} has no FI trials")
    obstacle = kernel_replay_obstacle(program.build(mode).kernel)
    if obstacle is not None:
        return _Ineligible(obstacle)
    engine = DifferentialEngine(program, mode, seed)
    with get_profiler().phase(PHASE_GOLDEN_RECORD):
        reason = engine.record_golden()
    if reason is not None:
        return _Ineligible(reason)
    return engine


def differential_runner(program: "HauberkProgram", mode: str, seed: int = 0):
    """A ``Campaign``-compatible runner serving trials differentially.

    Drop-in replacement for ``program.trial_runner(mode, seed)``:
    eligible trials replay one thread; everything else (ineligible
    kernels, replay conflicts, fault-free ``spec=None`` runs) goes
    through the full path.  Observations are identical either way.
    """
    full = program.trial_runner(mode, seed)
    entry = get_engine(program, mode, seed)
    if isinstance(entry, _Ineligible):
        reason = entry.reason

        def fallback_runner(spec: Optional[FaultSpec]) -> TrialObservation:
            if spec is None:
                return full(spec)
            record_differential_trial(False, reason)
            prof = get_profiler()
            prof.note_served("full", reason)
            with prof.phase(PHASE_FULL_RUN, reason=reason):
                return full(spec)

        return fallback_runner

    engine: DifferentialEngine = entry

    def runner(spec: Optional[FaultSpec]) -> TrialObservation:
        if spec is None:
            return full(spec)
        prof = get_profiler()
        with prof.phase(PHASE_DIFF_REPLAY):
            obs = engine.run_trial(spec)
        if obs is None:
            record_differential_trial(False, "replay_conflict")
            prof.note_served("full", "replay_conflict")
            with prof.phase(PHASE_FULL_RUN, reason="replay_conflict"):
                return full(spec)
        record_differential_trial(True)
        prof.note_served("diff")
        return obs

    # Exposed so the trial-deadline guard (swifi/parallel.py) can heal
    # device memory after a timeout lands mid-replay.
    runner.engine = engine
    return runner
