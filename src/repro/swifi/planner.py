"""Statistical campaign planner: stratified sampling over fault strata.

A full enumeration campaign runs every ``(site, mask, thread)`` spec it
generated; the figures only need *rates*, and rates come cheap when
the population is stratified well.  Following the Two-Level Model
(Hari et al., PAPERS.md) the planner groups the spec population into
**strata** — tuples of

* the kernel **section** defining the injected site
  (:mod:`repro.kir.analysis.sections`),
* the site's **sensitivity class** (pointer / integer / fp, Figure 1),
* the mask's **bit band** (where the highest flipped bit lands), and
* the victim **thread band** (quartile of the thread id range) —

then allocates a trial budget across strata (proportional by default,
Neyman from pilot rates when variance estimates exist) and samples
seeded, without replacement, inside each stratum.  Outcome rates come
back population-extrapolated with finite-population-corrected normal
confidence intervals plus per-stratum Wilson intervals; per-section
rates compose into whole-program estimates the FastFlip way
(:func:`compose_rates`).

Everything here is pure planning/estimation arithmetic — no execution.
:func:`repro.swifi.parallel.run_campaign` calls :func:`build_plan`
when ``options.budget`` is set and :func:`estimate_plan` after the
sampled campaign completes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InjectionError
from repro.swifi.faultmodel import FaultSpec
from repro.swifi.outcomes import Outcome

#: Bit bands by the *highest* flipped bit: low bits perturb values
#: slightly (often masked), high bits blow up magnitudes or signs, and
#: the top band dominates pointer/loop-bound corruption (Figure 1's
#: asymmetry).  Boundaries chosen for 32-bit words.
BIT_BANDS = (("low", 0, 15), ("mid", 16, 25), ("high", 26, 63))

#: Thread-id quartiles; boundary threads (first/last warps) behave
#: differently from interior ones on edge-guarded kernels.
THREAD_BANDS = 4

#: Allocation methods accepted by :func:`build_plan`.
PLAN_METHODS = ("stratified", "neyman")

#: Rates estimated per stratum / section / campaign.  ``sdc`` is the
#: headline (Outcome.UNDETECTED); the others ride along for the report.
RATE_OUTCOMES = {
    "sdc_ratio": (Outcome.UNDETECTED,),
    "failure_ratio": (Outcome.FAILURE,),
    "detected_ratio": (Outcome.DETECTED, Outcome.DETECTED_MASKED),
    "masked_ratio": (Outcome.MASKED,),
}


@dataclass(frozen=True, order=True)
class StratumKey:
    """Equivalence-class label for one group of fault specs."""

    section: str
    sensitivity: str
    bit_band: str
    thread_band: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "section": self.section, "sensitivity": self.sensitivity,
            "bit_band": self.bit_band, "thread_band": self.thread_band,
        }


@dataclass
class Stratum:
    """One stratum: its population indices and allocated budget."""

    key: StratumKey
    #: Positions in the *population* spec list (ascending).
    indices: List[int] = field(default_factory=list)
    budget: int = 0

    @property
    def population(self) -> int:
        return len(self.indices)


@dataclass
class CampaignPlan:
    """A seeded stratified subsample of a spec population."""

    strata: List[Stratum]
    #: Sampled population indices, ascending — the campaign's spec
    #: order is the population order restricted to this set, so trial
    #: ``j`` of the result corresponds to ``selected[j]``.
    selected: List[int]
    population: int
    budget: int
    confidence: float
    method: str
    seed: int

    @property
    def trials_saved(self) -> int:
        return self.population - len(self.selected)

    def selected_specs(self, specs: Sequence[FaultSpec]) -> List[FaultSpec]:
        return [specs[i] for i in self.selected]

    def stratum_of(self) -> Dict[int, StratumKey]:
        """Population index -> stratum key, for every stratified index."""
        mapping: Dict[int, StratumKey] = {}
        for stratum in self.strata:
            for i in stratum.indices:
                mapping[i] = stratum.key
        return mapping

    def meta(self) -> Dict[str, object]:
        """JSON-friendly identity written into the journal ``meta.json``."""
        return {
            "method": self.method, "budget": self.budget,
            "population": self.population, "selected": len(self.selected),
            "strata": len(self.strata), "confidence": self.confidence,
            "seed": self.seed,
        }


def bit_band(mask: int) -> str:
    """Band of the highest flipped bit (``"low"``/``"mid"``/``"high"``)."""
    top = max(mask.bit_length() - 1, 0)
    for name, lo, hi in BIT_BANDS:
        if lo <= top <= hi:
            return name
    return BIT_BANDS[-1][0]


def stratify(
    specs: Sequence[FaultSpec],
    kernel=None,
    thread_bands: int = THREAD_BANDS,
    bit_bands: bool = True,
) -> List[Stratum]:
    """Partition a spec population into sorted, non-empty strata.

    With a kernel, sites resolve to their dataflow section and
    sensitivity class; without one (bare ``runner_factory`` campaigns)
    every site lands in a single pseudo-section with unknown
    sensitivity — the bit/thread axes still stratify.  ``thread_bands``
    and ``bit_bands`` are the coarsening levers :func:`build_plan`
    pulls when the full cross-product outnumbers the budget.
    """
    section_of: Dict[int, str] = {}
    sensitivity_of: Dict[int, str] = {}
    if kernel is not None:
        from repro.kir.analysis.dataflow import collect_sites
        from repro.kir.analysis.sections import site_section_map

        section_of = site_section_map(kernel)
        sensitivity_of = {
            info.site: info.sensitivity_class for info in collect_sites(kernel)
        }
    max_thread = max((s.thread for s in specs), default=0)
    strata: Dict[StratumKey, Stratum] = {}
    for i, spec in enumerate(specs):
        band = min(thread_bands - 1,
                   (spec.thread * thread_bands) // (max_thread + 1))
        key = StratumKey(
            section=section_of.get(spec.site, "s?"),
            sensitivity=sensitivity_of.get(spec.site, "unknown"),
            bit_band=bit_band(spec.mask) if bit_bands else "all",
            thread_band=int(band),
        )
        strata.setdefault(key, Stratum(key=key)).indices.append(i)
    return [strata[key] for key in sorted(strata)]


def _largest_remainder(weights: List[float], budget: int,
                       caps: List[int]) -> List[int]:
    """Apportion ``budget`` by weight, capped per cell, floor >= 1.

    Standard largest-remainder apportionment with two fix-ups: no cell
    exceeds its population cap, and (when the budget allows) every cell
    gets at least one trial so no stratum is silently unmeasured.
    """
    total_w = sum(weights) or 1.0
    quotas = [budget * w / total_w for w in weights]
    alloc = [min(int(q), cap) for q, cap in zip(quotas, caps)]
    # hand out the remainder by largest fractional part, ties by index
    order = sorted(range(len(weights)),
                   key=lambda i: (-(quotas[i] - int(quotas[i])), i))
    leftover = budget - sum(alloc)
    while leftover > 0:
        progressed = False
        for i in order:
            if leftover <= 0:
                break
            if alloc[i] < caps[i]:
                alloc[i] += 1
                leftover -= 1
                progressed = True
        if not progressed:
            break  # every cell is at its cap: budget >= population
    # minimum-one floor, funded from the largest allocations
    if budget >= len(weights):
        donors = sorted(range(len(weights)), key=lambda i: -alloc[i])
        for i in range(len(weights)):
            if alloc[i] == 0 and caps[i] > 0:
                for j in donors:
                    if alloc[j] > 1:
                        alloc[j] -= 1
                        alloc[i] = 1
                        break
    return alloc


def allocate_proportional(strata: List[Stratum], budget: int) -> None:
    """Budget each stratum in proportion to its population (in place)."""
    weights = [float(s.population) for s in strata]
    caps = [s.population for s in strata]
    for stratum, n in zip(strata, _largest_remainder(weights, budget, caps)):
        stratum.budget = n


def allocate_neyman(
    strata: List[Stratum], budget: int,
    pilot: Dict[StratumKey, Tuple[int, int]],
) -> None:
    """Neyman allocation: budget ∝ N_h · sd_h from pilot rates (in place).

    ``pilot`` maps stratum keys to ``(trials, sdc_hits)`` observed in a
    pilot run.  Rates are Laplace-smoothed — ``(k+1)/(n+2)`` — so a
    pilot that saw zero SDCs in a stratum still leaves it a sliver of
    variance instead of starving it entirely; unpiloted strata fall
    back to the maximum-variance prior p=0.5.
    """
    weights = []
    for stratum in strata:
        n, k = pilot.get(stratum.key, (0, 0))
        p = (k + 1) / (n + 2)
        weights.append(stratum.population * math.sqrt(p * (1.0 - p)))
    caps = [s.population for s in strata]
    for stratum, n in zip(strata, _largest_remainder(weights, budget, caps)):
        stratum.budget = n


def build_plan(
    specs: Sequence[FaultSpec],
    budget: int,
    *,
    kernel=None,
    method: str = "stratified",
    confidence: float = 0.95,
    seed: int = 0,
    pilot: Optional[Dict[StratumKey, Tuple[int, int]]] = None,
) -> CampaignPlan:
    """Build a seeded stratified plan sampling ``budget`` of ``specs``.

    Deterministic: the same ``(specs, budget, method, seed, pilot)``
    always selects the same indices.  Sampling inside each stratum is
    without replacement from one :class:`numpy.random.Generator`
    consumed in sorted-stratum order.
    """
    if method not in PLAN_METHODS:
        raise InjectionError(
            f"unknown plan method {method!r}; expected one of {PLAN_METHODS}"
        )
    population = len(specs)
    if budget <= 0:
        raise InjectionError(f"plan budget must be positive, got {budget}")
    budget = min(budget, population)
    # Coarsen the stratum key until every stratum can hold at least one
    # sampled trial: unmeasured strata would silently drop out of the
    # extrapolation weights, biasing the estimate toward whatever the
    # budget happened to cover.
    strata = stratify(specs, kernel=kernel)
    if len(strata) > budget:
        strata = stratify(specs, kernel=kernel, thread_bands=1)
    if len(strata) > budget:
        strata = stratify(specs, kernel=kernel, thread_bands=1,
                          bit_bands=False)
    if method == "neyman" and pilot:
        allocate_neyman(strata, budget, pilot)
    else:
        allocate_proportional(strata, budget)
    rng = np.random.default_rng(seed)
    selected: List[int] = []
    for stratum in strata:
        if stratum.budget >= stratum.population:
            selected.extend(stratum.indices)
        elif stratum.budget > 0:
            picks = rng.choice(len(stratum.indices), size=stratum.budget,
                               replace=False)
            selected.extend(stratum.indices[int(i)] for i in sorted(picks))
    return CampaignPlan(
        strata=strata, selected=sorted(selected), population=population,
        budget=budget, confidence=confidence, method=method, seed=seed,
    )


# -- interval arithmetic (no scipy in the container) -----------------------

#: Acklam's rational approximation of the inverse normal CDF —
#: |relative error| < 1.15e-9 over (0, 1), far below what a sampling
#: CI needs, and it keeps scipy out of the dependency set.
_ACKLAM_A = (-3.969683028665376e+01, 2.209460984245205e+02,
             -2.759285104469687e+02, 1.383577518672690e+02,
             -3.066479806614716e+01, 2.506628277459239e+00)
_ACKLAM_B = (-5.447609879822406e+01, 1.615858368580409e+02,
             -1.556989798598866e+02, 6.680131188771972e+01,
             -1.328068155288572e+01)
_ACKLAM_C = (-7.784894002430293e-03, -3.223964580411365e-01,
             -2.400758277161838e+00, -2.549732539343734e+00,
             4.374664141464968e+00, 2.938163982698783e+00)
_ACKLAM_D = (7.784695709041462e-03, 3.224671290700398e-01,
             2.445134137142996e+00, 3.754408661907416e+00)
_ACKLAM_SPLIT = 0.02425


def _inv_norm_cdf(p: float) -> float:
    if not 0.0 < p < 1.0:
        raise InjectionError(f"inverse normal CDF needs p in (0,1), got {p}")
    a, b, c, d = _ACKLAM_A, _ACKLAM_B, _ACKLAM_C, _ACKLAM_D
    if p < _ACKLAM_SPLIT:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - _ACKLAM_SPLIT:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)


def z_score(confidence: float) -> float:
    """Two-sided normal quantile for a given confidence level."""
    if not 0.0 < confidence < 1.0:
        raise InjectionError(
            f"confidence must be in (0,1), got {confidence}"
        )
    return _inv_norm_cdf(0.5 + confidence / 2.0)


def wilson_interval(k: int, n: int, confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score interval for ``k`` successes in ``n`` Bernoulli trials.

    Behaves sensibly at the boundaries (k=0, k=n) where the normal
    interval collapses to a point — exactly the regime small strata
    live in.  ``n == 0`` returns the vacuous ``(0, 1)``.
    """
    if n <= 0:
        return 0.0, 1.0
    z = z_score(confidence)
    p = k / n
    denom = 1.0 + z * z / n
    centre = (p + z * z / (2 * n)) / denom
    half = z * math.sqrt(p * (1.0 - p) / n + z * z / (4 * n * n)) / denom
    return max(0.0, centre - half), min(1.0, centre + half)


def compose_rates(parts: Sequence[Tuple[int, float]]) -> float:
    """FastFlip composition: population-weighted mean of per-part rates.

    ``parts`` is ``(population, rate)`` per section.  Because every
    injection lands in exactly one section, a whole-program outcome
    rate is *exactly* the population-weighted mean of the per-section
    rates — no independence assumption needed — which is what makes
    per-section rates reusable across edits that leave a section's
    dependency closure untouched.
    """
    total = sum(n for n, _rate in parts)
    if total == 0:
        return 0.0
    return sum(n * rate for n, rate in parts) / total


def _rate_tallies(outcome_values: Sequence[str]) -> Tuple[int, Dict[str, int]]:
    """(modelled trials, hits per rate) excluding operational records."""
    killed = Outcome.WORKER_KILLED.value
    modelled = [o for o in outcome_values if o != killed]
    hits = {
        name: sum(1 for o in modelled
                  if any(o == member.value for member in members))
        for name, members in RATE_OUTCOMES.items()
    }
    return len(modelled), hits


def estimate_plan(plan: CampaignPlan, trials) -> Dict[str, object]:
    """Population-extrapolated estimates for one planned campaign.

    ``trials`` is the result's trial list, ordered like
    ``plan.selected``.  Quarantined placeholders (``WORKER_KILLED``)
    are excluded from every rate denominator: they are operational
    evidence, not fault-model outcomes.

    Returns the JSON payload attached to ``CampaignResult.summary()``
    under ``"plan"``: plan identity, per-stratum estimates (Wilson
    CIs), per-section composition, and overall stratified estimates
    with finite-population-corrected normal CIs.
    """
    if len(trials) != len(plan.selected):
        raise InjectionError(
            f"plan expected {len(plan.selected)} trials, result has "
            f"{len(trials)}"
        )
    confidence = plan.confidence
    outcome_by_index = {
        pop_index: trial.outcome.value
        for pop_index, trial in zip(plan.selected, trials)
    }

    strata_out: List[Dict[str, object]] = []
    per_rate_parts: Dict[str, List[Tuple[int, int, int]]] = {
        name: [] for name in RATE_OUTCOMES
    }  # rate -> [(N_h, n_h, k_h)]
    section_parts: Dict[str, Dict[str, List[Tuple[int, int, int]]]] = {}
    for stratum in plan.strata:
        sampled = [outcome_by_index[i] for i in stratum.indices
                   if i in outcome_by_index]
        n, hits = _rate_tallies(sampled)
        entry: Dict[str, object] = {
            **stratum.key.as_dict(),
            "population": stratum.population,
            "sampled": n,
        }
        for name in RATE_OUTCOMES:
            k = hits[name]
            entry[name] = (k / n) if n else None
            per_rate_parts[name].append((stratum.population, n, k))
            section_parts.setdefault(stratum.key.section, {}) \
                .setdefault(name, []).append((stratum.population, n, k))
        lo, hi = wilson_interval(hits["sdc_ratio"], n, confidence)
        entry["sdc_ci"] = [lo, hi]
        strata_out.append(entry)

    def _stratified(parts: List[Tuple[int, int, int]]) -> Dict[str, object]:
        """Weighted estimate + fpc normal CI over covered strata.

        The point estimate uses the raw per-stratum rates; the
        *variance* term uses Laplace-smoothed rates ``(k+1)/(n+2)`` —
        a small stratum that happened to observe 0/n or n/n has an
        estimated variance of exactly zero, and summing those would
        report a zero-width interval from a handful of trials.  The
        smoothing keeps each sampled stratum's uncertainty honest
        without moving the estimate itself.
        """
        covered = [(N, n, k) for N, n, k in parts if n > 0]
        total = sum(N for N, _n, _k in covered)
        if total == 0:
            return {"value": 0.0, "ci": [0.0, 1.0], "covered_population": 0}
        value = sum(N * (k / n) for N, n, k in covered) / total
        var = 0.0
        for N, n, k in covered:
            p_var = (k + 1.0) / (n + 2.0)
            w = N / total
            fpc = (N - n) / (N - 1) if N > 1 else 0.0
            var += w * w * fpc * p_var * (1.0 - p_var) / n
        half = z_score(confidence) * math.sqrt(max(var, 0.0))
        return {
            "value": value,
            "ci": [max(0.0, value - half), min(1.0, value + half)],
            "covered_population": total,
        }

    estimates = {name: _stratified(parts)
                 for name, parts in per_rate_parts.items()}
    estimates["coverage"] = {
        "value": 1.0 - estimates["sdc_ratio"]["value"],
        "ci": [1.0 - estimates["sdc_ratio"]["ci"][1],
               1.0 - estimates["sdc_ratio"]["ci"][0]],
        "covered_population": estimates["sdc_ratio"]["covered_population"],
    }

    sections_out: Dict[str, Dict[str, object]] = {}
    composed_parts: List[Tuple[int, float]] = []
    for section in sorted(section_parts):
        rates = {name: _stratified(parts)
                 for name, parts in section_parts[section].items()}
        population = sum(N for N, _n, _k in section_parts[section]["sdc_ratio"])
        sampled = sum(n for _N, n, _k in section_parts[section]["sdc_ratio"])
        sections_out[section] = {
            "population": population, "sampled": sampled, **{
                name: rates[name]["value"] for name in RATE_OUTCOMES
            },
            "sdc_ci": rates["sdc_ratio"]["ci"],
        }
        composed_parts.append((population, rates["sdc_ratio"]["value"]))

    return {
        **plan.meta(),
        "trials_saved": plan.trials_saved,
        "estimates": estimates,
        # sanity identity: composing per-section rates reproduces the
        # overall stratified estimate (same weights, same samples)
        "composed_sdc_ratio": compose_rates(composed_parts),
        "strata_estimates": strata_out,
        "sections": sections_out,
    }


def pilot_tallies(
    plan: CampaignPlan, trials
) -> Dict[StratumKey, Tuple[int, int]]:
    """Per-stratum ``(trials, sdc_hits)`` from a pilot campaign's result.

    Feeds :func:`allocate_neyman` for the main plan.
    """
    outcome_by_index = {
        pop_index: trial.outcome.value
        for pop_index, trial in zip(plan.selected, trials)
    }
    tallies: Dict[StratumKey, Tuple[int, int]] = {}
    for stratum in plan.strata:
        sampled = [outcome_by_index[i] for i in stratum.indices
                   if i in outcome_by_index]
        n, hits = _rate_tallies(sampled)
        tallies[stratum.key] = (n, hits["sdc_ratio"])
    return tallies


def bootstrap_interval(
    plan: CampaignPlan, trials, rate: str = "sdc_ratio",
    n_boot: int = 200, seed: int = 0,
) -> Tuple[float, float]:
    """Stratified-bootstrap CI for one rate (resampling within strata).

    A cross-check on the normal interval for small or lopsided strata;
    not on the hot path (the report and summary use the closed-form
    CIs), but exported for the estimator-correctness tests.
    """
    if rate not in RATE_OUTCOMES:
        raise InjectionError(f"unknown rate {rate!r}")
    members = {m.value for m in RATE_OUTCOMES[rate]}
    killed = Outcome.WORKER_KILLED.value
    outcome_by_index = {
        pop_index: trial.outcome.value
        for pop_index, trial in zip(plan.selected, trials)
    }
    cells = []  # (N_h, hit-indicator array) per covered stratum
    for stratum in plan.strata:
        sampled = [outcome_by_index[i] for i in stratum.indices
                   if i in outcome_by_index]
        flags = np.array([o in members for o in sampled if o != killed],
                         dtype=float)
        if flags.size:
            cells.append((stratum.population, flags))
    if not cells:
        return 0.0, 1.0
    total = sum(N for N, _f in cells)
    rng = np.random.default_rng(seed)
    stats = np.empty(n_boot)
    for b in range(n_boot):
        acc = 0.0
        for N, flags in cells:
            resample = rng.integers(0, flags.size, size=flags.size)
            acc += N * float(flags[resample].mean())
        stats[b] = acc / total
    alpha = 1.0 - plan.confidence
    lo, hi = np.quantile(stats, [alpha / 2.0, 1.0 - alpha / 2.0])
    return float(lo), float(hi)
