"""Campaign execution engine: parallel, fault-tolerant, resumable.

The paper's measurement apparatus runs ~10,000 single-fault experiments
per application (Section VIII); every trial is an independent program
execution, which makes campaigns embarrassingly parallel.  This module
is the single entry point every campaign-driven harness uses —
:func:`run_campaign` with a :class:`~repro.swifi.options.CampaignOptions`
— and composes four layers:

* **Warm per-worker caches** — each worker process inherits the
  parent's :class:`~repro.core.program.HauberkProgram` through ``fork``
  and is warm-started exactly once by the pool initializer: the
  instrumented build, the compiled kernel, the fixed campaign input,
  and the golden output are all constructed (or cache-hit) before the
  first trial, then reused for every chunk the worker executes.
* **Deterministic merge** — workers return serialized per-trial
  observations plus their local tallies, metrics snapshot, and captured
  trace records; the parent absorbs every observation *in original spec
  order* through the same :func:`~repro.swifi.campaign.absorb_trial`
  helper the serial loop uses.  ``CampaignResult`` (trial order,
  tallies, ``summary()``) is therefore bit-identical for any worker
  count, any chunk fragmentation the retry layer produced, and any
  journal-replay split.
* **Fault tolerance** — a dead worker no longer aborts the campaign:
  its in-flight chunks are split and retried on fresh pools with
  exponential backoff (:mod:`repro.exec.retry`); a spec that keeps
  killing workers is quarantined into the result as a
  :data:`~repro.swifi.outcomes.Outcome.WORKER_KILLED` trial with a
  structured :class:`~repro.swifi.campaign.QuarantineReport`.  A
  per-trial wall-clock deadline (``options.trial_timeout``) degrades
  hung trials to the existing hang classification.
  ``RetryPolicy(max_deaths=0)`` restores strict crash surfacing
  (:class:`~repro.errors.InjectionError` on the parent).
* **Durable journal / resume** — with ``options.run_dir`` every
  classified trial is appended to a JSONL journal the moment its chunk
  lands (:mod:`repro.swifi.journal`); with ``options.resume`` the
  journaled trials are *replayed* through ``absorb_trial`` instead of
  re-executed, so a killed-and-resumed campaign produces a result
  bit-identical to an uninterrupted one.

``workers=1`` (or a platform without ``fork``) short-circuits to an
in-process loop with the same journal/timeout semantics; exceptions
raised *inside* a trial propagate unchanged on both paths.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import (
    Any, Callable, Dict, Iterable, List, Optional, Tuple, TYPE_CHECKING,
)

from repro.errors import InjectionError
from repro.exec.pool import (
    ForkPool,
    chunk_slices,
    default_chunk_size,
    fork_available,
    resolve_workers,
)
from repro.exec.retry import TrialTimeout, map_resilient, trial_deadline
from repro.obs.events import RingBufferSink, Tracer, get_tracer, set_tracer, use_tracer
from repro.obs.instrument import (
    record_campaign,
    record_journal_activity,
    record_parallel_campaign,
    record_plan,
    record_quarantine,
    record_retry_round,
    record_stale_sections,
    record_trial_timeout,
    record_worker_death,
)
from repro.obs.metrics import fresh_registry, get_registry
from repro.obs.profile import (
    PHASE_FULL_RUN,
    PHASE_MERGE,
    PHASE_PARSE_BUILD,
    PHASE_QUARANTINE,
    PHASE_RETRY_BACKOFF,
    PhaseProfiler,
    get_profiler,
    served_tag,
    set_profiler,
    use_profiler,
)
from repro.obs.progress import (
    HEARTBEAT_FILENAME,
    HeartbeatMonitor,
    ProgressRenderer,
)
from repro.swifi.campaign import (
    CampaignResult,
    QuarantineReport,
    TrialObservation,
    absorb_quarantined,
    absorb_trial,
)
from repro.swifi.faultmodel import FaultSpec
from repro.swifi.journal import (
    CampaignJournal,
    JournalRecord,
    campaign_fingerprint,
    spec_fingerprint,
)
from repro.swifi.options import CampaignOptions
from repro.swifi.outcomes import Outcome, OutcomeCounts, classify_outcome

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.core.program
    from repro.core.program import HauberkProgram

#: Ring capacity for per-chunk worker trace capture (only allocated
#: when the parent tracer is enabled).
WORKER_TRACE_CAPACITY = 8192


@dataclass
class ChunkResult:
    """Everything one worker ships back for one chunk of work items."""

    #: Global spec index of the chunk's first item (stable chunk id).
    index: int
    observations: List[TrialObservation]
    #: Outcome values the worker classified (parent re-derives its own;
    #: kept for journaling, chunk-span attribution, and cross-checking).
    outcomes: List[str]
    counts: OutcomeCounts
    #: ``MetricsRegistry.as_dict()`` snapshot of the worker-side metrics
    #: recorded while running this chunk (kernel launches, failures).
    metrics: Dict[str, Any]
    #: Raw span/event records captured in the worker (empty unless the
    #: parent tracer was enabled when the pool was created).
    trace_records: List[Dict[str, Any]] = field(default_factory=list)
    worker_pid: int = 0
    #: Per-trial cost records (``PhaseProfiler.end_trial``), parallel to
    #: ``observations``; empty when profiling is off.
    costs: List[Optional[Dict[str, Any]]] = field(default_factory=list)
    #: Phase totals accumulated on this worker since its previous chunk
    #: (``PhaseProfiler.take_totals``); empty when profiling is off.
    phase_totals: Dict[str, List[float]] = field(default_factory=dict)


@dataclass
class _WorkerState:
    runner: Callable[[Optional[FaultSpec]], TrialObservation]
    capture_trace: bool


_STATE: Optional[_WorkerState] = None


def _make_runner(program, mode, seed, differential):
    """The campaign trial runner: differential when requested, else full.

    The differential runner memoizes the golden launch on the program
    (``GoldenRecord.exec_states``), so building it parent-side before a
    fork warms every worker — each child's own call here is a cache hit
    that launches nothing.
    """
    if differential:
        from repro.swifi.differential import differential_runner

        return differential_runner(program, mode, seed)
    full = program.trial_runner(mode, seed)

    def full_runner(spec):
        if spec is None:
            return full(spec)
        prof = get_profiler()
        prof.note_served("full", "differential_off")
        with prof.phase(PHASE_FULL_RUN, reason="differential_off"):
            return full(spec)

    return full_runner


def _guarded_runner(runner, timeout: Optional[float]):
    """Wrap a trial runner in the per-trial wall-clock deadline.

    A trial that exceeds ``timeout`` seconds is degraded to the
    existing hang classification (``failure=True`` → ``FAILURE``) —
    the same class the watchdog budget assigns to in-model hangs.  The
    differential engine's device-memory state is healed first (the
    interrupt may have landed mid-replay, between the golden-store undo
    and its reapply).
    """
    if not timeout:
        return runner

    def guarded(spec):
        try:
            with trial_deadline(timeout):
                return runner(spec)
        except TrialTimeout as exc:
            engine = getattr(runner, "engine", None)
            if engine is not None:
                engine.restore_memory()
            record_trial_timeout()
            return TrialObservation(
                failure=True, detected=False, output_ok=False,
                activated=False, note=f"hang: {exc}",
            )

    return guarded


def build_trial_runner(
    program, mode: str, options: CampaignOptions,
    runner_factory: Optional[Callable[[], Callable]] = None,
) -> Callable[[Optional[FaultSpec]], TrialObservation]:
    """Build the deadline-guarded trial runner every execution path uses.

    One definition of "how a trial runs" shared by the serial loop, the
    fork-pool initializer, and the fleet workers: build (or accept) the
    base runner, then wrap it in ``options.trial_timeout``.  Callers
    that fork should invoke this parent-side first so the build/golden
    caches are warm in every child.
    """
    if runner_factory is not None:
        base = runner_factory()
    else:
        with get_profiler().phase(PHASE_PARSE_BUILD):
            build = program.build(mode)
            program.runtime.prepare(build.kernel)
        base = _make_runner(program, mode, options.seed, options.differential)
    return _guarded_runner(base, options.trial_timeout)


def execute_chunk(
    runner: Callable[[Optional[FaultSpec]], TrialObservation],
    items: List[Tuple[int, FaultSpec]],
    capture_trace: bool = False,
    isolate_metrics: bool = True,
) -> ChunkResult:
    """Run one chunk of ``(index, spec)`` items through ``runner``.

    The single chunk-execution body shared by fork-pool workers and
    fleet workers: metrics land in a fresh registry snapshot, trials
    are profiled/classified, and (when asked) tracer records are
    captured in a bounded ring.  The returned :class:`ChunkResult` is
    what the parent merges — identical regardless of which process
    architecture ran it.

    ``isolate_metrics=False`` skips the registry snapshot (and returns
    empty chunk metrics) — for callers running in a *thread* of a
    process whose global registry must survive, like in-process test
    workers.  Worker processes keep the default: the snapshot is how
    the fork-pool parent computes per-chunk metric deltas.
    """
    registry = fresh_registry() if isolate_metrics else None
    profiler = get_profiler()
    observations: List[TrialObservation] = []
    outcomes: List[str] = []
    costs: List[Optional[Dict[str, Any]]] = []
    counts = OutcomeCounts()

    def execute() -> None:
        for index, spec in items:
            profiler.begin_trial(index)
            obs = runner(spec)
            cost = profiler.end_trial()
            outcome = classify_outcome(obs.failure, obs.detected, obs.output_ok)
            counts.add(outcome)
            observations.append(obs)
            outcomes.append(outcome.value)
            costs.append(cost)

    trace_records: List[Dict[str, Any]] = []
    if capture_trace:
        sink = RingBufferSink(capacity=WORKER_TRACE_CAPACITY)
        with use_tracer(Tracer(sink)):
            execute()
        trace_records = sink.records
    else:
        execute()
    return ChunkResult(
        index=items[0][0] if items else -1,
        observations=observations,
        outcomes=outcomes,
        counts=counts,
        metrics=registry.as_dict() if registry is not None else {},
        trace_records=trace_records,
        worker_pid=os.getpid(),
        costs=costs if profiler.enabled else [],
        phase_totals=profiler.take_totals(),
    )


def _init_worker(program, mode, options: CampaignOptions, runner_factory,
                 capture_trace) -> None:
    """Pool initializer: warm this worker's caches exactly once.

    Runs in the child right after ``fork``.  The inherited tracer is
    detached first so workers never write into the parent's trace sink
    (a shared open file under ``--trace``); metrics start from a fresh
    registry so the parent can merge clean per-worker snapshots.  The
    :class:`CampaignOptions` object arrives through the forked address
    space, so the worker executes with exactly the options the parent
    planned with (seed, differential, trial timeout).
    """
    global _STATE
    set_tracer(None)
    fresh_registry()
    set_profiler(PhaseProfiler() if options.profile else None)
    _STATE = _WorkerState(
        runner=build_trial_runner(program, mode, options, runner_factory),
        capture_trace=capture_trace,
    )


def _run_chunk(items) -> ChunkResult:
    """Execute one chunk of ``(index, spec)`` items on this worker."""
    state = _STATE
    if state is None:
        raise InjectionError("campaign worker used before initialization")
    return execute_chunk(state.runner, items, state.capture_trace)


# -- journal plumbing ------------------------------------------------------


def _section_context(program, spec_list):
    """Per-spec section names plus the staleness-closure callback.

    Returns ``(sec_of, affected_fn)``: ``sec_of[i]`` is the dataflow
    section of ``spec_list[i]``'s injection site, and ``affected_fn``
    closes a set of changed section names over the section dependency
    graph.  Program-less campaigns have no kernel to partition —
    ``(None, None)``.
    """
    if program is None:
        return None, None
    from repro.kir.analysis.sections import (
        affected_sections,
        kernel_sections,
        site_section_map,
    )

    kernel = program.workload.kernel
    sections = kernel_sections(kernel)
    site_map = site_section_map(kernel, sections)
    sec_of = [site_map.get(spec.site) for spec in spec_list]

    def affected_fn(changed):
        return affected_sections(sections, changed)

    return sec_of, affected_fn


def _build_campaign_plan(program, spec_list, mode, options: CampaignOptions,
                         runner_factory):
    """Build the stratified plan for ``options.budget``, piloting if asked.

    Neyman allocation needs per-stratum variance, which only exists
    after observing outcomes — so ``plan="neyman"`` first runs a small
    proportional pilot (a quarter of the budget, serial, unjournaled,
    unprofiled) and feeds its per-stratum SDC tallies into the
    allocator.  The pilot is extra execution cost on top of the
    budget; it buys tighter intervals when strata variances differ.
    """
    from repro.swifi.planner import build_plan, pilot_tallies

    kernel = program.workload.kernel if program is not None else None
    method = options.plan or "stratified"
    pilot = None
    if method == "neyman":
        pilot_budget = max(1, options.budget // 4)
        pilot_plan = build_plan(
            spec_list, pilot_budget, kernel=kernel, method="stratified",
            confidence=options.confidence, seed=options.seed + 1,
        )
        pilot_options = options.evolve(
            budget=None, plan=None, run_dir=None, resume=None,
            profile=False, progress=False, workers=1,
            fleet=None, endpoint=None,
        )
        pilot_result = run_campaign(
            program, pilot_plan.selected_specs(spec_list), mode,
            pilot_options, runner_factory=runner_factory,
        )
        pilot = pilot_tallies(pilot_plan, pilot_result.trials)
    return build_plan(
        spec_list, options.budget, kernel=kernel, method=method,
        confidence=options.confidence, seed=options.seed, pilot=pilot,
    )


def _open_journal(
    program, spec_list, mode, options: CampaignOptions,
    plan=None, sec_of=None, affected_fn=None,
) -> Tuple[Optional[CampaignJournal], Dict[int, JournalRecord]]:
    """Open the campaign journal and index its replayable records.

    On resume, plan positions the exact-fingerprint journal cannot
    serve are offered to sibling journals for **incremental adoption**
    (:meth:`CampaignJournal.adopt_compatible`): records from sections
    whose fingerprint and dependency closure survived the edit replay
    instead of re-executing.
    """
    root = options.journal_root
    if root is None:
        return None, {}
    fingerprint, meta = campaign_fingerprint(
        program, spec_list, mode, options.seed
    )
    if plan is not None:
        meta["plan"] = plan.meta()
    journal = CampaignJournal.open(
        root, fingerprint, meta, resume=options.resuming
    )
    replayed: Dict[int, JournalRecord] = {}
    for i, spec in enumerate(spec_list):
        record = journal.match(i, spec_fingerprint(spec))
        if record is not None:
            replayed[i] = record
    if options.resuming and sec_of is not None and affected_fn is not None:
        wanted = [(i, spec_fingerprint(spec), sec_of[i])
                  for i, spec in enumerate(spec_list) if i not in replayed]
        if wanted:
            adopted, stale = journal.adopt_compatible(
                root, meta, wanted, affected_fn
            )
            record_stale_sections(len(stale))
            replayed.update(adopted)
    return journal, replayed


def _absorb_replayed(result, spec, record: JournalRecord, tracer) -> None:
    """Merge one journaled trial exactly as the live path would have."""
    if record.observation is None:
        absorb_quarantined(result, record.to_report(spec), tracer)
    else:
        absorb_trial(result, spec, record.observation, tracer)


# -- flight recorder plumbing ----------------------------------------------


def _open_monitor(
    program, spec_list, options: CampaignOptions,
    journal: Optional[CampaignJournal],
) -> Optional[HeartbeatMonitor]:
    """The campaign's heartbeat monitor, or ``None`` when nothing listens.

    Heartbeats exist whenever there is a consumer: a ``--progress``
    renderer, or a journal directory (where ``heartbeats.jsonl`` is the
    liveness record a fleet scheduler polls).  A fresh — non-resumed —
    run truncates stale heartbeats, mirroring the journal's semantics.
    """
    renderer = None
    if options.progress:
        label = program.workload.name if program is not None else "campaign"
        renderer = ProgressRenderer(label=label)
    path: Optional[str] = None
    if journal is not None:
        heartbeat_path = journal.directory / HEARTBEAT_FILENAME
        if not options.resuming and heartbeat_path.exists():
            heartbeat_path.unlink()
        path = str(heartbeat_path)
    if renderer is None and path is None:
        return None
    return HeartbeatMonitor(total=len(spec_list), path=path, renderer=renderer)


def _outcome_tally(counts: OutcomeCounts) -> Dict[str, int]:
    """Non-zero outcome tallies keyed by outcome value."""
    return {o.value: c for o, c in counts.counts.items() if c}


def _replayed_tally(replayed: Dict[int, JournalRecord]) -> Dict[str, int]:
    """Outcome tallies of the journal-replayed prefix."""
    tally: Dict[str, int] = {}
    for record in replayed.values():
        tally[record.outcome] = tally.get(record.outcome, 0) + 1
    return tally


def _write_profile(journal: CampaignJournal, profiler: PhaseProfiler) -> None:
    """Persist the campaign's phase totals next to its journal."""
    payload = {"version": 1, "phases": profiler.snapshot()}
    path = journal.directory / "profile.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


# -- execution paths -------------------------------------------------------


def _run_serial(
    program, spec_list, mode, options: CampaignOptions, runner_factory,
    journal, replayed, monitor: Optional[HeartbeatMonitor] = None,
    sec_of: Optional[List[Optional[str]]] = None,
) -> CampaignResult:
    """In-process path: journal-aware, deadline-guarded trial loop.

    The runner is built lazily so a fully-journaled resume absorbs its
    records without constructing (or golden-running) the program at
    all.
    """
    runner = None

    def get_runner():
        nonlocal runner
        if runner is None:
            runner = build_trial_runner(program, mode, options, runner_factory)
        return runner

    result = CampaignResult()
    tracer = get_tracer()
    profiler = get_profiler()
    with tracer.span(
        "swifi.campaign", workers=1, planned_trials=len(spec_list),
        replayed=len(replayed),
    ) as span:
        for i, spec in enumerate(spec_list):
            record = replayed.get(i)
            if record is not None:
                with profiler.phase(PHASE_MERGE):
                    _absorb_replayed(result, spec, record, tracer)
                continue
            profiler.begin_trial(i)
            obs = get_runner()(spec)
            cost = profiler.end_trial()
            with profiler.phase(PHASE_MERGE):
                outcome = absorb_trial(result, spec, obs, tracer)
            if journal is not None:
                journal.append_trial(
                    i, spec, outcome.value, obs, served=served_tag(cost),
                    section=sec_of[i] if sec_of is not None else None,
                )
            if monitor is not None:
                monitor.advance(
                    1, {outcome.value: 1}, source="serial", force=False
                )
        record_campaign(result)
        span.set(**result.summary())
    return result


def _run_pooled(
    program, spec_list, pending, mode, options: CampaignOptions,
    runner_factory, journal, replayed, n_workers,
    monitor: Optional[HeartbeatMonitor] = None,
    sec_of: Optional[List[Optional[str]]] = None,
) -> CampaignResult:
    """Fork-pool path: resilient chunk map, then ordered merge."""
    profiler = get_profiler()
    if runner_factory is None:
        # Warm the parent before forking: the translated build, the
        # compiled kernel, the campaign input/golden, and (under
        # differential execution) the recorded golden launch are
        # inherited by every worker, so per-worker init is a cache hit
        # and the translator/golden metrics are recorded once,
        # parent-side.
        with profiler.phase(PHASE_PARSE_BUILD):
            build = program.build(mode)
            program.runtime.prepare(build.kernel)
        _make_runner(program, mode, options.seed, options.differential)

    tracer = get_tracer()
    size = options.chunk_size if options.chunk_size is not None else \
        default_chunk_size(len(pending), n_workers)
    record_parallel_campaign(n_workers, len(chunk_slices(len(pending), size)))

    pool = ForkPool(
        n_workers,
        initializer=_init_worker,
        initargs=(program, mode, options, runner_factory, tracer.enabled),
        crash_error=InjectionError,
    )

    def on_result(chunk_items, chunk: ChunkResult) -> None:
        # journal the moment a chunk lands — durability must not wait
        # for the campaign (or the process) to finish
        if len(chunk.observations) != len(chunk_items):
            raise InjectionError(
                f"chunk {chunk.index} returned {len(chunk.observations)} "
                f"trials, expected {len(chunk_items)}"
            )
        if journal is not None:
            costs = chunk.costs or [None] * len(chunk_items)
            for (idx, spec), obs, outcome, cost in zip(
                chunk_items, chunk.observations, chunk.outcomes, costs
            ):
                journal.append_trial(
                    idx, spec, outcome, obs, served=served_tag(cost),
                    section=sec_of[idx] if sec_of is not None else None,
                )
        if monitor is not None:
            monitor.advance(
                len(chunk_items), _outcome_tally(chunk.counts),
                pid=chunk.worker_pid, source="chunk",
            )

    def on_event(kind: str, **attrs: Any) -> None:
        if kind == "worker_death":
            record_worker_death(attrs.get("phase", ""),
                                attrs.get("failed_chunks", 1))
            tracer.event("swifi.worker_death", **attrs)
        elif kind == "retry":
            record_retry_round()
            profiler.add(PHASE_RETRY_BACKOFF, attrs.get("delay", 0.0))
            tracer.event("swifi.retry", **attrs)

    result = CampaignResult()
    with tracer.span(
        "swifi.campaign", workers=n_workers, chunk_size=size,
        planned_trials=len(spec_list), replayed=len(replayed),
    ) as span:
        completed, dead = map_resilient(
            pool, _run_chunk, pending, size, options.retry,
            on_event=on_event, on_result=on_result,
        )

        registry = get_registry()
        obs_by_index: Dict[int, TrialObservation] = {}
        for chunk_items, chunk in sorted(completed, key=lambda pair: pair[1].index):
            with tracer.span(
                "swifi.chunk", chunk=chunk.index, size=len(chunk_items),
                worker_pid=chunk.worker_pid,
            ) as cspan:
                for (idx, _spec), obs in zip(chunk_items, chunk.observations):
                    obs_by_index[idx] = obs
                registry.merge_dict(chunk.metrics)
                profiler.absorb_totals(chunk.phase_totals)
                for record in chunk.trace_records:
                    tracer.event(
                        "swifi.worker.trace", chunk=chunk.index, record=record
                    )
                cspan.set(
                    outcomes={o.value: chunk.counts.counts[o] for o in Outcome}
                )

        quarantines: Dict[int, QuarantineReport] = {}
        for death in dead:
            idx, spec = death.item
            report = QuarantineReport(
                spec=spec, index=idx, deaths=death.deaths,
                rounds=death.round_no, note=death.note,
            )
            quarantines[idx] = report
            record_quarantine()
            profiler.add(PHASE_QUARANTINE, 0.0)
            if journal is not None:
                journal.append_quarantine(
                    report, section=sec_of[idx] if sec_of is not None else None
                )
            if monitor is not None:
                monitor.advance(
                    1, {Outcome.WORKER_KILLED.value: 1}, source="chunk"
                )

        # the deterministic merge: original spec order, one absorb per
        # spec, regardless of which path (journal, chunk, quarantine)
        # produced it
        with profiler.phase(PHASE_MERGE):
            for i, spec in enumerate(spec_list):
                record = replayed.get(i)
                if record is not None:
                    _absorb_replayed(result, spec, record, tracer)
                elif i in quarantines:
                    absorb_quarantined(result, quarantines[i], tracer)
                else:
                    absorb_trial(result, spec, obs_by_index[i], tracer)
        record_campaign(result)
        span.set(**result.summary())
    return result


def run_campaign(
    program: Optional["HauberkProgram"],
    specs: Iterable[FaultSpec],
    mode: str = "fi",
    options: Optional[CampaignOptions] = None,
    *,
    runner_factory: Optional[Callable[[], Callable]] = None,
) -> CampaignResult:
    """Run one FI campaign over ``specs`` under ``options``.

    The shared entry point for every campaign-driven harness — and the
    frozen v1 surface: every execution knob lives on
    :class:`~repro.swifi.options.CampaignOptions` (workers, seed,
    chunking, differential replay, journal/resume directories, retry
    policy, trial timeout, fleet/endpoint routing).

    Guarantees, for any worker count, chunk size, and fleet shape:

    * the returned :class:`CampaignResult` is bit-identical to the
      serial in-process run;
    * with ``options.run_dir`` every classified trial is durably
      journaled as soon as it exists, and with ``options.resume`` the
      journaled prefix is replayed instead of re-executed —
      killed-and-resumed equals uninterrupted;
    * a worker-killing spec is retried per ``options.retry`` and, on
      repeated death, quarantined as a ``WorkerKilled`` trial instead
      of aborting the campaign (``RetryPolicy(max_deaths=0)`` restores
      the strict crash-surfacing behaviour).

    With ``options.budget`` the enumerated ``specs`` become a
    *population*: a seeded stratified plan
    (:mod:`repro.swifi.planner`) samples ``budget`` of them, the
    campaign runs only the sample, and the result carries
    population-extrapolated estimates with confidence intervals in
    ``result.plan`` / ``summary()["plan"]``.

    With ``options.fleet`` the campaign runs on N spawned worker
    processes behind an in-process fleet coordinator, and with
    ``options.endpoint`` it is submitted to an already-running
    ``repro serve`` coordinator — both delegate to :mod:`repro.fleet`
    and are bit-identical to the local paths (the fleet requires a
    program built from a :class:`~repro.fleet.wire.ProgramRecipe` and
    no ``runner_factory``).

    ``runner_factory`` overrides ``program.trial_runner`` (used by
    tests to exercise the pool without a full program; the factory is
    called once per worker, inside the worker).
    """
    if options is None:
        options = CampaignOptions()
    if options.endpoint is not None or options.fleet is not None:
        from repro.fleet.service import run_fleet_campaign

        return run_fleet_campaign(
            program, list(specs), mode, options,
            runner_factory=runner_factory,
        )
    spec_list = list(specs)
    plan = None
    if options.budget is not None and spec_list:
        plan = _build_campaign_plan(
            program, spec_list, mode, options, runner_factory
        )
        record_plan(len(plan.strata), plan.trials_saved)
        get_tracer().event(
            "swifi.plan", method=plan.method, budget=plan.budget,
            population=plan.population, strata=len(plan.strata),
            trials_saved=plan.trials_saved,
        )
        spec_list = plan.selected_specs(spec_list)
    profiler = PhaseProfiler() if options.profile else None
    with use_profiler(profiler):
        sec_of, affected_fn = (None, None) if options.journal_root is None \
            else _section_context(program, spec_list)
        journal, replayed = _open_journal(
            program, spec_list, mode, options,
            plan=plan, sec_of=sec_of, affected_fn=affected_fn,
        )
        monitor = _open_monitor(program, spec_list, options, journal)
        try:
            pending = [(i, spec) for i, spec in enumerate(spec_list)
                       if i not in replayed]
            if journal is not None:
                record_journal_activity(replayed=len(replayed))
            if replayed and monitor is not None:
                monitor.advance(
                    len(replayed), _replayed_tally(replayed), source="replay"
                )
            n_workers = resolve_workers(options.workers)
            n_workers = min(n_workers, max(1, len(pending)))
            if n_workers <= 1 or not fork_available():
                result = _run_serial(
                    program, spec_list, mode, options, runner_factory,
                    journal, replayed, monitor, sec_of,
                )
            else:
                result = _run_pooled(
                    program, spec_list, pending, mode, options,
                    runner_factory, journal, replayed, n_workers, monitor,
                    sec_of,
                )
            if plan is not None:
                from repro.swifi.planner import estimate_plan

                result.plan = estimate_plan(plan, result.trials)
            return result
        finally:
            if monitor is not None:
                monitor.close()
            if journal is not None:
                if profiler is not None:
                    _write_profile(journal, profiler)
                record_journal_activity(appended=journal.appended)
                journal.close()
