"""Parallel campaign execution: shard trials across warm worker processes.

The paper's measurement apparatus runs ~10,000 single-fault experiments
per application (Section VIII); every trial is an independent program
execution, which makes campaigns embarrassingly parallel.  This module
shards a campaign's :class:`~repro.swifi.faultmodel.FaultSpec` list
into chunks over a ``fork``-based worker pool:

* **Warm per-worker caches** — each worker process inherits the
  parent's :class:`~repro.core.program.HauberkProgram` through ``fork``
  and is warm-started exactly once by the pool initializer: the
  instrumented build, the compiled kernel, the fixed campaign input,
  and the golden output are all constructed (or cache-hit) before the
  first trial, then reused for every chunk the worker executes.
* **Deterministic merge** — workers return serialized per-trial
  observations plus their local :class:`~repro.swifi.outcomes.OutcomeCounts`,
  metrics snapshot, and captured trace records; the parent replays the
  observations *in original spec order* through the same
  :func:`~repro.swifi.campaign.absorb_trial` helper the serial loop
  uses.  ``CampaignResult`` (trial order, tallies, ``summary()``) is
  therefore bit-identical for any worker count.
* **Crash surfacing** — a worker that dies hard raises
  :class:`~repro.errors.InjectionError` on the parent instead of
  hanging the campaign; exceptions raised *inside* a trial propagate
  unchanged, exactly like the serial path.

``workers=1`` (or a platform without ``fork``) short-circuits to the
existing in-process :class:`~repro.swifi.campaign.Campaign` path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, TYPE_CHECKING

from repro.errors import InjectionError
from repro.exec.pool import (
    ForkPool,
    chunk_slices,
    default_chunk_size,
    fork_available,
    resolve_workers,
)
from repro.obs.events import RingBufferSink, Tracer, get_tracer, set_tracer, use_tracer
from repro.obs.instrument import record_campaign, record_parallel_campaign
from repro.obs.metrics import fresh_registry, get_registry
from repro.swifi.campaign import (
    Campaign,
    CampaignResult,
    TrialObservation,
    absorb_trial,
)
from repro.swifi.faultmodel import FaultSpec
from repro.swifi.outcomes import Outcome, OutcomeCounts, classify_outcome

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.core.program
    from repro.core.program import HauberkProgram

#: Ring capacity for per-chunk worker trace capture (only allocated
#: when the parent tracer is enabled).
WORKER_TRACE_CAPACITY = 8192


@dataclass
class ChunkResult:
    """Everything one worker ships back for one chunk of specs."""

    index: int
    observations: List[TrialObservation]
    #: Outcome values the worker classified (parent re-derives its own;
    #: kept for chunk-span attribution and cross-checking).
    outcomes: List[str]
    counts: OutcomeCounts
    #: ``MetricsRegistry.as_dict()`` snapshot of the worker-side metrics
    #: recorded while running this chunk (kernel launches, failures).
    metrics: Dict[str, Any]
    #: Raw span/event records captured in the worker (empty unless the
    #: parent tracer was enabled when the pool was created).
    trace_records: List[Dict[str, Any]] = field(default_factory=list)
    worker_pid: int = 0


@dataclass
class _WorkerState:
    runner: Callable[[Optional[FaultSpec]], TrialObservation]
    capture_trace: bool


_STATE: Optional[_WorkerState] = None


def _make_runner(program, mode, seed, differential):
    """The campaign trial runner: differential when requested, else full.

    The differential runner memoizes the golden launch on the program
    (``GoldenRecord.exec_states``), so building it parent-side before a
    fork warms every worker — each child's own call here is a cache hit
    that launches nothing.
    """
    if differential:
        from repro.swifi.differential import differential_runner

        return differential_runner(program, mode, seed)
    return program.trial_runner(mode, seed)


def _init_worker(program, mode, seed, runner_factory, capture_trace,
                 differential) -> None:
    """Pool initializer: warm this worker's caches exactly once.

    Runs in the child right after ``fork``.  The inherited tracer is
    detached first so workers never write into the parent's trace sink
    (a shared open file under ``--trace``); metrics start from a fresh
    registry so the parent can merge clean per-worker snapshots.
    """
    global _STATE
    set_tracer(None)
    fresh_registry()
    if runner_factory is not None:
        runner = runner_factory()
    else:
        build = program.build(mode)
        program.runtime.prepare(build.kernel)
        runner = _make_runner(program, mode, seed, differential)
    _STATE = _WorkerState(runner=runner, capture_trace=capture_trace)


def _run_chunk(payload) -> ChunkResult:
    """Execute one chunk of specs against this worker's warm runner."""
    index, specs = payload
    state = _STATE
    if state is None:
        raise InjectionError("campaign worker used before initialization")
    registry = fresh_registry()
    observations: List[TrialObservation] = []
    outcomes: List[str] = []
    counts = OutcomeCounts()

    def execute() -> None:
        for spec in specs:
            obs = state.runner(spec)
            outcome = classify_outcome(obs.failure, obs.detected, obs.output_ok)
            counts.add(outcome)
            observations.append(obs)
            outcomes.append(outcome.value)

    trace_records: List[Dict[str, Any]] = []
    if state.capture_trace:
        sink = RingBufferSink(capacity=WORKER_TRACE_CAPACITY)
        with use_tracer(Tracer(sink)):
            execute()
        trace_records = sink.records
    else:
        execute()
    return ChunkResult(
        index=index,
        observations=observations,
        outcomes=outcomes,
        counts=counts,
        metrics=registry.as_dict(),
        trace_records=trace_records,
        worker_pid=os.getpid(),
    )


def run_campaign(
    program: Optional["HauberkProgram"],
    specs: Iterable[FaultSpec],
    mode: str = "fi",
    *,
    workers: int = 1,
    seed: int = 0,
    chunk_size: Optional[int] = None,
    runner_factory: Optional[Callable[[], Callable]] = None,
    differential: bool = True,
) -> CampaignResult:
    """Run one FI campaign over ``specs``, optionally across processes.

    The shared entry point for every campaign-driven harness.  With
    ``workers <= 1`` this is exactly ``Campaign(program.trial_runner(
    mode, seed)).run(specs)``; with more workers the specs are chunked
    across a fork pool and merged deterministically, so the returned
    :class:`CampaignResult` is identical for any worker count.

    ``differential`` (default on) serves eligible trials via golden-run
    memoization + single-thread replay (:mod:`repro.swifi.differential`)
    with automatic per-trial fallback to full execution; observations
    are identical either way, so this composes with any worker count.

    ``runner_factory`` overrides ``program.trial_runner`` (used by
    tests to exercise the pool without a full program; the factory is
    called once per worker, inside the worker).
    """
    spec_list = list(specs)
    n_workers = resolve_workers(workers)
    n_workers = min(n_workers, max(1, len(spec_list)))
    if n_workers <= 1 or not fork_available():
        runner = runner_factory() if runner_factory is not None else \
            _make_runner(program, mode, seed, differential)
        return Campaign(runner).run(spec_list)

    if runner_factory is None:
        # Warm the parent before forking: the translated build, the
        # compiled kernel, the campaign input/golden, and (under
        # differential execution) the recorded golden launch are
        # inherited by every worker, so per-worker init is a cache hit
        # and the translator/golden metrics are recorded once,
        # parent-side.
        build = program.build(mode)
        program.runtime.prepare(build.kernel)
        _make_runner(program, mode, seed, differential)

    tracer = get_tracer()
    size = chunk_size if chunk_size is not None else \
        default_chunk_size(len(spec_list), n_workers)
    slices = chunk_slices(len(spec_list), size)
    record_parallel_campaign(n_workers, len(slices))

    pool = ForkPool(
        n_workers,
        initializer=_init_worker,
        initargs=(program, mode, seed, runner_factory, tracer.enabled,
                  differential),
        crash_error=InjectionError,
    )
    payloads = [(i, spec_list[a:b]) for i, (a, b) in enumerate(slices)]

    result = CampaignResult()
    with tracer.span(
        "swifi.campaign", workers=n_workers, chunks=len(slices),
        chunk_size=size, planned_trials=len(spec_list),
    ) as span:
        chunk_results = pool.map_ordered(_run_chunk, payloads)
        registry = get_registry()
        for (a, b), chunk in zip(slices, chunk_results):
            if len(chunk.observations) != b - a:
                raise InjectionError(
                    f"chunk {chunk.index} returned {len(chunk.observations)} "
                    f"trials, expected {b - a}"
                )
            with tracer.span(
                "swifi.chunk", chunk=chunk.index, start=a, size=b - a,
                worker_pid=chunk.worker_pid,
            ) as cspan:
                for spec, obs in zip(spec_list[a:b], chunk.observations):
                    absorb_trial(result, spec, obs, tracer)
                registry.merge_dict(chunk.metrics)
                for record in chunk.trace_records:
                    tracer.event(
                        "swifi.worker.trace", chunk=chunk.index, record=record
                    )
                cspan.set(
                    outcomes={o.value: chunk.counts.counts[o] for o in Outcome}
                )
        record_campaign(result)
        span.set(**result.summary())
    return result
