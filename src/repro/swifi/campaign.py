"""Campaign runner: many single-fault trials, classified and tallied.

The paper runs ~10,000 experiments per application — each executes the
program once and injects exactly one fault (Section VIII).  A
:class:`Campaign` does the same against any trial runner; the workload
layer supplies the runner (set up device memory, launch, read output,
check correctness).  Campaign sizes here are scaled down and fully
seeded; see ``repro.harness.config.ExperimentScale``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence

import numpy as np

from repro.bits import MaskGenerator
from repro.errors import InjectionError
from repro.kir.analysis.dataflow import SiteInfo
from repro.obs.events import get_tracer
from repro.obs.instrument import record_campaign, record_trial
from repro.swifi.faultmodel import FaultSpec
from repro.swifi.outcomes import Outcome, OutcomeCounts, classify_outcome


@dataclass
class TrialObservation:
    """Raw observations from running the program once under a fault."""

    failure: bool
    detected: bool
    output_ok: bool
    activated: bool
    #: Optional carrier for extra data (e.g. failure reason).
    note: str = ""


@dataclass
class TrialResult:
    spec: FaultSpec
    outcome: Outcome
    observation: TrialObservation


@dataclass
class QuarantineReport:
    """Structured evidence for one spec the retry engine gave up on.

    Attached to :attr:`CampaignResult.quarantined` when a spec's worker
    process died ``deaths`` times in isolation (see
    :mod:`repro.exec.retry`); the spec still enters the result as a
    :data:`Outcome.WORKER_KILLED` trial so campaigns complete with a
    full per-spec accounting instead of aborting.
    """

    spec: FaultSpec
    #: Index of the spec in the campaign's plan.
    index: int
    #: Isolated worker deaths attributed to this spec.
    deaths: int
    #: Total executor rounds the campaign needed while retrying.
    rounds: int
    #: Free-form detail (exit description of the last death, if known).
    note: str = ""


@dataclass
class CampaignResult:
    """All trials of one campaign plus the tally."""

    trials: List[TrialResult] = field(default_factory=list)
    counts: OutcomeCounts = field(default_factory=OutcomeCounts)
    #: Reports for specs quarantined by the fault-tolerant pool; their
    #: trials carry :data:`Outcome.WORKER_KILLED` in :attr:`trials`.
    quarantined: List[QuarantineReport] = field(default_factory=list)
    #: Planner payload (:func:`repro.swifi.planner.estimate_plan`) when
    #: the campaign ran under a stratified budget; ``None`` otherwise.
    plan: Optional[dict] = None

    def add(self, trial: TrialResult) -> None:
        self.trials.append(trial)
        self.counts.add(trial.outcome)

    @property
    def activation_ratio(self) -> float:
        """Fraction of *executed* trials whose fault actually fired.

        ``WORKER_KILLED`` placeholders never executed to the point of
        observing activation — their synthetic observation always says
        ``activated=False`` — so they are excluded from the
        denominator; counting them would bias the ratio low on
        quarantine-heavy runs.  Mirrors the zero-trial guard: a
        campaign of only quarantined specs reports 0.0.
        """
        executed = [t for t in self.trials
                    if t.outcome is not Outcome.WORKER_KILLED]
        if not executed:
            return 0.0
        return sum(t.observation.activated for t in executed) / len(executed)

    def summary(self) -> dict:
        """Machine-readable campaign digest (the shared tally).

        Used by the metrics layer and the figure harnesses instead of
        re-counting outcomes ad hoc; keys: ``trials``, ``outcomes`` (by
        class name), ``activation_ratio``, ``coverage``, ``sdc_ratio``,
        ``failure_ratio``, ``quarantined``, plus ``plan`` (per-stratum
        and per-section estimates with confidence intervals) when the
        campaign ran under a stratified budget.

        A zero-trial campaign reports every ratio as 0.0 — including
        ``coverage``, which would otherwise read 1 - 0/0 and claim
        perfect detection for an experiment that measured nothing.
        """
        empty = not self.trials
        out = {
            "trials": len(self.trials),
            "outcomes": {o.value: self.counts.counts[o] for o in Outcome},
            "activation_ratio": self.activation_ratio,
            "coverage": 0.0 if empty else self.counts.coverage,
            "sdc_ratio": self.counts.sdc_ratio,
            "failure_ratio": self.counts.failure_ratio,
            "quarantined": len(self.quarantined),
        }
        if self.plan is not None:
            out["plan"] = self.plan
        return out

    def filter(self, predicate: Callable[[TrialResult], bool]) -> "CampaignResult":
        """Sub-campaign of the trials satisfying ``predicate``.

        Quarantine evidence travels with its trial: a report whose
        ``WORKER_KILLED`` placeholder passes the predicate appears in
        the view's ``quarantined`` list too, so filtered summaries
        keep accounting for specs that never produced an observation.
        The planner payload does *not* carry over — its population
        weights describe the whole campaign, not the subset.
        """
        sub = CampaignResult()
        for t in self.trials:
            if predicate(t):
                sub.add(t)
        kept = [t.spec for t in sub.trials
                if t.outcome is Outcome.WORKER_KILLED]
        for report in self.quarantined:
            if report.spec in kept:
                sub.quarantined.append(report)
                kept.remove(report.spec)
        return sub

    def by_bits(self, n_bits: int) -> "CampaignResult":
        """Sub-campaign of trials whose fault flipped ``n_bits`` bits."""
        return self.filter(lambda t: t.spec.n_bits == n_bits)


def absorb_trial(
    result: CampaignResult, spec: FaultSpec, obs: TrialObservation, tracer
) -> Outcome:
    """Classify, tally, and record one trial observation.

    The single place a trial enters a :class:`CampaignResult` — the
    serial :meth:`Campaign.run` loop and the parallel merge in
    :mod:`repro.swifi.parallel` both go through it, which is what makes
    the two paths bit-identical (same classification, same metric
    increments, same ``swifi.trial`` event stream, same order).
    """
    outcome = classify_outcome(obs.failure, obs.detected, obs.output_ok)
    result.add(TrialResult(spec=spec, outcome=outcome, observation=obs))
    record_trial(outcome, spec)
    tracer.event(
        "swifi.trial", site=spec.site, label=spec.label,
        outcome=outcome.value, activated=obs.activated,
    )
    return outcome


def absorb_quarantined(
    result: CampaignResult, report: QuarantineReport, tracer
) -> TrialObservation:
    """Enter one quarantined spec into a :class:`CampaignResult`.

    The quarantine counterpart of :func:`absorb_trial`: the spec lands
    as a :data:`Outcome.WORKER_KILLED` trial (the worker died before an
    observation existed, so the synthetic observation mirrors a hard
    failure) and the structured report is preserved on the result.
    """
    obs = TrialObservation(
        failure=True, detected=False, output_ok=False, activated=False,
        note=report.note or
        f"worker process killed {report.deaths}x; spec quarantined",
    )
    result.add(TrialResult(
        spec=report.spec, outcome=Outcome.WORKER_KILLED, observation=obs,
    ))
    result.quarantined.append(report)
    record_trial(Outcome.WORKER_KILLED, report.spec)
    tracer.event(
        "swifi.quarantine", site=report.spec.site, label=report.spec.label,
        index=report.index, deaths=report.deaths, rounds=report.rounds,
    )
    return obs


class Campaign:
    """Drives single-fault trials through a runner callable.

    ``runner(spec)`` must execute the whole program once with the fault
    armed (or pristine when ``spec`` is None) and report a
    :class:`TrialObservation`.
    """

    def __init__(self, runner: Callable[[Optional[FaultSpec]], TrialObservation]):
        self.runner = runner

    def golden_check(self) -> TrialObservation:
        """Run once with no fault; used to sanity-check the runner."""
        obs = self.runner(None)
        if obs.failure or not obs.output_ok:
            raise InjectionError(
                f"fault-free run is not clean (failure={obs.failure}, "
                f"ok={obs.output_ok}): campaign would be meaningless"
            )
        return obs

    def run(self, specs: Iterable[FaultSpec]) -> CampaignResult:
        result = CampaignResult()
        tracer = get_tracer()
        with tracer.span("swifi.campaign") as span:
            for spec in specs:
                obs = self.runner(spec)
                absorb_trial(result, spec, obs, tracer)
            record_campaign(result)
            span.set(**result.summary())
        return result


def build_fault_specs(
    sites: Sequence[SiteInfo],
    n_threads: int,
    masks_per_site: int = 50,
    bit_counts: Sequence[int] = (1,),
    seed: int = 0,
    max_loop_occurrence: int = 8,
    max_delay_events: int = 48,
) -> List[FaultSpec]:
    """Random single-fault plan over the given sites (Section VIII).

    For each site, ``masks_per_site`` random masks are drawn with bit
    counts cycling through ``bit_counts``; the victim thread is uniform
    over the grid.  Injection *time* (Figure 12): in-loop definitions
    get a uniform dynamic occurrence in ``[1, max_loop_occurrence]``;
    parameters — defined once, before every use — get *delayed* timing,
    striking at a uniform point of the thread's execution so that
    already-consumed values escape (without this, every pointer fault
    would precede every dereference and the failure ratio would be
    wildly overstated vs. Figure 1).
    """
    if n_threads <= 0:
        raise InjectionError(f"n_threads must be positive, got {n_threads}")
    rng = np.random.default_rng(seed)
    masks = MaskGenerator(seed=seed + 1)
    specs: List[FaultSpec] = []
    for info in sites:
        for j in range(masks_per_site):
            nbits = bit_counts[j % len(bit_counts)]
            occurrence = 1
            timing = "definition"
            if info.kind == "param":
                timing = "delayed"
                occurrence = int(rng.integers(1, max_delay_events + 1))
            elif info.in_loop and max_loop_occurrence > 1:
                occurrence = int(rng.integers(1, max_loop_occurrence + 1))
            specs.append(
                FaultSpec(
                    site=info.site,
                    mask=masks.masks(1, nbits)[0],
                    thread=int(rng.integers(0, n_threads)),
                    occurrence=occurrence,
                    timing=timing,
                    label=f"{info.name}#{j}",
                )
            )
    return specs
