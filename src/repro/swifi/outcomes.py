"""Fault-injection outcome taxonomy (paper Section VIII).

Five classes: (i) *failure* — kernel crash caught by the GPU runtime
or hang caught by the guardian; (ii) *masked* — output still meets the
correctness requirement and no alarm; (iii) *detected & masked* — an
alarm fired but the output is actually fine (needs a diagnosis
re-execution in practice); (iv) *detected* — alarm fired and the
output really violates correctness; (v) *undetected* — an SDC: wrong
output, no alarm.

Error detection coverage p = 1 - P(undetected): "a fault ... can be
either detected or masked with probability p".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict


class Outcome(enum.Enum):
    FAILURE = "failure"
    MASKED = "masked"
    DETECTED_MASKED = "detected_masked"
    DETECTED = "detected"
    UNDETECTED = "undetected"
    #: Operational (not fault-model) class: the spec repeatedly killed
    #: its worker process and was quarantined by the retry engine
    #: (:mod:`repro.exec.retry`) so the campaign could complete.  Never
    #: produced by :func:`classify_outcome` — only the quarantine path
    #: assigns it.
    WORKER_KILLED = "worker_killed"


def classify_outcome(failure: bool, detected: bool, output_ok: bool) -> Outcome:
    """Map one trial's observations to the paper's five classes."""
    if failure:
        return Outcome.FAILURE
    if detected and output_ok:
        return Outcome.DETECTED_MASKED
    if detected:
        return Outcome.DETECTED
    if output_ok:
        return Outcome.MASKED
    return Outcome.UNDETECTED


@dataclass
class OutcomeCounts:
    """Tally of outcomes with the paper's derived ratios."""

    counts: Dict[Outcome, int] = field(
        default_factory=lambda: {o: 0 for o in Outcome}
    )

    def add(self, outcome: Outcome) -> None:
        self.counts[outcome] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, outcome: Outcome) -> float:
        total = self.total
        return self.counts[outcome] / total if total else 0.0

    @property
    def sdc_ratio(self) -> float:
        """Fraction of injections that escaped as silent data corruption."""
        return self.fraction(Outcome.UNDETECTED)

    @property
    def coverage(self) -> float:
        """Detection coverage: 1 - SDC ratio (detected *or* masked)."""
        return 1.0 - self.sdc_ratio

    @property
    def failure_ratio(self) -> float:
        return self.fraction(Outcome.FAILURE)

    @property
    def detected_ratio(self) -> float:
        return self.fraction(Outcome.DETECTED) + self.fraction(Outcome.DETECTED_MASKED)

    def as_dict(self) -> Dict[str, float]:
        out = {o.value: self.fraction(o) for o in Outcome}
        out["coverage"] = self.coverage
        return out

    def merge(self, other: "OutcomeCounts") -> "OutcomeCounts":
        merged = OutcomeCounts()
        for o in Outcome:
            merged.counts[o] = self.counts[o] + other.counts[o]
        return merged
