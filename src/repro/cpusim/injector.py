"""Fault injection campaigns on the CPU machine (Figure 1 bottom rows).

Faults are single/multi-bit flips in one word of the *stack*, *data*,
or *code* segment at a random dynamic step, one per run — mirroring
how the referenced CPU studies ([13], [14]) classify injection
locations.  Outcomes use the same taxonomy as the GPU campaigns minus
detection (no detectors on the plain CPU programs): failure (segfault
/ illegal instruction / div-by-zero / hang), masked, or SDC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.bits import random_mask
from repro.cpusim.machine import (
    CODE_BASE,
    CPUFault,
    CPUHang,
    CPUMachine,
    DATA_BASE,
    Program,
    STACK_TOP,
)
from repro.errors import CPUSimError, InjectionError

SEGMENTS = ("stack", "data", "code")


@dataclass
class CPUTrialOutcome:
    segment: str
    outcome: str  # "failure" | "masked" | "sdc"
    reason: str = ""


@dataclass
class CPUCampaignResult:
    trials: List[CPUTrialOutcome] = field(default_factory=list)

    def ratios(self, segment: str) -> Dict[str, float]:
        seg = [t for t in self.trials if t.segment == segment]
        if not seg:
            return {"failure": 0.0, "masked": 0.0, "sdc": 0.0}
        n = len(seg)
        return {
            key: sum(t.outcome == key for t in seg) / n
            for key in ("failure", "masked", "sdc")
        }


class CPUFaultCampaign:
    """Runs segment-targeted fault trials on one CPU program."""

    def __init__(
        self,
        program_builder: Callable[[], Tuple[Program, np.ndarray]],
        rel_tolerance: float = 0.01,
        budget: int = 300_000,
    ):
        self.program_builder = program_builder
        self.rel_tolerance = rel_tolerance
        self.budget = budget
        program, golden = program_builder()
        self.golden = golden
        # fault-free dry run: learn baseline step count and live stack span
        machine = CPUMachine(program)
        machine.run(budget=self.budget)
        if not self._output_ok(np.array(machine.read_output())):
            raise CPUSimError(f"{program.name}: fault-free run fails its golden")
        self.baseline_steps = machine.steps
        self.code_len = len(program.code)
        self.data_len = len(program.data)

    def _output_ok(self, output: np.ndarray) -> bool:
        if output.shape != self.golden.shape or not np.isfinite(output).all():
            return False
        tol = self.rel_tolerance * np.abs(self.golden) + 1e-9
        return bool((np.abs(output - self.golden) <= tol).all())

    def _segment_address(self, segment: str, rng: np.random.Generator) -> int:
        if segment == "code":
            return CODE_BASE + int(rng.integers(0, self.code_len))
        if segment == "data":
            return DATA_BASE + int(rng.integers(0, self.data_len))
        if segment == "stack":
            # the active frame region just below STACK_TOP (return
            # addresses and spilled registers of the CALLed cores)
            return STACK_TOP - 1 - int(rng.integers(0, 6))
        raise InjectionError(f"unknown segment {segment!r}")

    def run_trial(
        self, segment: str, rng: np.random.Generator, n_bits: int = 1
    ) -> CPUTrialOutcome:
        program, _golden = self.program_builder()
        machine = CPUMachine(program)
        fault = CPUFault(
            step=int(rng.integers(1, max(self.baseline_steps, 2))),
            address=self._segment_address(segment, rng),
            mask=random_mask(rng, n_bits),
        )
        try:
            machine.run(budget=self.budget, fault=fault)
        except CPUHang:
            return CPUTrialOutcome(segment=segment, outcome="failure", reason="hang")
        except CPUSimError as exc:
            return CPUTrialOutcome(segment=segment, outcome="failure", reason=str(exc))
        output = np.array(machine.read_output())
        if self._output_ok(output):
            return CPUTrialOutcome(segment=segment, outcome="masked")
        return CPUTrialOutcome(segment=segment, outcome="sdc")

    def run(
        self,
        trials_per_segment: int = 100,
        seed: int = 0,
        n_bits: int = 1,
        segments: Tuple[str, ...] = SEGMENTS,
    ) -> CPUCampaignResult:
        rng = np.random.default_rng(seed)
        result = CPUCampaignResult()
        for segment in segments:
            for _ in range(trials_per_segment):
                result.trials.append(self.run_trial(segment, rng, n_bits))
        return result
