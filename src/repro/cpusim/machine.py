"""A small paged-memory register machine (the CPU of Figure 1).

Architecture:

* 16 general registers holding 32-bit values (ints; floats live in
  memory as binary32 patterns and in registers as Python floats after
  an ``FLD``);
* word-addressed virtual memory with 256-word pages; only pages inside
  the code / data / stack segments are mapped, and the code segment is
  execute/read-only — so corrupted pointers and wild jumps fault
  instead of silently corrupting state (the page-granularity checking
  GPUs lack, Section II.A);
* 32-bit instruction words: ``op(8) | rd(4) | ra(4) | imm16`` — a
  corrupted code word decodes to an illegal instruction or a wild
  operand, again usually a crash.

Instructions: LOADI MOV LD ST FLD FST ADD SUB MUL DIV AND OR XOR SHL
SHR FADD FSUB FMUL FDIV FSQRT JMP JZ JNZ BLT BGE PUSH POP CALL RET HALT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.bits import bits_to_float, bits_to_int, wrap_i32
from repro.errors import (
    CPUIllegalInstruction,
    CPUSegmentationFault,
    CPUSimError,
)
from repro.memspace import WordReinterpret

PAGE_WORDS = 256

CODE_BASE = 0x1000
DATA_BASE = 0x4000
STACK_TOP = 0xF000  # stack grows down from here

_OPCODES = {
    "LOADI": 0x01,
    "MOV": 0x02,
    "LD": 0x03,
    "ST": 0x04,
    "FLD": 0x05,
    "FST": 0x06,
    "ADD": 0x10,
    "SUB": 0x11,
    "MUL": 0x12,
    "DIV": 0x13,
    "AND": 0x14,
    "OR": 0x15,
    "XOR": 0x16,
    "SHL": 0x17,
    "SHR": 0x18,
    "ADDI": 0x19,
    "FADD": 0x20,
    "FSUB": 0x21,
    "FMUL": 0x22,
    "FDIV": 0x23,
    "FSQRT": 0x24,
    "JMP": 0x30,
    "JZ": 0x31,
    "JNZ": 0x32,
    "BLT": 0x33,
    "BGE": 0x34,
    "PUSH": 0x40,
    "POP": 0x41,
    "CALL": 0x42,
    "RET": 0x43,
    "HALT": 0xFF,
}
_OPNAMES = {v: k for k, v in _OPCODES.items()}


def encode(op: str, rd: int = 0, ra: int = 0, imm: int = 0) -> int:
    """Pack one instruction into a 32-bit word."""
    if op not in _OPCODES:
        raise CPUSimError(f"unknown mnemonic {op!r}")
    if not 0 <= rd < 16 or not 0 <= ra < 16:
        raise CPUSimError(f"register out of range in {op} rd={rd} ra={ra}")
    imm16 = imm & 0xFFFF
    return (_OPCODES[op] << 24) | (rd << 20) | (ra << 16) | imm16


def decode(word: int) -> Tuple[str, int, int, int]:
    """Unpack an instruction word; unknown opcodes raise."""
    opcode = (word >> 24) & 0xFF
    name = _OPNAMES.get(opcode)
    if name is None:
        raise CPUIllegalInstruction(f"illegal opcode 0x{opcode:02x}")
    rd = (word >> 20) & 0xF
    ra = (word >> 16) & 0xF
    imm = word & 0xFFFF
    if imm >= 0x8000:
        imm -= 0x10000
    return name, rd, ra, imm


@dataclass
class Program:
    """Assembled code plus an initial data image and output location."""

    code: List[int]
    data: List[int]
    #: (offset, count) within the data segment holding the output.
    output_range: Tuple[int, int]
    #: Data-segment offsets holding floats (for typed readout/inject).
    float_offsets: frozenset = frozenset()
    name: str = "program"


Instruction = Tuple  # ("ADD", rd, ra, rb_imm) or ("label",)


def assemble(listing: List[Union[Tuple, str]]) -> List[int]:
    """Two-pass assembler: strings are labels, tuples are instructions.

    Branch/jump/call targets may be label strings; they resolve to
    absolute code addresses.
    """
    # pass 1: label addresses
    labels: Dict[str, int] = {}
    pc = CODE_BASE
    for item in listing:
        if isinstance(item, str):
            if item in labels:
                raise CPUSimError(f"duplicate label {item!r}")
            labels[item] = pc
        else:
            pc += 1
    # pass 2: encode
    words: List[int] = []
    for item in listing:
        if isinstance(item, str):
            continue
        op = item[0]
        args = list(item[1:])
        resolved = [labels[a] if isinstance(a, str) else a for a in args]
        padded = resolved + [0] * (3 - len(resolved))
        words.append(encode(op, *padded[:3]))
    return words


class PagedMemory(WordReinterpret):
    """Word-addressed memory with page mapping and permissions.

    The word primitives enforce the page policy (mapped, permissions);
    typed ``load_f32``/``store_i32``/... accessors come from
    :class:`~repro.memspace.WordReinterpret` — the same reinterpretation
    code the GPU's :class:`~repro.gpu.memory.GlobalMemory` specifies,
    differing only in this bounds policy (the page-granularity checking
    GPUs lack).
    """

    def __init__(self) -> None:
        self.pages: Dict[int, List[int]] = {}
        self.exec_pages: set = set()
        self.readonly_pages: set = set()

    def map_range(self, base: int, nwords: int, executable: bool = False,
                  readonly: bool = False) -> None:
        first = base // PAGE_WORDS
        last = (base + max(nwords, 1) - 1) // PAGE_WORDS
        for p in range(first, last + 1):
            self.pages.setdefault(p, [0] * PAGE_WORDS)
            if executable:
                self.exec_pages.add(p)
            if readonly:
                self.readonly_pages.add(p)

    def _page(self, addr: int, access: str) -> List[int]:
        if addr < 0:
            raise CPUSegmentationFault(addr, access)
        p = addr // PAGE_WORDS
        page = self.pages.get(p)
        if page is None:
            raise CPUSegmentationFault(addr, access)
        if access == "exec" and p not in self.exec_pages:
            raise CPUSegmentationFault(addr, access)
        if access == "write" and (p in self.readonly_pages or p in self.exec_pages):
            raise CPUSegmentationFault(addr, access)
        return page

    def load(self, addr: int, access: str = "read") -> int:
        return self._page(addr, access)[addr % PAGE_WORDS]

    def store(self, addr: int, value: int) -> None:
        self._page(addr, "write")[addr % PAGE_WORDS] = value & 0xFFFFFFFF

    # MemorySpace word primitives (data accesses, never exec)
    def load_word(self, addr: int) -> int:
        return self.load(addr)

    def store_word(self, addr: int, bits: int) -> None:
        self.store(addr, bits)

    def poke(self, addr: int, value: int) -> None:
        """Store ignoring permissions (loader / fault injector)."""
        if addr < 0 or addr // PAGE_WORDS not in self.pages:
            raise CPUSegmentationFault(addr, "poke")
        self.pages[addr // PAGE_WORDS][addr % PAGE_WORDS] = value & 0xFFFFFFFF

    def peek(self, addr: int) -> int:
        if addr < 0 or addr // PAGE_WORDS not in self.pages:
            raise CPUSegmentationFault(addr, "peek")
        return self.pages[addr // PAGE_WORDS][addr % PAGE_WORDS]


@dataclass
class CPUFault:
    """One memory bit-flip applied at a given dynamic step."""

    step: int
    address: int
    mask: int


class CPUHang(CPUSimError):
    """Step budget exhausted (the CPU analogue of a kernel hang)."""


class CPUMachine:
    """Loads a :class:`Program` and executes it to HALT."""

    def __init__(self, program: Program, stack_words: int = 512):
        self.program = program
        self.memory = PagedMemory()
        self.memory.map_range(CODE_BASE, max(len(program.code), 1), executable=True)
        self.memory.map_range(DATA_BASE, max(len(program.data), 1))
        self.memory.map_range(STACK_TOP - stack_words, stack_words)
        for i, w in enumerate(program.code):
            self.memory.pages[(CODE_BASE + i) // PAGE_WORDS][
                (CODE_BASE + i) % PAGE_WORDS
            ] = w & 0xFFFFFFFF
        for i, w in enumerate(program.data):
            self.memory.poke(DATA_BASE + i, w)
        self.regs: List[Union[int, float]] = [0] * 16
        self.pc = CODE_BASE
        self.sp = STACK_TOP
        self.steps = 0

    # -- execution -------------------------------------------------------
    def run(
        self, budget: int = 200_000, fault: Optional[CPUFault] = None
    ) -> None:
        """Execute until HALT; raises on crash, CPUHang on budget."""
        while True:
            if fault is not None and self.steps == fault.step:
                self.memory.poke(fault.address, self.memory.peek(fault.address) ^ fault.mask)
                fault = None
            self.steps += 1
            if self.steps > budget:
                raise CPUHang(f"exceeded {budget} steps")
            word = self.memory.load(self.pc, access="exec")
            op, rd, ra, imm = decode(word)
            self.pc += 1
            if op == "HALT":
                return
            self._execute(op, rd, ra, imm)

    def _int(self, reg: int) -> int:
        v = self.regs[reg]
        return wrap_i32(int(v)) if not isinstance(v, float) else wrap_i32(int(v))

    def _execute(self, op: str, rd: int, ra: int, imm: int) -> None:
        regs = self.regs
        if op == "LOADI":
            regs[rd] = imm
        elif op == "MOV":
            regs[rd] = regs[ra]
        elif op == "ADDI":
            regs[rd] = wrap_i32(self._int(ra) + imm)
        elif op == "LD":
            regs[rd] = self.memory.load_i32(self._int(ra) + imm)
        elif op == "ST":
            self.memory.store_i32(self._int(ra) + imm, self._int(rd))
        elif op == "FLD":
            regs[rd] = self.memory.load_f32(self._int(ra) + imm)
        elif op == "FST":
            self.memory.store_f32(self._int(ra) + imm, float(regs[rd]))
        elif op == "ADD":
            regs[rd] = wrap_i32(self._int(rd) + self._int(ra))
        elif op == "SUB":
            regs[rd] = wrap_i32(self._int(rd) - self._int(ra))
        elif op == "MUL":
            regs[rd] = wrap_i32(self._int(rd) * self._int(ra))
        elif op == "DIV":
            b = self._int(ra)
            if b == 0:
                raise CPUIllegalInstruction("integer division by zero (SIGFPE)")
            a = self._int(rd)
            q = abs(a) // abs(b)
            regs[rd] = wrap_i32(-q if (a < 0) != (b < 0) else q)
        elif op == "AND":
            regs[rd] = wrap_i32(self._int(rd) & self._int(ra))
        elif op == "OR":
            regs[rd] = wrap_i32(self._int(rd) | self._int(ra))
        elif op == "XOR":
            regs[rd] = wrap_i32(self._int(rd) ^ self._int(ra))
        elif op == "SHL":
            regs[rd] = wrap_i32(self._int(rd) << (self._int(ra) & 31))
        elif op == "SHR":
            regs[rd] = wrap_i32(self._int(rd) >> (self._int(ra) & 31))
        elif op == "FADD":
            regs[rd] = float(regs[rd]) + float(regs[ra])
        elif op == "FSUB":
            regs[rd] = float(regs[rd]) - float(regs[ra])
        elif op == "FMUL":
            regs[rd] = float(regs[rd]) * float(regs[ra])
        elif op == "FDIV":
            b = float(regs[ra])
            if b == 0.0:
                regs[rd] = float("nan") if float(regs[rd]) == 0.0 else float("inf")
            else:
                regs[rd] = float(regs[rd]) / b
        elif op == "FSQRT":
            v = float(regs[ra])
            regs[rd] = float("nan") if v < 0 else v ** 0.5
        elif op == "JMP":
            self.pc = imm & 0xFFFF
        elif op == "JZ":
            if self._int(ra) == 0:
                self.pc = imm & 0xFFFF
        elif op == "JNZ":
            if self._int(ra) != 0:
                self.pc = imm & 0xFFFF
        elif op == "BLT":
            if self._int(rd) < self._int(ra):
                self.pc = imm & 0xFFFF
        elif op == "BGE":
            if self._int(rd) >= self._int(ra):
                self.pc = imm & 0xFFFF
        elif op == "PUSH":
            self.sp -= 1
            self.memory.store_i32(self.sp, self._int(ra))
        elif op == "POP":
            regs[rd] = self.memory.load_i32(self.sp)
            self.sp += 1
        elif op == "CALL":
            self.sp -= 1
            self.memory.store(self.sp, self.pc)
            self.pc = imm & 0xFFFF
        elif op == "RET":
            self.pc = self.memory.load(self.sp)
            self.sp += 1
        else:  # pragma: no cover - decode() guards this
            raise CPUIllegalInstruction(f"unimplemented {op}")

    # -- results ------------------------------------------------------------
    def read_output(self) -> List[float]:
        """Typed view of the program's output region."""
        off, count = self.program.output_range
        out: List[float] = []
        for i in range(off, off + count):
            bits = self.memory.peek(DATA_BASE + i)
            if i in self.program.float_offsets:
                out.append(bits_to_float(bits))
            else:
                out.append(float(bits_to_int(bits)))
        return out
