"""CPU comparison substrate for Figure 1's bottom rows.

A small register machine with the two protections the paper says GPUs
lack (Section II.A cause (a)): page-granularity memory access checking
and instruction decoding that faults on corrupted code.  Programs are
written in a tiny assembly (matrix multiply through a row-pointer
table, integer bubble sort), and the injector flips bits in the
*stack*, *data*, and *code* segments — the paper's CPU fault classes.
The expected outcome shape: most faults crash (segfault / illegal
instruction) or are masked; SDCs stay rare (<2.3% per [14]).
"""

from repro.cpusim.machine import CPUMachine, PagedMemory, Program, assemble
from repro.cpusim.programs import cpu_matmul_program, cpu_sort_program, cpu_checksum_program
from repro.cpusim.injector import CPUFaultCampaign, CPUTrialOutcome

__all__ = [
    "CPUMachine",
    "PagedMemory",
    "Program",
    "assemble",
    "cpu_matmul_program",
    "cpu_sort_program",
    "cpu_checksum_program",
    "CPUFaultCampaign",
    "CPUTrialOutcome",
]
