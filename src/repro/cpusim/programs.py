"""Benchmark programs for the CPU machine (Figure 1 bottom rows).

Three small programs in the machine's assembly, laid out the way real
C processes look in memory:

* computation cores are CALLed subroutines with saved registers on the
  stack — so stack faults hit return addresses and spilled state;
* arrays are reached through pointer tables and descriptors — so data
  faults frequently hit control data the page checks catch;
* the data segment carries a realistic *heap tail*: an allocator
  free list (next-pointers + sizes) and slack blocks that the program
  no longer reads — dead state whose corruption is masked, the main
  reason CPU SDC ratios are so low in the studies the paper cites
  ([13], [14]: < 2.3%).

Programs: 4x4 FP matrix multiply (row-pointer tables, dot-product
subroutine), integer bubble sort, polynomial rolling checksum.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.bits import float_to_bits
from repro.cpusim.machine import DATA_BASE, Program, assemble

#: Words of allocator free-list / slack appended to every data segment.
HEAP_TAIL_WORDS = 96
_HEAP_BLOCK = 8


def _heap_tail(rng: np.random.Generator, base_offset: int) -> List[int]:
    """A free-list of 8-word blocks: [next_ptr, size, garbage x6]."""
    words: List[int] = []
    n_blocks = HEAP_TAIL_WORDS // _HEAP_BLOCK
    for b in range(n_blocks):
        next_off = base_offset + (b + 1) * _HEAP_BLOCK
        next_ptr = DATA_BASE + next_off if b + 1 < n_blocks else 0
        words.append(next_ptr)
        words.append(_HEAP_BLOCK)
        words.extend(int(v) for v in rng.integers(0, 2**31, _HEAP_BLOCK - 2))
    return words


def _cold_tail(prefix: str) -> List:
    """Never-executed utility/error-handling code (cold paths).

    Real binaries are dominated by code that a given run never reaches
    (error handling, unused library paths); faults there are masked.
    Appending a cold tail keeps the code-segment fault profile honest.
    """
    out: List = []
    for i in range(6):
        out.append(f"{prefix}_cold{i}")
        out.extend(
            [
                ("PUSH", 0, 1, 0),
                ("LOADI", 5, 0, 0x7F0 + i),
                ("LD", 6, 5, 0),
                ("ADDI", 6, 6, 1),
                ("ST", 6, 5, 0),
                ("MOV", 7, 6, 0),
                ("XOR", 7, 5, 0),
                ("JZ", 0, 7, f"{prefix}_cold{i}"),
                ("POP", 1, 0, 0),
                ("RET",),
            ]
        )
    return out


def cpu_matmul_program(seed: int = 0, n: int = 4) -> Tuple[Program, np.ndarray]:
    """4x4 FP matmul via row-pointer tables and a dot-product call."""
    rng = np.random.default_rng(seed + 100)
    a = rng.uniform(-2.0, 2.0, (n, n)).astype(np.float32)
    b = rng.uniform(-2.0, 2.0, (n, n)).astype(np.float32)
    hdr = 3 * n + 1
    pad = (16 - hdr % 16) % 16
    a_off = hdr + pad
    b_off = a_off + n * n
    c_off = b_off + n * n
    heap_off = c_off + n * n
    data: List[int] = []
    data += [DATA_BASE + a_off + i * n for i in range(n)]
    data += [DATA_BASE + b_off + i * n for i in range(n)]
    data += [DATA_BASE + c_off + i * n for i in range(n)]
    data += [n]
    data += [0] * pad
    data += [float_to_bits(float(v)) for v in a.reshape(-1)]
    data += [float_to_bits(float(v)) for v in b.reshape(-1)]
    data += [0] * (n * n)
    data += _heap_tail(rng, heap_off)

    listing = [
        ("CALL", 0, 0, "main"),
        ("HALT",),
        # ---- main: the whole multiply runs in a stack frame ----
        "main",
        ("LOADI", 10, 0, DATA_BASE),
        ("LD", 9, 10, 3 * n),         # r9 = n
        ("PUSH", 0, 9, 0),            # spill the bound (live stack data)
        ("LOADI", 1, 0, 0),
        "loop_i",
        ("MOV", 5, 10, 0),
        ("ADD", 5, 1, 0),
        ("LD", 11, 5, 0),             # r11 = A row ptr
        ("LOADI", 2, 0, 0),
        "loop_j",
        ("CALL", 0, 0, "dot"),        # r4 = A[i,:] . B[:,j]
        ("MOV", 5, 10, 0),
        ("ADD", 5, 1, 0),
        ("LD", 12, 5, 2 * n),         # r12 = C row ptr
        ("ADD", 12, 2, 0),
        ("FST", 4, 12, 0),            # C[i][j] = acc
        ("ADDI", 2, 2, 1),
        ("BLT", 2, 9, "loop_j"),
        ("ADDI", 1, 1, 1),
        ("BLT", 1, 9, "loop_i"),
        ("POP", 9, 0, 0),
        ("RET",),
        # ---- float dot product of A row (r11) and B column j (r2) ----
        "dot",
        ("PUSH", 0, 3, 0),            # save k
        ("LOADI", 4, 0, 0),           # acc = 0
        ("LOADI", 3, 0, 0),           # k = 0
        "dot_k",
        ("MOV", 5, 11, 0),
        ("ADD", 5, 3, 0),
        ("FLD", 7, 5, 0),             # a = A[i][k]
        ("MOV", 6, 10, 0),
        ("ADD", 6, 3, 0),
        ("LD", 6, 6, n),              # r6 = B row-k ptr
        ("ADD", 6, 2, 0),
        ("FLD", 8, 6, 0),             # b = B[k][j]
        ("FMUL", 7, 8, 0),
        ("FADD", 4, 7, 0),
        ("ADDI", 3, 3, 1),
        ("BLT", 3, 9, "dot_k"),
        ("POP", 3, 0, 0),             # restore k
        ("RET",),
    ]
    program = Program(
        code=assemble(listing + _cold_tail("mm")),
        data=data,
        output_range=(c_off, n * n),
        float_offsets=frozenset(range(a_off, c_off + n * n)),
        name="cpu-matmul",
    )
    golden = (a.astype(np.float64) @ b.astype(np.float64)).astype(np.float32)
    return program, golden.reshape(-1).astype(np.float64)


def cpu_sort_program(seed: int = 0, n: int = 16) -> Tuple[Program, np.ndarray]:
    """Integer bubble sort through an array pointer, in a stack frame."""
    rng = np.random.default_rng(seed + 200)
    values = rng.integers(-500, 500, n).astype(np.int64)
    arr_off = 8
    heap_off = arr_off + n
    data = (
        [DATA_BASE + arr_off, n]
        + [0] * (arr_off - 2)
        + [int(v) & 0xFFFFFFFF for v in values]
        + _heap_tail(rng, heap_off)
    )
    listing = [
        ("CALL", 0, 0, "main"),
        ("HALT",),
        "main",
        ("LOADI", 10, 0, DATA_BASE),
        ("LD", 9, 10, 0),             # base ptr
        ("LD", 1, 10, 1),             # n
        ("PUSH", 0, 9, 0),            # spill base ptr (live stack data)
        ("PUSH", 0, 1, 0),            # spill n
        ("LOADI", 2, 0, 0),           # i
        "outer",
        ("MOV", 4, 1, 0),
        ("ADDI", 4, 4, -1),
        ("SUB", 4, 2, 0),             # limit = n - 1 - i
        ("LOADI", 3, 0, 0),           # j
        "inner",
        ("MOV", 5, 9, 0),
        ("ADD", 5, 3, 0),
        ("LD", 6, 5, 0),
        ("LD", 7, 5, 1),
        ("BGE", 7, 6, "noswap"),
        ("ST", 7, 5, 0),
        ("ST", 6, 5, 1),
        "noswap",
        ("ADDI", 3, 3, 1),
        ("BLT", 3, 4, "inner"),
        ("ADDI", 2, 2, 1),
        ("POP", 1, 0, 0),             # reload n from the stack
        ("PUSH", 0, 1, 0),
        ("MOV", 8, 1, 0),
        ("ADDI", 8, 8, -1),
        ("BLT", 2, 8, "outer"),
        ("POP", 1, 0, 0),
        ("POP", 9, 0, 0),
        ("RET",),
    ]
    program = Program(
        code=assemble(listing + _cold_tail("srt")),
        data=data,
        output_range=(arr_off, n),
        name="cpu-sort",
    )
    return program, np.sort(values).astype(np.float64)


def cpu_checksum_program(seed: int = 0, n: int = 24) -> Tuple[Program, np.ndarray]:
    """Polynomial rolling checksum: out = fold(31*h + v), stack-framed."""
    rng = np.random.default_rng(seed + 300)
    values = rng.integers(0, 256, n).astype(np.int64)
    buf_off = 8
    out_off = buf_off + n
    heap_off = out_off + 1
    data = (
        [DATA_BASE + buf_off, n, DATA_BASE + out_off]
        + [0] * (buf_off - 3)
        + [int(v) for v in values]
        + [0]
        + _heap_tail(rng, heap_off)
    )
    listing = [
        ("CALL", 0, 0, "main"),
        ("HALT",),
        "main",
        ("LOADI", 10, 0, DATA_BASE),
        ("LD", 9, 10, 0),             # buf ptr
        ("LD", 1, 10, 1),             # n
        ("PUSH", 0, 9, 0),            # spill buf ptr
        ("LOADI", 4, 0, 0),           # h = 0
        ("LOADI", 8, 0, 31),
        ("LOADI", 3, 0, 0),           # i
        "loop",
        ("POP", 9, 0, 0),             # reload buf ptr from the stack
        ("PUSH", 0, 9, 0),
        ("MOV", 5, 9, 0),
        ("ADD", 5, 3, 0),
        ("LD", 6, 5, 0),
        ("MUL", 4, 8, 0),             # h *= 31
        ("ADD", 4, 6, 0),             # h += v
        ("ADDI", 3, 3, 1),
        ("BLT", 3, 1, "loop"),
        ("LD", 7, 10, 2),             # out ptr
        ("ST", 4, 7, 0),
        ("POP", 9, 0, 0),
        ("RET",),
    ]
    program = Program(
        code=assemble(listing + _cold_tail("ck")),
        data=data,
        output_range=(out_off, 1),
        name="cpu-checksum",
    )
    h = 0
    for v in values:
        h = (h * 31 + int(v)) & 0xFFFFFFFF
        if h >= 2**31:
            h -= 2**32
    return program, np.array([float(h)])
