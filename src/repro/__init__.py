"""Reproduction of *HAUBERK: Lightweight Silent Data Corruption Error
Detector for GPGPU* (Yim, Pham, Saleheen, Kalbarczyk, Iyer - IPDPS 2011).

Public API tour:

* :mod:`repro.kir` - the kernel IR: write GPU kernels in a mini-CUDA
  dialect (:func:`repro.kir.parse_kernel`) or an OpenCL dialect
  (:func:`repro.kir.opencl.parse_opencl_kernel`).
* :mod:`repro.gpu` - the simulated device and launch runtime.
* :mod:`repro.core` - HAUBERK itself: the translator, detectors,
  profiler, recovery engine, and guardian.
* :mod:`repro.swifi` - the mutation-based fault injector and campaigns.
* :mod:`repro.workloads` - the paper's benchmark programs.
* :mod:`repro.baselines` - R-Naive and R-Scatter comparison detectors.
* :mod:`repro.harness` - one driver per evaluation figure/table.

The ten-line tour::

    from repro.core.program import HauberkProgram
    from repro.workloads import get_workload

    prog = HauberkProgram(get_workload("MRI-Q"))
    prog.train(seeds=[0, 1, 2])
    result = prog.run(mode="ft", seed=0)
    assert not result.alarm

The campaign surface below is the **frozen v1 API**: everything a
campaign-driven harness — local, pooled, or fleet — needs is importable
from ``repro`` directly, and the fleet wire protocol
(:mod:`repro.fleet.wire`) is defined in terms of exactly these types.
"""

from repro.errors import ReproError
from repro.swifi.campaign import CampaignResult, TrialObservation
from repro.swifi.journal import (
    CampaignJournal,
    campaign_fingerprint,
    spec_fingerprint,
)
from repro.swifi.options import CampaignOptions
from repro.swifi.parallel import run_campaign
from repro.swifi.planner import CampaignPlan

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "__version__",
    # frozen v1 campaign surface
    "run_campaign",
    "CampaignOptions",
    "CampaignResult",
    "CampaignPlan",
    "CampaignJournal",
    "TrialObservation",
    "campaign_fingerprint",
    "spec_fingerprint",
]
