#!/usr/bin/env python
"""Figure 3 live: fault impact on a rendered ocean-flow frame.

Renders the height-field frame as ASCII art three times: clean, with a
transient single-value fault (an unnoticeable local spike), and with an
intermittent stuck-bit fault in the wave-spectrum memory (a prominent
pattern across the whole frame — the paper's stripe).

Run:  python examples/graphics_corruption.py
"""

import numpy as np

from repro.core.program import HauberkProgram
from repro.swifi import FaultSpec, enumerate_targets
from repro.workloads.graphics import OceanWorkload, frame_corruption_stats

SHADES = " .:-=+*#%@"


def ascii_frame(frame):
    lo, hi = 0.0, 1.0
    idx = np.clip((frame - lo) / (hi - lo) * (len(SHADES) - 1), 0, len(SHADES) - 1)
    return "\n".join("".join(SHADES[int(v)] for v in row) for row in idx)


def main():
    wl = OceanWorkload(width=48, height=14)
    prog = HauberkProgram(wl)
    inp = wl.generate_input(0)
    golden = wl.golden(inp)

    print("=== clean frame ===")
    print(ascii_frame(wl.render_frame(golden)))

    # transient: one corrupted height value in one thread
    sites = [s for s in enumerate_targets(wl.kernel) if s.name == "h" and s.in_loop]
    fault = FaultSpec(site=sites[0].site, mask=1 << 22, thread=inp.n_threads // 2,
                      occurrence=3)
    result = prog.run(mode="fi", inp=inp, fault=fault)
    stats = frame_corruption_stats(result.output, golden)
    print(f"\n=== transient fault: {stats.corrupted_pixels} corrupted pixel(s), "
          f"noticeable={not wl.spec.check(result.output, golden)} ===")
    print(ascii_frame(wl.render_frame(result.output)))

    # intermittent: a spectrum amplitude word stuck with a flipped bit
    args, handles = wl.setup_memory(prog.device, inp)
    prog.device.memory.inject_word_fault(handles["spectrum"].base + 2, 1 << 25)
    prog.runtime.launch(wl.kernel, inp.grid, inp.block, args, budget=wl.hang_budget)
    corrupted = wl.read_output(prog.device, inp, handles)
    stats = frame_corruption_stats(corrupted, golden)
    print(f"\n=== intermittent fault: {stats.corrupted_pixels} corrupted pixels "
          f"({100 * stats.corrupted_fraction:.0f}% of frame), "
          f"noticeable={not wl.spec.check(corrupted, golden)} ===")
    print(ascii_frame(wl.render_frame(corrupted)))


if __name__ == "__main__":
    main()
