#!/usr/bin/env python
"""Quickstart: protect your own GPU kernel with HAUBERK.

Walks the full pipeline on a custom kernel:

1. write a kernel in the mini-CUDA dialect and run it on the simulated GPU;
2. let the translator derive the HAUBERK detectors (Figure 8 / Section V);
3. train the loop detectors' value ranges by profiling;
4. inject a register fault and watch the detectors flag it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.controlblock import ControlBlock
from repro.core.ftlib import HauberkFTLibrary
from repro.core.profiler import RangeProfiler
from repro.core.translator import HauberkTranslator
from repro.gpu import Device, GPURuntime
from repro.kir import kernel_to_source, parse_kernel
from repro.kir.types import DType
from repro.swifi import FaultInjectionLibrary, FaultSpec, enumerate_targets
from repro.core.program import CombinedLibrary

KERNEL_SRC = """
kernel distances(float* points, float* out, int npoints) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float px = points[tid * 2];
    float py = points[tid * 2 + 1];
    float total = 0.0;
    for (int j = 0; j < npoints; j++) {
        float dx = px - points[j * 2];
        float dy = py - points[j * 2 + 1];
        total = total + sqrt(dx * dx + dy * dy);
    }
    out[tid] = total;
}
"""

N = 32


def setup(device, rng):
    device.memory.reset()
    points = rng.uniform(-1, 1, (N, 2)).astype(np.float32)
    a_pts = device.memory.alloc("points", 2 * N, DType.FLOAT32)
    a_out = device.memory.alloc("out", N, DType.FLOAT32)
    device.memory.memcpy_htod(a_pts, points.reshape(-1))
    return {"points": a_pts, "out": a_out, "npoints": N}, a_out


def main():
    device = Device()
    runtime = GPURuntime(device)
    kernel = parse_kernel(KERNEL_SRC)
    rng = np.random.default_rng(7)

    # --- 1. baseline run -------------------------------------------------
    args, a_out = setup(device, rng)
    launch = runtime.launch(kernel, N // 16, 16, args)
    clean = device.memory.memcpy_dtoh(a_out)
    print(f"baseline: {launch.total_cycles:.0f} cycles, "
          f"{100 * launch.loop_fraction:.1f}% in the loop")

    # --- 2. derive the detectors -----------------------------------------
    translator = HauberkTranslator()
    ft = translator.build(kernel, "ft")
    print("\n=== HAUBERK-instrumented kernel ===")
    print(kernel_to_source(ft.kernel))
    cfg = ft.detector_configs[0]
    print(f"\nloop detector 0 protects {cfg.variable!r} "
          f"(self-accumulating={cfg.self_accumulating}, "
          f"trip check={cfg.has_trip_check})")

    # --- 3. train the value ranges by profiling ---------------------------
    profiler_build = translator.build(kernel, "profiler")
    profiler = RangeProfiler()
    for seed in range(3):
        args, _ = setup(device, np.random.default_rng(seed))
        runtime.launch(profiler_build.kernel, N // 16, 16, args, lib=profiler)
    cb = ControlBlock()
    cb.configure(ft.detector_configs)
    cb.load_ranges(profiler.finalize())
    rs = cb.detectors[0].ranges
    print(f"trained ranges: {[(round(r.lo, 2), round(r.hi, 2)) for r in rs.ranges]}")

    # --- 4. inject a fault into the protected accumulator -----------------
    fift = translator.build(kernel, "fift")
    target = next(
        s for s in enumerate_targets(kernel)
        if s.name == "total" and s.kind == "assign"
    )
    fault = FaultSpec(site=target.site, mask=1 << 29, thread=5, occurrence=N)
    device_cb = cb.copy_to_device()
    lib = CombinedLibrary([
        HauberkFTLibrary(device_cb),
        FaultInjectionLibrary(kernel, fault),
    ])
    args, a_out = setup(device, rng)
    runtime.launch(fift.kernel, N // 16, 16, args, lib=lib)
    cb.copy_from_device(device_cb)

    corrupted = device.memory.memcpy_dtoh(a_out)
    delta = np.abs(corrupted - clean).max()
    print(f"\ninjected exponent-bit fault into thread 5's accumulator")
    print(f"max output corruption: {delta:.3g}")
    print(f"HAUBERK alarm raised:  {cb.alarm_raised}")
    for event in cb.events:
        print(f"  detector {event.detector}: {event.kind} "
              f"(value={event.value:.3g}) in thread {event.thread}")
    assert cb.alarm_raised, "the detector should have caught this"


if __name__ == "__main__":
    main()
