#!/usr/bin/env python
"""Protect a multi-kernel pipeline with one shared control block.

Real Parboil programs run several kernels per iteration (MRI-FHD first
computes |phi|^2 in its own kernel).  This example builds such a
pipeline — a ``phimag`` kernel feeding a ``recon`` kernel — and
instruments *both* with HAUBERK, giving each kernel a disjoint
loop-detector index range (``TranslatorOptions.detector_base``) so a
single control block carries the whole program's detection state, as
in the paper's deferred-checking model (Figure 6).

Run:  python examples/multi_kernel_pipeline.py
"""

import numpy as np

from repro.core.controlblock import ControlBlock
from repro.core.ftlib import HauberkFTLibrary
from repro.core.profiler import RangeProfiler
from repro.core.translator import HauberkTranslator, TranslatorOptions
from repro.gpu import Device, GPURuntime
from repro.kir import parse_kernel
from repro.kir.types import DType

PHIMAG_SRC = """
kernel phimag(float* phiR, float* phiI, float* phiMag, int numk) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    if (t < numk) {
        float re = phiR[t];
        float im = phiI[t];
        phiMag[t] = re * re + im * im;
    }
}
"""

RECON_SRC = """
kernel recon(float* phiMag, float* kx, float* x, float* out, int numk, int numx) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    if (t < numx) {
        float xl = x[t];
        float q = 0.0;
        for (int k = 0; k < numk; k++) {
            q = q + phiMag[k] * cos(6.2831853 * kx[k] * xl);
        }
        out[t] = q;
    }
}
"""

NUMK, NUMX = 32, 64


def setup(device, rng):
    device.memory.reset()
    phi_r = rng.normal(size=NUMK).astype(np.float32)
    phi_i = rng.normal(size=NUMK).astype(np.float32)
    kx = rng.uniform(-0.5, 0.5, NUMK).astype(np.float32)
    x = rng.uniform(-1, 1, NUMX).astype(np.float32)
    bufs = {}
    for name, data, n in (
        ("phiR", phi_r, NUMK), ("phiI", phi_i, NUMK), ("phiMag", None, NUMK),
        ("kx", kx, NUMK), ("x", x, NUMX), ("out", None, NUMX),
    ):
        bufs[name] = device.memory.alloc(name, n, DType.FLOAT32)
        if data is not None:
            device.memory.memcpy_htod(bufs[name], data)
    return bufs


def run_pipeline(runtime, kernels, bufs, lib):
    """Both kernels share one bound library (one device control block)."""
    phimag_k, recon_k = kernels
    runtime.launch(phimag_k, (NUMK + 15) // 16, 16,
                   {"phiR": bufs["phiR"], "phiI": bufs["phiI"],
                    "phiMag": bufs["phiMag"], "numk": NUMK}, lib=lib)
    runtime.launch(recon_k, (NUMX + 15) // 16, 16,
                   {"phiMag": bufs["phiMag"], "kx": bufs["kx"], "x": bufs["x"],
                    "out": bufs["out"], "numk": NUMK, "numx": NUMX}, lib=lib)


def main():
    device = Device()
    runtime = GPURuntime(device)
    phimag_kernel = parse_kernel(PHIMAG_SRC)
    recon_kernel = parse_kernel(RECON_SRC)

    # instrument each kernel with a disjoint detector range
    t1 = HauberkTranslator(TranslatorOptions(detector_base=0))
    phimag_ft = t1.build(phimag_kernel, "ft")
    base2 = len(phimag_ft.detector_configs)
    t2 = HauberkTranslator(TranslatorOptions(detector_base=base2))
    recon_ft = t2.build(recon_kernel, "ft")

    all_configs = phimag_ft.detector_configs + recon_ft.detector_configs
    ids = [c.detector for c in all_configs]
    assert len(ids) == len(set(ids)), "detector ranges must be disjoint"
    print("detectors:", [(c.detector, c.kernel, c.variable) for c in all_configs])

    # train both kernels' detectors through the same profiler
    prof = RangeProfiler()
    t1p = HauberkTranslator(TranslatorOptions(detector_base=0))
    t2p = HauberkTranslator(TranslatorOptions(detector_base=base2))
    prof_kernels = (
        t1p.build(phimag_kernel, "profiler").kernel,
        t2p.build(recon_kernel, "profiler").kernel,
    )
    for seed in range(3):
        bufs = setup(device, np.random.default_rng(seed))
        run_pipeline(runtime, prof_kernels, bufs, prof)
    cb = ControlBlock()
    cb.configure(all_configs)
    cb.load_ranges(prof.finalize())

    # a clean protected run: one control block, two kernels, no alarms
    device_cb = cb.copy_to_device()
    lib = HauberkFTLibrary(device_cb)
    bufs = setup(device, np.random.default_rng(1))
    run_pipeline(runtime, (phimag_ft.kernel, recon_ft.kernel), bufs, lib)
    cb.copy_from_device(device_cb)
    out = device.memory.memcpy_dtoh(bufs["out"])
    print(f"pipeline output[:4] = {np.round(out[:4], 3)}")
    print(f"alarms after clean protected run: {cb.alarm_raised}")
    assert not cb.alarm_raised

    # corrupt the intermediate buffer between the kernels: the second
    # kernel's loop detector sees the out-of-range averages
    device_cb = cb.copy_to_device()
    lib = HauberkFTLibrary(device_cb)
    bufs = setup(device, np.random.default_rng(1))
    runtime.launch(phimag_ft.kernel, (NUMK + 15) // 16, 16,
                   {"phiR": bufs["phiR"], "phiI": bufs["phiI"],
                    "phiMag": bufs["phiMag"], "numk": NUMK}, lib=lib)
    device.memory.inject_word_fault(bufs["phiMag"].base + 3, 1 << 28)
    runtime.launch(recon_ft.kernel, (NUMX + 15) // 16, 16,
                   {"phiMag": bufs["phiMag"], "kx": bufs["kx"], "x": bufs["x"],
                    "out": bufs["out"], "numk": NUMK, "numx": NUMX}, lib=lib)
    cb.copy_from_device(device_cb)
    print(f"alarms after corrupting the inter-kernel buffer: {cb.alarm_raised}")
    for event in cb.events[:3]:
        cfg = cb.detectors[event.detector]
        print(f"  detector {event.detector} ({cfg.kernel}/{cfg.variable}): "
              f"{event.kind}, value={event.value:.3g}")
    assert cb.alarm_raised


if __name__ == "__main__":
    main()
