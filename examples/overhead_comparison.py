#!/usr/bin/env python
"""Detector overhead comparison on one workload (Figure 13, one bar group).

Measures modeled kernel time of CP under every technique: baseline,
R-Naive (run twice), R-Scatter (inline duplication), HAUBERK-NL only,
HAUBERK-L only, and full HAUBERK — and shows R-Scatter failing to
compile TPACF because doubling its shared memory exceeds the device.

Run:  python examples/overhead_comparison.py
"""

from repro.baselines import RNaiveHarness, rscatter_kernel
from repro.core.program import HauberkProgram
from repro.core.translator import TranslatorOptions
from repro.errors import CompileError
from repro.gpu.runtime import GPURuntime
from repro.harness.reporting import print_table
from repro.workloads import get_workload


def measure(name="CP"):
    wl = get_workload(name)
    inp = wl.generate_input(0)

    prog = HauberkProgram(wl)
    prog.train(seeds=[0, 1, 2])
    baseline = prog.measure_time("original", inp=inp)
    hauberk = prog.measure_time("ft", inp=inp)

    nl_only = HauberkProgram(get_workload(name),
                             options=TranslatorOptions(enable_loop=False))
    t_nl = nl_only.measure_time("ft", inp=inp)

    l_only = HauberkProgram(get_workload(name),
                            options=TranslatorOptions(enable_nonloop=False))
    l_only.train(seeds=[0, 1, 2])
    t_l = l_only.measure_time("ft", inp=inp)

    rnaive = RNaiveHarness(wl, prog.device).measure_time(inp)

    try:
        rk = rscatter_kernel(wl.kernel, prog.device.spec)
        args, _ = wl.setup_memory(prog.device, inp)
        rscatter = GPURuntime(prog.device).launch(
            rk, inp.grid, inp.block, args, budget=wl.hang_budget
        ).kernel_time
        rs_cell = f"{100 * (rscatter / baseline - 1):.1f}%"
    except CompileError as exc:
        rs_cell = "no-compile"

    oh = lambda t: f"{100 * (t / baseline - 1):.1f}%"  # noqa: E731
    return [
        (name, oh(rnaive), rs_cell, oh(t_nl), oh(t_l), oh(hauberk)),
    ]


def main():
    rows = []
    for name in ("CP", "RPES", "TPACF"):
        rows.extend(measure(name))
    print_table(
        "Detector overhead vs baseline (Figure 13 excerpt)",
        ["benchmark", "R-Naive", "R-Scatter", "HAUBERK-NL", "HAUBERK-L", "HAUBERK"],
        rows,
    )
    print("Paper anchors: R-Naive ~100%; R-Scatter ~89% and uncompilable for")
    print("TPACF; HAUBERK ~5% on CP (self-accumulating FP loop variable) but")
    print("dominated by duplication cost on the non-loop-heavy RPES.")


if __name__ == "__main__":
    main()
