#!/usr/bin/env python
"""Error recovery walkthrough: the Figure 11 flowchart end to end.

Demonstrates every diagnosis verdict of the recovery engine on a
two-GPU node:

* a clean run;
* a transient fault — alarm, re-execution, retry's output adopted;
* a false alarm from an unlucky input — re-execution matches, ranges
  learned on-line;
* a permanent hardware fault — alarms with diverging outputs, BIST
  fails, the device is disabled and the program migrates to GPU #2;
* the back-off daemon re-enabling the device once the (intermittent)
  defect clears.

Run:  python examples/recovery_demo.py
"""

from repro.core.program import HauberkProgram
from repro.core.ranges import RangeSet, ValueRange
from repro.core.recovery import RecoveryEngine
from repro.core.bist import run_bist
from repro.gpu.cluster import GPUNode
from repro.swifi import FaultSpec, enumerate_targets
from repro.workloads import get_workload


def accumulator_fault(wl, occurrence):
    site = next(
        s for s in enumerate_targets(wl.kernel)
        if s.name == "qr" and s.kind == "assign"
    )
    return FaultSpec(site=site.site, mask=1 << 29, thread=3, occurrence=occurrence)


def main():
    node = GPUNode(num_devices=2)
    wl = get_workload("MRI-Q")
    prog = HauberkProgram(wl, device=node.healthy_device())
    prog.train(seeds=[0, 1, 2])
    engine = RecoveryEngine(prog, node=node)
    inp = wl.generate_input(0)

    # --- clean ------------------------------------------------------------
    result = engine.execute(inp, lambda i: None)
    print(f"clean run        -> verdict={result.verdict!r}, runs={result.runs}")

    # --- transient fault ---------------------------------------------------
    fault = accumulator_fault(wl, occurrence=wl.numk)
    result = engine.execute(inp, lambda i: fault if i == 0 else None)
    print(f"transient fault  -> verdict={result.verdict!r}, runs={result.runs} "
          f"(retry adopted)")

    # --- false alarm ---------------------------------------------------------
    for det in prog.cb.detectors.values():
        det.ranges = RangeSet(ranges=[ValueRange(1e8, 1e9)])  # bad training
    result = engine.execute(inp, lambda i: None)
    print(f"false alarm      -> verdict={result.verdict!r}, "
          f"ranges updated={result.ranges_updated} (on-line learning)")
    result = engine.execute(inp, lambda i: None)
    print(f"  after learning -> verdict={result.verdict!r}")

    # --- permanent hardware fault -------------------------------------------
    bad_device = prog.device
    bad_device.defect = "register"

    def persistent(i):
        if prog.device is not bad_device:
            return None
        return accumulator_fault(wl, occurrence=wl.numk - i % 3)

    result = engine.execute(inp, persistent)
    print(f"permanent fault  -> verdict={result.verdict!r}, "
          f"migrated={result.migrated}; device {bad_device.device_id} "
          f"enabled={bad_device.enabled}")

    # --- back-off daemon re-enables once the defect clears --------------------
    node.disable(bad_device, now=0.0)  # ensure back-off entry exists
    assert node.run_backoff_daemon(1.0, run_bist) == []  # still defective
    bad_device.defect = None  # the intermittent fault went away
    entry = node.pending_backoff(bad_device.device_id)
    reenabled = node.run_backoff_daemon(entry.next_probe_time, run_bist)
    print(f"back-off daemon  -> re-enabled devices: {reenabled}")
    assert bad_device.enabled


if __name__ == "__main__":
    main()
