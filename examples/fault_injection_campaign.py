#!/usr/bin/env python
"""Fault-injection campaign on a Parboil workload (Sections VII-IX).

Runs two scaled-down campaigns against MRI-Q — one on the unprotected
binary (baseline sensitivity, Figure 1's method) and one on the FI&FT
build (HAUBERK coverage, Figure 14's method) — and prints the outcome
breakdown per error-bit count.

Run:  python examples/fault_injection_campaign.py
"""

from repro.core.program import HauberkProgram
from repro.harness.reporting import pct, print_table
from repro.swifi import Campaign, build_fault_specs, select_targets
from repro.swifi.outcomes import Outcome
from repro.workloads import get_workload

import numpy as np

BITS = (1, 6, 15)
MASKS_PER_SITE = 3
MAX_TARGETS = 12


def main():
    wl = get_workload("MRI-Q")
    prog = HauberkProgram(wl)
    print(f"training HAUBERK loop detectors on 4 input sets...")
    prog.train(seeds=[0, 1, 2, 3])

    inp = wl.generate_input(0)
    rng = np.random.default_rng(42)
    sites = select_targets(wl.kernel, MAX_TARGETS, rng)
    print(f"injecting into {len(sites)} virtual variables "
          f"({MASKS_PER_SITE} masks each) over {inp.n_threads} threads\n")

    rows = []
    for mode, label in (("fi", "baseline"), ("fift", "HAUBERK")):
        campaign = Campaign(prog.trial_runner(mode))
        campaign.golden_check()
        for bits in BITS:
            specs = build_fault_specs(
                sites, n_threads=inp.n_threads,
                masks_per_site=MASKS_PER_SITE, bit_counts=(bits,), seed=bits,
            )
            result = campaign.run(specs)
            c = result.counts
            rows.append(
                (label, bits, c.total,
                 pct(c.fraction(Outcome.FAILURE)),
                 pct(c.fraction(Outcome.MASKED)),
                 pct(c.detected_ratio),
                 pct(c.sdc_ratio),
                 pct(c.coverage))
            )
    print_table(
        "MRI-Q fault injection outcomes",
        ["build", "bits", "trials", "failure", "masked", "detected", "SDC",
         "coverage"],
        rows,
    )
    print("Expected shape (paper): baseline SDC is large (~39% for FP state);")
    print("HAUBERK cuts the undetected-SDC ratio to ~13% on average (87% coverage).")


if __name__ == "__main__":
    main()
