"""Campaign throughput — serial vs the parallel execution engine.

Measures trials/second for one CP fault-injection campaign run through
``repro.swifi.run_campaign`` serially and with 2 / 4 worker processes,
checks the determinism contract (every configuration produces the same
``summary()``), and records the numbers in ``BENCH_campaign.json`` at
the repo root.  Speedups are reported, not asserted: they depend on
visible CPUs (recorded alongside), and on a single-core container the
fork pool legitimately measures near-1x.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.core.program import HauberkProgram
from repro.exec import fork_available
from repro.harness.reporting import format_table
from repro.swifi import build_fault_specs, run_campaign, select_targets
from repro.workloads import get_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
WORKER_COUNTS = (1, 2, 4)


def _specs(scale):
    wl = get_workload("CP")
    rng = np.random.default_rng(scale.seed + 77)
    sites = select_targets(wl.kernel, scale.max_targets, rng)
    inp = wl.generate_input(0)
    return wl, build_fault_specs(
        sites,
        n_threads=inp.n_threads,
        masks_per_site=scale.masks_per_site,
        bit_counts=(1, 6),
        seed=scale.seed + 77,
    )


def test_campaign_throughput(scale, report):
    wl, specs = _specs(scale)
    prog = HauberkProgram(wl)
    prog.train(seeds=[0])
    # Warm every shared cache (translate, compile, golden) outside the
    # timed region so each configuration measures trial execution only.
    run_campaign(prog, specs[:1], mode="fift", workers=1)

    timings = {}
    summaries = {}
    for workers in WORKER_COUNTS:
        if workers > 1 and not fork_available():
            continue
        start = time.perf_counter()
        result = run_campaign(prog, specs, mode="fift", workers=workers)
        elapsed = time.perf_counter() - start
        timings[workers] = elapsed
        summaries[workers] = result.summary()

    serial = timings[1]
    configs = {}
    for workers, elapsed in timings.items():
        configs[str(workers)] = {
            "workers": workers,
            "seconds": round(elapsed, 4),
            "trials_per_sec": round(len(specs) / elapsed, 2),
            "speedup_vs_serial": round(serial / elapsed, 3),
        }
    payload = {
        "benchmark": "campaign_throughput",
        "workload": "CP",
        "mode": "fift",
        "n_trials": len(specs),
        "cpu_count": os.cpu_count(),
        "fork_available": fork_available(),
        "configs": configs,
    }
    (REPO_ROOT / "BENCH_campaign.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    rows = [
        (c["workers"], f"{c['seconds']:.2f}s", f"{c['trials_per_sec']:.1f}",
         f"{c['speedup_vs_serial']:.2f}x")
        for c in configs.values()
    ]
    report(format_table(
        f"Campaign throughput - CP fift, {len(specs)} trials, "
        f"{os.cpu_count()} visible CPU(s)",
        ["workers", "wall time", "trials/s", "speedup"],
        rows,
    ))

    # determinism contract: identical summary for every worker count
    for workers, summary in summaries.items():
        assert summary == summaries[1], f"workers={workers} diverged from serial"
    assert all(c["trials_per_sec"] > 0 for c in configs.values())
