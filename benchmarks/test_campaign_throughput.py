"""Campaign throughput — differential replay and the parallel engine.

Measures trials/second for seeded fault-injection campaigns run through
``repro.swifi.run_campaign`` along two axes:

* **differential vs full execution** — the same serial campaign with
  the differential trial engine on (the default) and off, for CP and
  for PNS (a long-looping kernel where single-thread replay pays off
  most).  The best ``speedup_diff_vs_full`` is asserted >= 3x.  Trials
  whose fault hangs the target thread are the floor on any campaign's
  speedup: the wandering thread's statements are real work in both
  worlds, so a spec draw with hang trials measures their full cost
  plus only the *other* trials' savings.
* **worker scaling** — the CP differential campaign with 1 / 2 / 4
  worker processes.  Worker speedups are reported, not asserted: they
  depend on visible CPUs, and on a single-core container the fork pool
  legitimately measures near-1x — those configs carry
  ``"cpu_limited": true`` so downstream readers don't mistake a
  scheduling artifact for a regression.
* **execution engine** — the vectorized array-program engine vs the
  closure interpreter, on a grid large enough for vectorization to pay
  (the default workload inputs are deliberately tiny).  Fault-free
  full-grid launches are asserted >= 10x; a mode-``fi`` full campaign
  is also timed, where crash/hang trials bail the vector engine into a
  scalar rerun and bound the speedup exactly like hang trials bound
  differential replay (Amdahl).

Every configuration of a workload must produce the same ``summary()``
(the determinism contract); results land in ``BENCH_campaign.json`` at
the repo root.  The payload records the active scale preset: comparing
a ``smoke`` payload against a ``campaign`` baseline produces phantom
regressions (trial counts differ), which is what
``scripts/bench_trend.py``'s scale guard exists to catch.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.core.program import HauberkProgram
from repro.exec import fork_available
from repro.harness.reporting import format_table
from repro.swifi import (
    CampaignOptions,
    build_fault_specs,
    run_campaign,
    select_targets,
)
from repro.swifi.campaign import Campaign
from repro.workloads import get_workload
from repro.workloads.cp import CPWorkload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
WORKER_COUNTS = (1, 2, 4)
#: The PNS pair uses single-bit flips (the paper's primary fault
#: model).  A flip that lands in a loop bound turns the trial into a
#: watchdog hang — genuine faulted-thread work the replay executes
#: just like the full run — so a handful of hang trials bounds the
#: campaign speedup (Amdahl); masked/detected trials replay in ~1% of
#: the full-grid time.


def _specs(scale, name, n_trials=None, bit_counts=(1, 6)):
    wl = get_workload(name)
    rng = np.random.default_rng(scale.seed + 77)
    sites = select_targets(wl.kernel, scale.max_targets, rng)
    inp = wl.generate_input(0)
    specs = build_fault_specs(
        sites,
        n_threads=inp.n_threads,
        masks_per_site=scale.masks_per_site,
        bit_counts=bit_counts,
        seed=scale.seed + 77,
    )
    return wl, specs[:n_trials] if n_trials else specs


def _timed(prog, specs, workers, differential, profile=False):
    options = CampaignOptions(workers=workers, differential=differential,
                              profile=profile)
    start = time.perf_counter()
    result = run_campaign(prog, specs, mode="fift", options=options)
    return time.perf_counter() - start, result.summary()


def _profiler_overhead(prog, specs):
    """Best-of-3 CP w1-diff wall time with the phase profiler on vs off.

    The acceptance bar for the flight recorder: profiling must cost
    <= 5% on the configuration campaigns actually run hot (serial
    differential).  Best-of-N filters scheduler noise; the absolute
    guard below keeps sub-100ms timed regions from flaking the ratio.
    """
    off = min(_timed(prog, specs, workers=1, differential=True)[0]
              for _ in range(3))
    on = min(_timed(prog, specs, workers=1, differential=True,
                    profile=True)[0]
             for _ in range(3))
    return {
        "workload": "CP",
        "config": "w1-diff",
        "profile_off_seconds": round(off, 4),
        "profile_on_seconds": round(on, 4),
        "overhead": round(on / off - 1.0, 4),
    }


def _config(key, workers, differential, elapsed, n_trials, baseline,
            engine="closure"):
    entry = {
        # the fift campaigns bind a CombinedLibrary, which the vector
        # engine does not serve — these configs run the scalar paths
        "engine": engine,
        "workers": workers,
        "differential": differential,
        "seconds": round(elapsed, 4),
        "trials_per_sec": round(n_trials / elapsed, 2),
        "speedup_vs_serial_full": round(baseline / elapsed, 3),
    }
    if workers > 1 and os.cpu_count() == 1:
        entry["cpu_limited"] = True
    return key, entry


def _scale_name():
    """Mirror of conftest's preset selection, for payload labelling."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "").lower()
    return "smoke" if raw == "smoke" else "campaign"


#: Engine-comparison sizing: the default workload inputs are tiny (64
#: CP threads), where per-statement Python overhead hides the array
#: programs' advantage.  These grids are still far below the paper's
#: 512x512 slice but large enough that vectorization dominates.
_ENGINE_SIZING = {
    "smoke": {"numatoms": 64, "volx": 32, "voly": 16, "reps": 2,
              "n_trials": 10},
    "campaign": {"numatoms": 96, "volx": 64, "voly": 32, "reps": 3,
                 "n_trials": 16},
}


def _engine_comparison(scale, scale_name):
    """Vector vs closure: fault-free full launches + a mode-fi campaign.

    Returns ``(section, rows)`` — the ``engine_comparison`` payload
    section and report-table rows.  Launch results and campaign
    summaries are asserted bit-identical across engines (the vectorized
    engine's contract), and the fault-free full-grid launch must clear
    10x.
    """
    sizing = _ENGINE_SIZING[scale_name]
    wl_kw = {k: sizing[k] for k in ("numatoms", "volx", "voly")}

    # -- fault-free full-grid launches (the vectorized fast path) -----
    launch_seconds = {}
    launch_results = {}
    for engine in ("closure", "vector"):
        wl = CPWorkload(**wl_kw)
        prog = HauberkProgram(wl)
        prog.runtime.engine = engine
        inp = wl.generate_input(0)
        args, _ = wl.setup_memory(prog.device, inp)
        result = prog.runtime.launch(wl.kernel, inp.grid, inp.block, args,
                                     budget=wl.hang_budget)  # warm compile
        best = float("inf")
        for _ in range(sizing["reps"]):
            args, _ = wl.setup_memory(prog.device, inp)
            start = time.perf_counter()
            result = prog.runtime.launch(wl.kernel, inp.grid, inp.block,
                                         args, budget=wl.hang_budget)
            best = min(best, time.perf_counter() - start)
        launch_seconds[engine] = best
        launch_results[engine] = result
    assert launch_results["vector"] == launch_results["closure"], \
        "vector launch diverged from closure"
    launch_speedup = launch_seconds["closure"] / launch_seconds["vector"]

    # -- mode-fi full campaign (vector + targeted-lane scalar replay;
    # crash/hang trials bail to scalar reruns and bound the speedup) --
    camp_seconds = {}
    camp_summaries = {}
    n_trials = sizing["n_trials"]
    for engine in ("closure", "vector"):
        wl = CPWorkload(**wl_kw)
        prog = HauberkProgram(wl)
        prog.runtime.engine = engine
        rng = np.random.default_rng(scale.seed + 2077)
        sites = select_targets(wl.kernel, scale.max_targets, rng)
        inp = wl.generate_input(0)
        specs = build_fault_specs(
            sites, n_threads=inp.n_threads,
            masks_per_site=scale.masks_per_site, bit_counts=(1, 6),
            seed=scale.seed + 2077,
        )[:n_trials]
        runner = prog.trial_runner("fi", 0)
        runner(specs[0])  # warm every shared cache outside the timer
        start = time.perf_counter()
        campaign = Campaign(runner).run(specs)
        camp_seconds[engine] = time.perf_counter() - start
        camp_summaries[engine] = campaign.summary()
    assert camp_summaries["vector"] == camp_summaries["closure"], \
        "vector campaign diverged from closure"
    camp_speedup = camp_seconds["closure"] / camp_seconds["vector"]

    n_threads = (wl_kw["volx"] // 2) * wl_kw["voly"]
    section = {
        "workload": "CP",
        "workload_params": wl_kw,
        "n_threads": n_threads,
        "configs": {
            "launch-full-closure": {
                "engine": "closure", "differential": False,
                "seconds": round(launch_seconds["closure"], 4),
                "launches_per_sec": round(1.0 / launch_seconds["closure"], 2),
            },
            "launch-full-vector": {
                "engine": "vector", "differential": False,
                "seconds": round(launch_seconds["vector"], 4),
                "launches_per_sec": round(1.0 / launch_seconds["vector"], 2),
                "speedup_vs_closure": round(launch_speedup, 2),
            },
            "w1-full-fi-closure": {
                "engine": "closure", "differential": False,
                "mode": "fi", "n_trials": n_trials,
                "seconds": round(camp_seconds["closure"], 4),
                "trials_per_sec": round(n_trials / camp_seconds["closure"], 2),
            },
            "w1-full-fi-vector": {
                "engine": "vector", "differential": False,
                "mode": "fi", "n_trials": n_trials,
                "seconds": round(camp_seconds["vector"], 4),
                "trials_per_sec": round(n_trials / camp_seconds["vector"], 2),
                "speedup_vs_closure": round(camp_speedup, 2),
            },
        },
    }
    rows = [
        ("launch-full", f"{n_threads} thr",
         f"{launch_seconds['closure'] * 1e3:.0f}ms",
         f"{launch_seconds['vector'] * 1e3:.0f}ms",
         f"{launch_speedup:.1f}x"),
        (f"campaign-fi ({n_trials} trials)", f"{n_threads} thr",
         f"{camp_seconds['closure']:.2f}s",
         f"{camp_seconds['vector']:.2f}s",
         f"{camp_speedup:.1f}x"),
    ]
    # the engine's reason to exist: full-grid execution must clear 10x
    # on a vectorization-sized grid (campaign speedup is Amdahl-bound
    # by crash/hang trials, which rerun scalar — reported, not gated)
    assert launch_speedup >= 10.0, section
    return section, rows


def test_campaign_throughput(scale, report):
    workloads = {}
    rows = []
    overhead = None

    for name, n_trials, bit_counts, worker_counts in (
        ("CP", None, (1, 6), WORKER_COUNTS),
        ("PNS", None, (1,), (1,)),
    ):
        wl, specs = _specs(scale, name, n_trials, bit_counts)
        prog = HauberkProgram(wl)
        prog.train(seeds=[0])
        # Warm every shared cache (translate, compile, golden input,
        # differential golden recording) outside the timed region so
        # each configuration measures trial execution only.
        run_campaign(prog, specs[:1], mode="fift",
                     options=CampaignOptions(workers=1, differential=False))
        run_campaign(prog, specs[:1], mode="fift",
                     options=CampaignOptions(workers=1, differential=True))

        summaries = {}
        configs = {}
        full_elapsed, summaries["w1-full"] = _timed(
            prog, specs, workers=1, differential=False)
        key, entry = _config("w1-full", 1, False, full_elapsed,
                             len(specs), full_elapsed)
        configs[key] = entry
        for workers in worker_counts:
            if workers > 1 and not fork_available():
                continue
            ckey = f"w{workers}-diff"
            elapsed, summaries[ckey] = _timed(
                prog, specs, workers=workers, differential=True)
            key, entry = _config(ckey, workers, True, elapsed,
                                 len(specs), full_elapsed)
            configs[key] = entry

        diff_vs_full = round(
            full_elapsed / (configs["w1-diff"]["seconds"] or 1e-9), 3)
        workloads[name] = {
            "n_trials": len(specs),
            "configs": configs,
            "speedup_diff_vs_full": diff_vs_full,
        }
        for ckey, c in configs.items():
            rows.append((
                name, ckey, c["workers"],
                "on" if c["differential"] else "off",
                f"{c['seconds']:.2f}s", f"{c['trials_per_sec']:.1f}",
                f"{c['speedup_vs_serial_full']:.2f}x",
                "yes" if c.get("cpu_limited") else "",
            ))

        # determinism contract: identical summary for every config
        for ckey, summary in summaries.items():
            assert summary == summaries["w1-full"], \
                f"{name} {ckey} diverged from the serial full run"
        assert all(c["trials_per_sec"] > 0 for c in configs.values())

        if name == "CP":
            overhead = _profiler_overhead(prog, specs)

    scale_name = _scale_name()
    engines, engine_rows = _engine_comparison(scale, scale_name)

    payload = {
        "benchmark": "campaign_throughput",
        "mode": "fift",
        "scale": scale_name,
        "cpu_count": os.cpu_count(),
        "fork_available": fork_available(),
        "workloads": workloads,
        "engine_comparison": engines,
        "overhead": overhead,
    }
    (REPO_ROOT / "BENCH_campaign.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    report(format_table(
        f"Campaign throughput - fift, {os.cpu_count()} visible CPU(s)",
        ["workload", "config", "workers", "diff", "wall time", "trials/s",
         "speedup", "cpu-limited"],
        rows,
    ))
    report(format_table(
        f"Engine comparison - CP {engines['n_threads']} threads, "
        f"{scale_name} scale",
        ["config", "grid", "closure", "vector", "speedup"],
        engine_rows,
    ))
    report(
        f"profiler overhead (CP w1-diff, best of 3): "
        f"{overhead['overhead'] * 100:+.1f}% "
        f"({overhead['profile_off_seconds']:.3f}s -> "
        f"{overhead['profile_on_seconds']:.3f}s)"
    )

    # flight-recorder acceptance: profiling costs <= 5% on CP w1-diff
    # (absolute floor absorbs timer noise when the region is tiny)
    assert (overhead["overhead"] <= 0.05
            or overhead["profile_on_seconds"]
            - overhead["profile_off_seconds"] <= 0.05), overhead

    # the differential engine's reason to exist: at least one eligible
    # workload must clear 3x over full execution (hang-heavy spec draws
    # legitimately bound the others — see the module docstring)
    assert max(w["speedup_diff_vs_full"] for w in workloads.values()) >= 3.0
